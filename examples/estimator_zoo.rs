//! Estimator zoo: run one query and print every candidate estimator's
//! progress curve side by side, with its L1 error against true progress.
//!
//! Shows *why* no single estimator suffices: pick different queries (via
//! the seed argument) and watch the winner change.
//!
//! ```text
//! cargo run --example estimator_zoo --release -- [query-index]
//! ```

use prosel::engine::{run_plan, Catalog, ExecConfig};
use prosel::estimators::{l1_error, EstimatorKind, PipelineObs, TraceCtx};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;

fn main() {
    let query_idx: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2);

    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 99)
        .with_queries(query_idx + 1)
        .with_skew(2.0)
        .with_tuning(prosel::datagen::TuningLevel::FullyTuned);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plan = builder.build(&w.queries[query_idx]).expect("plan");
    println!("query {query_idx} plan:\n{}", plan.render());

    let run = run_plan(&catalog, &plan, &ExecConfig::default());
    println!(
        "{} pipelines, {} observations, {} result rows\n",
        run.pipelines.len(),
        run.trace.snapshots.len(),
        run.result_rows
    );

    // One refinement-bound pass per snapshot, shared by every pipeline.
    let ctx = TraceCtx::new(&run);
    for pid in 0..run.pipelines.len() {
        let Some(obs) = PipelineObs::with_ctx(&run, pid, &ctx) else { continue };
        if obs.len() < 5 {
            continue;
        }
        let truth = obs.truth();
        println!(
            "pipeline {pid} (nodes {:?}, drivers {:?}):",
            run.pipelines[pid].nodes, run.pipelines[pid].driver_nodes
        );
        // Header: progress at 25/50/75% of the pipeline's lifetime.
        println!("  {:<10} {:>7} {:>7} {:>7}  {:>8}", "estimator", "@25%", "@50%", "@75%", "L1");
        let at = |curve: &[f64], frac: f64| -> f64 {
            let j = truth.iter().position(|&t| t >= frac).unwrap_or(truth.len() - 1);
            curve[j]
        };
        let mut best: Option<(EstimatorKind, f64)> = None;
        for kind in EstimatorKind::CANDIDATES {
            let curve = obs.curve(kind);
            let l1 = l1_error(&curve, &truth);
            if best.is_none() || l1 < best.unwrap().1 {
                best = Some((kind, l1));
            }
            println!(
                "  {:<10} {:>6.1}% {:>6.1}% {:>6.1}%  {:>8.4}",
                kind.name(),
                at(&curve, 0.25) * 100.0,
                at(&curve, 0.50) * 100.0,
                at(&curve, 0.75) * 100.0,
                l1
            );
        }
        let (k, l1) = best.unwrap();
        println!("  -> best: {} (L1 {:.4})\n", k.name(), l1);
    }
}
