//! Live, online progress monitoring of N concurrent queries.
//!
//! Unlike `sql_progress` (which replays a *completed* run), this example
//! exercises the production-shaped path: queries are registered with the
//! long-lived monitor before they execute, the engine streams snapshots
//! over a channel while the workload runs on a worker thread, and the
//! main thread serves live progress readouts from prefix-only
//! observations — re-selecting estimators as dynamic features arrive.
//!
//! ```text
//! cargo run --example sql_monitor --release
//! cargo run --example sql_monitor --release -- 6   # six concurrent queries
//! ```

use prosel::core::pipeline_runs::collect_workload_records;
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::TrainingSet;
use prosel::engine::{run_concurrent_tapped, Catalog, ConcurrentConfig};
use prosel::mart::BoostParams;
use prosel::monitor::MonitorBuilder;
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;

fn bar(p: f64) -> String {
    let filled = (p * 24.0).round() as usize;
    format!("[{}{}]", "#".repeat(filled), "-".repeat(24 - filled))
}

fn main() {
    let n_queries: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4).clamp(1, 12);

    // One TPC-H-shaped database: training workload + the live batch.
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0xCAFE).with_queries(60);
    let w = materialize(&spec);
    println!("training selector on {} ...", spec.label());
    let records = collect_workload_records(&spec).expect("training workload");
    let selector = EstimatorSelector::train(
        &TrainingSet::from_records(&records),
        &SelectorConfig::default().with_boost(BoostParams::fast()),
    );

    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> =
        w.queries.iter().take(n_queries).map(|q| builder.build(q).expect("plan")).collect();

    // Register every query with the monitor *before* execution: static
    // features, pipeline weights and the initial estimator choices all
    // come from the plans alone.
    let mut monitor = MonitorBuilder::with_selector(selector).build_monitor().expect("build");
    for (qi, plan) in plans.iter().enumerate() {
        monitor.register(qi, plan);
        println!(
            "registered q{qi}: {} nodes, {} pipelines, initial choice(s): {}",
            plan.len(),
            monitor.status(qi).expect("registered").pipelines.len(),
            monitor
                .status(qi)
                .expect("registered")
                .pipelines
                .iter()
                .map(|p| p.estimator.name())
                .collect::<Vec<_>>()
                .join(",")
        );
    }

    // The engine runs the batch on a worker thread, streaming snapshots
    // over the channel; the main thread plays the role of the monitoring
    // service, draining events and printing a live readout.
    let (tap, rx) = std::sync::mpsc::channel();
    let catalog = Catalog::new(&w.db, &w.design);
    println!("\nrunning {n_queries} queries concurrently ...\n");
    std::thread::scope(|scope| {
        let plans_ref = &plans;
        let catalog_ref = &catalog;
        let worker = scope.spawn(move || {
            run_concurrent_tapped(catalog_ref, plans_ref, &ConcurrentConfig::default(), tap)
        });

        let mut events = 0usize;
        let mut next_report = 50usize;
        // Block on the stream until every sender hangs up (workload done).
        while let Ok(ev) = rx.recv() {
            monitor.ingest(ev);
            events += 1;
            if events >= next_report {
                next_report += 50;
                let line: Vec<String> = (0..n_queries)
                    .map(|qi| {
                        let p = monitor.query_progress(qi).unwrap_or(0.0);
                        // Wall-clock ETA from the trailing speed window
                        // (SystemClock stamps, so real milliseconds here).
                        let eta = match monitor.remaining_time(qi) {
                            Some(e) if e.is_known() => format!("{:5.1}ms", e.remaining * 1e3),
                            _ => "    ?ms".to_string(),
                        };
                        format!("q{qi} {} {:3.0}% eta{eta}", bar(p), p * 100.0)
                    })
                    .collect();
                println!(
                    "t={:9.0}  {}",
                    monitor.status(0).map_or(0.0, |s| s.time),
                    line.join("  ")
                );
            }
        }
        let runs = worker.join().expect("worker");

        println!("\nall queries finished:");
        for (qi, run) in runs.iter().enumerate() {
            let st = monitor.status(qi).expect("registered");
            assert!(st.finished && st.progress == 1.0);
            let eta = monitor.remaining_time(qi).expect("registered");
            assert!(eta.is_known() && eta.remaining == 0.0, "terminal ETA pins to zero");
            let switches = monitor.switch_history(qi).expect("registered");
            println!(
                "  q{qi}: {} rows, {} pipelines, {} estimator switch(es){}",
                run.result_rows,
                run.pipelines.len(),
                switches.len(),
                if switches.is_empty() {
                    String::new()
                } else {
                    format!(
                        " [{}]",
                        switches
                            .iter()
                            .map(|s| format!(
                                "p{}@t{:.0} {}->{}",
                                s.pipeline,
                                s.time,
                                s.from.name(),
                                s.to.name()
                            ))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            );
        }
    });
}
