//! Ad-hoc generalization: train the selector on three workload families
//! and evaluate it on a fourth it has never seen (different schema,
//! different database, different query templates) — the paper's core
//! robustness claim (Section 6.2).
//!
//! ```text
//! cargo run --example adhoc_selection --release
//! ```

use prosel::core::pipeline_runs::collect_workload_records;
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::{FeatureMode, TrainingSet};
use prosel::estimators::EstimatorKind;
use prosel::planner::workload::{WorkloadKind, WorkloadSpec};

fn main() {
    let train_specs = [
        WorkloadSpec::new(WorkloadKind::TpchLike, 11).with_queries(150),
        WorkloadSpec::new(WorkloadKind::TpcdsLike, 12).with_queries(100),
        WorkloadSpec::new(WorkloadKind::Real2, 14).with_queries(100),
    ];
    let test_spec = WorkloadSpec::new(WorkloadKind::Real1, 13).with_queries(120);

    let mut train_records = Vec::new();
    for s in &train_specs {
        println!("collecting {} ...", s.label());
        train_records.extend(collect_workload_records(s).expect("collect"));
    }
    println!("collecting TEST workload {} (never seen in training)", test_spec.label());
    let test_records = collect_workload_records(&test_spec).expect("collect");

    let train = TrainingSet::from_records(&train_records);
    let test = TrainingSet::from_records(&test_records);
    println!("\ntrain: {} pipelines | test: {} pipelines", train.len(), test.len());

    // Baselines: each estimator used exclusively on the test workload.
    println!("\nfixed-estimator baselines on the unseen workload:");
    for k in EstimatorKind::EXTENDED {
        println!("  always-{:<9} L1 {:.4}", k.name(), test.mean_l1(k));
    }
    println!(
        "  oracle selection  L1 {:.4} (lower bound)",
        test.oracle_l1(&EstimatorKind::EXTENDED)
    );

    for mode in [FeatureMode::Static, FeatureMode::StaticDynamic] {
        let cfg = SelectorConfig::default().with_mode(mode);
        let selector = EstimatorSelector::train(&train, &cfg);
        let report = selector.evaluate(&test);
        println!(
            "\nestimator selection ({} features):\n  \
             chosen L1 {:.4} | optimal on {:.1}% of pipelines | \
             error ratio >2x on {:.1}%, >5x on {:.1}%",
            mode.name(),
            report.chosen_l1,
            report.pct_optimal * 100.0,
            report.ratio_over_2x * 100.0,
            report.ratio_over_5x * 100.0,
        );
    }
    println!(
        "\nthe paper's claim: selection stays accurate on workloads it never saw,\n\
         beating every fixed estimator — the features generalize, not the queries."
    );
}
