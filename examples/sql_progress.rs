//! Monitor the progress of a SQL query end to end: parse SQL text, plan
//! it, execute it, and report live progress with a trained selector.
//!
//! ```text
//! cargo run --example sql_progress --release
//! cargo run --example sql_progress --release -- \
//!   "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem \
//!    WHERE o_orderkey = l_orderkey AND o_orderdate BETWEEN 100 AND 600 \
//!    GROUP BY o_orderpriority"
//! ```

use prosel::core::pipeline_runs::collect_workload_records;
use prosel::core::progress::ProgressMonitor;
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::TrainingSet;
use prosel::engine::{run_plan, Catalog, ExecConfig};
use prosel::planner::sql::parse_sql;
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;

const DEFAULT_SQL: &str = "SELECT n_nationkey, SUM(l_extendedprice), COUNT(*) \
     FROM customer, orders, lineitem, supplier, nation \
     WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey \
       AND l_suppkey = s_suppkey AND s_nationkey = n_nationkey \
       AND o_orderdate BETWEEN 200 AND 1400 \
     GROUP BY n_nationkey ORDER BY 2 LIMIT 10";

fn main() {
    let sql = std::env::args().nth(1).unwrap_or_else(|| DEFAULT_SQL.to_string());

    // Database + trained selector (one TPC-H-shaped training workload).
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0xCAFE).with_queries(100);
    let w = materialize(&spec);
    println!("training selector on {} ...", spec.label());
    let records = {
        let train_spec = spec.clone();
        collect_workload_records(&train_spec).expect("training workload")
    };
    let selector =
        EstimatorSelector::train(&TrainingSet::from_records(&records), &SelectorConfig::default());

    // Parse, plan, execute the user's SQL.
    println!("\nSQL> {sql}\n");
    let query = match parse_sql(&w.db, &sql) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plan = builder.build(&query).expect("plan");
    println!("plan:\n{}", plan.render());

    let catalog = Catalog::new(&w.db, &w.design);
    let run = run_plan(&catalog, &plan, &ExecConfig::default());
    let monitor = ProgressMonitor::new(&selector);
    let (points, choices) = monitor.monitor(&run);

    for c in &choices {
        println!("pipeline {}: {} -> {}", c.pipeline_id, c.initial.name(), c.revised.name());
    }
    println!("\n   time |  true | estimate");
    for p in points.iter().step_by((points.len() / 14).max(1)) {
        println!(
            "{:8.0} | {:4.0}% | {:4.0}%  {}",
            p.time,
            p.truth * 100.0,
            p.estimate * 100.0,
            "#".repeat((p.estimate * 32.0) as usize)
        );
    }
    println!(
        "\n{} result rows; monitored error (mean |est-true|): {:.4}",
        run.result_rows,
        ProgressMonitor::l1_of_points(&points)
    );
}
