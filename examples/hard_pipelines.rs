//! The two archetypal hard cases from the paper's error analysis (§6.3),
//! reproduced deliberately:
//!
//! 1. a nested iteration behind a *batch sort* — driver-node estimators
//!    (DNE) finish early while the pipeline keeps running;
//! 2. a hash-join pipeline with a badly misestimated filter — TGN inherits
//!    the cardinality error and cannot recover.
//!
//! ```text
//! cargo run --example hard_pipelines --release
//! ```

use prosel::datagen::TuningLevel;
use prosel::engine::plan::OperatorKind;
use prosel::engine::{run_plan, Catalog, ExecConfig};
use prosel::estimators::{l1_error, EstimatorKind, PipelineObs};
use prosel::planner::query::{FilterSpec, JoinSpec, QuerySpec, TableRef};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::{PlanBuilder, PlannerConfig};

fn print_case(title: &str, obs: &PipelineObs<'_>, kinds: &[EstimatorKind]) {
    println!("\n--- {title} ({} observations) ---", obs.len());
    let truth = obs.truth();
    print!("{:>6}", "true%");
    for k in kinds {
        print!("{:>10}", k.name());
    }
    println!();
    let n = obs.len();
    for j in (0..n).step_by((n / 10).max(1)) {
        print!("{:>5.0}%", truth[j] * 100.0);
        for &k in kinds {
            print!("{:>9.1}%", obs.curve(k)[j] * 100.0);
        }
        println!();
    }
    for &k in kinds {
        println!("  {:<9} L1 {:.4}", k.name(), l1_error(&obs.curve(k), &truth));
    }
}

fn main() {
    // ---------------- case 1: batch sort + nested iteration -------------
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 7)
        .with_queries(1)
        .with_scale(3.0)
        .with_skew(2.0)
        .with_tuning(TuningLevel::FullyTuned);
    let w = materialize(&spec);
    let q = QuerySpec {
        tables: vec![
            TableRef::new("orders").with_filter(FilterSpec::Range {
                col: "o_orderdate".into(),
                lo: 0,
                hi: 520, // narrow: date-ordered seek, not sorted on the join key
            }),
            TableRef::new("lineitem"),
        ],
        joins: vec![JoinSpec {
            left_table: 0,
            left_col: "o_orderkey".into(),
            right_col: "l_orderkey".into(),
        }],
        aggregate: None,
        order_by: None,
        top: None,
    };
    let cfg = PlannerConfig { seek_cost: 1.0, batch_sort_min_outer: 10.0, ..Default::default() };
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design).with_config(cfg);
    let plan = builder.build(&q).expect("plan");
    assert!(plan.nodes.iter().any(|n| matches!(n.op, OperatorKind::BatchSort { .. })));
    let catalog = Catalog::new(&w.db, &w.design);
    let run = run_plan(&catalog, &plan, &ExecConfig::default());
    let pid = run.pipelines.iter().position(|p| !p.batch_sort_nodes.is_empty()).unwrap();
    let obs = PipelineObs::new(&run, pid).expect("observations");
    print_case(
        "nested iteration behind a batch sort (paper Fig. 6)",
        &obs,
        &[EstimatorKind::Dne, EstimatorKind::BatchDne, EstimatorKind::Tgn],
    );

    // ---------------- case 2: misestimated hash join --------------------
    let spec2 = WorkloadSpec::new(WorkloadKind::TpchLike, 8)
        .with_queries(1)
        .with_scale(3.0)
        .with_skew(2.0)
        .with_tuning(TuningLevel::Untuned);
    let w2 = materialize(&spec2);
    let q2 = QuerySpec {
        tables: vec![
            TableRef::new("customer").with_filter(FilterSpec::Cmp {
                col: "c_mktsegment".into(),
                op: prosel::engine::CmpOp::Eq,
                val: 5, // a cold segment under skew: badly misestimated
            }),
            TableRef::new("orders"),
            TableRef::new("lineitem"),
        ],
        joins: vec![
            JoinSpec { left_table: 0, left_col: "c_custkey".into(), right_col: "o_custkey".into() },
            JoinSpec {
                left_table: 1,
                left_col: "o_orderkey".into(),
                right_col: "l_orderkey".into(),
            },
        ],
        aggregate: None,
        order_by: None,
        top: None,
    };
    let builder2 = PlanBuilder::new(&w2.db, &w2.stats, &w2.design);
    let plan2 = builder2.build(&q2).expect("plan");
    let catalog2 = Catalog::new(&w2.db, &w2.design);
    let run2 = run_plan(&catalog2, &plan2, &ExecConfig::default());
    let ctx2 = prosel::estimators::TraceCtx::new(&run2);
    let pid2 = (0..run2.pipelines.len())
        .filter(|&p| PipelineObs::with_ctx(&run2, p, &ctx2).is_some_and(|o| o.len() >= 10))
        .max_by_key(|&p| run2.pipelines[p].nodes.len())
        .expect("pipeline");
    let obs2 = PipelineObs::with_ctx(&run2, pid2, &ctx2).expect("observations");
    print_case(
        "hash-join pipeline with cardinality misestimates (paper Fig. 7)",
        &obs2,
        &[EstimatorKind::Dne, EstimatorKind::Tgn, EstimatorKind::TgnInt, EstimatorKind::Luo],
    );
}
