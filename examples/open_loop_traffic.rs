//! Open-loop traffic against a live monitor service, end to end:
//!
//! 1. describe a scenario as a [`TrafficSpec`] (or load a TOML file like
//!    `crates/bench/specs/traffic_quick.toml`);
//! 2. capture plan templates once ([`TemplateSet::build`] — the only
//!    queries that really execute);
//! 3. replay the Zipf-skewed schedule against a sharded
//!    `MonitorService`, with progress/ETA reads and selector hot-swaps
//!    issued while events stream.
//!
//! Run with: `cargo run --release --example open_loop_traffic`

use prosel_bench::traffic::{drive, schedule, TemplateSet, TrafficSpec};

fn main() {
    // The smoke profile: 800 queries over all six paper workloads in a
    // couple of seconds. Swap in TrafficSpec::quick()/full() — or
    // TrafficSpec::from_toml(&std::fs::read_to_string(path).unwrap()) —
    // for the bigger scenarios.
    let spec = TrafficSpec::smoke();
    println!("spec:\n{}", spec.to_toml());

    let arrivals = schedule(&spec);
    let horizon = arrivals.last().map_or(0.0, |a| a.at);
    println!(
        "schedule: {} arrivals over {horizon:.2} virtual seconds, first {{q{} w{} t{}}}",
        arrivals.len(),
        arrivals[0].query,
        arrivals[0].workload,
        arrivals[0].template,
    );

    let templates = TemplateSet::build(&spec);
    println!("captured {} plan templates\n", templates.len());

    let out = drive(&spec, &templates);
    let c = &out.metrics.counters;
    let (p50, p99, p999) = out.metrics.read_latency.summary();
    println!(
        "drive: {} finished / {} arrivals in {:.2}s wall",
        c.finished, c.arrivals, out.metrics.wall_seconds
    );
    println!(
        "  ingest        {:.0} events/s ({} events)",
        out.metrics.events_per_second(),
        c.events_sent
    );
    println!(
        "  reads         {} (p50 {:.1} us, p99 {:.1} us, p999 {:.1} us)",
        c.reads,
        p50 as f64 / 1e3,
        p99 as f64 / 1e3,
        p999 as f64 / 1e3
    );
    println!(
        "  swaps         {} (p99 {:.1} us)",
        c.swaps,
        out.metrics.swap_latency.quantile(0.99) as f64 / 1e3
    );
    println!("  admission     peak queue {} / max in flight {}", c.queue_peak, c.max_in_flight);
    println!(
        "  conservation  ingested {} unroutable {} dropped {}",
        out.stats.events_ingested, out.stats.events_unroutable, out.stats.queries_dropped
    );
    match out.metrics.violations.len() {
        0 => println!("  invariants    all clean"),
        n => {
            println!("  invariants    {n} VIOLATIONS");
            for v in &out.metrics.violations {
                println!("    - {v}");
            }
        }
    }
    println!(
        "\ndeterministic digests: schedule {:016x}, reads {:016x}",
        out.schedule_digest, out.reads_digest
    );
}
