//! Scraping a live monitor: wait-free metrics, the trace ring, and the
//! text exposition codec, end to end.
//!
//! A sharded [`MonitorService`] serves a concurrent engine run while this
//! thread scrapes its [`MetricsRegistry`] on a cadence — counters, read
//! and ingest latency brackets, tap volume — then hot-swaps a selector so
//! the trace ring has structured events to show, and finally round-trips
//! the whole scrape through the checksummed text exposition.
//!
//! Everything the hot paths pay for this is a few relaxed atomic adds:
//! the scrape side (this thread) does all the locking and allocation.
//!
//! ```text
//! cargo run --example observability --release
//! ```

use prosel::core::pipeline_runs::collect_workload_records;
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::TrainingSet;
use prosel::engine::{run_concurrent_tapped, Catalog, ConcurrentConfig};
use prosel::estimators::EstimatorKind;
use prosel::mart::BoostParams;
use prosel::monitor::MonitorBuilder;
use prosel::obs::{MetricsRegistry, MetricsSnapshot, ObsOptions};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let n_queries = 8;
    let n_shards = 3;

    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0x0B5).with_queries(n_queries);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> =
        w.queries.iter().take(n_queries).map(|q| builder.build(q).expect("plan")).collect();

    // Inject the registry so this thread can scrape it directly; a
    // service built without `.metrics(...)` still creates a private one
    // behind `service.metrics()` / `service.render_text()`.
    let registry = Arc::new(MetricsRegistry::new());
    let service = MonitorBuilder::fixed(EstimatorKind::Dne)
        .shards(n_shards)
        .metrics(Arc::clone(&registry))
        // The default stride samples 1-in-4096 hot-path timings — right
        // for production tails, too sparse for a short demo. Dense
        // sampling here so the latency brackets fill visibly.
        .observability(ObsOptions { timing: true, sample_every: 8 })
        .build_service()
        .expect("DNE is an online kind");
    for (qi, plan) in plans.iter().enumerate() {
        service.register(qi, plan);
    }

    println!("serving {n_queries} queries over {n_shards} shards, scraping every 10ms ...\n");
    std::thread::scope(|scope| {
        let worker = {
            let tap = service.tap();
            let plans = &plans;
            let catalog = &catalog;
            scope.spawn(move || {
                run_concurrent_tapped(catalog, plans, &ConcurrentConfig::default(), tap)
            })
        };

        // The scrape loop: each snapshot is a consistent point-in-time
        // map; `diff` against the previous one turns the monotone
        // counters into per-interval rates.
        let mut prev: Option<MetricsSnapshot> = None;
        loop {
            std::thread::sleep(Duration::from_millis(10));
            // Reads ride the wait-free path and are themselves counted
            // (`service_reads_total`) and sampled (`service_read_ns`).
            let progress: f64 =
                (0..n_queries).map(|qi| service.query_progress(qi).unwrap_or(0.0)).sum::<f64>()
                    / n_queries as f64;
            let snap = service.metrics();
            let ingested = snap.sum_counters("_events_ingested_total");
            let delta = prev
                .as_ref()
                .map(|p| snap.diff(p).sum_counters("_events_ingested_total"))
                .unwrap_or(ingested);
            let reads = snap.counter("service_reads_total").unwrap_or(0);
            let tap_bytes = snap.counter("tap_bytes_total").unwrap_or(0);
            let ingest_ns = snap
                .merge_histograms("_ingest_ns")
                .and_then(|h| h.quantile_bounds(0.5))
                .unwrap_or((0, 0));
            println!(
                "scrape: progress {:3.0}% | {ingested:>6} events ingested (+{delta:<5}) | \
                 {reads:>4} reads | {tap_bytes:>8} tap bytes | \
                 ingest p50 in [{}, {}] ns",
                progress * 100.0,
                ingest_ns.0,
                ingest_ns.1
            );
            prev = Some(snap);
            let done = (0..n_queries).all(|qi| service.is_finished(qi) == Ok(true));
            if done {
                break;
            }
        }
        worker.join().expect("worker");
    });

    // Give the ring something structured to report: train a small
    // selector offline and hot-swap it in.
    let bootstrap = WorkloadSpec::new(WorkloadKind::TpchLike, 0xB00).with_queries(4);
    let records = collect_workload_records(&bootstrap).expect("bootstrap workload");
    let selector = Arc::new(EstimatorSelector::train(
        &TrainingSet::from_records(&records),
        &SelectorConfig {
            boost: BoostParams { iterations: 4, ..BoostParams::fast() },
            ..SelectorConfig::default()
        },
    ));
    let epoch = service.swap_selector(selector).expect("all shards alive");
    println!("\nhot-swapped a trained selector: epoch {epoch}");
    for rec in service.trace_ring().recent() {
        println!("  trace ring @{:.3}: {:?}", rec.at, rec.event);
    }

    // The scrape artifact round-trips bit-identically through the strict
    // checksummed text exposition — what a sidecar collector would parse.
    let snap = service.metrics();
    let text = snap.render_text();
    let parsed = MetricsSnapshot::parse_text(&text).expect("own exposition parses");
    assert_eq!(parsed, snap, "exposition must round-trip");
    println!("\nfinal exposition ({} bytes, {} series):", text.len(), snap.samples.len());
    print!("{text}");

    service.shutdown();
}
