//! The closed online-learning loop, end to end on the sharded service:
//!
//! engine tap → MonitorService (harvest on every Finished) → background
//! Trainer (bounded reservoir buffer, warm-start retraining, guarded
//! promotion) → SelectorHub → hot-swap back into the service, where the
//! *next* round's registrations pick the new model up.
//!
//! ```text
//! cargo run --release --example online_learning
//! ```

use prosel::core::pipeline_runs::collect_workload_records;
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::TrainingSet;
use prosel::engine::{run_concurrent_tapped, Catalog, ConcurrentConfig, ExecConfig};
use prosel::learn::{BufferConfig, LearnConfig, OnlineLearner, SelectorHub, Trainer};
use prosel::mart::BoostParams;
use prosel::monitor::{HarvestConfig, MonitorBuilder};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;
use std::sync::Arc;

fn main() {
    // 1. Cold start: a shallow selector trained on a small slice of a
    //    *different* distribution than production will serve.
    let bootstrap = WorkloadSpec::new(WorkloadKind::TpchLike, 0xB00).with_queries(8);
    let records = collect_workload_records(&bootstrap).expect("bootstrap workload");
    let baseline = Arc::new(EstimatorSelector::train(
        &TrainingSet::from_records(&records),
        &SelectorConfig {
            boost: BoostParams { iterations: 4, ..BoostParams::fast() },
            ..SelectorConfig::default()
        },
    ));
    println!("bootstrap: {} records from {}", records.len(), bootstrap.label());

    // 2. The serving side: a sharded service whose prototype harvests
    //    every finished query into the learning loop's channel.
    let (harvest_sink, harvest_rx) = std::sync::mpsc::channel();
    let service = Arc::new(
        MonitorBuilder::with_selector(Arc::clone(&baseline))
            .harvester(
                Arc::new(harvest_sink),
                HarvestConfig { label: "prod".into(), min_observations: 5 },
            )
            .shards(4)
            .build_service()
            .expect("selector-policy services always build"),
    );

    // 3. The learning side: a background trainer that publishes every
    //    promoted model to the hub *and* hot-swaps it into the service.
    let hub = Arc::new(SelectorHub::new(Arc::clone(&baseline)));
    let learner = OnlineLearner::new(
        Arc::clone(&baseline),
        LearnConfig {
            buffer: BufferConfig { capacity: 2048, group_quota: 32, ..BufferConfig::default() },
            retrain_every: 32, // retrain once per 32-query round
            holdout_every: 3,
            min_records: 16,
            warm_trees: 32,
            promote_margin: 0.004, // damp noise-promotions on the reused holdout
            ..LearnConfig::default()
        },
    );
    let trainer = {
        let hub = Arc::clone(&hub);
        // A weak handle: the trainer must not keep the service alive past
        // its shutdown (a promotion landing after shutdown only reaches
        // the hub).
        let service = Arc::downgrade(&service);
        Trainer::spawn(learner, harvest_rx, move |sel| {
            let epoch = hub.publish(Arc::clone(sel));
            if let Some(service) = service.upgrade() {
                if let Ok(swapped) = service.swap_selector(Arc::clone(sel)) {
                    println!(
                        "  >> promoted model published (hub epoch {epoch}, service epoch {swapped})"
                    );
                }
            }
        })
    };

    // 4. Production traffic: rounds of concurrent TPC-DS-like batches.
    //    Every round registers fresh query ids, so each round picks up
    //    whatever the trainer promoted while the previous one ran.
    for round in 0..6usize {
        let spec =
            WorkloadSpec::new(WorkloadKind::TpcdsLike, 0xD10 + round as u64).with_queries(32);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        let plans: Vec<_> = w.queries.iter().map(|q| builder.build(q).expect("plan")).collect();
        // The engine numbers a concurrent batch 0..n, so each round reuses
        // ids 0..n — legal because the previous round unregistered them.
        for (qi, plan) in plans.iter().enumerate() {
            service.register(qi, plan);
        }
        let cfg = ConcurrentConfig {
            exec: ExecConfig { seed: 0xD10 ^ round as u64, ..ExecConfig::default() },
            ..Default::default()
        };
        run_concurrent_tapped(&catalog, &plans, &cfg, service.tap());
        // Let the shards finish ingesting and the trainer absorb the
        // round before the next one registers (purely cosmetic for the
        // demo — the loop is correct at any interleaving).
        while (0..plans.len()).any(|qi| service.is_finished(qi) != Ok(true)) {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(150));
        let epoch = service.query_selector_epoch(0).expect("registered");
        println!(
            "round {round}: {} queries ({}), registered under selector epoch {epoch}",
            plans.len(),
            spec.label(),
        );
        for qi in 0..plans.len() {
            service.unregister(qi).expect("registered above");
        }
    }

    // 5. Shutdown order: drain the service (flushes pending harvests),
    //    which drops the harvest sink and lets the trainer flush its tail.
    //    The trainer's publish closure may hold a transient strong ref
    //    (its Weak::upgrade during a swap), so spin until we are sole
    //    owner rather than racing it.
    let mut service = service;
    let service = loop {
        match Arc::try_unwrap(service) {
            Ok(service) => break service,
            Err(shared) => {
                service = shared;
                std::thread::yield_now();
            }
        }
    };
    service.shutdown();
    let learner = trainer.join();
    let stats = learner.stats();
    println!(
        "learning loop: {} queries harvested, {} records ({} buffered, {} held out), \
         {} retrains, {} promoted, {} rejected",
        stats.harvested_queries,
        stats.harvested_records,
        learner.buffer().len(),
        learner.validation_len(),
        stats.retrains,
        stats.promotions,
        stats.rejections,
    );

    // 6. Score the loop's output against a held-out workload neither the
    //    bootstrap nor the feedback rounds ever saw.
    let heldout = WorkloadSpec::new(WorkloadKind::TpcdsLike, 0xD05).with_queries(64);
    let held = TrainingSet::from_records(&collect_workload_records(&heldout).expect("held-out"));
    let base_l1 = baseline.evaluate(&held).chosen_l1;
    let final_l1 = hub.selector().evaluate(&held).chosen_l1;
    println!(
        "held-out selection L1 on {}: baseline {base_l1:.4} -> after feedback {final_l1:.4} \
         (hub epoch {})",
        heldout.label(),
        hub.epoch(),
    );
}
