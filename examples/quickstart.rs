//! Quickstart: train an estimator selector and monitor a query with it.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use prosel::core::pipeline_runs::collect_workload_records;
use prosel::core::progress::ProgressMonitor;
use prosel::core::selection::{EstimatorSelector, SelectorConfig};
use prosel::core::training::TrainingSet;
use prosel::engine::{run_plan, Catalog, ExecConfig};
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;

fn main() {
    // 1. Build a TPC-H-shaped database + workload and execute it, gathering
    //    one labelled record per pipeline (features + per-estimator errors).
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0x5eed).with_queries(120);
    println!("collecting training data from {} ...", spec.label());
    let records = collect_workload_records(&spec).expect("workload runs");
    println!("  {} pipeline records", records.len());

    // 2. Train the selector: one MART error model per candidate estimator.
    let train = TrainingSet::from_records(&records);
    let selector = EstimatorSelector::train(&train, &SelectorConfig::default());
    println!("selector trained ({} candidates)", selector.config().candidates.len());

    // 3. Use it on a fresh query (different template parameters).
    let fresh = WorkloadSpec::new(WorkloadKind::TpchLike, 0xD1FF).with_queries(3);
    let w = materialize(&fresh);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plan = builder.build(&w.queries[0]).expect("plan");
    println!("\nfresh query plan:\n{}", plan.render());

    let run = run_plan(&catalog, &plan, &ExecConfig::default());
    let monitor = ProgressMonitor::new(&selector);
    let (points, choices) = monitor.monitor(&run);

    println!("per-pipeline estimator choices:");
    for c in &choices {
        println!(
            "  pipeline {}: start with {}, revised to {} at the 20% marker",
            c.pipeline_id,
            c.initial.name(),
            c.revised.name()
        );
    }

    println!("\nprogress report (true vs estimated):");
    let step = (points.len() / 12).max(1);
    for p in points.iter().step_by(step) {
        let bar = "#".repeat((p.estimate * 30.0) as usize);
        println!(
            "  t={:9.0}  true {:5.1}%  est {:5.1}%  {bar}",
            p.time,
            p.truth * 100.0,
            p.estimate * 100.0
        );
    }
    println!(
        "\nmean |estimate - truth| over the run: {:.4}",
        ProgressMonitor::l1_of_points(&points)
    );
}
