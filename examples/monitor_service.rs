//! Sharded, concurrent-safe progress monitoring of N live queries.
//!
//! Where `sql_monitor` drains a channel on one thread, this example runs
//! the production-shaped service: a [`MonitorService`] owns several shard
//! workers, the engine's tapped run routes every event straight to the
//! shard owning its query (no broadcast, no shared locks), and the main
//! thread — or any number of threads — reads live progress *while ingest
//! is running* via round-trips to shard-owned state.
//!
//! ```text
//! cargo run --example monitor_service --release
//! cargo run --example monitor_service --release -- 8 4   # 8 queries, 4 shards
//! ```

use prosel::engine::{run_concurrent_tapped, Catalog, ConcurrentConfig};
use prosel::estimators::EstimatorKind;
use prosel::monitor::MonitorBuilder;
use prosel::planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel::planner::PlanBuilder;
use std::time::Duration;

fn bar(p: f64) -> String {
    let filled = (p * 24.0).round() as usize;
    format!("[{}{}]", "#".repeat(filled), "-".repeat(24 - filled))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_queries: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6).clamp(1, 12);
    let n_shards: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4).clamp(1, 16);

    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 0xFEED).with_queries(n_queries);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> =
        w.queries.iter().take(n_queries).map(|q| builder.build(q).expect("plan")).collect();

    // The service owns its shard workers; registration is routed to the
    // shard that will own each query (query % n_shards).
    let service =
        MonitorBuilder::fixed(EstimatorKind::Dne).shards(n_shards).build_service().expect("build");
    for (qi, plan) in plans.iter().enumerate() {
        service.register(qi, plan);
        println!(
            "registered q{qi} on shard {}: {} nodes, {} pipelines",
            qi % n_shards,
            plan.len(),
            service.status(qi).expect("registered").pipelines.len()
        );
    }

    println!("\nrunning {n_queries} queries concurrently across {n_shards} monitor shards ...\n");
    std::thread::scope(|scope| {
        // The engine streams into the service's routed tap: each event
        // goes to exactly one shard worker, never through the main thread.
        let worker = {
            let tap = service.tap();
            let plans = &plans;
            let catalog = &catalog;
            scope.spawn(move || {
                run_concurrent_tapped(catalog, plans, &ConcurrentConfig::default(), tap)
            })
        };

        // Main thread = one of arbitrarily many concurrent readers.
        loop {
            std::thread::sleep(Duration::from_millis(40));
            let line: Vec<String> = (0..n_queries)
                .map(|qi| {
                    let p = service.query_progress(qi).unwrap_or(0.0);
                    // Remaining-time answers ride the same routed reads;
                    // the interval is the min/max trailing speed.
                    let eta = match service.remaining_time(qi) {
                        Ok(e) if e.is_known() => format!(
                            "{:4.0}ms [{:.0},{:.0}]",
                            e.remaining * 1e3,
                            e.remaining_lo * 1e3,
                            e.remaining_hi * 1e3
                        ),
                        _ => "   ?ms".to_string(),
                    };
                    format!("q{qi} {} {:3.0}% eta{eta}", bar(p), p * 100.0)
                })
                .collect();
            println!("{}", line.join("  "));
            if (0..n_queries).all(|qi| service.is_finished(qi) == Ok(true)) {
                break;
            }
        }

        let runs = worker.join().expect("worker");
        println!("\nall queries finished:");
        for (qi, run) in runs.iter().enumerate() {
            let st = service.status(qi).expect("registered");
            assert!(st.finished && st.progress == 1.0);
            println!(
                "  q{qi} (shard {}): {} rows, {} pipelines, served progress {:.2}",
                qi % n_shards,
                run.result_rows,
                run.pipelines.len(),
                st.progress
            );
        }
    });
    service.shutdown();
}
