use prosel_engine::{run_plan, Catalog, ExecConfig};
use prosel_estimators::{evaluate_pipeline_shared, EstimatorKind, TraceCtx};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;

fn main() {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 1234).with_queries(40).with_scale(0.8);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let kinds = EstimatorKind::CANDIDATES;
    let mut wins = vec![0usize; 3];
    let mut sums = vec![0.0f64; kinds.len()];
    let mut n = 0;
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let run = run_plan(
            &catalog,
            &plan,
            &ExecConfig { seed: 0xABC ^ qi as u64, ..ExecConfig::default() },
        );
        let ctx = TraceCtx::new(&run);
        for pid in 0..run.pipelines.len() {
            if let Some(errs) = evaluate_pipeline_shared(&run, pid, &kinds, &ctx) {
                let three: Vec<f64> = errs[..3].iter().map(|e| e.l1).collect();
                let best =
                    (0..3).min_by(|&a, &b| three[a].partial_cmp(&three[b]).unwrap()).unwrap();
                wins[best] += 1;
                for (i, e) in errs.iter().enumerate() {
                    sums[i] += e.l1;
                }
                n += 1;
            }
        }
    }
    println!("pipelines: {n}");
    println!("wins of DNE/TGN/LUO: {wins:?}");
    for (i, k) in kinds.iter().enumerate() {
        println!("{:>10}: avg L1 {:.4}", k.name(), sums[i] / n as f64);
    }
}
