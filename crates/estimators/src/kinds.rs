//! Estimator identities.

use std::fmt;

/// Every progress estimator implemented by this crate.
///
/// The first eight are *candidate* estimators the selection framework can
/// choose among; the last two are the idealized models of Section 6.7
/// (they use the true totals, unknowable mid-query) used to validate the
/// GetNext and Bytes-Processed models themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EstimatorKind {
    /// DriverNode estimator (\[6\], eq. (4)).
    Dne,
    /// Total-GetNext estimator with bound-clamped E_i (\[6\], eq. (3)).
    Tgn,
    /// Bytes-processed / speed model of Luo et al. (\[13\]).
    Luo,
    /// Worst-case estimator of \[5\] (pessimistic bound; ratio-error ≤ μ).
    Pmax,
    /// Worst-case-optimal estimator of \[5\] (geometric mean of progress
    /// bounds, minimax-optimal for the ratio error).
    Safe,
    /// DNE with batch-sort nodes included among the drivers (paper §5.1).
    BatchDne,
    /// DNE with index-seek nodes included among the drivers (paper §5.1.1).
    DneSeek,
    /// TGN with LUO-style cardinality interpolation (paper §5.2, eq. (8)).
    TgnInt,
    /// TGN over the *unrefined* optimizer estimates (no bound clamping) —
    /// the ablation baseline for the paper's §7 observation that online
    /// cardinality refinement is a key lever.
    TgnRaw,
    /// Idealized GetNext model: TGN with the true N_i (paper §6.7).
    GetNextOracle,
    /// Idealized bytes-processed model with true byte totals (paper §6.7).
    BytesOracle,
}

impl EstimatorKind {
    /// The three estimators from prior work the paper starts from.
    pub const ORIGINAL: [EstimatorKind; 3] =
        [EstimatorKind::Dne, EstimatorKind::Tgn, EstimatorKind::Luo];

    /// The six-estimator set after adding the paper's novel estimators.
    pub const EXTENDED: [EstimatorKind; 6] = [
        EstimatorKind::Dne,
        EstimatorKind::Tgn,
        EstimatorKind::Luo,
        EstimatorKind::BatchDne,
        EstimatorKind::DneSeek,
        EstimatorKind::TgnInt,
    ];

    /// All candidates (Table 8's rows).
    pub const CANDIDATES: [EstimatorKind; 8] = [
        EstimatorKind::Dne,
        EstimatorKind::Tgn,
        EstimatorKind::Luo,
        EstimatorKind::Pmax,
        EstimatorKind::Safe,
        EstimatorKind::BatchDne,
        EstimatorKind::DneSeek,
        EstimatorKind::TgnInt,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            EstimatorKind::Dne => "DNE",
            EstimatorKind::Tgn => "TGN",
            EstimatorKind::Luo => "LUO",
            EstimatorKind::Pmax => "PMAX",
            EstimatorKind::Safe => "SAFE",
            EstimatorKind::BatchDne => "BATCHDNE",
            EstimatorKind::DneSeek => "DNESEEK",
            EstimatorKind::TgnInt => "TGNINT",
            EstimatorKind::TgnRaw => "TGNRAW",
            EstimatorKind::GetNextOracle => "GetNextModel",
            EstimatorKind::BytesOracle => "BytesModel",
        }
    }

    /// Stable dense index within [`EstimatorKind::CANDIDATES`].
    pub fn candidate_index(&self) -> Option<usize> {
        EstimatorKind::CANDIDATES.iter().position(|k| k == self)
    }
}

impl fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_indices_are_dense() {
        for (i, k) in EstimatorKind::CANDIDATES.iter().enumerate() {
            assert_eq!(k.candidate_index(), Some(i));
        }
        assert_eq!(EstimatorKind::GetNextOracle.candidate_index(), None);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = EstimatorKind::CANDIDATES.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EstimatorKind::CANDIDATES.len());
    }
}
