//! Error metrics and per-pipeline / per-query evaluation.
//!
//! The paper's primary metric is the average absolute (L1) difference
//! between estimated and true progress over all observations of a
//! pipeline, with L2 reported to penalize large deviations (Section 6,
//! "Error Metric"); the ratio error is retained for the worst-case
//! estimator discussion.

use crate::ctx::TraceCtx;
use crate::kinds::EstimatorKind;
use crate::pipeline_obs::PipelineObs;
use prosel_engine::trace::QueryRun;

/// Mean absolute error between two aligned curves.
pub fn l1_error(est: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(est.len(), truth.len());
    if est.is_empty() {
        return 0.0;
    }
    est.iter().zip(truth).map(|(a, b)| (a - b).abs()).sum::<f64>() / est.len() as f64
}

/// Root-mean-square error between two aligned curves.
pub fn l2_error(est: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(est.len(), truth.len());
    if est.is_empty() {
        return 0.0;
    }
    (est.iter().zip(truth).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / est.len() as f64).sqrt()
}

/// Minimum magnitude a point must have to enter the ratio: below this the
/// ratio is dominated by measurement noise, not estimator quality.
const RATIO_FLOOR: f64 = 1e-6;

/// Maximum ratio error `max(est/true, true/est)` over the observations,
/// ignoring points where either side is ~0 (the ratio error
/// overemphasizes the start of a query — the reason the paper prefers L1).
///
/// Online use hits the degenerate points on *every* query: the first
/// snapshot has true progress 0 (and most estimators report 0), which
/// would otherwise divide by zero. Those points are skipped, as are
/// non-finite inputs, so the result is always a finite value ≥ 1 — for an
/// empty or fully-degenerate curve pair the neutral 1.0.
pub fn ratio_error(est: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(est.len(), truth.len());
    let mut worst = 1.0f64;
    for (&e, &t) in est.iter().zip(truth) {
        if e.is_finite() && t.is_finite() && e > RATIO_FLOOR && t > RATIO_FLOOR {
            worst = worst.max((e / t).max(t / e));
        }
    }
    worst
}

/// Errors of one estimator on one pipeline.
#[derive(Debug, Clone, Copy)]
pub struct EstimatorError {
    pub kind: EstimatorKind,
    pub l1: f64,
    pub l2: f64,
    /// Worst-case ratio error ([`ratio_error`]; ≥ 1, finite).
    pub ratio: f64,
}

/// Evaluate `kinds` on pipeline `pid` of a run. `None` when the pipeline
/// has no observations.
///
/// Evaluating **several pipelines of the same run**? Build one
/// [`TraceCtx`] and call [`evaluate_pipeline_shared`] so the per-snapshot
/// bound pass is shared instead of recomputed per pipeline.
pub fn evaluate_pipeline(
    run: &QueryRun,
    pid: usize,
    kinds: &[EstimatorKind],
) -> Option<Vec<EstimatorError>> {
    evaluate_with(PipelineObs::new(run, pid)?, kinds)
}

/// [`evaluate_pipeline`] with the per-snapshot refinement bounds shared
/// across the run's pipelines.
pub fn evaluate_pipeline_shared(
    run: &QueryRun,
    pid: usize,
    kinds: &[EstimatorKind],
    ctx: &TraceCtx,
) -> Option<Vec<EstimatorError>> {
    evaluate_with(PipelineObs::with_ctx(run, pid, ctx)?, kinds)
}

fn evaluate_with(obs: PipelineObs<'_>, kinds: &[EstimatorKind]) -> Option<Vec<EstimatorError>> {
    let truth = obs.truth();
    Some(
        kinds
            .iter()
            .map(|&kind| {
                let curve = obs.curve(kind);
                EstimatorError {
                    kind,
                    l1: l1_error(&curve, &truth),
                    l2: l2_error(&curve, &truth),
                    ratio: ratio_error(&curve, &truth),
                }
            })
            .collect(),
    )
}

/// Query-level progress curve obtained by combining per-pipeline
/// estimates as the E_i-weighted sum of eq. (5). `choose` maps a pipeline
/// id to the estimator used for it. The curve is aligned with *all*
/// snapshots of the run.
pub fn query_progress_curve(run: &QueryRun, choose: impl Fn(usize) -> EstimatorKind) -> Vec<f64> {
    let n_snaps = run.trace.snapshots.len();
    let mut acc = vec![0.0f64; n_snaps];
    let mut total_weight = 0.0;
    // One bound pass per snapshot, shared by every pipeline below.
    let ctx = TraceCtx::new(run);
    for pid in 0..run.pipelines.len() {
        let weight = run.pipeline_weight(pid);
        if weight <= 0.0 {
            continue;
        }
        total_weight += weight;
        let Some(obs) = PipelineObs::with_ctx(run, pid, &ctx) else {
            // Pipeline too fast to observe: contributes its full weight
            // from the moment it finished.
            let (_, end) = run.trace.pipeline_windows[pid];
            for (j, s) in run.trace.snapshots.iter().enumerate() {
                if s.time >= end {
                    acc[j] += weight;
                }
            }
            continue;
        };
        let kind = choose(pid);
        let curve = obs.curve(kind);
        let (start, end) = obs.window;
        // Before the window: 0; inside: the estimate; once the pipeline
        // has finished (snapshot time at or past the window end): pinned
        // to its full weight. The monitor observes pipeline completion
        // directly, so a driver that was never exhausted (e.g. the inner
        // side of an early-terminating merge join) must not leave the
        // pipeline's contribution stuck below its weight forever.
        let mut ci = 0usize;
        for (j, s) in run.trace.snapshots.iter().enumerate() {
            if s.time < start {
                continue;
            }
            while ci + 1 < obs.obs.len() && obs.obs[ci + 1] <= j {
                ci += 1;
            }
            if s.time >= end || j > *obs.obs.last().unwrap() {
                acc[j] += weight;
            } else {
                acc[j] += weight * curve[ci.min(curve.len() - 1)];
            }
        }
    }
    if total_weight > 0.0 {
        for v in &mut acc {
            *v = (*v / total_weight).clamp(0.0, 1.0);
        }
    }
    acc
}

/// Query-level L1 error for a fixed estimator used on every pipeline.
pub fn query_l1(run: &QueryRun, kind: EstimatorKind) -> f64 {
    let curve = query_progress_curve(run, |_| kind);
    let truth: Vec<f64> = (0..curve.len()).map(|j| run.trace.true_progress(j)).collect();
    l1_error(&curve, &truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_l2_basics() {
        let truth = vec![0.0, 0.5, 1.0];
        assert_eq!(l1_error(&truth, &truth), 0.0);
        assert_eq!(l2_error(&truth, &truth), 0.0);
        let off = vec![0.1, 0.6, 0.9];
        assert!((l1_error(&off, &truth) - 0.1).abs() < 1e-12);
        assert!((l2_error(&off, &truth) - 0.1).abs() < 1e-12);
        assert!(
            l2_error(&[0.0, 0.3, 0.0], &[0.0, 0.0, 0.0])
                > l1_error(&[0.0, 0.3, 0.0], &[0.0, 0.0, 0.0])
        );
    }

    #[test]
    fn ratio_ignores_near_zero() {
        let est = vec![0.0, 0.5];
        let truth = vec![0.000001, 0.25];
        assert!((ratio_error(&est, &truth) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_first_snapshot_boundary() {
        // The online path evaluates from the very first snapshot, where
        // true progress is exactly 0 — the ratio must not divide by it.
        let est = vec![0.1, 0.5];
        let truth = vec![0.0, 0.25];
        let r = ratio_error(&est, &truth);
        assert!(r.is_finite());
        assert!((r - 2.0).abs() < 1e-9, "t=0 point must be skipped, got {r}");
        // Both sides zero at t=0 (the common case online).
        assert_eq!(ratio_error(&[0.0], &[0.0]), 1.0);
    }

    #[test]
    fn ratio_empty_and_degenerate_is_neutral() {
        assert_eq!(ratio_error(&[], &[]), 1.0);
        // All points below the floor: nothing to measure.
        assert_eq!(ratio_error(&[1e-9, 0.0], &[0.0, 1e-12]), 1.0);
    }

    #[test]
    fn ratio_skips_non_finite_points() {
        let r = ratio_error(&[f64::NAN, f64::INFINITY, 0.5], &[0.5, 0.5, 0.25]);
        assert!(r.is_finite());
        assert!((r - 2.0).abs() < 1e-9, "non-finite points must be skipped, got {r}");
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = l1_error(&[0.0], &[0.0, 1.0]);
    }
}
