//! Shared per-snapshot evaluation context.
//!
//! The worst-case bound refinement of \[6\] ([`crate::refine::bounds`]) is
//! a bottom-up pass over the *whole plan* — it depends only on the plan and
//! the counter vector of one snapshot, never on which pipeline is being
//! estimated. Before this module existed, both evaluation paths recomputed
//! it once **per pipeline per snapshot**: the batch [`PipelineObs`] inside
//! its per-observation loop, and the online
//! [`crate::incremental::IncrementalObs`] inside every `offer`. For a
//! query with P pipelines that is O(P · plan) work per snapshot for a
//! quantity that is identical across the P computations.
//!
//! [`SnapshotCtx`] hoists the computation: it is built **once per query
//! per snapshot** and handed to every pipeline consumer —
//! [`IncrementalObs::offer_shared`] on the live path,
//! [`PipelineObs::with_ctx`] (via [`TraceCtx`]) on the batch path. Because
//! `bounds` is a pure function of `(plan, k)`, sharing the result is
//! exactly equivalent to recomputing it: curves are bit-identical either
//! way (the existing online/offline equivalence property tests pin this
//! down).
//!
//! [`PipelineObs`]: crate::pipeline_obs::PipelineObs
//! [`IncrementalObs::offer_shared`]: crate::incremental::IncrementalObs::offer_shared
//! [`PipelineObs::with_ctx`]: crate::pipeline_obs::PipelineObs::with_ctx

use crate::refine::bounds;
use prosel_engine::plan::PhysicalPlan;
use prosel_engine::trace::{QueryRun, Snapshot};

/// Per-snapshot derived state shared by every pipeline of a query: the
/// refinement bounds `(lb, ub)` on each node's total GetNext calls, given
/// the counters observed at this snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotCtx {
    /// Per-node lower bounds on N_i.
    pub lb: Vec<f64>,
    /// Per-node upper bounds on N_i (`lb[i] <= ub[i]` for every node).
    pub ub: Vec<f64>,
}

impl SnapshotCtx {
    /// Compute the context for one snapshot — the single O(plan) bound
    /// pass that all pipelines of the query then share. Allocates the two
    /// bound vectors; long-lived consumers (the monitor shard) keep one
    /// [`SnapshotCtx`] per query and refresh it in place with
    /// [`Self::recompute`] instead.
    pub fn new(plan: &PhysicalPlan, snap: &Snapshot) -> SnapshotCtx {
        let (lb, ub) = bounds(plan, &snap.k);
        SnapshotCtx { lb, ub }
    }

    /// An empty context to be filled by [`Self::recompute`].
    pub fn empty() -> SnapshotCtx {
        SnapshotCtx { lb: Vec::new(), ub: Vec::new() }
    }

    /// Refresh the bounds in place from a compiled kernel — the
    /// allocation-free per-snapshot path. Bit-identical to
    /// [`Self::new`] on the kernel's plan (see [`crate::soa`]).
    pub fn recompute(&mut self, kernel: &crate::soa::BoundsKernel, k: &[u64]) {
        kernel.eval_into(k, &mut self.lb, &mut self.ub);
    }

    /// Refresh only the bounds at topological positions `from` and later —
    /// the delta-driven path: a sparse counter delta names exactly which
    /// `GetNext` counters moved, and bounds at earlier positions are pure
    /// functions of unchanged inputs, so leaving them in place is
    /// bit-identical to a full pass (see
    /// [`BoundsKernel::position_of`][crate::soa::BoundsKernel::position_of]).
    /// Falls back to a full evaluation when the context has not been
    /// sized for this kernel yet.
    pub fn refresh_from(&mut self, kernel: &crate::soa::BoundsKernel, k: &[u64], from: usize) {
        if self.lb.len() != kernel.width() {
            kernel.eval_into(k, &mut self.lb, &mut self.ub);
        } else {
            kernel.eval_from(k, &mut self.lb, &mut self.ub, from);
        }
    }

    /// Number of plan nodes covered.
    pub fn len(&self) -> usize {
        self.lb.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lb.is_empty()
    }
}

/// [`SnapshotCtx`] for every snapshot of a completed run, built once and
/// shared across all [`PipelineObs::with_ctx`] constructions for that run.
///
/// [`PipelineObs::with_ctx`]: crate::pipeline_obs::PipelineObs::with_ctx
#[derive(Debug, Clone)]
pub struct TraceCtx {
    snapshots: Vec<SnapshotCtx>,
}

impl TraceCtx {
    /// Precompute the shared context of every snapshot in `run`'s trace.
    pub fn new(run: &QueryRun) -> TraceCtx {
        TraceCtx {
            snapshots: run.trace.snapshots.iter().map(|s| SnapshotCtx::new(&run.plan, s)).collect(),
        }
    }

    /// The shared context of snapshot `j` (trace index).
    pub fn snapshot(&self, j: usize) -> &SnapshotCtx {
        &self.snapshots[j]
    }

    /// Number of snapshots covered.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_engine::plan::{OperatorKind, PlanNode};

    fn scan_plan() -> PhysicalPlan {
        PhysicalPlan {
            nodes: vec![PlanNode {
                op: OperatorKind::TableScan { table: "t".into(), cols: vec![0] },
                children: vec![],
                est_rows: 100.0,
                est_row_bytes: 8.0,
                out_cols: 1,
            }],
            root: 0,
        }
    }

    #[test]
    fn ctx_matches_direct_bounds() {
        let plan = scan_plan();
        let snap = Snapshot {
            time: 10.0,
            k: vec![40].into_boxed_slice(),
            bytes_read: vec![320].into_boxed_slice(),
            bytes_written: vec![0].into_boxed_slice(),
            materialized: vec![0].into_boxed_slice(),
        };
        let ctx = SnapshotCtx::new(&plan, &snap);
        let (lb, ub) = bounds(&plan, &snap.k);
        assert_eq!(ctx.lb, lb);
        assert_eq!(ctx.ub, ub);
        assert_eq!(ctx.len(), 1);
    }
}
