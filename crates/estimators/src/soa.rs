//! Vectorized (struct-of-arrays) forms of the per-snapshot hot paths.
//!
//! The per-snapshot work of the live monitor is two walks: the
//! refinement-bound pass ([`crate::refine::bounds`]) over the whole plan,
//! and the per-pipeline aggregate walk inside
//! [`crate::incremental::IncrementalObs`]. Both were per-node *scalar*
//! traversals over `Vec`-of-struct state: each step re-derived the
//! topological order, matched on [`OperatorKind`] (whose variants carry
//! heap payloads — table names, predicate trees — so every dispatch
//! chases pointers), and probed driver-set membership per node.
//!
//! This module compiles those walks once per plan / per pipeline into
//! flat columns — `Vec<u64>` / `Vec<f64>` slabs indexed by position — so
//! the per-snapshot passes become tight, branch-light loops over
//! contiguous slices that LLVM auto-vectorizes:
//!
//! * [`BoundsKernel`]: the bound pass with the topological order, a dense
//!   payload-free opcode, child indices, and the per-node cap constants
//!   (base cardinalities, seek slack caps, TOP limits) pre-extracted into
//!   columns. [`BoundsKernel::eval_into`] writes into caller-provided
//!   scratch — zero allocation per snapshot.
//! * `PipeCols`: the per-pipeline node walk with estimates and the
//!   bytes-read membership test precompiled into gather indices and a
//!   0/1 mask column, and the chained driver-family index lists laid out
//!   flat in their exact accumulation order.
//!
//! **Bit-identity guarantee.** Every column stores exactly the operand
//! the scalar walk would have loaded, and every consuming loop performs
//! the same floating-point operations in the same order (f64 addition is
//! order-sensitive; the 0/1 byte mask is exact because adding `+0.0` to a
//! non-negative accumulator is the identity). The scalar walks are kept
//! as reference implementations ([`crate::refine::bounds`],
//! [`crate::incremental::IncrementalObs::offer_shared_scalar`]) and the
//! property nets pin the compiled forms bit-for-bit against them.

use prosel_engine::plan::{OperatorKind, PhysicalPlan, SeekKind};

/// Dense, payload-free opcode of the bound pass — one per
/// [`OperatorKind`] *shape* rather than per variant, with the per-node
/// constants (cap, child ids) hoisted into [`BoundsKernel`] columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoundsOp {
    /// Scans and seeks: `(K, cap.max(K))` with the cap precomputed (base
    /// cardinality for scans, slack cap for seeks).
    Leaf,
    /// Filter / compute / project / stream- and hash-aggregate:
    /// `(K, K + remaining(child))`.
    Passthrough,
    /// TOP n: passthrough capped at `n` (the cap column).
    Top,
    /// Sorts emit exactly their input.
    Sort,
    /// Hash / nested-loop join: cross-product worst case.
    Join,
    /// Merge join: `max(rem_l · rem_r, rem_l + rem_r)`.
    MergeJoin,
}

/// The refinement-bound pass of [`crate::refine::bounds`] compiled to
/// struct-of-arrays columns for one plan. Build once per query
/// ([`BoundsKernel::new`]), evaluate per snapshot
/// ([`BoundsKernel::eval_into`]) with zero allocation and no
/// [`OperatorKind`] payload access. Output is bit-identical to the
/// scalar reference (see the module docs).
#[derive(Debug, Clone)]
pub struct BoundsKernel {
    /// Node id at each topological position (evaluation order).
    node: Vec<u32>,
    /// Opcode per position.
    op: Vec<BoundsOp>,
    /// First child id per position (0 when unused).
    child0: Vec<u32>,
    /// Second child id per position (joins only; 0 when unused).
    child1: Vec<u32>,
    /// Per-position cap constant: base cardinality (scans), slack cap
    /// (seeks), `n` (TOP); 0 when unused.
    cap: Vec<f64>,
    /// Topological position of each node id (0 — forcing a full
    /// re-evaluation — for nodes outside the evaluation order).
    pos: Vec<u32>,
    /// Plan width (number of nodes).
    width: usize,
}

impl BoundsKernel {
    /// Compile the bound pass for `plan`.
    pub fn new(plan: &PhysicalPlan) -> BoundsKernel {
        let order = plan.topo_order();
        let n = order.len();
        let mut kernel = BoundsKernel {
            node: Vec::with_capacity(n),
            op: Vec::with_capacity(n),
            child0: Vec::with_capacity(n),
            child1: Vec::with_capacity(n),
            cap: Vec::with_capacity(n),
            pos: vec![0; plan.len()],
            width: plan.len(),
        };
        for (position, id) in order.iter().copied().enumerate() {
            kernel.pos[id] = position as u32;
        }
        for id in order {
            let node = plan.node(id);
            let (op, cap) = match &node.op {
                OperatorKind::TableScan { .. } | OperatorKind::IndexScan { .. } => {
                    (BoundsOp::Leaf, node.est_rows)
                }
                OperatorKind::IndexSeek { seek, .. } => {
                    let cap = match seek {
                        SeekKind::StaticRange { .. } => node.est_rows * 4.0 + 100.0,
                        SeekKind::BoundParam => node.est_rows * 8.0 + 100.0,
                    };
                    (BoundsOp::Leaf, cap)
                }
                OperatorKind::Filter { .. }
                | OperatorKind::ComputeScalar { .. }
                | OperatorKind::Project { .. }
                | OperatorKind::StreamAggregate { .. }
                | OperatorKind::HashAggregate { .. } => (BoundsOp::Passthrough, 0.0),
                OperatorKind::Top { n } => (BoundsOp::Top, *n as f64),
                OperatorKind::Sort { .. } | OperatorKind::BatchSort { .. } => (BoundsOp::Sort, 0.0),
                OperatorKind::HashJoin { .. } | OperatorKind::NestedLoopJoin { .. } => {
                    (BoundsOp::Join, 0.0)
                }
                OperatorKind::MergeJoin { .. } => (BoundsOp::MergeJoin, 0.0),
            };
            kernel.node.push(id as u32);
            kernel.op.push(op);
            kernel.child0.push(node.children.first().map_or(0, |&c| c as u32));
            kernel.child1.push(node.children.get(1).map_or(0, |&c| c as u32));
            kernel.cap.push(cap);
        }
        kernel
    }

    /// Number of plan nodes the kernel was compiled for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Topological (evaluation-order) position of `node`. Together with
    /// [`Self::eval_from`] this turns a sparse counter delta into an
    /// incremental bound refresh: a node's bounds depend only on its own
    /// counter and the bounds of earlier positions, so re-evaluating from
    /// the *smallest* position among the changed `GetNext` counters leaves
    /// every earlier slot holding exactly the value a full pass would
    /// produce. Nodes outside the evaluation order report position 0,
    /// which degrades to a full re-evaluation.
    pub fn position_of(&self, node: usize) -> usize {
        self.pos[node] as usize
    }

    /// Evaluate the bound pass for counter vector `k`, writing the
    /// per-node lower/upper bounds into `lb`/`ub` (resized to the plan
    /// width and fully overwritten — no allocation once the scratch has
    /// reached capacity). Bit-identical to
    /// [`crate::refine::bounds`]`(plan, k)`.
    pub fn eval_into(&self, k: &[u64], lb: &mut Vec<f64>, ub: &mut Vec<f64>) {
        lb.clear();
        lb.resize(self.width, 0.0);
        ub.clear();
        ub.resize(self.width, 0.0);
        self.eval_from(k, lb, ub, 0);
    }

    /// Re-evaluate the bound pass from topological position `from` onward,
    /// assuming `lb`/`ub` hold a previous evaluation whose inputs at
    /// positions before `from` are unchanged (see [`Self::position_of`]).
    /// With `from = 0` this is a full pass. A `from` at or beyond the
    /// evaluation length is a no-op (nothing dirty).
    pub fn eval_from(&self, k: &[u64], lb: &mut [f64], ub: &mut [f64], from: usize) {
        debug_assert_eq!(k.len(), self.width, "counter vector width mismatch");
        debug_assert_eq!(lb.len(), self.width, "lb scratch width mismatch");
        debug_assert_eq!(ub.len(), self.width, "ub scratch width mismatch");
        for i in from..self.node.len() {
            let id = self.node[i] as usize;
            let kid = k[id] as f64;
            let (l, u) = match self.op[i] {
                BoundsOp::Leaf => (kid, self.cap[i].max(kid)),
                BoundsOp::Passthrough => {
                    let c = self.child0[i] as usize;
                    let remaining = (ub[c] - k[c] as f64).max(0.0);
                    (kid, kid + remaining)
                }
                BoundsOp::Top => {
                    let c = self.child0[i] as usize;
                    let remaining = (ub[c] - k[c] as f64).max(0.0);
                    (kid, (kid + remaining).min(self.cap[i]).max(kid))
                }
                BoundsOp::Sort => {
                    let c = self.child0[i] as usize;
                    ((k[c] as f64).min(kid).max(kid.min(lb[c])).max(kid), ub[c].max(kid))
                }
                BoundsOp::Join => {
                    let outer = self.child0[i] as usize;
                    let inner = self.child1[i] as usize;
                    let remaining_outer = (ub[outer] - k[outer] as f64).max(0.0);
                    let inner_size = ub[inner].max(1.0);
                    (kid, kid + remaining_outer * inner_size)
                }
                BoundsOp::MergeJoin => {
                    let l = self.child0[i] as usize;
                    let r = self.child1[i] as usize;
                    let rem_l = (ub[l] - k[l] as f64).max(0.0);
                    let rem_r = (ub[r] - k[r] as f64).max(0.0);
                    (kid, kid + (rem_l * rem_r).max(rem_l + rem_r))
                }
            };
            lb[id] = l;
            ub[id] = u.max(l);
        }
    }
}

/// Per-pipeline struct-of-arrays columns for the aggregate walk of
/// [`crate::incremental::IncrementalObs`], compiled once when the
/// pipeline's driver sets resolve. Each column is indexed by pipeline
/// position (not node id); node-id gather indices are a column of their
/// own.
#[derive(Debug, Clone)]
pub(crate) struct PipeCols {
    /// Node id per pipeline position (gather index into the counters).
    pub(crate) node: Vec<u32>,
    /// Optimizer row estimate per position (`est_rows`).
    pub(crate) est_rows: Vec<f64>,
    /// 1.0 where this position's `bytes_read` counts toward processed
    /// bytes (driver nodes and non-leaf operators), 0.0 otherwise — the
    /// compiled form of the scalar walk's per-node
    /// `driver_set.contains(n) || !is_leaf_read(n)` test. Adding
    /// `mask · bytes` is bit-identical to the branch because the
    /// accumulator is non-negative and `x + 0.0 == x` there.
    pub(crate) read_mask: Vec<f64>,
    /// Driver node ids (gather order = accumulation order).
    pub(crate) driver_node: Vec<u32>,
    /// Known driver totals, aligned with `driver_node`.
    pub(crate) driver_total: Vec<f64>,
    /// Drivers ++ batch-sort extras, in the exact chained-sum order of
    /// the BATCHDNE numerator.
    pub(crate) batch_node: Vec<u32>,
    /// Drivers ++ index-seek extras (DNESEEK numerator order).
    pub(crate) seek_node: Vec<u32>,
}

impl PipeCols {
    /// Compile the columns for `nodes` (one pipeline) of `plan`, given
    /// the resolved driver family: `drivers` with their known totals,
    /// plus the batch-sort / index-seek extensions (chained after the
    /// drivers, in order).
    pub(crate) fn build(
        plan: &PhysicalPlan,
        nodes: &[usize],
        drivers: &[(usize, f64)],
        batch_extra: &[(usize, f64)],
        seek_extra: &[(usize, f64)],
    ) -> PipeCols {
        let driver_set: Vec<usize> = drivers.iter().map(|&(d, _)| d).collect();
        let is_leaf_read = |id: usize| {
            matches!(
                plan.node(id).op,
                OperatorKind::TableScan { .. }
                    | OperatorKind::IndexScan { .. }
                    | OperatorKind::IndexSeek { .. }
            )
        };
        let chain = |extra: &[(usize, f64)]| -> Vec<u32> {
            drivers.iter().chain(extra).map(|&(n, _)| n as u32).collect()
        };
        PipeCols {
            node: nodes.iter().map(|&n| n as u32).collect(),
            est_rows: nodes.iter().map(|&n| plan.node(n).est_rows).collect(),
            read_mask: nodes
                .iter()
                .map(|&n| if driver_set.contains(&n) || !is_leaf_read(n) { 1.0 } else { 0.0 })
                .collect(),
            driver_node: drivers.iter().map(|&(d, _)| d as u32).collect(),
            driver_total: drivers.iter().map(|&(_, t)| t).collect(),
            batch_node: chain(batch_extra),
            seek_node: chain(seek_extra),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::bounds;
    use prosel_engine::plan::{CmpOp, PlanNode, Predicate};

    fn node(op: OperatorKind, children: Vec<usize>, est: f64) -> PlanNode {
        PlanNode { op, children, est_rows: est, est_row_bytes: 8.0, out_cols: 1 }
    }

    fn join_plan() -> PhysicalPlan {
        PhysicalPlan {
            nodes: vec![
                node(OperatorKind::TableScan { table: "a".into(), cols: vec![0] }, vec![], 10.0),
                node(OperatorKind::TableScan { table: "b".into(), cols: vec![0] }, vec![], 20.0),
                node(OperatorKind::HashJoin { probe_key: 0, build_key: 0 }, vec![0, 1], 15.0),
                node(
                    OperatorKind::Filter {
                        pred: Predicate::ColCmp { col: 0, op: CmpOp::Gt, val: 0 },
                    },
                    vec![2],
                    7.0,
                ),
                node(OperatorKind::Top { n: 5 }, vec![3], 5.0),
            ],
            root: 4,
        }
    }

    #[test]
    fn kernel_matches_scalar_bounds_bitwise() {
        let plan = join_plan();
        let kernel = BoundsKernel::new(&plan);
        assert_eq!(kernel.width(), plan.len());
        let mut lb = Vec::new();
        let mut ub = Vec::new();
        for k in [[0u64, 0, 0, 0, 0], [4, 20, 3, 1, 0], [10, 20, 200, 150, 5]] {
            let (slb, sub) = bounds(&plan, &k);
            kernel.eval_into(&k, &mut lb, &mut ub);
            assert_eq!(lb, slb);
            assert_eq!(ub, sub);
        }
    }

    #[test]
    fn scratch_is_reused_across_evaluations() {
        let plan = join_plan();
        let kernel = BoundsKernel::new(&plan);
        let mut lb = Vec::new();
        let mut ub = Vec::new();
        kernel.eval_into(&[0, 0, 0, 0, 0], &mut lb, &mut ub);
        let cap = (lb.capacity(), ub.capacity());
        kernel.eval_into(&[9, 9, 9, 9, 5], &mut lb, &mut ub);
        assert_eq!((lb.capacity(), ub.capacity()), cap, "no reallocation on re-eval");
    }

    #[test]
    fn suffix_eval_matches_a_full_pass_bitwise() {
        let plan = join_plan();
        let kernel = BoundsKernel::new(&plan);
        let base = [4u64, 20, 3, 1, 0];
        let mut lb = Vec::new();
        let mut ub = Vec::new();
        kernel.eval_into(&base, &mut lb, &mut ub);
        // Bump one node's counter, resume from its topo position, and
        // demand bitwise agreement with a from-scratch evaluation — the
        // contract the shard's delta-driven dirty-suffix refresh relies
        // on. `from == len` (usize::MAX clamp upstream) must be a no-op.
        for dirty in 0..plan.len() {
            let mut k = base;
            k[dirty] += 7;
            let (flb, fub) = bounds(&plan, &k);
            let mut slb = lb.clone();
            let mut sub = ub.clone();
            kernel.eval_from(&k, &mut slb, &mut sub, kernel.position_of(dirty));
            assert_eq!(slb, flb, "suffix lb from node {dirty}");
            assert_eq!(sub, fub, "suffix ub from node {dirty}");
        }
        let (snap_lb, snap_ub) = (lb.clone(), ub.clone());
        kernel.eval_from(&base, &mut lb, &mut ub, plan.len());
        assert_eq!((lb, ub), (snap_lb, snap_ub), "from == len is a no-op");
    }

    #[test]
    fn read_mask_compiles_the_membership_test() {
        let plan = join_plan();
        // Drivers: the outer scan (node 0). Scan 1 is a leaf non-driver =>
        // excluded; the join and filter are non-leaf => included.
        let cols = PipeCols::build(&plan, &[0, 1, 2, 3, 4], &[(0, 10.0)], &[], &[(1, 20.0)]);
        assert_eq!(cols.read_mask, vec![1.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(cols.batch_node, vec![0]);
        assert_eq!(cols.seek_node, vec![0, 1]);
    }
}
