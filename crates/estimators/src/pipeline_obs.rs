//! Per-pipeline estimator evaluation over an observation trace.
//!
//! [`PipelineObs`] precomputes, for one pipeline of a completed
//! [`QueryRun`], everything the candidate estimators need at each
//! observation point — driver-node totals, bound-clamped E_i sums,
//! progress bounds, byte counters — and then renders any
//! [`EstimatorKind`] as a progress *curve* aligned with the pipeline's
//! observations.
//!
//! Driver-node denominators follow the paper's Section 3.4: the exact
//! input sizes of driver nodes are known when the pipeline starts
//! (table cardinalities for scans; materialized sizes for sort /
//! hash-aggregate outputs), while index-seek drivers only have optimizer
//! estimates.

use crate::ctx::{SnapshotCtx, TraceCtx};
use crate::kinds::EstimatorKind;
use crate::refine::{alpha, clamp_estimate};
use prosel_engine::plan::{NodeId, OperatorKind, PhysicalPlan};
use prosel_engine::trace::QueryRun;
use prosel_engine::Pipeline;

/// Read access to a pipeline observation sequence: what feature extraction
/// and curve consumers need, implemented by both the batch [`PipelineObs`]
/// and the online [`crate::incremental::IncrementalObs`] so the same code
/// serves the post-hoc and live paths.
pub trait ObsView {
    /// Virtual times of the observations.
    fn obs_times(&self) -> &[f64];
    /// Start of the pipeline's activity window.
    fn window_start(&self) -> f64;
    /// Fraction of driver input consumed at each observation.
    fn driver_fraction(&self) -> &[f64];
    /// Progress curve of one estimator, aligned with the observations.
    /// Borrowed where the implementation maintains the curve (the
    /// incremental path serves feature extraction allocation-free),
    /// owned where it is computed on demand (the batch path).
    fn curve(&self, kind: EstimatorKind) -> std::borrow::Cow<'_, [f64]>;
}

/// Precomputed observation-aligned state for one pipeline.
pub struct PipelineObs<'a> {
    run: &'a QueryRun,
    pid: usize,
    /// Snapshot indices within the pipeline's activity window.
    pub obs: Vec<usize>,
    /// Absolute virtual times of those snapshots.
    pub times: Vec<f64>,
    /// Pipeline activity window.
    pub window: (f64, f64),
    /// Pipeline nodes.
    nodes: Vec<NodeId>,
    /// `(node, known-or-estimated total)` for plain driver nodes.
    drivers: Vec<(NodeId, f64)>,
    /// Batch-sort extension of the driver set (BATCHDNE).
    batch_extra: Vec<(NodeId, f64)>,
    /// Index-seek extension of the driver set (DNESEEK).
    seek_extra: Vec<(NodeId, f64)>,
    /// Topmost node of the pipeline (its output).
    top: NodeId,
    /// Σ over drivers of `D_i · row_bytes_i` (total driver input bytes).
    driver_total_bytes: f64,
    // Per-observation aggregates (same length as `obs`):
    sum_k: Vec<f64>,
    sum_e_clamped: Vec<f64>,
    sum_e_raw: f64,
    work_lb: Vec<f64>,
    work_ub: Vec<f64>,
    alpha_curve: Vec<f64>,
    done_bytes: Vec<f64>,
    /// Spill bytes written but not yet re-read (hash-join partitions on
    /// disk that the pipeline still has to process).
    pending_spill: Vec<f64>,
}

impl<'a> PipelineObs<'a> {
    /// Build for pipeline `pid`; `None` when the pipeline produced no
    /// observations (it never ran, or ran entirely between snapshots).
    ///
    /// Computes the per-snapshot refinement bounds itself — fine for a
    /// single pipeline, but when evaluating **several pipelines of the
    /// same run** build one [`TraceCtx`] and use [`Self::with_ctx`] so the
    /// O(plan) bound pass is shared instead of repeated per pipeline.
    pub fn new(run: &'a QueryRun, pid: usize) -> Option<Self> {
        Self::build(run, pid, None)
    }

    /// [`Self::new`] with the per-snapshot bound computation shared across
    /// pipelines: `ctx` is built once per run and every pipeline reads the
    /// same precomputed `(lb, ub)` arrays. Curves are bit-identical to the
    /// self-computing path ([`crate::refine::bounds`] is pure).
    pub fn with_ctx(run: &'a QueryRun, pid: usize, ctx: &TraceCtx) -> Option<Self> {
        assert_eq!(
            ctx.len(),
            run.trace.snapshots.len(),
            "TraceCtx built for a different trace ({} snapshots vs {})",
            ctx.len(),
            run.trace.snapshots.len()
        );
        Self::build(run, pid, Some(ctx))
    }

    fn build(run: &'a QueryRun, pid: usize, ctx: Option<&TraceCtx>) -> Option<Self> {
        let pipeline = &run.pipelines[pid];
        let obs = run.trace.pipeline_observations(pid);
        if obs.is_empty() {
            return None;
        }
        let plan = &run.plan;
        let nodes = pipeline.nodes.clone();

        let drivers: Vec<(NodeId, f64)> = pipeline
            .driver_nodes
            .iter()
            .map(|&d| (d, driver_node_total(plan, d, &run.trace.final_materialized).max(1.0)))
            .collect();
        let driver_set: Vec<NodeId> = drivers.iter().map(|&(d, _)| d).collect();
        let batch_extra: Vec<(NodeId, f64)> = pipeline
            .batch_sort_nodes
            .iter()
            .filter(|d| !driver_set.contains(d))
            .map(|&d| (d, plan.node(d).est_rows.max(1.0)))
            .collect();
        let seek_extra: Vec<(NodeId, f64)> = pipeline
            .index_seek_nodes
            .iter()
            .filter(|d| !driver_set.contains(d))
            .map(|&d| (d, plan.node(d).est_rows.max(1.0)))
            .collect();

        let top = pipeline_top(plan, pipeline);

        let driver_total_bytes: f64 =
            drivers.iter().map(|&(d, total)| total * plan.node(d).est_row_bytes).sum();
        let sum_e_raw: f64 = nodes.iter().map(|&n| plan.node(n).est_rows).sum();
        let sum_d: f64 = drivers.iter().map(|&(_, d)| d).sum();

        // Leaf access nodes whose reads count as driver input (scans) vs
        // nested-iteration reads (seeks, excluded by the bytes model).
        let is_leaf_read = |id: NodeId| {
            matches!(
                plan.node(id).op,
                OperatorKind::TableScan { .. }
                    | OperatorKind::IndexScan { .. }
                    | OperatorKind::IndexSeek { .. }
            )
        };

        // Hash joins in this pipeline: the build side's final spill writes
        // are known once the build pipeline completed (before this pipeline
        // starts), and must be re-read here.
        let hash_joins: Vec<(NodeId, u64)> = nodes
            .iter()
            .copied()
            .filter(|&n| matches!(plan.node(n).op, OperatorKind::HashJoin { .. }))
            .map(|n| (n, run.trace.final_bytes_written[plan.node(n).children[1]]))
            .collect();

        let mut sum_k = Vec::with_capacity(obs.len());
        let mut sum_e_clamped = Vec::with_capacity(obs.len());
        let mut work_lb = Vec::with_capacity(obs.len());
        let mut work_ub = Vec::with_capacity(obs.len());
        let mut alpha_curve = Vec::with_capacity(obs.len());
        let mut done_bytes = Vec::with_capacity(obs.len());
        let mut pending_spill = Vec::with_capacity(obs.len());
        let mut times = Vec::with_capacity(obs.len());

        for &j in &obs {
            let snap = &run.trace.snapshots[j];
            times.push(snap.time);
            let computed;
            let sctx = match ctx {
                Some(tc) => tc.snapshot(j),
                None => {
                    computed = SnapshotCtx::new(plan, snap);
                    &computed
                }
            };
            let (lb, ub) = (&sctx.lb, &sctx.ub);

            let mut k_total = 0.0;
            let mut e_clamped = 0.0;
            let mut wl = 0.0;
            let mut wu = 0.0;
            let mut bytes = 0.0;
            for &n in &nodes {
                let k = snap.k[n] as f64;
                k_total += k;
                e_clamped += clamp_estimate(plan.node(n).est_rows, lb[n], ub[n]);
                wu += ub[n];
                // Work lower bound: remaining driver input must be read.
                wl += k;
                // Bytes processed: driver reads + spill reads + all writes.
                if driver_set.contains(&n) || !is_leaf_read(n) {
                    bytes += snap.bytes_read[n] as f64;
                }
                bytes += snap.bytes_written[n] as f64;
            }
            for &(d, total) in &drivers {
                wl += (total - snap.k[d] as f64).max(0.0);
            }
            let k_driver: f64 = drivers.iter().map(|&(d, _)| snap.k[d] as f64).sum();
            sum_k.push(k_total);
            sum_e_clamped.push(e_clamped.max(1.0));
            work_lb.push(wl.max(1.0));
            work_ub.push(wu.max(1.0));
            alpha_curve.push(alpha(k_driver, sum_d));
            done_bytes.push(bytes);
            let mut pending = 0.0;
            for &(j_node, build_spill) in &hash_joins {
                let expected = build_spill as f64 + snap.bytes_written[j_node] as f64;
                pending += (expected - snap.bytes_read[j_node] as f64).max(0.0);
            }
            pending_spill.push(pending);
        }

        let window = run.trace.pipeline_windows[pid];
        Some(PipelineObs {
            run,
            pid,
            obs,
            times,
            window,
            nodes,
            drivers,
            batch_extra,
            seek_extra,
            top,
            driver_total_bytes,
            sum_k,
            sum_e_clamped,
            sum_e_raw: sum_e_raw.max(1.0),
            work_lb,
            work_ub,
            alpha_curve,
            done_bytes,
            pending_spill,
        })
    }

    /// Pipeline id.
    pub fn pipeline_id(&self) -> usize {
        self.pid
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    /// True pipeline progress at each observation (elapsed-time fraction
    /// of the activity window).
    pub fn truth(&self) -> Vec<f64> {
        self.obs.iter().map(|&j| self.run.trace.true_pipeline_progress(self.pid, j)).collect()
    }

    /// Fraction of driver input consumed at each observation (the paper's
    /// x-axis for dynamic-feature markers t{x}).
    pub fn driver_fraction(&self) -> &[f64] {
        &self.alpha_curve
    }

    /// Total true GetNext calls in this pipeline.
    pub fn total_getnext(&self) -> u64 {
        self.nodes.iter().map(|&n| self.run.trace.final_k[n]).sum()
    }

    /// Render the progress curve of one estimator.
    pub fn curve(&self, kind: EstimatorKind) -> Vec<f64> {
        match kind {
            EstimatorKind::Dne => self.driver_curve(&self.drivers, &[]),
            EstimatorKind::BatchDne => self.driver_curve(&self.drivers, &self.batch_extra),
            EstimatorKind::DneSeek => self.driver_curve(&self.drivers, &self.seek_extra),
            EstimatorKind::Tgn => {
                (0..self.len()).map(|i| clamp01(self.sum_k[i] / self.sum_e_clamped[i])).collect()
            }
            EstimatorKind::TgnRaw => {
                (0..self.len()).map(|i| clamp01(self.sum_k[i] / self.sum_e_raw)).collect()
            }
            EstimatorKind::TgnInt => (0..self.len())
                .map(|i| {
                    let a = self.alpha_curve[i];
                    let denom = self.sum_k[i] + (1.0 - a) * self.sum_e_raw;
                    clamp01(self.sum_k[i] / denom.max(1.0))
                })
                .collect(),
            EstimatorKind::Pmax => {
                (0..self.len()).map(|i| clamp01(self.sum_k[i] / self.work_ub[i])).collect()
            }
            EstimatorKind::Safe => (0..self.len())
                .map(|i| {
                    let l = clamp01(self.sum_k[i] / self.work_ub[i]);
                    let u = clamp01(self.sum_k[i] / self.work_lb[i]);
                    (l * u).sqrt()
                })
                .collect(),
            EstimatorKind::Luo => self.luo_curve(),
            EstimatorKind::GetNextOracle => {
                let total: f64 = self.nodes.iter().map(|&n| self.run.trace.final_k[n] as f64).sum();
                (0..self.len()).map(|i| clamp01(self.sum_k[i] / total.max(1.0))).collect()
            }
            EstimatorKind::BytesOracle => {
                let total = *self.done_bytes.last().unwrap_or(&0.0);
                if total <= 0.0 {
                    return vec![1.0; self.len()];
                }
                self.done_bytes.iter().map(|&b| clamp01(b / total)).collect()
            }
        }
    }

    /// DNE-family curve over `drivers ∪ extra` (eq. (4), (6), (7)).
    fn driver_curve(&self, drivers: &[(NodeId, f64)], extra: &[(NodeId, f64)]) -> Vec<f64> {
        let total: f64 = drivers.iter().chain(extra).map(|&(_, d)| d).sum();
        if total <= 0.0 {
            return vec![0.0; self.len()];
        }
        self.obs
            .iter()
            .map(|&j| {
                let snap = &self.run.trace.snapshots[j];
                let k: f64 = drivers.iter().chain(extra).map(|&(n, _)| snap.k[n] as f64).sum();
                clamp01(k / total)
            })
            .collect()
    }

    /// The bytes-processed / speed model of \[13\]: estimate remaining
    /// *time* from the byte-processing speed over a trailing window, then
    /// convert to a progress fraction.
    fn luo_curve(&self) -> Vec<f64> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        let start = self.window.0;
        let e_out_total = expected_output_bytes(&self.run.plan, self.top);
        let mut prev = 0.0f64;
        for i in 0..n {
            let t = self.times[i];
            let elapsed = (t - start).max(1e-9);
            let a = self.alpha_curve[i];
            let driver_read: f64 = self
                .drivers
                .iter()
                .map(|&(d, _)| self.run.trace.snapshots[self.obs[i]].bytes_read[d] as f64)
                .sum();
            // Remaining output writes, interpolation-refined: trust the
            // optimizer estimate early (α≈0), what we've seen late (α≈1).
            let remaining_out = ((1.0 - a) * e_out_total).clamp(0.0, e_out_total);
            let remaining_bytes = (self.driver_total_bytes - driver_read).max(0.0)
                + remaining_out
                + self.pending_spill[i];
            // Speed over a trailing window (~10% of elapsed time, at least
            // back to the previous observation) — the paper's T-second
            // window rescaled to virtual time.
            let win = (elapsed * 0.1).max(1e-9);
            let w = luo_window_start(&self.times, i, t, win);
            let dt = t - self.times[w];
            let db = self.done_bytes[i] - self.done_bytes[w];
            let est = luo_point(i == 0, elapsed, dt, db, self.done_bytes[i], remaining_bytes, prev);
            prev = est;
            out.push(est);
        }
        out
    }
}

/// Known total input of driver node `id` (paper §3.4). Materialized
/// inputs — sort / hash-aggregate outputs — use the size the blocking
/// operator reported when its build phase completed (deliberately *not*
/// `final_k[id]`: under early termination the emitted count is smaller
/// and unknowable mid-query, while the materialized size is what a live
/// engine exposes). Scans use their known base cardinality; seeks and
/// everything else the optimizer estimate. Shared by the batch and
/// incremental paths — their bit identity depends on it.
pub(crate) fn driver_node_total(plan: &PhysicalPlan, id: NodeId, materialized: &[u64]) -> f64 {
    match plan.node(id).op {
        OperatorKind::Sort { .. } | OperatorKind::HashAggregate { .. } => materialized[id] as f64,
        _ => plan.node(id).est_rows,
    }
}

/// Topmost node of a pipeline: the one whose parent is outside it (the
/// pipeline's output). Shared by the batch and incremental paths.
pub(crate) fn pipeline_top(plan: &PhysicalPlan, pipeline: &Pipeline) -> NodeId {
    let parents = plan.parents();
    let nodes = &pipeline.nodes;
    nodes
        .iter()
        .copied()
        .find(|&n| match parents[n] {
            None => true,
            Some(p) => !pipeline.contains(p),
        })
        .unwrap_or(nodes[nodes.len() - 1])
}

/// Expected total result-output bytes of the pipeline with output `top`.
/// Only the plan root writes its results out (to the client / result
/// spool); interior pipeline tops hand tuples to a consuming operator in
/// memory, so their only writes are spills, which are observed rather
/// than predicted. Shared by the batch and incremental paths.
pub(crate) fn expected_output_bytes(plan: &PhysicalPlan, top: NodeId) -> f64 {
    if top == plan.root {
        plan.node(top).est_rows * plan.node(top).est_row_bytes
    } else {
        0.0
    }
}

/// Start index of the LUO speed window for observation `i`: walk back
/// from `i` while the previous observation is still inside `win`, then
/// step one further (the reference algorithm). Shared by the batch curve
/// and the incremental rebuild; `IncrementalObs::luo_next` reproduces the
/// same result with a monotone forward pointer (equivalence argued and
/// property-tested there).
pub(crate) fn luo_window_start(times: &[f64], i: usize, t: f64, win: f64) -> usize {
    let mut w = i;
    while w > 0 && t - times[w - 1] < win {
        w -= 1;
    }
    w.saturating_sub(1)
}

/// One LUO estimate from the speed-window deltas. Shared by the batch
/// curve and both incremental paths ([`crate::incremental`]) — their bit
/// identity depends on this formula never diverging. With no usable speed
/// sample yet (`first` observation, or no time/bytes moved inside the
/// window) it falls back to the byte fraction, or to `prev` when no bytes
/// exist at all.
pub(crate) fn luo_point(
    first: bool,
    elapsed: f64,
    dt: f64,
    db: f64,
    done_bytes: f64,
    remaining_bytes: f64,
    prev: f64,
) -> f64 {
    let est = if first || dt <= 0.0 || db <= 0.0 {
        let total = done_bytes + remaining_bytes;
        if total > 0.0 {
            done_bytes / total
        } else {
            prev
        }
    } else {
        let speed = db / dt;
        let remaining_time = remaining_bytes / speed.max(1e-9);
        elapsed / (elapsed + remaining_time)
    };
    clamp01(est)
}

impl ObsView for PipelineObs<'_> {
    fn obs_times(&self) -> &[f64] {
        &self.times
    }

    fn window_start(&self) -> f64 {
        self.window.0
    }

    fn driver_fraction(&self) -> &[f64] {
        PipelineObs::driver_fraction(self)
    }

    fn curve(&self, kind: EstimatorKind) -> std::borrow::Cow<'_, [f64]> {
        std::borrow::Cow::Owned(PipelineObs::curve(self, kind))
    }
}

/// Clamp to a probability, mapping non-finite values to 1.0 (complete).
/// Equivalence-critical: the incremental path shares this exact rule.
#[inline]
pub(crate) fn clamp01(v: f64) -> f64 {
    if v.is_finite() {
        v.clamp(0.0, 1.0)
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_datagen::schema::{ColumnMeta, ColumnRole, TableMeta};
    use prosel_datagen::{Column, Database, PhysicalDesign, Table, TuningLevel};
    use prosel_engine::plan::{CmpOp, PhysicalPlan, PlanNode, Predicate};
    use prosel_engine::{run_plan, Catalog, CostModel, ExecConfig};

    fn db_with_rows(n: usize) -> Database {
        let mut db = Database::new("d");
        let meta = TableMeta::new(
            "t",
            64,
            vec![
                ColumnMeta::new("a", ColumnRole::PrimaryKey),
                ColumnMeta::new("b", ColumnRole::Value { min: 0, max: 9 }),
            ],
        );
        db.add(Table::new(
            meta,
            vec![
                Column { name: "a".into(), data: (1..=n as i64).collect() },
                Column { name: "b".into(), data: (0..n as i64).map(|x| x % 10).collect() },
            ],
        ));
        db
    }

    fn node(op: OperatorKind, children: Vec<usize>, est: f64, cols: usize) -> PlanNode {
        PlanNode { op, children, est_rows: est, est_row_bytes: 8.0 * cols as f64, out_cols: cols }
    }

    fn run_scan_filter(est_filter: f64) -> QueryRun {
        let db = db_with_rows(2000);
        let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
        let cat = Catalog::new(&db, &design);
        let plan = PhysicalPlan {
            nodes: vec![
                node(
                    OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] },
                    vec![],
                    2000.0,
                    2,
                ),
                node(
                    OperatorKind::Filter {
                        pred: Predicate::ColCmp { col: 1, op: CmpOp::Lt, val: 5 },
                    },
                    vec![0],
                    est_filter,
                    2,
                ),
            ],
            root: 1,
        };
        run_plan(
            &cat,
            &plan,
            &ExecConfig {
                cost: CostModel::deterministic(),
                initial_snapshot_interval: 50.0,
                ..ExecConfig::default()
            },
        )
    }

    #[test]
    fn curves_are_probabilities_and_end_near_one() {
        let run = run_scan_filter(1000.0);
        let p = PipelineObs::new(&run, 0).expect("observations");
        for kind in EstimatorKind::CANDIDATES {
            let c = p.curve(kind);
            assert_eq!(c.len(), p.len());
            for &v in &c {
                assert!((0.0..=1.0).contains(&v), "{kind}: {v}");
            }
        }
        // DNE and the oracle must end at 1 (all driver input consumed).
        let dne = p.curve(EstimatorKind::Dne);
        assert!((dne.last().unwrap() - 1.0).abs() < 1e-9);
        let oracle = p.curve(EstimatorKind::GetNextOracle);
        assert!((oracle.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dne_accurate_when_work_uniform() {
        let run = run_scan_filter(1000.0);
        let p = PipelineObs::new(&run, 0).unwrap();
        let dne = p.curve(EstimatorKind::Dne);
        let truth = p.truth();
        let l1: f64 =
            dne.iter().zip(&truth).map(|(a, b)| (a - b).abs()).sum::<f64>() / dne.len() as f64;
        assert!(l1 < 0.05, "uniform scan should be easy for DNE, l1={l1}");
    }

    #[test]
    fn tgn_hurt_by_bad_estimate_dne_immune() {
        // Optimizer thinks the filter passes 10 rows; truth is ~1000.
        let run = run_scan_filter(10.0);
        let p = PipelineObs::new(&run, 0).unwrap();
        let truth = p.truth();
        let l1 = |c: &[f64]| -> f64 {
            c.iter().zip(&truth).map(|(a, b)| (a - b).abs()).sum::<f64>() / c.len() as f64
        };
        let tgn = l1(&p.curve(EstimatorKind::Tgn));
        let dne = l1(&p.curve(EstimatorKind::Dne));
        assert!(
            tgn > dne + 0.05,
            "TGN should suffer from the cardinality error: tgn={tgn} dne={dne}"
        );
    }

    #[test]
    fn oracle_is_best_in_class() {
        let run = run_scan_filter(10.0);
        let p = PipelineObs::new(&run, 0).unwrap();
        let truth = p.truth();
        let l1 = |c: &[f64]| -> f64 {
            c.iter().zip(&truth).map(|(a, b)| (a - b).abs()).sum::<f64>() / c.len() as f64
        };
        let oracle = l1(&p.curve(EstimatorKind::GetNextOracle));
        for kind in [EstimatorKind::Tgn, EstimatorKind::Pmax, EstimatorKind::Safe] {
            assert!(oracle <= l1(&p.curve(kind)) + 1e-9, "oracle should beat {kind}");
        }
        assert!(oracle < 0.05, "oracle l1={oracle}");
    }

    #[test]
    fn pmax_is_most_pessimistic() {
        let run = run_scan_filter(1000.0);
        let p = PipelineObs::new(&run, 0).unwrap();
        let pmax = p.curve(EstimatorKind::Pmax);
        let safe = p.curve(EstimatorKind::Safe);
        for (a, b) in pmax.iter().zip(&safe) {
            assert!(a <= b, "PMAX must lower-bound SAFE");
        }
    }

    #[test]
    fn missing_pipeline_returns_none() {
        let run = run_scan_filter(1000.0);
        assert!(PipelineObs::new(&run, 0).is_some());
        assert_eq!(run.pipelines.len(), 1);
    }
}
