//! Online refinement of cardinality estimates: worst-case bounds (\[6\])
//! and interpolation (\[13\], eqs. (1)–(2) of the paper).
//!
//! Bounds are computed bottom-up over the plan from the counters observed
//! so far. Leaves are capped by their (known) base-table cardinality —
//! exact for scans; for index seeks, whose result size is not knowable
//! without index lookups, a documented slack factor stands in. Join upper
//! bounds use the cross-product worst case, which is why the worst-case
//! estimators built on them (PMAX/SAFE) are so conservative in practice
//! (paper §6.2 rules them out with L1 errors of 0.40–0.50).

use prosel_engine::plan::{OperatorKind, PhysicalPlan, SeekKind};

/// Per-node lower/upper bounds on the total GetNext calls N_i, given the
/// counters `k` observed so far.
///
/// This is the *scalar reference* walk: it re-derives the topological
/// order and matches on [`OperatorKind`] per node, allocating the two
/// result vectors per call. The monitor hot path uses the compiled
/// struct-of-arrays form ([`crate::soa::BoundsKernel`]) instead, which is
/// pinned bit-identical to this function by the equivalence property nets.
pub fn bounds(plan: &PhysicalPlan, k: &[u64]) -> (Vec<f64>, Vec<f64>) {
    let n = plan.len();
    let mut lb = vec![0.0f64; n];
    let mut ub = vec![0.0f64; n];
    bounds_into(plan, k, &mut lb, &mut ub);
    (lb, ub)
}

/// [`bounds`] writing into caller-provided scratch instead of allocating.
/// `lb`/`ub` are resized to the plan width and fully overwritten.
pub fn bounds_into(plan: &PhysicalPlan, k: &[u64], lb: &mut Vec<f64>, ub: &mut Vec<f64>) {
    let n = plan.len();
    lb.clear();
    lb.resize(n, 0.0);
    ub.clear();
    ub.resize(n, 0.0);
    for id in plan.topo_order() {
        let node = plan.node(id);
        let kid = k[id] as f64;
        let (l, u) = match &node.op {
            // Scans know their total input exactly (but may stop early
            // under TOP, hence LB = K).
            OperatorKind::TableScan { .. } | OperatorKind::IndexScan { .. } => {
                (kid, node.est_rows.max(kid))
            }
            // Seek result sizes are not exactly knowable up-front; allow a
            // slack factor above the estimate.
            OperatorKind::IndexSeek { seek, .. } => {
                let cap = match seek {
                    SeekKind::StaticRange { .. } => node.est_rows * 4.0 + 100.0,
                    // Bound-param totals depend on the (unknown) join size.
                    SeekKind::BoundParam => node.est_rows * 8.0 + 100.0,
                };
                (kid, cap.max(kid))
            }
            OperatorKind::Filter { .. }
            | OperatorKind::ComputeScalar { .. }
            | OperatorKind::Project { .. }
            | OperatorKind::StreamAggregate { .. } => {
                let c = node.children[0];
                let remaining = (ub[c] - k[c] as f64).max(0.0);
                (kid, kid + remaining)
            }
            OperatorKind::Top { n } => {
                let c = node.children[0];
                let remaining = (ub[c] - k[c] as f64).max(0.0);
                (kid, (kid + remaining).min(*n as f64).max(kid))
            }
            OperatorKind::Sort { .. } | OperatorKind::BatchSort { .. } => {
                let c = node.children[0];
                // Sorts emit exactly their input.
                ((k[c] as f64).min(kid).max(kid.min(lb[c])).max(kid), ub[c].max(kid))
            }
            OperatorKind::HashAggregate { .. } => {
                let c = node.children[0];
                let remaining = (ub[c] - k[c] as f64).max(0.0);
                (kid, kid + remaining)
            }
            OperatorKind::HashJoin { .. } | OperatorKind::NestedLoopJoin { .. } => {
                let outer = node.children[0];
                let inner = node.children[1];
                let remaining_outer = (ub[outer] - k[outer] as f64).max(0.0);
                // Worst case: every remaining outer row matches the whole
                // inner side.
                let inner_size = ub[inner].max(1.0);
                (kid, kid + remaining_outer * inner_size)
            }
            OperatorKind::MergeJoin { .. } => {
                let l = node.children[0];
                let r = node.children[1];
                let rem_l = (ub[l] - k[l] as f64).max(0.0);
                let rem_r = (ub[r] - k[r] as f64).max(0.0);
                (kid, kid + (rem_l * rem_r).max(rem_l + rem_r))
            }
        };
        lb[id] = l;
        ub[id] = u.max(l);
    }
}

/// Clamp an estimate into `[lb, ub]` (the refinement of \[6\]).
#[inline]
pub fn clamp_estimate(e: f64, lb: f64, ub: f64) -> f64 {
    e.clamp(lb, ub.max(lb))
}

/// Fraction of the driver-node input consumed (eq. (1)): Σ K / Σ D over
/// the driver nodes, clamped to [0, 1].
pub fn alpha(sum_k_driver: f64, sum_d_driver: f64) -> f64 {
    if sum_d_driver <= 0.0 {
        return 0.0;
    }
    (sum_k_driver / sum_d_driver).clamp(0.0, 1.0)
}

/// Interpolated per-node estimate (eq. (2)): `α·(K/α) + (1-α)·E = K + (1-α)·E`.
#[inline]
pub fn interpolated_estimate(k: f64, e: f64, alpha: f64) -> f64 {
    k + (1.0 - alpha.clamp(0.0, 1.0)) * e
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_engine::plan::{CmpOp, PlanNode, Predicate};

    fn node(op: OperatorKind, children: Vec<usize>, est: f64, out_cols: usize) -> PlanNode {
        PlanNode { op, children, est_rows: est, est_row_bytes: 8.0, out_cols }
    }

    fn scan_filter() -> PhysicalPlan {
        PhysicalPlan {
            nodes: vec![
                node(
                    OperatorKind::TableScan { table: "t".into(), cols: vec![0] },
                    vec![],
                    100.0,
                    1,
                ),
                node(
                    OperatorKind::Filter {
                        pred: Predicate::ColCmp { col: 0, op: CmpOp::Gt, val: 0 },
                    },
                    vec![0],
                    40.0,
                    1,
                ),
            ],
            root: 1,
        }
    }

    #[test]
    fn filter_bounds_track_remaining_input() {
        let plan = scan_filter();
        // Halfway: scan emitted 50, filter 10.
        let (lb, ub) = bounds(&plan, &[50, 10]);
        assert_eq!(lb[1], 10.0);
        assert_eq!(ub[1], 10.0 + 50.0); // 50 input rows remain
        assert_eq!(ub[0], 100.0);
        // Finished: scan 100, filter 37 => filter bounds collapse to truth.
        let (lb, ub) = bounds(&plan, &[100, 37]);
        assert_eq!(lb[1], 37.0);
        assert_eq!(ub[1], 37.0);
    }

    #[test]
    fn clamping_pulls_bad_estimates_in() {
        let plan = scan_filter();
        let (lb, ub) = bounds(&plan, &[100, 37]);
        // Optimizer said 40; truth is 37; bounds force it.
        assert_eq!(clamp_estimate(40.0, lb[1], ub[1]), 37.0);
        // Estimate below observed K gets raised.
        let (lb2, ub2) = bounds(&plan, &[50, 45]);
        assert_eq!(clamp_estimate(40.0, lb2[1], ub2[1]), 45.0);
    }

    #[test]
    fn join_upper_bound_is_cross_product() {
        let plan = PhysicalPlan {
            nodes: vec![
                node(OperatorKind::TableScan { table: "a".into(), cols: vec![0] }, vec![], 10.0, 1),
                node(OperatorKind::TableScan { table: "b".into(), cols: vec![0] }, vec![], 20.0, 1),
                node(OperatorKind::HashJoin { probe_key: 0, build_key: 0 }, vec![0, 1], 15.0, 2),
            ],
            root: 2,
        };
        let (_, ub) = bounds(&plan, &[4, 20, 3]);
        // 6 outer rows remain; each could match all 20 build rows.
        assert_eq!(ub[2], 3.0 + 6.0 * 20.0);
    }

    #[test]
    fn alpha_and_interpolation() {
        assert_eq!(alpha(50.0, 100.0), 0.5);
        assert_eq!(alpha(10.0, 0.0), 0.0);
        assert_eq!(alpha(200.0, 100.0), 1.0);
        // eq (2): at alpha=0 we keep the estimate (plus K), at alpha=1 we
        // trust what we've seen.
        assert_eq!(interpolated_estimate(30.0, 100.0, 0.0), 130.0);
        assert_eq!(interpolated_estimate(30.0, 100.0, 1.0), 30.0);
        assert_eq!(interpolated_estimate(30.0, 100.0, 0.5), 80.0);
    }

    #[test]
    fn top_bound_caps_at_n() {
        let plan = PhysicalPlan {
            nodes: vec![
                node(
                    OperatorKind::TableScan { table: "t".into(), cols: vec![0] },
                    vec![],
                    100.0,
                    1,
                ),
                node(OperatorKind::Top { n: 5 }, vec![0], 5.0, 1),
            ],
            root: 1,
        };
        let (_, ub) = bounds(&plan, &[10, 2]);
        assert_eq!(ub[1], 5.0);
    }
}
