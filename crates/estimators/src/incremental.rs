//! Incremental (online) sibling of
//! [`PipelineObs`](crate::pipeline_obs::PipelineObs): estimator curves
//! over a *live* observation stream.
//!
//! [`IncrementalObs`] ingests snapshots one at a time — never a completed
//! trace — and maintains every estimator curve plus the refinement-bound
//! aggregates in O(1) amortized per snapshot (each append costs O(plan),
//! which is constant in trace length; the batch path recomputes O(n) work
//! per estimator per observation). The committed curves are **bit
//! identical** to the batch
//! [`PipelineObs::curve`](crate::pipeline_obs::PipelineObs::curve) output
//! for the same
//! run: every aggregate is accumulated in exactly the same order, driver
//! totals come from the same (online-knowable) sources, and the LUO speed
//! window is located by a monotone pointer that provably reproduces the
//! batch backward walk.
//!
//! # Streaming protocol
//!
//! The engine's [`prosel_engine::trace::TraceEvent`] stream drives three
//! entry points:
//!
//! * [`IncrementalObs::offer`] for every snapshot, with the pipeline's
//!   *currently known* activity window. Snapshots before the pipeline's
//!   first tick are skipped; snapshots provably inside the window commit
//!   immediately; snapshots past the last tick seen so far stay *pending*
//!   until a later tick (or finalization) proves whether they fall inside
//!   the final window — mirroring the batch
//!   [`prosel_engine::trace::ObservationTrace::pipeline_observations`]
//!   rule (all in-window snapshots plus the first one past the end).
//! * [`IncrementalObs::thin`] when the engine thins its bounded snapshot
//!   buffer, so the mirror keeps tracking the final trace.
//! * [`IncrementalObs::finalize`] when the query terminates, which
//!   resolves the trailing pendings and unlocks the oracle curves.
//!
//! Driver-node denominators follow the paper's §3.4 information regime:
//! scan totals and optimizer estimates are known statically; sort /
//! hash-aggregate output sizes are read from the snapshot's
//! `materialized` counters, which blocking operators report when their
//! build phase completes — strictly before the pipeline they drive takes
//! its first observation.

use crate::ctx::SnapshotCtx;
use crate::kinds::EstimatorKind;
use crate::pipeline_obs::{
    clamp01, driver_node_total, expected_output_bytes, luo_point, luo_window_start, pipeline_top,
    ObsView,
};
use crate::refine::{alpha, clamp_estimate};
use crate::soa::PipeCols;
use prosel_engine::plan::{NodeId, OperatorKind, PhysicalPlan};
use prosel_engine::trace::{Snapshot, SnapshotView};
use prosel_engine::Pipeline;
use std::collections::VecDeque;
use std::sync::Arc;

/// The estimator kinds whose curves are maintained online (everything
/// except the two oracle models, which need post-hoc totals).
pub const ONLINE_KINDS: [EstimatorKind; 9] = [
    EstimatorKind::Dne,
    EstimatorKind::Tgn,
    EstimatorKind::Luo,
    EstimatorKind::Pmax,
    EstimatorKind::Safe,
    EstimatorKind::BatchDne,
    EstimatorKind::DneSeek,
    EstimatorKind::TgnInt,
    EstimatorKind::TgnRaw,
];

fn online_index(kind: EstimatorKind) -> Option<usize> {
    ONLINE_KINDS.iter().position(|&k| k == kind)
}

/// Per-observation aggregates computed once when a snapshot is offered.
#[derive(Debug, Clone, Copy)]
struct ObsEntry {
    serial: u64,
    time: f64,
    sum_k: f64,
    /// Σ K over the pipeline's nodes in integer precision (the harvest
    /// path's `total_getnext`; `sum_k` is its f64 shadow).
    k_u64: u64,
    sum_e_clamped: f64,
    work_lb: f64,
    work_ub: f64,
    alpha: f64,
    done_bytes: f64,
    pending_spill: f64,
    /// Σ K over drivers / drivers∪batch / drivers∪seek (chained order).
    k_dne: f64,
    k_batch: f64,
    k_seek: f64,
    /// Σ bytes_read over the driver nodes (LUO's consumed-input signal).
    driver_read: f64,
}

/// Driver-set state resolved at the pipeline's first observation.
#[derive(Debug, Clone)]
struct DriverState {
    drivers: Vec<(NodeId, f64)>,
    /// The driver node ids alone (hot-path membership test).
    driver_set: Vec<NodeId>,
    batch_extra: Vec<(NodeId, f64)>,
    seek_extra: Vec<(NodeId, f64)>,
    /// Chained totals for the three DNE-family estimators.
    total_dne: f64,
    total_batch: f64,
    total_seek: f64,
    sum_d: f64,
    driver_total_bytes: f64,
    /// `(join node, build-side spill bytes)` — final once the build
    /// pipeline completed, i.e. before this pipeline starts.
    hash_joins: Vec<(NodeId, u64)>,
    /// Struct-of-arrays columns compiled from the fields above — what the
    /// hot-path aggregate walk actually reads (see [`crate::soa`]).
    cols: PipeCols,
}

/// Incrementally built estimator state for one pipeline of a running
/// query. See the module docs for the streaming protocol.
pub struct IncrementalObs {
    plan: Arc<PhysicalPlan>,
    pipeline: Pipeline,
    sum_e_raw: f64,
    e_out_total: f64,
    window_start: f64,
    window_end: f64,
    state: Option<DriverState>,
    /// Committed observations (aligned with the batch observation set).
    entries: Vec<ObsEntry>,
    times: Vec<f64>,
    alpha_curve: Vec<f64>,
    /// One maintained curve per [`ONLINE_KINDS`] entry.
    curves: Vec<Vec<f64>>,
    /// LUO speed-window pointer (monotone) and last-estimate fallback.
    luo_w: usize,
    luo_prev: f64,
    pending: VecDeque<ObsEntry>,
    finalized: bool,
}

impl IncrementalObs {
    /// Create the (empty) incremental state for `pipeline` of `plan`.
    pub fn new(plan: Arc<PhysicalPlan>, pipeline: &Pipeline) -> Self {
        let sum_e_raw: f64 = pipeline.nodes.iter().map(|&n| plan.node(n).est_rows).sum();
        let e_out_total = expected_output_bytes(&plan, pipeline_top(&plan, pipeline));
        IncrementalObs {
            pipeline: pipeline.clone(),
            sum_e_raw: sum_e_raw.max(1.0),
            e_out_total,
            window_start: f64::INFINITY,
            window_end: f64::NEG_INFINITY,
            state: None,
            entries: Vec::new(),
            times: Vec::new(),
            alpha_curve: Vec::new(),
            curves: vec![Vec::new(); ONLINE_KINDS.len()],
            luo_w: 0,
            luo_prev: 0.0,
            pending: VecDeque::new(),
            finalized: false,
            plan,
        }
    }

    /// Pipeline id.
    pub fn pipeline_id(&self) -> usize {
        self.pipeline.id
    }

    /// The pipeline this state observes (the clone captured at
    /// construction — what the harvest path feeds to static-feature and
    /// fingerprint extraction).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Number of *committed* observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Has the pipeline produced its first observation?
    pub fn started(&self) -> bool {
        self.state.is_some()
    }

    pub fn finalized(&self) -> bool {
        self.finalized
    }

    /// Activity window as known so far (final after [`Self::finalize`]).
    pub fn window(&self) -> (f64, f64) {
        (self.window_start, self.window_end)
    }

    /// Times of the committed observations.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Fraction of driver input consumed at each committed observation.
    pub fn driver_fraction(&self) -> &[f64] {
        &self.alpha_curve
    }

    /// Total true GetNext calls of this pipeline's nodes — the batch
    /// [`PipelineObs::total_getnext`](crate::pipeline_obs::PipelineObs::total_getnext)
    /// quantity, recovered online: the last committed observation lies at
    /// or past the pipeline's activity-window end, where the pipeline's
    /// counters are frozen at their final values (the same argument that
    /// makes the committed GetNextOracle curve exact). Summed in integer
    /// precision, so it equals the batch Σ `final_k` bit for bit.
    ///
    /// # Panics
    /// Panics before [`Self::finalize`]: mid-run the totals are the
    /// unknowable quantity progress estimation exists to avoid.
    pub fn total_getnext(&self) -> u64 {
        assert!(self.finalized, "total_getnext needs post-hoc totals: only after finalize()");
        self.entries.last().map_or(0, |e| e.k_u64)
    }

    /// True pipeline progress at each committed observation — the
    /// elapsed-time fraction of the final activity window, exactly the
    /// label the batch path reads from
    /// `ObservationTrace::true_pipeline_progress` (same formula, same
    /// clamping, hence bit-identical over the same run).
    ///
    /// # Panics
    /// Panics before [`Self::finalize`]: truth needs the final window.
    pub fn truth(&self) -> Vec<f64> {
        assert!(self.finalized, "truth needs the final activity window: only after finalize()");
        let (start, end) = (self.window_start, self.window_end);
        self.times
            .iter()
            .map(|&t| {
                if !start.is_finite() || end <= start {
                    1.0
                } else {
                    ((t - start) / (end - start)).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    /// Resolve the driver sets and their totals from the first in-window
    /// snapshot. All sources are final at this point: scan totals and
    /// optimizer estimates are static, sort / hash-aggregate sizes were
    /// reported when their build phase (a *previous* pipeline) completed,
    /// and build-side spill bytes stopped moving when the build pipeline
    /// finished.
    fn resolve(&mut self, snap: SnapshotView<'_>) {
        let plan = &self.plan;
        let drivers: Vec<(NodeId, f64)> = self
            .pipeline
            .driver_nodes
            .iter()
            .map(|&d| (d, driver_node_total(plan, d, snap.materialized).max(1.0)))
            .collect();
        let driver_set: Vec<NodeId> = drivers.iter().map(|&(d, _)| d).collect();
        let batch_extra: Vec<(NodeId, f64)> = self
            .pipeline
            .batch_sort_nodes
            .iter()
            .filter(|d| !driver_set.contains(d))
            .map(|&d| (d, plan.node(d).est_rows.max(1.0)))
            .collect();
        let seek_extra: Vec<(NodeId, f64)> = self
            .pipeline
            .index_seek_nodes
            .iter()
            .filter(|d| !driver_set.contains(d))
            .map(|&d| (d, plan.node(d).est_rows.max(1.0)))
            .collect();
        // Chained sums, exactly as the batch `driver_curve` computes them
        // (f64 addition is order-sensitive; bit-identity requires it).
        let chained =
            |extra: &[(NodeId, f64)]| -> f64 { drivers.iter().chain(extra).map(|&(_, d)| d).sum() };
        let total_dne = chained(&[]);
        let total_batch = chained(&batch_extra);
        let total_seek = chained(&seek_extra);
        let sum_d: f64 = drivers.iter().map(|&(_, d)| d).sum();
        let driver_total_bytes: f64 =
            drivers.iter().map(|&(d, total)| total * plan.node(d).est_row_bytes).sum();
        let hash_joins: Vec<(NodeId, u64)> = self
            .pipeline
            .nodes
            .iter()
            .copied()
            .filter(|&n| matches!(plan.node(n).op, OperatorKind::HashJoin { .. }))
            .map(|n| (n, snap.bytes_written[plan.node(n).children[1]]))
            .collect();
        let cols = PipeCols::build(plan, &self.pipeline.nodes, &drivers, &batch_extra, &seek_extra);
        self.state = Some(DriverState {
            drivers,
            driver_set,
            batch_extra,
            seek_extra,
            total_dne,
            total_batch,
            total_seek,
            sum_d,
            driver_total_bytes,
            hash_joins,
            cols,
        });
    }

    /// Compute the per-observation aggregates for one snapshot — the
    /// struct-of-arrays hot path: every operand was hoisted into the
    /// [`PipeCols`] columns when the driver sets resolved, so the walk is
    /// a branch-light pass over contiguous slices (gathers into the
    /// counter vectors, no plan-node access, no membership tests). Same
    /// floating-point operations in the same accumulation order as the
    /// scalar reference (`entry_for_scalar`), hence bit-identical
    /// output — the property nets pin this.
    fn entry_for(&self, serial: u64, snap: SnapshotView<'_>, ctx: &SnapshotCtx) -> ObsEntry {
        let state = self.state.as_ref().expect("drivers resolved");
        let cols = &state.cols;
        let (lb, ub) = (&ctx.lb[..], &ctx.ub[..]);
        let (ks, br, bw) = (snap.k, snap.bytes_read, snap.bytes_written);
        let mut k_total = 0.0;
        let mut k_u64 = 0u64;
        let mut e_clamped = 0.0;
        let mut wl = 0.0;
        let mut wu = 0.0;
        let mut bytes = 0.0;
        for ((&n, &est), &mask) in cols.node.iter().zip(&cols.est_rows).zip(&cols.read_mask) {
            let n = n as usize;
            let kk = ks[n];
            let k = kk as f64;
            k_total += k;
            k_u64 += kk;
            e_clamped += clamp_estimate(est, lb[n], ub[n]);
            wu += ub[n];
            wl += k;
            // 0/1 mask instead of the membership branch: bit-identical
            // because the accumulator is non-negative (see PipeCols docs).
            bytes += mask * br[n] as f64;
            bytes += bw[n] as f64;
        }
        // One pass over the driver columns serves all three per-driver
        // sums. Each accumulator's additions stay in driver order, so
        // every value is bitwise equal to the scalar reference's separate
        // walks (f64 addition is order-sensitive, not pass-sensitive).
        let mut k_driver = 0.0;
        let mut driver_read = 0.0;
        for (&d, &total) in cols.driver_node.iter().zip(&cols.driver_total) {
            let d = d as usize;
            let kd = ks[d] as f64;
            wl += (total - kd).max(0.0);
            k_driver += kd;
            driver_read += br[d] as f64;
        }
        let mut pending_spill = 0.0;
        for &(j_node, build_spill) in &state.hash_joins {
            let expected = build_spill as f64 + bw[j_node] as f64;
            pending_spill += (expected - br[j_node] as f64).max(0.0);
        }
        // `batch_node`/`seek_node` are drivers ++ extras, so their chained
        // sums share the driver prefix: resuming the fold from `k_driver`
        // replays the exact op sequence of a full front-to-back gather.
        let tail = cols.driver_node.len();
        let gather_from = |acc: f64, idx: &[u32]| -> f64 {
            idx.iter().fold(acc, |a, &n| a + ks[n as usize] as f64)
        };
        ObsEntry {
            serial,
            time: snap.time,
            sum_k: k_total,
            k_u64,
            sum_e_clamped: e_clamped.max(1.0),
            work_lb: wl.max(1.0),
            work_ub: wu.max(1.0),
            alpha: alpha(k_driver, state.sum_d),
            done_bytes: bytes,
            pending_spill,
            k_dne: k_driver,
            k_batch: gather_from(k_driver, &cols.batch_node[tail..]),
            k_seek: gather_from(k_driver, &cols.seek_node[tail..]),
            driver_read,
        }
    }

    /// The original per-node *scalar* walk (same loop structure and
    /// accumulation order as [`PipelineObs::new`]): per-node plan access,
    /// [`OperatorKind`] dispatch and driver-set membership tests. Kept as
    /// the reference implementation the compiled [`PipeCols`] path is
    /// pinned against (bit-identity property nets, and the scalar side of
    /// the `monitor_overhead` A/B group); not used on any hot path.
    ///
    /// [`PipelineObs::new`]: crate::pipeline_obs::PipelineObs::new
    fn entry_for_scalar(&self, serial: u64, snap: SnapshotView<'_>, ctx: &SnapshotCtx) -> ObsEntry {
        let plan = &self.plan;
        let state = self.state.as_ref().expect("drivers resolved");
        let (lb, ub) = (&ctx.lb, &ctx.ub);
        let is_leaf_read = |id: NodeId| {
            matches!(
                plan.node(id).op,
                OperatorKind::TableScan { .. }
                    | OperatorKind::IndexScan { .. }
                    | OperatorKind::IndexSeek { .. }
            )
        };
        let mut k_total = 0.0;
        let mut k_u64 = 0u64;
        let mut e_clamped = 0.0;
        let mut wl = 0.0;
        let mut wu = 0.0;
        let mut bytes = 0.0;
        for &n in &self.pipeline.nodes {
            let k = snap.k[n] as f64;
            k_total += k;
            k_u64 += snap.k[n];
            e_clamped += clamp_estimate(plan.node(n).est_rows, lb[n], ub[n]);
            wu += ub[n];
            wl += k;
            if state.driver_set.contains(&n) || !is_leaf_read(n) {
                bytes += snap.bytes_read[n] as f64;
            }
            bytes += snap.bytes_written[n] as f64;
        }
        for &(d, total) in &state.drivers {
            wl += (total - snap.k[d] as f64).max(0.0);
        }
        let k_driver: f64 = state.drivers.iter().map(|&(d, _)| snap.k[d] as f64).sum();
        let mut pending_spill = 0.0;
        for &(j_node, build_spill) in &state.hash_joins {
            let expected = build_spill as f64 + snap.bytes_written[j_node] as f64;
            pending_spill += (expected - snap.bytes_read[j_node] as f64).max(0.0);
        }
        let k_of = |extra: &[(NodeId, f64)]| -> f64 {
            state.drivers.iter().chain(extra).map(|&(n, _)| snap.k[n] as f64).sum()
        };
        ObsEntry {
            serial,
            time: snap.time,
            sum_k: k_total,
            k_u64,
            sum_e_clamped: e_clamped.max(1.0),
            work_lb: wl.max(1.0),
            work_ub: wu.max(1.0),
            alpha: alpha(k_driver, state.sum_d),
            done_bytes: bytes,
            pending_spill,
            k_dne: k_of(&[]),
            k_batch: k_of(&state.batch_extra),
            k_seek: k_of(&state.seek_extra),
            driver_read: state.drivers.iter().map(|&(d, _)| snap.bytes_read[d] as f64).sum(),
        }
    }

    /// Offer one snapshot together with the pipeline's *currently known*
    /// activity window (from the live `TraceEvent`). Returns the number of
    /// observations committed by this call.
    ///
    /// Computes the per-snapshot refinement bounds itself. When several
    /// pipelines of the same query consume the same snapshot, build one
    /// [`SnapshotCtx`] and call [`Self::offer_shared`] instead, so the
    /// O(plan) bound pass runs once per snapshot rather than once per
    /// pipeline.
    pub fn offer(&mut self, serial: u64, snap: &Snapshot, window: (f64, f64)) -> usize {
        assert!(!self.finalized, "offer after finalize");
        let (start, _) = window;
        if !start.is_finite() || snap.time < start {
            return 0; // pipeline not started, or pre-window snapshot
        }
        let ctx = SnapshotCtx::new(&self.plan, snap);
        self.offer_view(serial, snap.as_view(), window, &ctx)
    }

    /// [`Self::offer`] with the refinement bounds precomputed once per
    /// query per snapshot and shared across pipelines. Bit-identical to
    /// the self-computing path ([`crate::refine::bounds`] is pure).
    pub fn offer_shared(
        &mut self,
        serial: u64,
        snap: &Snapshot,
        window: (f64, f64),
        ctx: &SnapshotCtx,
    ) -> usize {
        self.offer_view(serial, snap.as_view(), window, ctx)
    }

    /// [`Self::offer_shared`] over a borrowed [`SnapshotView`] — the
    /// zero-copy path for consumers that reconstruct counter state from
    /// delta events (the monitor shard's per-query scratch): no owned
    /// [`Snapshot`] is ever materialized.
    pub fn offer_view(
        &mut self,
        serial: u64,
        snap: SnapshotView<'_>,
        window: (f64, f64),
        ctx: &SnapshotCtx,
    ) -> usize {
        self.offer_impl(serial, snap, window, ctx, false)
    }

    /// [`Self::offer_shared`] computing the per-observation aggregates via
    /// the original scalar walk (`entry_for_scalar`) instead of
    /// the compiled struct-of-arrays columns. Identical protocol,
    /// bit-identical curves — this is the reference side of the
    /// scalar-vs-SoA A/B comparison in the `monitor_overhead` bench and
    /// the equivalence property nets. Not a hot path.
    pub fn offer_shared_scalar(
        &mut self,
        serial: u64,
        snap: &Snapshot,
        window: (f64, f64),
        ctx: &SnapshotCtx,
    ) -> usize {
        self.offer_impl(serial, snap.as_view(), window, ctx, true)
    }

    fn offer_impl(
        &mut self,
        serial: u64,
        snap: SnapshotView<'_>,
        window: (f64, f64),
        ctx: &SnapshotCtx,
        scalar: bool,
    ) -> usize {
        assert!(!self.finalized, "offer after finalize");
        debug_assert_eq!(ctx.len(), self.plan.len(), "SnapshotCtx built for a different plan");
        let (start, last) = window;
        if !start.is_finite() || snap.time < start {
            return 0; // pipeline not started, or pre-window snapshot
        }
        if self.state.is_none() {
            self.window_start = start;
            self.resolve(snap);
        }
        self.window_end = self.window_end.max(last);
        let entry = if scalar {
            self.entry_for_scalar(serial, snap, ctx)
        } else {
            self.entry_for(serial, snap, ctx)
        };
        // Snapshots at or before the last tick seen so far are provably
        // inside the final window (the final end can only grow). Common
        // case — nothing queued and this entry already committable —
        // bypasses the deque entirely (same commit order either way).
        if self.pending.is_empty() && entry.time <= self.window_end {
            self.commit(entry);
            return 1;
        }
        self.pending.push_back(entry);
        let mut committed = 0;
        while let Some(front) = self.pending.front() {
            if front.time <= self.window_end {
                let e = self.pending.pop_front().expect("front exists");
                self.commit(e);
                committed += 1;
            } else {
                break;
            }
        }
        committed
    }

    /// Append one committed observation to every curve.
    fn commit(&mut self, e: ObsEntry) {
        self.entries.push(e);
        self.times.push(e.time);
        self.alpha_curve.push(e.alpha);
        let luo = self.luo_next();
        let state = self.state.as_ref().expect("drivers resolved");
        let dne = |k: f64, total: f64| if total <= 0.0 { 0.0 } else { clamp01(k / total) };
        let values = [
            dne(e.k_dne, state.total_dne),
            clamp01(e.sum_k / e.sum_e_clamped),
            luo,
            clamp01(e.sum_k / e.work_ub),
            {
                let l = clamp01(e.sum_k / e.work_ub);
                let u = clamp01(e.sum_k / e.work_lb);
                (l * u).sqrt()
            },
            dne(e.k_batch, state.total_batch),
            dne(e.k_seek, state.total_seek),
            {
                let denom = e.sum_k + (1.0 - e.alpha) * self.sum_e_raw;
                clamp01(e.sum_k / denom.max(1.0))
            },
            clamp01(e.sum_k / self.sum_e_raw),
        ];
        debug_assert_eq!(values.len(), ONLINE_KINDS.len());
        for (curve, v) in self.curves.iter_mut().zip(values) {
            curve.push(v);
        }
    }

    /// LUO estimate for the observation being committed (the last entry of
    /// `self.entries` at call time is its predecessor set; the entry itself
    /// is already pushed). Uses a monotone pointer for the speed window:
    /// the batch backward walk selects the largest `j ≤ i-1` with
    /// `times[j] ≤ t - win`, and that threshold is non-decreasing in `i`
    /// (d(t - 0.1·(t-start))/dt = 0.9 > 0), so the pointer only ever moves
    /// forward — O(1) amortized instead of O(window) per observation.
    fn luo_next(&mut self) -> f64 {
        let i = self.entries.len() - 1;
        let e = self.entries[i];
        let state = self.state.as_ref().expect("drivers resolved");
        let start = self.window_start;
        let t = e.time;
        let elapsed = (t - start).max(1e-9);
        let remaining_out = ((1.0 - e.alpha) * self.e_out_total).clamp(0.0, self.e_out_total);
        let remaining_bytes =
            (state.driver_total_bytes - e.driver_read).max(0.0) + remaining_out + e.pending_spill;
        let win = (elapsed * 0.1).max(1e-9);
        while self.luo_w + 1 < i && t - self.times[self.luo_w + 1] >= win {
            self.luo_w += 1;
        }
        let w = if i == 0 { 0 } else { self.luo_w };
        let dt = t - self.times[w];
        let db = e.done_bytes - self.entries[w].done_bytes;
        let est = luo_point(i == 0, elapsed, dt, db, e.done_bytes, remaining_bytes, self.luo_prev);
        self.luo_prev = est;
        est
    }

    /// Recompute the LUO curve from scratch (after thinning changed the
    /// committed index space) using the batch backward-walk algorithm.
    fn rebuild_luo(&mut self) {
        let state = match &self.state {
            Some(s) => s,
            None => return,
        };
        let start = self.window_start;
        let n = self.entries.len();
        let mut out = Vec::with_capacity(n);
        let mut prev = 0.0f64;
        let mut last_w = 0usize;
        for i in 0..n {
            let e = self.entries[i];
            let t = e.time;
            let elapsed = (t - start).max(1e-9);
            let remaining_out = ((1.0 - e.alpha) * self.e_out_total).clamp(0.0, self.e_out_total);
            let remaining_bytes = (state.driver_total_bytes - e.driver_read).max(0.0)
                + remaining_out
                + e.pending_spill;
            let win = (elapsed * 0.1).max(1e-9);
            let w = luo_window_start(&self.times, i, t, win);
            last_w = w;
            let dt = t - self.times[w];
            let db = e.done_bytes - self.entries[w].done_bytes;
            let est = luo_point(i == 0, elapsed, dt, db, e.done_bytes, remaining_bytes, prev);
            prev = est;
            out.push(est);
        }
        self.luo_w = last_w;
        self.luo_prev = prev;
        self.curves[online_index(EstimatorKind::Luo).expect("online")] = out;
    }

    /// Apply an engine thinning event: retain only the observations whose
    /// serial survives in `live` (the engine's post-thinning buffer,
    /// ascending). Amortized O(1) per offered snapshot: thinning halves
    /// the buffer, so each observation is touched O(log) times total.
    pub fn thin(&mut self, live: &[u64]) {
        let keep: Vec<bool> = {
            let mut keep = Vec::with_capacity(self.entries.len());
            let mut li = 0usize;
            for e in &self.entries {
                while li < live.len() && live[li] < e.serial {
                    li += 1;
                }
                keep.push(li < live.len() && live[li] == e.serial);
            }
            keep
        };
        if keep.iter().all(|&k| k) {
            // Committed set untouched; still filter pendings below.
        } else {
            let filter_f64 = |v: &mut Vec<f64>, keep: &[bool]| {
                let mut i = 0;
                v.retain(|_| {
                    let k = keep[i];
                    i += 1;
                    k
                });
            };
            let mut i = 0;
            self.entries.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
            filter_f64(&mut self.times, &keep);
            filter_f64(&mut self.alpha_curve, &keep);
            for curve in &mut self.curves {
                filter_f64(curve, &keep);
            }
            // The LUO window lookback is defined over the observation index
            // space, which just changed: rebuild it (the other curves are
            // pointwise and survive filtering untouched).
            self.rebuild_luo();
        }
        self.pending.retain(|e| live.binary_search(&e.serial).is_ok());
    }

    /// The query terminated: resolve the trailing pendings against the
    /// final activity window — everything inside commits, plus the first
    /// observation past the end (the batch `pipeline_observations` rule) —
    /// and unlock the oracle curves.
    pub fn finalize(&mut self, final_window: (f64, f64)) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        if self.state.is_none() {
            return; // pipeline never observed
        }
        self.window_start = final_window.0;
        self.window_end = final_window.1;
        let mut past_end = false;
        while let Some(e) = self.pending.pop_front() {
            if e.time <= self.window_end {
                self.commit(e);
            } else if !past_end {
                self.commit(e);
                past_end = true;
            }
        }
        self.pending.clear();
    }

    /// The committed curve of one estimator. Online kinds are available at
    /// any point; the two oracle models (which need post-hoc totals) only
    /// after [`Self::finalize`].
    ///
    /// # Panics
    /// Panics when an oracle curve is requested before finalization.
    pub fn curve(&self, kind: EstimatorKind) -> Vec<f64> {
        if let Some(idx) = online_index(kind) {
            return self.curves[idx].clone();
        }
        assert!(self.finalized, "{kind} needs post-hoc totals: only available after finalize()");
        match kind {
            EstimatorKind::GetNextOracle => {
                // Counters of this pipeline's nodes are frozen by its last
                // observation, so the final Σ K equals the true Σ N_i.
                let total = self.entries.last().map_or(0.0, |e| e.sum_k);
                self.entries.iter().map(|e| clamp01(e.sum_k / total.max(1.0))).collect()
            }
            EstimatorKind::BytesOracle => {
                let total = self.entries.last().map_or(0.0, |e| e.done_bytes);
                if total <= 0.0 {
                    return vec![1.0; self.len()];
                }
                self.entries.iter().map(|e| clamp01(e.done_bytes / total)).collect()
            }
            _ => unreachable!("non-oracle kinds are online"),
        }
    }

    /// Latest committed value of one online estimator — the O(1) serving
    /// path. `None` until the first observation commits.
    pub fn value(&self, kind: EstimatorKind) -> Option<f64> {
        online_index(kind).and_then(|idx| self.curves[idx].last().copied())
    }

    /// Replay a completed run's trace through the incremental protocol
    /// (serials without thinning — the trace is already thinned). Useful
    /// for tests and for validating online/offline equivalence; `None`
    /// when the pipeline produced no observations.
    ///
    /// Replaying **several pipelines of the same run**? Build one
    /// [`crate::ctx::TraceCtx`] and use [`Self::replay_shared`] so the
    /// per-snapshot bound pass is not repeated per pipeline. (This
    /// single-pipeline form computes bounds lazily, only for snapshots
    /// inside the pipeline's window.)
    pub fn replay(run: &prosel_engine::QueryRun, pid: usize) -> Option<IncrementalObs> {
        Self::replay_inner(run, pid, None)
    }

    /// [`Self::replay`] with the per-snapshot refinement bounds shared
    /// across pipelines of the run.
    pub fn replay_shared(
        run: &prosel_engine::QueryRun,
        pid: usize,
        ctx: &crate::ctx::TraceCtx,
    ) -> Option<IncrementalObs> {
        Self::replay_inner(run, pid, Some(ctx))
    }

    fn replay_inner(
        run: &prosel_engine::QueryRun,
        pid: usize,
        ctx: Option<&crate::ctx::TraceCtx>,
    ) -> Option<IncrementalObs> {
        let mut inc = IncrementalObs::new(Arc::new(run.plan.clone()), &run.pipelines[pid]);
        let (start, end) = run.trace.pipeline_windows[pid];
        for (j, snap) in run.trace.snapshots.iter().enumerate() {
            // The live window's `last` is the last tick at or before this
            // snapshot; any value in [that, snap.time] commits the same
            // observation set, so the conservative `min(end, time)` works.
            let window = (start, end.min(snap.time));
            match ctx {
                Some(ctx) => {
                    inc.offer_shared(j as u64, snap, window, ctx.snapshot(j));
                }
                None => {
                    inc.offer(j as u64, snap, window);
                }
            }
        }
        inc.finalize((start, end));
        if inc.is_empty() {
            return None;
        }
        Some(inc)
    }
}

impl ObsView for IncrementalObs {
    fn obs_times(&self) -> &[f64] {
        self.times()
    }

    fn window_start(&self) -> f64 {
        self.window_start
    }

    fn driver_fraction(&self) -> &[f64] {
        &self.alpha_curve
    }

    fn curve(&self, kind: EstimatorKind) -> std::borrow::Cow<'_, [f64]> {
        match online_index(kind) {
            // Maintained curves are served without copying — re-selection
            // reads only a few marker points, so a clone per feature
            // extraction would dominate its cost.
            Some(idx) => std::borrow::Cow::Borrowed(&self.curves[idx]),
            None => std::borrow::Cow::Owned(IncrementalObs::curve(self, kind)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_engine::plan::{CmpOp, PlanNode, Predicate};
    use prosel_engine::{decompose, OperatorKind};

    fn scan_filter_plan() -> Arc<PhysicalPlan> {
        Arc::new(PhysicalPlan {
            nodes: vec![
                PlanNode {
                    op: OperatorKind::TableScan { table: "t".into(), cols: vec![0] },
                    children: vec![],
                    est_rows: 100.0,
                    est_row_bytes: 8.0,
                    out_cols: 1,
                },
                PlanNode {
                    op: OperatorKind::Filter {
                        pred: Predicate::ColCmp { col: 0, op: CmpOp::Gt, val: 0 },
                    },
                    children: vec![0],
                    est_rows: 50.0,
                    est_row_bytes: 8.0,
                    out_cols: 1,
                },
            ],
            root: 1,
        })
    }

    fn snap(time: f64, k0: u64, k1: u64) -> Snapshot {
        Snapshot {
            time,
            k: vec![k0, k1].into_boxed_slice(),
            bytes_read: vec![k0 * 8, 0].into_boxed_slice(),
            bytes_written: vec![0, 0].into_boxed_slice(),
            materialized: vec![0, 0].into_boxed_slice(),
        }
    }

    #[test]
    fn skips_snapshots_before_the_window() {
        let plan = scan_filter_plan();
        let pipelines = decompose(&plan);
        let mut obs = IncrementalObs::new(plan, &pipelines[0]);
        // Pipeline not started yet: window is (inf, -inf).
        assert_eq!(obs.offer(0, &snap(5.0, 0, 0), (f64::INFINITY, f64::NEG_INFINITY)), 0);
        assert!(!obs.started());
        // Started at t=10; a snapshot inside the known window commits.
        assert_eq!(obs.offer(1, &snap(12.0, 20, 10), (10.0, 12.0)), 1);
        assert!(obs.started());
        assert_eq!(obs.len(), 1);
        assert!((obs.value(EstimatorKind::Dne).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn pendings_commit_when_proven_in_window() {
        let plan = scan_filter_plan();
        let pipelines = decompose(&plan);
        let mut obs = IncrementalObs::new(plan, &pipelines[0]);
        obs.offer(0, &snap(12.0, 20, 10), (10.0, 12.0));
        // Snapshot past the last known tick: cannot commit yet (it might
        // land past the final window end).
        assert_eq!(obs.offer(1, &snap(30.0, 20, 10), (10.0, 12.0)), 0);
        assert_eq!(obs.len(), 1);
        // A later tick at t=40 proves the pending was inside the window;
        // both it and the new snapshot commit.
        assert_eq!(obs.offer(2, &snap(40.0, 80, 40), (10.0, 40.0)), 2);
        assert_eq!(obs.len(), 3);
        // Finalize: the first trailing pending commits (the batch
        // one-past-end rule), later ones are dropped.
        obs.offer(3, &snap(45.0, 100, 50), (10.0, 41.0));
        obs.offer(4, &snap(50.0, 100, 50), (10.0, 41.0));
        obs.finalize((10.0, 41.0));
        assert_eq!(obs.len(), 4, "exactly one past-end observation");
        assert_eq!(obs.times().last().copied(), Some(45.0));
        let dne = obs.curve(EstimatorKind::Dne);
        assert!((dne.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "after finalize")]
    fn oracle_curves_require_finalization() {
        let plan = scan_filter_plan();
        let pipelines = decompose(&plan);
        let mut obs = IncrementalObs::new(plan, &pipelines[0]);
        obs.offer(0, &snap(12.0, 20, 10), (10.0, 12.0));
        let _ = obs.curve(EstimatorKind::GetNextOracle);
    }

    #[test]
    fn truth_and_total_getnext_unlock_at_finalize() {
        let plan = scan_filter_plan();
        let pipelines = decompose(&plan);
        let mut obs = IncrementalObs::new(plan, &pipelines[0]);
        obs.offer(0, &snap(12.0, 20, 10), (10.0, 12.0));
        obs.offer(1, &snap(40.0, 80, 40), (10.0, 40.0));
        obs.finalize((10.0, 40.0));
        // Elapsed-time fractions of the final [10, 40] window.
        let truth = obs.truth();
        assert_eq!(truth.len(), 2);
        assert!((truth[0] - 2.0 / 30.0).abs() < 1e-12);
        assert!((truth[1] - 1.0).abs() < 1e-12);
        // Counters frozen at the window end: Σ K of the last observation.
        assert_eq!(obs.total_getnext(), 120);
    }

    #[test]
    #[should_panic(expected = "after finalize")]
    fn truth_requires_finalization() {
        let plan = scan_filter_plan();
        let pipelines = decompose(&plan);
        let mut obs = IncrementalObs::new(plan, &pipelines[0]);
        obs.offer(0, &snap(12.0, 20, 10), (10.0, 12.0));
        let _ = obs.truth();
    }

    #[test]
    fn online_values_track_curves() {
        let plan = scan_filter_plan();
        let pipelines = decompose(&plan);
        let mut obs = IncrementalObs::new(plan, &pipelines[0]);
        assert_eq!(obs.value(EstimatorKind::Tgn), None);
        for (i, t) in [12.0, 20.0, 28.0].iter().enumerate() {
            let k = 20 * (i as u64 + 1);
            obs.offer(i as u64, &snap(*t, k, k / 2), (10.0, *t));
        }
        for kind in ONLINE_KINDS {
            let c = obs.curve(kind);
            assert_eq!(c.len(), 3);
            assert_eq!(obs.value(kind), c.last().copied());
            assert!(c.iter().all(|v| (0.0..=1.0).contains(v)), "{kind} out of range");
        }
    }
}
