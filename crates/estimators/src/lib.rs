//! # prosel-estimators
//!
//! The SQL progress estimators of the paper and its predecessors:
//!
//! * **DNE** — DriverNode estimator (\[6\], eq. (4)): progress = fraction of
//!   driver-node input consumed. Robust to cardinality errors (driver
//!   sizes are known), fails when per-tuple work varies (nested
//!   iterations, batch sorts).
//! * **TGN** — Total GetNext (\[6\], eq. (3)) with bound-clamped E_i:
//!   accounts for work at every node but inherits optimizer estimation
//!   errors.
//! * **LUO** — the bytes-processed / speed model of Luo et al. (\[13\]):
//!   driver input bytes + output/spill bytes, converted to remaining time
//!   via the recent processing speed.
//! * **PMAX / SAFE** — the worst-case estimators of \[5\], built on
//!   worst-case progress bounds ([`refine::bounds`]).
//! * **BATCHDNE / DNESEEK / TGNINT** — the paper's novel special-purpose
//!   estimators (Section 5).
//! * **GetNextOracle / BytesOracle** — the idealized models of Section 6.7
//!   (true totals) used to validate the underlying progress models.
//!
//! [`pipeline_obs::PipelineObs`] renders any of these as a progress curve
//! over a pipeline's observations; [`incremental::IncrementalObs`] builds
//! the same curves *online*, one snapshot at a time, in O(1) amortized per
//! snapshot; [`eval`] scores curves against true (time-fraction) progress.
//!
//! The refinement-bound pass ([`refine::bounds`]) depends only on the plan
//! and one snapshot's counters, so [`ctx::SnapshotCtx`] /
//! [`ctx::TraceCtx`] precompute it **once per query per snapshot** and
//! share it across every pipeline consumer — both paths accept the shared
//! context ([`PipelineObs::with_ctx`],
//! [`IncrementalObs::offer_shared`]) and produce bit-identical curves.

//! The per-snapshot hot paths — the bound pass and the per-pipeline
//! aggregate walk — also exist in compiled struct-of-arrays form
//! ([`soa::BoundsKernel`] and the columns behind
//! [`IncrementalObs::offer_view`]), bit-identical to the scalar
//! references and allocation-free per snapshot; see [`soa`].

pub mod ctx;
pub mod eval;
pub mod incremental;
pub mod kinds;
pub mod pipeline_obs;
pub mod refine;
pub mod soa;

pub use ctx::{SnapshotCtx, TraceCtx};
pub use eval::{
    evaluate_pipeline, evaluate_pipeline_shared, l1_error, l2_error, query_l1,
    query_progress_curve, ratio_error, EstimatorError,
};
pub use incremental::{IncrementalObs, ONLINE_KINDS};
pub use kinds::EstimatorKind;
pub use pipeline_obs::{ObsView, PipelineObs};
