//! Estimator behaviour across real workloads: the paper's premises must
//! emerge from the simulator, not be injected.

use prosel_engine::{run_plan, Catalog, ExecConfig};
use prosel_estimators::{evaluate_pipeline, EstimatorKind};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;

/// Collect per-pipeline L1 errors for all candidate estimators over a
/// workload.
fn collect_errors(kind: WorkloadKind, queries: usize) -> Vec<Vec<(EstimatorKind, f64)>> {
    let spec = WorkloadSpec::new(kind, 1234).with_queries(queries).with_scale(0.8);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let mut out = Vec::new();
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let run = run_plan(
            &catalog,
            &plan,
            &ExecConfig { seed: 0xABC ^ qi as u64, ..ExecConfig::default() },
        );
        for pid in 0..run.pipelines.len() {
            if let Some(errs) = evaluate_pipeline(&run, pid, &EstimatorKind::CANDIDATES) {
                out.push(errs.iter().map(|e| (e.kind, e.l1)).collect());
            }
        }
    }
    out
}

#[test]
fn no_single_estimator_dominates() {
    let errors = collect_errors(WorkloadKind::TpchLike, 40);
    assert!(errors.len() > 60, "expected many pipelines, got {}", errors.len());
    // Count how often each of the three classic estimators is the best of
    // the three — each must win somewhere (Figure 1's premise).
    let three = [EstimatorKind::Dne, EstimatorKind::Tgn, EstimatorKind::Luo];
    let mut wins = [0usize; 3];
    for pipeline_errors in &errors {
        let of = |k: EstimatorKind| pipeline_errors.iter().find(|(kk, _)| *kk == k).unwrap().1;
        let best = three
            .iter()
            .enumerate()
            .min_by(|a, b| of(*a.1).partial_cmp(&of(*b.1)).unwrap())
            .unwrap()
            .0;
        wins[best] += 1;
    }
    for (i, &w) in wins.iter().enumerate() {
        assert!(
            w as f64 / errors.len() as f64 > 0.03,
            "{:?} never wins ({w}/{} pipelines): no estimator diversity",
            three[i],
            errors.len()
        );
    }
}

#[test]
fn estimator_errors_bounded() {
    for kind in [WorkloadKind::TpcdsLike, WorkloadKind::Real1] {
        let errors = collect_errors(kind, 15);
        for pipeline_errors in &errors {
            for &(k, l1) in pipeline_errors {
                assert!((0.0..=1.0).contains(&l1), "{k}: implausible L1 {l1} on {kind:?}");
            }
        }
    }
}

#[test]
fn oracle_getnext_model_outperforms_estimators_on_average() {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 99).with_queries(30).with_scale(0.8);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let kinds =
        [EstimatorKind::Dne, EstimatorKind::Tgn, EstimatorKind::Luo, EstimatorKind::GetNextOracle];
    let mut sums = [0.0f64; 4];
    let mut n = 0usize;
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let run =
            run_plan(&catalog, &plan, &ExecConfig { seed: qi as u64, ..ExecConfig::default() });
        for pid in 0..run.pipelines.len() {
            if let Some(errs) = evaluate_pipeline(&run, pid, &kinds) {
                for (i, e) in errs.iter().enumerate() {
                    sums[i] += e.l1;
                }
                n += 1;
            }
        }
    }
    let avg: Vec<f64> = sums.iter().map(|s| s / n as f64).collect();
    let oracle = avg[3];
    // §6.7: the idealized GetNext model is far better than any practical
    // estimator and has a small absolute error.
    for i in 0..3 {
        assert!(oracle < avg[i], "oracle {oracle:.4} should beat {} ({:.4})", kinds[i], avg[i]);
    }
    assert!(oracle < 0.12, "oracle L1 too high: {oracle:.4}");
}

#[test]
fn worst_case_estimators_are_poor_in_practice() {
    let errors = collect_errors(WorkloadKind::TpchLike, 25);
    let mean = |k: EstimatorKind| -> f64 {
        let vals: Vec<f64> =
            errors.iter().map(|pe| pe.iter().find(|(kk, _)| *kk == k).unwrap().1).collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let pmax = mean(EstimatorKind::Pmax);
    let safe = mean(EstimatorKind::Safe);
    let dne = mean(EstimatorKind::Dne);
    let tgn = mean(EstimatorKind::Tgn);
    // §6.2: PMAX/SAFE are far worse than the practical estimators, and
    // PMAX is the worst of the two.
    assert!(pmax > dne && pmax > tgn, "pmax {pmax:.3} dne {dne:.3} tgn {tgn:.3}");
    assert!(safe > dne.min(tgn), "safe {safe:.3}");
    assert!(pmax > safe, "pmax {pmax:.3} should exceed safe {safe:.3}");
}

#[test]
fn specialized_estimators_help_their_target_cases() {
    // Fully tuned TPC-H: plenty of nested iterations and batch sorts.
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 77)
        .with_queries(120)
        .with_scale(0.8)
        .with_skew(2.0)
        .with_tuning(prosel_datagen::TuningLevel::FullyTuned);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let mut dne_sum = 0.0;
    let mut seek_sum = 0.0;
    let mut batch_sum = 0.0;
    let mut n = 0usize;
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let run =
            run_plan(&catalog, &plan, &ExecConfig { seed: qi as u64, ..ExecConfig::default() });
        for (pid, p) in run.pipelines.iter().enumerate() {
            // Only pipelines with nested iteration + batch sort.
            if p.index_seek_nodes.is_empty() || p.batch_sort_nodes.is_empty() {
                continue;
            }
            let kinds = [EstimatorKind::Dne, EstimatorKind::DneSeek, EstimatorKind::BatchDne];
            if let Some(errs) = evaluate_pipeline(&run, pid, &kinds) {
                dne_sum += errs[0].l1;
                seek_sum += errs[1].l1;
                batch_sum += errs[2].l1;
                n += 1;
            }
        }
    }
    assert!(n >= 5, "need nested-iteration pipelines to test, got {n}");
    let (dne, seek, batch) = (dne_sum / n as f64, seek_sum / n as f64, batch_sum / n as f64);
    // On their target pipelines the specialized estimators should (on
    // average) improve on plain DNE.
    assert!(
        seek < dne || batch < dne,
        "specialized estimators never helped: dne={dne:.4} dneseek={seek:.4} batchdne={batch:.4}"
    );
}
