//! Property tests for the [`prosel_estimators::refine::bounds`] contract
//! that the shared-snapshot hoist ([`prosel_estimators::SnapshotCtx`])
//! relies on.
//!
//! Over plans built from operators with *sound* upper bounds — scans
//! (exact base cardinality), filters, hash joins and full sorts — and
//! **operator-quiescent** execution prefixes (every operator has fully
//! processed what its child emitted; the counter states of \[6\]'s
//! analysis), the refinement guarantees, per node:
//!
//! * `lb ≤ ub`, and neither contradicts the observed counter (`lb ≥ K`);
//! * `lb` is non-decreasing and `ub` non-increasing as `K` grows along
//!   the prefix;
//! * both bracket the true total (`lb ≤ N_i ≤ ub` at every state);
//! * at completion the bounds collapse to the truth (`lb = ub = N_i`).
//!
//! The quiescent prefixes are synthesized exactly (pure integer
//! bookkeeping over known data), because a live engine snapshot can land
//! *mid-operator* — the child's counter advanced, the parent's not yet —
//! where the in-flight row makes `ub` dip by up to its potential output
//! and recover at the next quiescent point. Live snapshots therefore get
//! the weaker engine-driven properties below (ordering, `K`-consistency,
//! `lb` monotonicity), which also cover the operators whose model trades
//! soundness for availability: index seeks cap their total with a
//! documented slack factor, aggregates rebuild their upper bound from `K`
//! alone during the drain phase, and early-terminating operators (TOP,
//! merge joins) leave upstream bounds uncollapsed by design.

use proptest::prelude::*;
use prosel_datagen::schema::{ColumnMeta, ColumnRole, TableMeta};
use prosel_datagen::{Column, Database, PhysicalDesign, Table, TuningLevel};
use prosel_engine::plan::{CmpOp, OperatorKind, PhysicalPlan, PlanNode, Predicate};
use prosel_engine::{run_plan, Catalog, ExecConfig};
use prosel_estimators::refine::bounds;
use prosel_estimators::{EstimatorKind, PipelineObs, SnapshotCtx, TraceCtx, ONLINE_KINDS};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;

/// Value of row `i` (0-based) in either synthetic table.
fn v_of(i: usize) -> i64 {
    ((i * 7) % 10) as i64
}

fn two_table_db(rows_a: usize, rows_b: usize) -> Database {
    let mut db = Database::new("bounds");
    for (name, rows) in [("a", rows_a), ("b", rows_b)] {
        let meta = TableMeta::new(
            name,
            64,
            vec![
                ColumnMeta::new("id", ColumnRole::PrimaryKey),
                ColumnMeta::new("v", ColumnRole::Value { min: 0, max: 9 }),
            ],
        );
        db.add(Table::new(
            meta,
            vec![
                Column { name: "id".into(), data: (1..=rows as i64).collect() },
                Column { name: "v".into(), data: (0..rows).map(v_of).collect() },
            ],
        ));
    }
    db
}

fn node(op: OperatorKind, children: Vec<usize>, est: f64, cols: usize) -> PlanNode {
    PlanNode { op, children, est_rows: est, est_row_bytes: 8.0 * cols as f64, out_cols: cols }
}

/// Node ids of one [`sound_plan`] instance.
struct SoundIds {
    scan_a: usize,
    filters: Vec<usize>,
    scan_b: Option<usize>,
    join: Option<usize>,
    sort: Option<usize>,
}

/// A random member of the sound-bounds plan family: scan(a) under a
/// filter chain, optionally hash-joined against scan(b) and/or sorted.
fn sound_plan(
    rows_a: usize,
    rows_b: usize,
    n_filters: usize,
    with_join: bool,
    with_sort: bool,
    cut: i64,
) -> (PhysicalPlan, SoundIds) {
    let mut nodes = vec![node(
        OperatorKind::TableScan { table: "a".into(), cols: vec![0, 1] },
        vec![],
        rows_a as f64,
        2,
    )];
    let mut ids = SoundIds { scan_a: 0, filters: Vec::new(), scan_b: None, join: None, sort: None };
    let mut top = 0usize;
    for _ in 0..n_filters {
        // The (possibly wildly wrong) filter estimate never enters the
        // bounds — only leaf cardinalities do.
        nodes.push(node(
            OperatorKind::Filter { pred: Predicate::ColCmp { col: 1, op: CmpOp::Lt, val: cut } },
            vec![top],
            (rows_a / 3) as f64,
            2,
        ));
        top = nodes.len() - 1;
        ids.filters.push(top);
    }
    let mut cols = 2usize;
    if with_join {
        nodes.push(node(
            OperatorKind::TableScan { table: "b".into(), cols: vec![0, 1] },
            vec![],
            rows_b as f64,
            2,
        ));
        let build = nodes.len() - 1;
        ids.scan_b = Some(build);
        nodes.push(node(
            OperatorKind::HashJoin { probe_key: 1, build_key: 1 },
            vec![top, build],
            rows_a as f64,
            4,
        ));
        top = nodes.len() - 1;
        ids.join = Some(top);
        cols = 4;
    }
    if with_sort {
        nodes.push(node(OperatorKind::Sort { key_cols: vec![0] }, vec![top], rows_a as f64, cols));
        top = nodes.len() - 1;
        ids.sort = Some(top);
    }
    (PhysicalPlan { nodes, root: top }, ids)
}

/// The exact operator-quiescent counter prefix of a [`sound_plan`]
/// execution, in phase order: hash build (scan b), probe stream (scan a →
/// filters → join, with the sort absorbing silently), sort drain.
fn quiescent_prefix(
    rows_a: usize,
    rows_b: usize,
    ids: &SoundIds,
    n_nodes: usize,
    cut: i64,
) -> Vec<Vec<u64>> {
    // Matches per probe value in b, and the running pass/join counts.
    let mut cnt_b = [0u64; 10];
    for j in 0..rows_b {
        cnt_b[v_of(j) as usize] += 1;
    }
    let step_a = (rows_a / 24).max(1);
    let step_b = (rows_b / 12).max(1);
    let mut states: Vec<Vec<u64>> = Vec::new();
    let mut k = vec![0u64; n_nodes];
    // Phase 1: the join's build side is consumed first (when present).
    if let Some(scan_b) = ids.scan_b {
        let mut x = 0usize;
        loop {
            k[scan_b] = x as u64;
            states.push(k.clone());
            if x == rows_b {
                break;
            }
            x = (x + step_b).min(rows_b);
        }
    }
    // Phase 2: the probe stream; filters pass the prefix's matching rows,
    // the join emits their b-matches, the sort (if any) only absorbs.
    let mut passed = 0u64;
    let mut joined = 0u64;
    let mut t = 0usize;
    loop {
        k[ids.scan_a] = t as u64;
        for &f in &ids.filters {
            k[f] = passed;
        }
        if let Some(join) = ids.join {
            k[join] = joined;
        }
        states.push(k.clone());
        if t == rows_a {
            break;
        }
        let next = (t + step_a).min(rows_a);
        for i in t..next {
            if v_of(i) < cut {
                passed += 1;
                joined += cnt_b[v_of(i) as usize];
            }
        }
        t = next;
    }
    // Phase 3: the sort drains exactly its materialized input — the
    // output of whatever sits directly below it.
    if let Some(sort) = ids.sort {
        let total = if ids.join.is_some() {
            joined
        } else if ids.filters.is_empty() {
            rows_a as u64
        } else {
            passed
        };
        let step = (total / 16).max(1);
        let mut y = 0u64;
        loop {
            k[sort] = y;
            states.push(k.clone());
            if y == total {
                break;
            }
            y = (y + step).min(total);
        }
    }
    states
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The strict contract on exact quiescent prefixes: ordering,
    /// K-consistency, lb↑ / ub↓ monotonicity, truth bracketing, and
    /// collapse at completion — plus SnapshotCtx ≡ direct bounds.
    #[test]
    fn bounds_invariants_on_quiescent_prefixes(
        rows_a in 50usize..900,
        rows_b in 20usize..300,
        n_filters in 0usize..3,
        with_join in any::<bool>(),
        with_sort in any::<bool>(),
        cut in 1i64..10,
    ) {
        let (plan, ids) = sound_plan(rows_a, rows_b, n_filters, with_join, with_sort, cut);
        let n = plan.len();
        let states = quiescent_prefix(rows_a, rows_b, &ids, n, cut);
        prop_assert!(states.len() >= 2);
        let truth = states.last().unwrap().clone();

        let mut prev_lb = vec![f64::NEG_INFINITY; n];
        let mut prev_ub = vec![f64::INFINITY; n];
        for (j, k) in states.iter().enumerate() {
            let (lb, ub) = bounds(&plan, k);
            for i in 0..n {
                prop_assert!(lb[i] <= ub[i] + 1e-9, "lb > ub at node {} state {}", i, j);
                prop_assert!(lb[i] >= k[i] as f64 - 1e-9, "lb below K at node {} state {}", i, j);
                prop_assert!(
                    lb[i] <= truth[i] as f64 + 1e-9 && truth[i] as f64 <= ub[i] + 1e-9,
                    "bounds [{}, {}] fail to bracket truth {} at node {} state {}",
                    lb[i], ub[i], truth[i], i, j
                );
                prop_assert!(
                    lb[i] >= prev_lb[i] - 1e-9,
                    "lb regressed {} -> {} at node {} state {}", prev_lb[i], lb[i], i, j
                );
                prop_assert!(
                    ub[i] <= prev_ub[i] + 1e-9,
                    "ub grew {} -> {} at node {} state {}", prev_ub[i], ub[i], i, j
                );
            }
            prev_lb = lb;
            prev_ub = ub;
        }

        // Completion: both bounds collapse onto the truth.
        let (lb, ub) = bounds(&plan, &truth);
        for i in 0..n {
            prop_assert!(
                (lb[i] - truth[i] as f64).abs() < 1e-9 && (ub[i] - truth[i] as f64).abs() < 1e-9,
                "bounds [{}, {}] did not collapse to {} at node {} (rows_a={} rows_b={} nf={} join={} sort={} cut={})", lb[i], ub[i], truth[i], i, rows_a, rows_b, n_filters, with_join, with_sort, cut
            );
        }
    }

}

// Engine-driven properties execute real (small) queries per case, so the
// case count is kept low — breadth comes from the randomized plan shapes
// and observation cadences.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Real execution of the same plan family: live snapshots keep the
    /// weak invariants, and the shared-context batch path is bit-identical
    /// to the self-computing one on every curve of every pipeline.
    #[test]
    fn shared_ctx_is_bit_identical_on_real_runs(
        rows_a in 200usize..700,
        rows_b in 40usize..200,
        n_filters in 0usize..3,
        with_join in any::<bool>(),
        with_sort in any::<bool>(),
        cut in 1i64..10,
        interval in 15.0f64..120.0,
        seed in any::<u64>(),
    ) {
        let db = two_table_db(rows_a, rows_b);
        let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
        let catalog = Catalog::new(&db, &design);
        let (plan, _) = sound_plan(rows_a, rows_b, n_filters, with_join, with_sort, cut);
        let run = run_plan(
            &catalog,
            &plan,
            &ExecConfig { seed, initial_snapshot_interval: interval, ..ExecConfig::default() },
        );
        prop_assert!(!run.trace.snapshots.is_empty());

        // The hoisted context is exactly the direct computation, snapshot
        // by snapshot.
        let ctx = TraceCtx::new(&run);
        for (j, snap) in run.trace.snapshots.iter().enumerate() {
            let (lb, ub) = bounds(&plan, &snap.k);
            prop_assert_eq!(&ctx.snapshot(j).lb, &lb, "ctx/lb diverged at snapshot {}", j);
            prop_assert_eq!(&ctx.snapshot(j).ub, &ub, "ctx/ub diverged at snapshot {}", j);
            let fresh = SnapshotCtx::new(&plan, snap);
            prop_assert_eq!(&fresh.lb, &lb);
            prop_assert_eq!(&fresh.ub, &ub);
        }

        let mut kinds = ONLINE_KINDS.to_vec();
        kinds.push(EstimatorKind::GetNextOracle);
        kinds.push(EstimatorKind::BytesOracle);
        for pid in 0..run.pipelines.len() {
            match (PipelineObs::new(&run, pid), PipelineObs::with_ctx(&run, pid, &ctx)) {
                (None, None) => {}
                (Some(solo), Some(shared)) => {
                    for &kind in &kinds {
                        let a = solo.curve(kind);
                        let b = shared.curve(kind);
                        prop_assert_eq!(a.len(), b.len());
                        for (x, y) in a.iter().zip(&b) {
                            prop_assert!(
                                x.to_bits() == y.to_bits(),
                                "{} differs between solo and shared ctx on p{}",
                                kind, pid
                            );
                        }
                    }
                }
                (a, b) => prop_assert!(
                    false,
                    "observation presence differs: solo {:?} vs shared {:?} on p{}",
                    a.map(|o| o.len()), b.map(|o| o.len()), pid
                ),
            }
        }
    }

    /// The weaker guarantees that survive on arbitrary workload plans and
    /// live (possibly mid-operator) snapshots: bounds stay ordered, never
    /// contradict the observed counters, and the lower bound never
    /// regresses.
    #[test]
    fn weak_invariants_on_workload_plans(
        workload_seed in 0u64..1000,
        tpcds in any::<bool>(),
        query_pick in 0usize..3,
    ) {
        let kind = if tpcds { WorkloadKind::TpcdsLike } else { WorkloadKind::TpchLike };
        let spec = WorkloadSpec::new(kind, workload_seed).with_queries(3).with_scale(0.3);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        let plan = builder.build(&w.queries[query_pick]).expect("plan");
        let run = run_plan(
            &catalog,
            &plan,
            &ExecConfig { seed: workload_seed, ..ExecConfig::default() },
        );
        let n = plan.len();
        let mut prev_lb = vec![f64::NEG_INFINITY; n];
        for (j, snap) in run.trace.snapshots.iter().enumerate() {
            let (lb, ub) = bounds(&plan, &snap.k);
            for i in 0..n {
                prop_assert!(lb[i] <= ub[i] + 1e-9, "lb > ub at node {} snap {}", i, j);
                prop_assert!(lb[i].is_finite() && ub[i].is_finite());
                prop_assert!(
                    lb[i] >= snap.k[i] as f64 - 1e-9,
                    "lb below observed K at node {} snap {}", i, j
                );
                prop_assert!(
                    ub[i] >= snap.k[i] as f64 - 1e-9,
                    "ub below observed K at node {} snap {}", i, j
                );
                prop_assert!(lb[i] >= prev_lb[i] - 1e-9, "lb regressed at node {} snap {}", i, j);
            }
            prev_lb = lb;
        }
    }
}
