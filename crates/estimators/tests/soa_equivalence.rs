//! The struct-of-arrays hot paths ([`prosel_estimators::soa`]) are
//! refactorings, not approximations: on real workload executions every
//! estimator curve and every refinement bound must match the pinned scalar
//! reference walks **bitwise**, across all 11 estimator kinds.

use prosel_engine::{run_plan, Catalog, ExecConfig};
use prosel_estimators::refine::bounds;
use prosel_estimators::soa::BoundsKernel;
use prosel_estimators::{EstimatorKind, IncrementalObs, SnapshotCtx, ONLINE_KINDS};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;
use std::sync::Arc;

/// All 11 kinds: the 9 online-maintained curves plus the two post-finalize
/// oracles.
fn all_kinds() -> Vec<EstimatorKind> {
    let mut kinds = ONLINE_KINDS.to_vec();
    kinds.push(EstimatorKind::GetNextOracle);
    kinds.push(EstimatorKind::BytesOracle);
    assert_eq!(kinds.len(), 11);
    kinds
}

#[test]
fn soa_and_scalar_paths_are_bit_identical_on_real_workloads() {
    let mut pipelines_checked = 0usize;
    for (kind, queries) in [(WorkloadKind::TpchLike, 14), (WorkloadKind::TpcdsLike, 8)] {
        let spec = WorkloadSpec::new(kind, 4321).with_queries(queries).with_scale(0.6);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        for (qi, q) in w.queries.iter().enumerate() {
            let plan = builder.build(q).expect("plan");
            let run = run_plan(
                &catalog,
                &plan,
                &ExecConfig { seed: 0x50A ^ qi as u64, ..ExecConfig::default() },
            );
            let plan = Arc::new(run.plan.clone());
            let kernel = BoundsKernel::new(&plan);
            let mut soa_ctx = SnapshotCtx::empty();
            for pid in 0..run.pipelines.len() {
                let mut soa = IncrementalObs::new(Arc::clone(&plan), &run.pipelines[pid]);
                let mut scalar = IncrementalObs::new(Arc::clone(&plan), &run.pipelines[pid]);
                let (start, end) = run.trace.pipeline_windows[pid];
                for (j, snap) in run.trace.snapshots.iter().enumerate() {
                    let window = (start, end.min(snap.time));
                    // SoA path: compiled kernel + columnar per-pipeline walk.
                    soa_ctx.recompute(&kernel, &snap.k);
                    soa.offer_view(j as u64, snap.as_view(), window, &soa_ctx);
                    // Reference path: scalar bound pass + scalar walk.
                    let ctx = SnapshotCtx::new(&plan, snap);
                    scalar.offer_shared_scalar(j as u64, snap, window, &ctx);
                }
                soa.finalize((start, end));
                scalar.finalize((start, end));
                assert_eq!(soa.len(), scalar.len());
                if soa.is_empty() {
                    continue;
                }
                pipelines_checked += 1;
                for k in all_kinds() {
                    let (a, b) = (soa.curve(k), scalar.curve(k));
                    assert_eq!(a.len(), b.len(), "{k} curve length, pid {pid}");
                    for (j, (x, y)) in a.iter().zip(&b).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{k} diverges at obs {j} of pipeline {pid} (soa {x}, scalar {y})"
                        );
                    }
                }
            }
        }
    }
    assert!(pipelines_checked > 30, "only {pipelines_checked} pipelines exercised");
}

#[test]
fn bounds_kernel_matches_scalar_bounds_bitwise() {
    let spec = WorkloadSpec::new(WorkloadKind::Real1, 77).with_queries(10).with_scale(0.6);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let mut snapshots_checked = 0usize;
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let run =
            run_plan(&catalog, &plan, &ExecConfig { seed: qi as u64, ..ExecConfig::default() });
        let kernel = BoundsKernel::new(&run.plan);
        assert_eq!(kernel.width(), run.plan.len());
        let (mut lb, mut ub) = (Vec::new(), Vec::new());
        for snap in &run.trace.snapshots {
            kernel.eval_into(&snap.k, &mut lb, &mut ub);
            let (slb, sub) = bounds(&run.plan, &snap.k);
            for i in 0..run.plan.len() {
                assert_eq!(lb[i].to_bits(), slb[i].to_bits(), "lb[{i}]");
                assert_eq!(ub[i].to_bits(), sub[i].to_bits(), "ub[{i}]");
            }
            snapshots_checked += 1;
        }
    }
    assert!(snapshots_checked > 50, "only {snapshots_checked} snapshots exercised");
}
