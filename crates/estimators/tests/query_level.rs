//! Query-level progress combination (eq. (5)) and per-query evaluation.

use prosel_engine::{run_plan, Catalog, ExecConfig};
use prosel_estimators::{l1_error, query_l1, query_progress_curve, EstimatorKind};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;

fn some_runs(n: usize) -> Vec<prosel_engine::QueryRun> {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 404).with_queries(n).with_scale(0.8);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    w.queries
        .iter()
        .enumerate()
        .map(|(qi, q)| {
            let plan = builder.build(q).expect("plan");
            run_plan(&catalog, &plan, &ExecConfig { seed: qi as u64, ..ExecConfig::default() })
        })
        .collect()
}

#[test]
fn query_curves_are_monotone_enough_and_complete() {
    for run in some_runs(12) {
        let curve = query_progress_curve(&run, |_| EstimatorKind::Dne);
        assert_eq!(curve.len(), run.trace.snapshots.len());
        for &v in &curve {
            assert!((0.0..=1.0).contains(&v));
        }
        // DNE-based query progress is non-decreasing (driver counters only
        // grow and finished pipelines pin to their weight).
        for w in curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "regression in DNE query curve");
        }
        // By the end everything is complete.
        assert!(curve.last().copied().unwrap_or(0.0) > 0.95);
    }
}

#[test]
fn oracle_query_error_beats_estimates() {
    let runs = some_runs(12);
    let mut oracle_sum = 0.0;
    let mut tgn_sum = 0.0;
    for run in &runs {
        oracle_sum += query_l1(run, EstimatorKind::GetNextOracle);
        tgn_sum += query_l1(run, EstimatorKind::Tgn);
    }
    assert!(
        oracle_sum < tgn_sum,
        "oracle {:.4} should beat TGN {:.4} at query level",
        oracle_sum / runs.len() as f64,
        tgn_sum / runs.len() as f64
    );
}

#[test]
fn mixed_per_pipeline_choices_are_valid() {
    // Alternate estimators per pipeline: still a valid probability curve.
    for run in some_runs(6) {
        let curve = query_progress_curve(&run, |pid| {
            if pid % 2 == 0 {
                EstimatorKind::Tgn
            } else {
                EstimatorKind::Dne
            }
        });
        let truth: Vec<f64> = (0..curve.len()).map(|j| run.trace.true_progress(j)).collect();
        let err = l1_error(&curve, &truth);
        assert!((0.0..=0.6).contains(&err), "mixed-choice query error {err}");
    }
}
