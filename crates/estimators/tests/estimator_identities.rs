//! Identities the paper relies on (§6.6): the specialized estimators
//! coincide with DNE exactly when their target operators are absent —
//! which is why DNE almost never *significantly* outperforms in Table 8.

use prosel_engine::{run_plan, Catalog, ExecConfig};
use prosel_estimators::{EstimatorKind, PipelineObs, TraceCtx};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;

#[test]
fn specialized_estimators_collapse_to_dne_without_their_operators() {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 31415).with_queries(40);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let mut plain = 0usize;
    let mut with_batch = 0usize;
    let mut with_seek = 0usize;
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let run =
            run_plan(&catalog, &plan, &ExecConfig { seed: qi as u64, ..ExecConfig::default() });
        let ctx = TraceCtx::new(&run);
        for (pid, p) in run.pipelines.iter().enumerate() {
            let Some(obs) = PipelineObs::with_ctx(&run, pid, &ctx) else { continue };
            let dne = obs.curve(EstimatorKind::Dne);
            let batch = obs.curve(EstimatorKind::BatchDne);
            let seek = obs.curve(EstimatorKind::DneSeek);
            if p.batch_sort_nodes.is_empty() {
                assert_eq!(dne, batch, "BATCHDNE must equal DNE without batch sorts");
            } else {
                with_batch += 1;
            }
            // DNESEEK only differs when seeks exist *outside* the driver
            // set (driver-set seeks are already part of DNE).
            let extra_seeks = p.index_seek_nodes.iter().any(|n| !p.driver_nodes.contains(n));
            if !extra_seeks {
                assert_eq!(dne, seek, "DNESEEK must equal DNE without non-driver seeks");
                plain += 1;
            } else {
                with_seek += 1;
            }
        }
    }
    // The workload must exercise both sides of the identity.
    assert!(plain > 10, "need plain pipelines, got {plain}");
    assert!(with_batch + with_seek > 3, "need specialized pipelines");
}

#[test]
fn estimators_at_completion_approach_one_for_driver_based_kinds() {
    let spec = WorkloadSpec::new(WorkloadKind::Real1, 2718).with_queries(25);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let run =
            run_plan(&catalog, &plan, &ExecConfig { seed: qi as u64, ..ExecConfig::default() });
        let ctx = TraceCtx::new(&run);
        for (pid, p) in run.pipelines.iter().enumerate() {
            let Some(obs) = PipelineObs::with_ctx(&run, pid, &ctx) else { continue };
            // Driver totals are exact for scans and materialized inputs;
            // when ALL drivers are of that kind, DNE must end at 1.0.
            let all_exact = p.driver_nodes.iter().all(|&d| {
                matches!(
                    run.plan.node(d).op,
                    prosel_engine::OperatorKind::TableScan { .. }
                        | prosel_engine::OperatorKind::IndexScan { .. }
                        | prosel_engine::OperatorKind::Sort { .. }
                        | prosel_engine::OperatorKind::HashAggregate { .. }
                )
            });
            // Early-terminated plans (TOP) may stop before consuming inputs.
            let has_top = run
                .plan
                .nodes
                .iter()
                .any(|n| matches!(n.op, prosel_engine::OperatorKind::Top { .. }));
            if all_exact && !has_top {
                let dne = obs.curve(EstimatorKind::Dne);
                let last = *dne.last().unwrap();
                assert!(
                    last > 0.999,
                    "query {qi} pipeline {pid}: DNE should finish at 1.0, got {last}"
                );
            }
        }
    }
}
