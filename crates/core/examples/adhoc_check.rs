use prosel_core::pipeline_runs::collect_workload_records;
use prosel_core::selection::{EstimatorSelector, SelectorConfig};
use prosel_core::training::{FeatureMode, TrainingSet};
use prosel_datagen::TuningLevel;
use prosel_estimators::EstimatorKind;
use prosel_planner::workload::{WorkloadKind, WorkloadSpec};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut all = Vec::new();
    // The paper's six workloads: TPC-DS, TPC-H under three physical
    // designs, Real-1, Real-2.
    let specs = [
        WorkloadSpec::new(WorkloadKind::TpcdsLike, 12).with_queries(150),
        WorkloadSpec::new(WorkloadKind::TpchLike, 11)
            .with_queries(250)
            .with_tuning(TuningLevel::Untuned),
        WorkloadSpec::new(WorkloadKind::TpchLike, 11)
            .with_queries(250)
            .with_tuning(TuningLevel::PartiallyTuned),
        WorkloadSpec::new(WorkloadKind::TpchLike, 11)
            .with_queries(250)
            .with_tuning(TuningLevel::FullyTuned),
        WorkloadSpec::new(WorkloadKind::Real1, 13).with_queries(180),
        WorkloadSpec::new(WorkloadKind::Real2, 14).with_queries(180),
    ];
    for s in &specs {
        let recs = collect_workload_records(s).expect("collect");
        println!("{}: {} records ({:.1}s)", s.label(), recs.len(), t0.elapsed().as_secs_f64());
        all.extend(recs);
    }
    let full = TrainingSet::from_records(&all);
    println!("total records: {}", full.len());
    for k in EstimatorKind::CANDIDATES {
        println!(
            "  always-{k}: L1 {:.4}  (opt {:.2})",
            full.mean_l1(k),
            full.pct_optimal(k, &EstimatorKind::ORIGINAL, 1e-4)
        );
    }
    println!(
        "  oracle-3: {:.4}  oracle-6: {:.4}",
        full.oracle_l1(&EstimatorKind::ORIGINAL),
        full.oracle_l1(&EstimatorKind::EXTENDED)
    );

    let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
    for mode in [FeatureMode::Static, FeatureMode::StaticDynamic] {
        let mut sum_l1 = 0.0;
        let mut sum_opt = 0.0;
        let mut n = 0.0;
        let mut sum_2x = 0.0;
        let mut sum_5x = 0.0;
        let mut sum_dne = 0.0;
        let mut sum_tgn = 0.0;
        let mut sum_luo = 0.0;
        for label in &labels {
            let (test, train) = full.split_by(|r| &r.workload == label);
            let cfg = SelectorConfig {
                candidates: EstimatorKind::EXTENDED.to_vec(),
                mode,
                boost: prosel_mart::BoostParams::default(),
            };
            let t1 = Instant::now();
            let sel = EstimatorSelector::train(&train, &cfg);
            let rep = sel.evaluate(&test);
            println!("  [{}] test={label}: n={} l1={:.4} opt={:.2} >2x={:.3} >5x={:.3} oracle={:.4} ({:.0}s)",
                mode.name(), rep.n, rep.chosen_l1, rep.pct_optimal, rep.ratio_over_2x, rep.ratio_over_5x, rep.oracle_l1, t1.elapsed().as_secs_f64());
            sum_l1 += rep.chosen_l1 * rep.n as f64;
            sum_opt += rep.pct_optimal * rep.n as f64;
            n += rep.n as f64;
            sum_2x += rep.ratio_over_2x * rep.n as f64;
            sum_5x += rep.ratio_over_5x * rep.n as f64;
            sum_dne += test.mean_l1(EstimatorKind::Dne) * test.len() as f64;
            sum_tgn += test.mean_l1(EstimatorKind::Tgn) * test.len() as f64;
            sum_luo += test.mean_l1(EstimatorKind::Luo) * test.len() as f64;
        }
        println!("[{}] OVERALL: sel_l1={:.4} opt={:.3} >2x={:.3} >5x={:.3} | DNE={:.4} TGN={:.4} LUO={:.4}",
            mode.name(), sum_l1/n, sum_opt/n, sum_2x/n, sum_5x/n, sum_dne/n, sum_tgn/n, sum_luo/n);
    }
    println!("total {:.1}s", t0.elapsed().as_secs_f64());
}
