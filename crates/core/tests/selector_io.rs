//! Property tests for selector persistence: the text codec the online
//! trainer relies on must round-trip exactly and reject every torn or
//! polluted blob (truncations, injected lines, concatenations).

use proptest::prelude::*;
use prosel_core::features::FeatureSchema;
use prosel_core::pipeline_runs::PipelineRecord;
use prosel_core::selection::{EstimatorSelector, SelectorConfig};
use prosel_core::training::TrainingSet;
use prosel_estimators::EstimatorKind;
use prosel_mart::BoostParams;

fn synthetic_records(n: usize, seed: u64) -> Vec<PipelineRecord> {
    let dims = FeatureSchema::get().len();
    (0..n)
        .map(|i| {
            let x = ((i as u64).wrapping_mul(seed | 1) % 7) as f32;
            let mut features = vec![0.0f32; dims];
            features[0] = x;
            features[1] = (i % 5) as f32;
            let mut errors = vec![0.6f32; 8];
            errors[0] = if x < 3.5 { 0.05 } else { 0.4 };
            errors[1] = if x < 3.5 { 0.4 } else { 0.05 };
            PipelineRecord {
                workload: "syn".into(),
                query_idx: i,
                pipeline_id: 0,
                features,
                errors_l1: errors.clone(),
                errors_l2: errors,
                total_getnext: 10,
                weight: 1.0,
                n_obs: 10,
                fingerprint: "syn".into(),
                oracle_l1: [0.0; 2],
                oracle_l2: [0.0; 2],
            }
        })
        .collect()
}

fn tiny_selector(seed: u64) -> EstimatorSelector {
    let records = synthetic_records(40, seed);
    let cfg = SelectorConfig {
        candidates: vec![EstimatorKind::Dne, EstimatorKind::Tgn, EstimatorKind::Luo],
        boost: BoostParams { iterations: 4, seed, ..BoostParams::fast() },
        ..SelectorConfig::default()
    };
    EstimatorSelector::train(&TrainingSet::from_records(&records), &cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Serialize → parse → serialize is the identity on the text, and the
    /// parsed selector scores identically.
    #[test]
    fn round_trip_is_exact(seed in 1u64..500) {
        let sel = tiny_selector(seed);
        let text = sel.to_text();
        let back = EstimatorSelector::from_text(&text).expect("own output must parse");
        prop_assert_eq!(back.to_text(), text.clone());
        for r in synthetic_records(12, seed ^ 0xABCD) {
            prop_assert_eq!(sel.select(&r.features), back.select(&r.features));
        }
    }

    /// Every strict line-prefix of a valid blob is rejected: a torn write
    /// can never load as a (different) model.
    #[test]
    fn truncations_are_rejected(seed in 1u64..500, frac in 0.0f64..1.0) {
        let text = tiny_selector(seed).to_text();
        let lines: Vec<&str> = text.lines().collect();
        let keep = ((lines.len() - 1) as f64 * frac) as usize; // < lines.len()
        let truncated = lines[..keep].join("\n");
        prop_assert!(
            EstimatorSelector::from_text(&truncated).is_err(),
            "prefix of {} of {} lines must not parse", keep, lines.len()
        );
    }

    /// A foreign line injected anywhere in the blob is rejected.
    #[test]
    fn injected_garbage_is_rejected(seed in 1u64..500, frac in 0.0f64..1.0) {
        let text = tiny_selector(seed).to_text();
        let mut lines: Vec<&str> = text.lines().collect();
        let pos = ((lines.len()) as f64 * frac) as usize;
        lines.insert(pos.min(lines.len()), "garbage 0.5 xyz");
        let polluted = lines.join("\n");
        prop_assert!(
            EstimatorSelector::from_text(&polluted).is_err(),
            "garbage at line {} must not parse", pos
        );
    }
}
