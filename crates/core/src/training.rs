//! Training-set assembly and splitting utilities.

use crate::features::FeatureSchema;
use crate::pipeline_runs::PipelineRecord;
use prosel_estimators::EstimatorKind;
use prosel_mart::Dataset;

/// Which feature prefix the models may see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureMode {
    /// Plan-time features only.
    Static,
    /// Plan-time plus runtime features (the paper's full setting).
    StaticDynamic,
}

impl FeatureMode {
    /// Number of leading features visible in this mode.
    pub fn dims(&self) -> usize {
        match self {
            FeatureMode::Static => FeatureSchema::get().static_len(),
            FeatureMode::StaticDynamic => FeatureSchema::get().len(),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            FeatureMode::Static => "static",
            FeatureMode::StaticDynamic => "dynamic",
        }
    }
}

/// A set of labelled pipeline examples.
#[derive(Debug, Clone, Default)]
pub struct TrainingSet {
    pub records: Vec<PipelineRecord>,
}

impl TrainingSet {
    pub fn from_records(records: &[PipelineRecord]) -> Self {
        TrainingSet { records: records.to_vec() }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The regression dataset for one estimator's error model: features
    /// (restricted by `mode`) → observed L1 error of `kind`.
    pub fn dataset_for(&self, kind: EstimatorKind, mode: FeatureMode) -> Dataset {
        let dims = mode.dims();
        let idx = kind.candidate_index().expect("selectable estimator");
        let mut d = Dataset::new(dims);
        for r in &self.records {
            d.push(&r.features[..dims], r.errors_l1[idx]);
        }
        d
    }

    /// Split by predicate into (matching, rest).
    pub fn split_by(&self, pred: impl Fn(&PipelineRecord) -> bool) -> (TrainingSet, TrainingSet) {
        let (a, b): (Vec<_>, Vec<_>) = self.records.iter().cloned().partition(|r| pred(r));
        (TrainingSet { records: a }, TrainingSet { records: b })
    }

    /// Mean L1 error of always using one estimator.
    pub fn mean_l1(&self, kind: EstimatorKind) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let idx = kind.candidate_index().expect("candidate");
        self.records.iter().map(|r| r.errors_l1[idx] as f64).sum::<f64>()
            / self.records.len() as f64
    }

    /// Mean L2 error of always using one estimator.
    pub fn mean_l2(&self, kind: EstimatorKind) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let idx = kind.candidate_index().expect("candidate");
        self.records.iter().map(|r| r.errors_l2[idx] as f64).sum::<f64>()
            / self.records.len() as f64
    }

    /// Mean of the per-record minimum error over `kinds` (the "oracle
    /// selection" lower bound of paper §6.2).
    pub fn oracle_l1(&self, kinds: &[EstimatorKind]) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let idxs: Vec<usize> =
            kinds.iter().map(|k| k.candidate_index().expect("candidate")).collect();
        self.records
            .iter()
            .map(|r| idxs.iter().map(|&i| r.errors_l1[i] as f64).fold(f64::INFINITY, f64::min))
            .sum::<f64>()
            / self.records.len() as f64
    }

    /// Fraction of records for which `kind` is optimal among `kinds`
    /// (within `tol` of the minimum).
    pub fn pct_optimal(&self, kind: EstimatorKind, kinds: &[EstimatorKind], tol: f32) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let idx = kind.candidate_index().expect("candidate");
        let idxs: Vec<usize> =
            kinds.iter().map(|k| k.candidate_index().expect("candidate")).collect();
        let hits = self
            .records
            .iter()
            .filter(|r| {
                let min = idxs.iter().map(|&i| r.errors_l1[i]).fold(f32::INFINITY, f32::min);
                r.errors_l1[idx] <= min + tol
            })
            .count();
        hits as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, errors: &[f32]) -> PipelineRecord {
        let dims = FeatureSchema::get().len();
        PipelineRecord {
            workload: workload.into(),
            query_idx: 0,
            pipeline_id: 0,
            features: vec![0.5; dims],
            errors_l1: errors.to_vec(),
            errors_l2: errors.to_vec(),
            total_getnext: 100,
            weight: 1.0,
            n_obs: 10,
            fingerprint: "scan|t".into(),
            oracle_l1: [0.0; 2],
            oracle_l2: [0.0; 2],
        }
    }

    #[test]
    fn dataset_shapes_follow_mode() {
        let r = record("a", &[0.1; 8]);
        let ts = TrainingSet::from_records(&[r]);
        let d_static = ts.dataset_for(EstimatorKind::Dne, FeatureMode::Static);
        let d_full = ts.dataset_for(EstimatorKind::Dne, FeatureMode::StaticDynamic);
        assert_eq!(d_static.n_features(), FeatureSchema::get().static_len());
        assert_eq!(d_full.n_features(), FeatureSchema::get().len());
        assert_eq!(d_static.len(), 1);
    }

    #[test]
    fn metrics_and_splits() {
        let mut e1 = vec![0.5; 8];
        e1[0] = 0.1; // DNE best
        let mut e2 = vec![0.5; 8];
        e2[1] = 0.2; // TGN best
        let ts = TrainingSet::from_records(&[record("a", &e1), record("b", &e2)]);
        assert!((ts.mean_l1(EstimatorKind::Dne) - 0.3).abs() < 1e-6);
        assert!((ts.oracle_l1(&EstimatorKind::CANDIDATES) - 0.15).abs() < 1e-6);
        assert!(
            (ts.pct_optimal(EstimatorKind::Dne, &EstimatorKind::CANDIDATES, 1e-6) - 0.5).abs()
                < 1e-9
        );
        let (a, b) = ts.split_by(|r| r.workload == "a");
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
