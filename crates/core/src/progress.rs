//! End-to-end progress monitoring: the full architecture of the paper's
//! Figure 3 over a completed (or replayed) query run.
//!
//! For every pipeline the monitor selects an estimator — from static
//! features while fewer than 20% of the pipeline's driver input has been
//! consumed, then revised once the dynamic features are available — and
//! combines the per-pipeline estimates into query-level progress as the
//! E_i-weighted sum of eq. (5).

use crate::features;
use crate::selection::EstimatorSelector;
use crate::training::FeatureMode;
use prosel_engine::QueryRun;
use prosel_estimators::{EstimatorKind, PipelineObs, TraceCtx};

/// One point of a monitored query's progress history.
#[derive(Debug, Clone, Copy)]
pub struct ProgressPoint {
    /// Virtual time of the observation.
    pub time: f64,
    /// Estimated query progress in [0, 1].
    pub estimate: f64,
    /// True progress (elapsed-time fraction) — for evaluation.
    pub truth: f64,
}

/// Per-pipeline choice trace.
#[derive(Debug, Clone)]
pub struct PipelineChoice {
    pub pipeline_id: usize,
    /// Estimator chosen from static features at pipeline start.
    pub initial: EstimatorKind,
    /// Estimator after the 20%-marker revision (if the pipeline lived
    /// long enough to produce dynamic features).
    pub revised: EstimatorKind,
}

/// Query progress monitor built on a trained [`EstimatorSelector`].
pub struct ProgressMonitor<'a> {
    selector: &'a EstimatorSelector,
}

impl<'a> ProgressMonitor<'a> {
    pub fn new(selector: &'a EstimatorSelector) -> Self {
        ProgressMonitor { selector }
    }

    /// Replay a run, producing the query-level progress curve the monitor
    /// would have reported, plus the per-pipeline estimator choices.
    pub fn monitor(&self, run: &QueryRun) -> (Vec<ProgressPoint>, Vec<PipelineChoice>) {
        let n_snaps = run.trace.snapshots.len();
        let mut acc = vec![0.0f64; n_snaps];
        let mut total_weight = 0.0f64;
        let mut choices = Vec::new();
        // One refinement-bound pass per snapshot, shared by every pipeline.
        let ctx = TraceCtx::new(run);

        for pid in 0..run.pipelines.len() {
            let weight = run.pipeline_weight(pid);
            if weight <= 0.0 {
                continue;
            }
            total_weight += weight;
            let Some(obs) = PipelineObs::with_ctx(run, pid, &ctx) else {
                // Too short to observe: counts as done once its window passed.
                let (_, end) = run.trace.pipeline_windows[pid];
                for (j, s) in run.trace.snapshots.iter().enumerate() {
                    if s.time >= end {
                        acc[j] += weight;
                    }
                }
                continue;
            };
            let feats = features::extract(run, &obs);

            // Static choice applies until the 20% driver marker; then the
            // dynamic features are fully determined and the choice is
            // revised (paper §4.4: dynamic features use x ≤ 20).
            let static_choice = self.selector.select_static(&feats);
            let revised_choice = match self.selector.config().mode {
                FeatureMode::Static => static_choice,
                FeatureMode::StaticDynamic => self.selector.select(&feats),
            };
            choices.push(PipelineChoice {
                pipeline_id: pid,
                initial: static_choice,
                revised: revised_choice,
            });

            let marker = obs
                .driver_fraction()
                .iter()
                .position(|&a| a >= 0.20)
                .unwrap_or(obs.len().saturating_sub(1));
            let c_init = obs.curve(static_choice);
            let c_rev = obs.curve(revised_choice);
            let (start, _) = obs.window;
            let mut ci = 0usize;
            for (j, s) in run.trace.snapshots.iter().enumerate() {
                if s.time < start {
                    continue;
                }
                while ci + 1 < obs.obs.len() && obs.obs[ci + 1] <= j {
                    ci += 1;
                }
                if j > *obs.obs.last().unwrap() {
                    acc[j] += weight; // pipeline finished
                } else {
                    let v = if ci < marker { c_init[ci] } else { c_rev[ci] };
                    acc[j] += weight * v;
                }
            }
        }

        let points = (0..n_snaps)
            .map(|j| ProgressPoint {
                time: run.trace.snapshots[j].time,
                estimate: if total_weight > 0.0 {
                    (acc[j] / total_weight).clamp(0.0, 1.0)
                } else {
                    0.0
                },
                truth: run.trace.true_progress(j),
            })
            .collect();
        (points, choices)
    }

    /// Mean absolute error of the monitored curve against true progress.
    pub fn l1_of_points(points: &[ProgressPoint]) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        points.iter().map(|p| (p.estimate - p.truth).abs()).sum::<f64>() / points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline_runs::{collect_from_workload, CollectConfig};
    use crate::selection::SelectorConfig;
    use crate::training::TrainingSet;
    use prosel_engine::{run_plan, Catalog, ExecConfig};
    use prosel_mart::BoostParams;
    use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
    use prosel_planner::PlanBuilder;

    #[test]
    fn monitor_produces_sane_curves() {
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 21).with_queries(25).with_scale(0.5);
        let w = materialize(&spec);
        let records = collect_from_workload(&w, &CollectConfig::default()).unwrap();
        let train = TrainingSet::from_records(&records);
        let cfg = SelectorConfig::default().with_boost(BoostParams::fast());
        let selector = crate::selection::EstimatorSelector::train(&train, &cfg);
        let monitor = ProgressMonitor::new(&selector);

        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        let plan = builder.build(&w.queries[0]).unwrap();
        let run = run_plan(&catalog, &plan, &ExecConfig::default());
        let (points, choices) = monitor.monitor(&run);
        assert!(!points.is_empty());
        assert!(!choices.is_empty());
        for p in &points {
            assert!((0.0..=1.0).contains(&p.estimate));
            assert!((0.0..=1.0).contains(&p.truth));
        }
        // The curve should end complete and be reasonably accurate on a
        // query from the training distribution.
        assert!(points.last().unwrap().estimate > 0.9);
        let l1 = ProgressMonitor::l1_of_points(&points);
        assert!(l1 < 0.35, "monitored l1 {l1}");
    }
}
