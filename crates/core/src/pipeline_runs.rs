//! Workload execution → per-pipeline training/evaluation records.
//!
//! A [`PipelineRecord`] is the unit the paper trains and evaluates on:
//! one pipeline of one executed query, with its feature vector and the
//! observed L1/L2 error of every candidate estimator.

use crate::features;
use prosel_engine::plan::{OperatorKind, PhysicalPlan};
use prosel_engine::{run_plan, Catalog, ExecConfig, Pipeline, QueryRun};
use prosel_estimators::{
    l1_error, l2_error, EstimatorKind, IncrementalObs, ObsView, PipelineObs, TraceCtx,
};
use prosel_planner::workload::{materialize, Workload, WorkloadSpec};
use prosel_planner::PlanBuilder;

/// Structural fingerprint of one pipeline of a run.
pub fn pipeline_fingerprint(run: &QueryRun, pid: usize) -> String {
    fingerprint_parts(&run.plan, &run.pipelines[pid])
}

/// [`pipeline_fingerprint`] from the plan and pipeline alone — the form
/// the online harvest path uses (no completed [`QueryRun`] in hand).
pub fn fingerprint_parts(plan: &PhysicalPlan, pipeline: &Pipeline) -> String {
    let mut ops = String::new();
    let mut tables: Vec<&str> = Vec::new();
    for &n in &pipeline.nodes {
        let op = &plan.node(n).op;
        if !ops.is_empty() {
            ops.push('-');
        }
        ops.push_str(op.name());
        match op {
            OperatorKind::TableScan { table, .. }
            | OperatorKind::IndexScan { table, .. }
            | OperatorKind::IndexSeek { table, .. } => tables.push(table),
            _ => {}
        }
    }
    tables.sort_unstable();
    format!("{ops}|{}", tables.join(","))
}

/// One labelled example.
#[derive(Debug, Clone)]
pub struct PipelineRecord {
    /// Label of the workload that produced this record.
    pub workload: String,
    pub query_idx: usize,
    pub pipeline_id: usize,
    /// Static ++ dynamic features ([`features::FeatureSchema`] layout).
    pub features: Vec<f32>,
    /// L1 error per candidate ([`EstimatorKind::CANDIDATES`] order).
    pub errors_l1: Vec<f32>,
    /// L2 error per candidate.
    pub errors_l2: Vec<f32>,
    /// True total GetNext calls in the pipeline (used by the paper's
    /// Table 2 selectivity bucketing).
    pub total_getnext: u64,
    /// Pipeline weight within its query (eq. (5)).
    pub weight: f64,
    /// Number of observations the errors average over.
    pub n_obs: usize,
    /// Structural fingerprint of the pipeline (operator sequence plus the
    /// tables it reads) — used to group re-occurring pipeline shapes
    /// (paper Table 2's "operator pipelines that occur at least 6 times").
    pub fingerprint: String,
    /// L1 errors of the idealized models `[GetNextOracle, BytesOracle]`
    /// (paper §6.7; they use true totals and are not selectable).
    pub oracle_l1: [f32; 2],
    /// L2 errors of the idealized models.
    pub oracle_l2: [f32; 2],
}

impl PipelineRecord {
    /// Index of the estimator with the smallest L1 error.
    pub fn best_candidate(&self) -> usize {
        self.errors_l1
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .expect("non-empty errors")
    }

    /// L1 error of a specific estimator.
    pub fn l1_of(&self, kind: EstimatorKind) -> f32 {
        self.errors_l1[kind.candidate_index().expect("candidate")]
    }
}

/// Collection configuration.
#[derive(Debug, Clone)]
pub struct CollectConfig {
    pub exec: ExecConfig,
    /// Pipelines with fewer observations are skipped (too short to
    /// meaningfully estimate progress for — they finish between
    /// observation points).
    pub min_observations: usize,
}

impl Default for CollectConfig {
    fn default() -> Self {
        CollectConfig { exec: ExecConfig::default(), min_observations: 5 }
    }
}

/// Candidate + oracle error labels of one observation sequence against its
/// truth curve. Generic over [`ObsView`] so the batch path
/// ([`PipelineObs`]) and the online harvest path ([`IncrementalObs`])
/// run the identical accumulation — their label bit-identity reduces to
/// curve bit-identity, which the incremental protocol guarantees.
#[allow(clippy::type_complexity)]
fn errors_against_truth(
    obs: &impl ObsView,
    truth: &[f64],
) -> (Vec<f32>, Vec<f32>, [f32; 2], [f32; 2]) {
    let mut errors_l1 = Vec::with_capacity(EstimatorKind::CANDIDATES.len());
    let mut errors_l2 = Vec::with_capacity(EstimatorKind::CANDIDATES.len());
    for kind in EstimatorKind::CANDIDATES {
        let curve = obs.curve(kind);
        errors_l1.push(l1_error(&curve, truth) as f32);
        errors_l2.push(l2_error(&curve, truth) as f32);
    }
    let mut oracle_l1 = [0.0f32; 2];
    let mut oracle_l2 = [0.0f32; 2];
    for (i, kind) in
        [EstimatorKind::GetNextOracle, EstimatorKind::BytesOracle].into_iter().enumerate()
    {
        let curve = obs.curve(kind);
        oracle_l1[i] = l1_error(&curve, truth) as f32;
        oracle_l2[i] = l2_error(&curve, truth) as f32;
    }
    (errors_l1, errors_l2, oracle_l1, oracle_l2)
}

/// Execute one query run and append its pipeline records.
pub fn records_from_run(
    run: &QueryRun,
    workload: &str,
    query_idx: usize,
    min_observations: usize,
    out: &mut Vec<PipelineRecord>,
) {
    // One refinement-bound pass per snapshot, shared by every pipeline.
    let ctx = TraceCtx::new(run);
    for pid in 0..run.pipelines.len() {
        let Some(obs) = PipelineObs::with_ctx(run, pid, &ctx) else { continue };
        if obs.len() < min_observations {
            continue;
        }
        let truth = obs.truth();
        let (errors_l1, errors_l2, oracle_l1, oracle_l2) = errors_against_truth(&obs, &truth);
        out.push(PipelineRecord {
            workload: workload.to_string(),
            query_idx,
            pipeline_id: pid,
            features: features::extract(run, &obs),
            errors_l1,
            errors_l2,
            total_getnext: obs.total_getnext(),
            weight: run.pipeline_weight(pid),
            n_obs: obs.len(),
            fingerprint: pipeline_fingerprint(run, pid),
            oracle_l1,
            oracle_l2,
        });
    }
}

/// One labelled record harvested from a *finalized* online observation
/// state — the monitor's feedback path (ROADMAP: "mining the logged
/// switch points into training records"). Produces exactly what
/// [`records_from_run`] would extract for the same pipeline of the same
/// execution — features and labels **bit-identical** to the batch path
/// (`tests/harvest_equivalence.rs` pins this contract) — because every
/// ingredient is shared: static features come from the same
/// plan-and-pipeline extraction, dynamic features from the same
/// [`ObsView`] definitions, truth and totals from the finalized
/// incremental state (bit-identical to the batch trace by the incremental
/// protocol), and error accumulation from the same private helper.
///
/// `weight` is the pipeline's eq. (5) weight (the monitor holds it from
/// registration). Returns `None` when the pipeline committed fewer than
/// `min_observations` observations — the batch skip rule.
///
/// # Panics
/// Panics if `obs` is not finalized (labels need the final window).
pub fn record_from_online(
    plan: &PhysicalPlan,
    obs: &IncrementalObs,
    workload: &str,
    query_idx: usize,
    weight: f64,
    min_observations: usize,
) -> Option<PipelineRecord> {
    assert!(obs.finalized(), "harvest needs a finalized observation state");
    if obs.is_empty() || obs.len() < min_observations {
        return None;
    }
    let pipeline = obs.pipeline();
    let mut feats = features::static_features::extract_pipeline(plan, pipeline);
    feats.extend(features::dynamic_features::extract(obs));
    debug_assert_eq!(feats.len(), features::FeatureSchema::get().len());
    let truth = obs.truth();
    let (errors_l1, errors_l2, oracle_l1, oracle_l2) = errors_against_truth(obs, &truth);
    Some(PipelineRecord {
        workload: workload.to_string(),
        query_idx,
        pipeline_id: obs.pipeline_id(),
        features: feats,
        errors_l1,
        errors_l2,
        total_getnext: obs.total_getnext(),
        weight,
        n_obs: obs.len(),
        fingerprint: fingerprint_parts(plan, pipeline),
        oracle_l1,
        oracle_l2,
    })
}

/// Execute every query of a materialized workload and collect records.
pub fn collect_from_workload(
    w: &Workload,
    cfg: &CollectConfig,
) -> Result<Vec<PipelineRecord>, String> {
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let label = w.spec.label();
    let mut out = Vec::new();
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).map_err(|e| format!("query {qi}: {e}"))?;
        let exec = ExecConfig {
            seed: cfg.exec.seed ^ (qi as u64).wrapping_mul(0x9E37_79B9),
            ..cfg.exec.clone()
        };
        let run = run_plan(&catalog, &plan, &exec);
        records_from_run(&run, &label, qi, cfg.min_observations, &mut out);
    }
    Ok(out)
}

/// Materialize a workload spec and collect its records (convenience).
pub fn collect_workload_records(spec: &WorkloadSpec) -> Result<Vec<PipelineRecord>, String> {
    let w = materialize(spec);
    collect_from_workload(&w, &CollectConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_planner::workload::WorkloadKind;

    #[test]
    fn collects_consistent_records() {
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 8).with_queries(10).with_scale(0.4);
        let records = collect_workload_records(&spec).expect("collect");
        assert!(records.len() >= 10, "got {}", records.len());
        let schema_len = features::FeatureSchema::get().len();
        for r in &records {
            assert_eq!(r.features.len(), schema_len);
            assert_eq!(r.errors_l1.len(), EstimatorKind::CANDIDATES.len());
            assert!(r.n_obs >= 5);
            assert!(r.errors_l1.iter().all(|e| e.is_finite() && *e >= 0.0));
            assert!(r.best_candidate() < EstimatorKind::CANDIDATES.len());
        }
    }

    #[test]
    fn collection_is_deterministic() {
        let spec = WorkloadSpec::new(WorkloadKind::TpcdsLike, 9).with_queries(6).with_scale(0.4);
        let a = collect_workload_records(&spec).unwrap();
        let b = collect_workload_records(&spec).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.features, y.features);
            assert_eq!(x.errors_l1, y.errors_l1);
        }
    }
}
