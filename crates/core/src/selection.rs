//! The estimator-selection module (paper §4.1–4.2).
//!
//! Not classification: for each candidate estimator a MART *regression*
//! model predicts the estimation error that estimator would incur on a
//! pipeline; selection picks the candidate with the smallest predicted
//! error. Modelling error magnitudes (rather than a class label) lets
//! selection avoid the catastrophic choices — being "wrong" between two
//! near-identical estimators costs nothing, picking an estimator that is
//! 10× off costs a lot.

use crate::training::{FeatureMode, TrainingSet};
use prosel_estimators::EstimatorKind;
use prosel_mart::{BoostParams, Mart};

/// Selector configuration.
#[derive(Debug, Clone)]
pub struct SelectorConfig {
    /// Candidate estimators (default: the paper's six-estimator set).
    pub candidates: Vec<EstimatorKind>,
    /// Feature visibility.
    pub mode: FeatureMode,
    /// MART hyper-parameters (paper defaults: M=200, 30 leaves).
    pub boost: BoostParams,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        SelectorConfig {
            candidates: EstimatorKind::EXTENDED.to_vec(),
            mode: FeatureMode::StaticDynamic,
            boost: BoostParams::default(),
        }
    }
}

impl SelectorConfig {
    /// The paper's initial setting: choose among DNE/TGN/LUO only.
    pub fn original_three() -> Self {
        SelectorConfig { candidates: EstimatorKind::ORIGINAL.to_vec(), ..Default::default() }
    }

    pub fn with_mode(mut self, mode: FeatureMode) -> Self {
        self.mode = mode;
        self
    }

    pub fn with_boost(mut self, boost: BoostParams) -> Self {
        self.boost = boost;
        self
    }
}

/// A trained estimator selector: one error-regression model per candidate.
pub struct EstimatorSelector {
    config: SelectorConfig,
    models: Vec<(EstimatorKind, Mart)>,
}

impl EstimatorSelector {
    /// Train the per-estimator error models.
    pub fn train(train: &TrainingSet, config: &SelectorConfig) -> EstimatorSelector {
        assert!(!train.is_empty(), "cannot train a selector on zero pipelines");
        let models = config
            .candidates
            .iter()
            .map(|&kind| {
                let data = train.dataset_for(kind, config.mode);
                let mut params = config.boost.clone();
                // Derive a per-model seed so models differ deterministically.
                params.seed ^= kind.candidate_index().unwrap_or(0) as u64 + 1;
                (kind, Mart::train(&data, &params))
            })
            .collect();
        EstimatorSelector { config: config.clone(), models }
    }

    /// Warm-start retraining — the online-feedback path. Continues
    /// boosting each candidate's error model on `train` (up to `extra`
    /// additional trees fit to the existing ensemble's residuals via
    /// [`Mart::warm_start`]) instead of refitting from scratch, so a
    /// feedback round costs `extra` trees per model rather than a full
    /// `M`-iteration rebuild, and the knowledge already distilled into the
    /// base ensemble is kept. `seed` varies the subsample stream per
    /// feedback round; per-model seeds are derived from it the same way
    /// [`EstimatorSelector::train`] derives them from the config seed.
    pub fn retrain_from(
        base: &EstimatorSelector,
        train: &TrainingSet,
        extra: usize,
        seed: u64,
    ) -> EstimatorSelector {
        assert!(!train.is_empty(), "cannot retrain a selector on zero pipelines");
        let config = base.config.clone();
        let models = base
            .models
            .iter()
            .map(|(kind, model)| {
                let data = train.dataset_for(*kind, config.mode);
                let mut params = config.boost.clone();
                params.seed = seed ^ (kind.candidate_index().unwrap_or(0) as u64 + 1);
                (*kind, Mart::warm_start(model, &data, &params, extra))
            })
            .collect();
        EstimatorSelector { config, models }
    }

    pub fn config(&self) -> &SelectorConfig {
        &self.config
    }

    /// Re-seat the retraining boost parameters. [`Self::from_text`]
    /// returns defaults (the text codec ships models, not training
    /// recipes); a checkpoint restore that recorded the real parameters
    /// re-attaches them here so post-restore retrains replay exactly.
    pub fn set_boost(&mut self, boost: BoostParams) {
        self.config.boost = boost;
    }

    /// Predicted error per candidate for one feature vector.
    pub fn predicted_errors(&self, features: &[f32]) -> Vec<(EstimatorKind, f32)> {
        let dims = self.config.mode.dims();
        assert!(features.len() >= dims, "feature vector too short");
        self.models.iter().map(|(k, m)| (*k, m.predict(&features[..dims]))).collect()
    }

    /// Choose the estimator with the smallest predicted error.
    pub fn select(&self, features: &[f32]) -> EstimatorKind {
        self.predicted_errors(features)
            .into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(k, _)| k)
            .expect("at least one candidate")
    }

    /// Choose from *static features only* — the information available at
    /// pipeline registration, before any execution feedback exists.
    /// `features` may be the static prefix alone or a full vector; any
    /// dynamic suffix is zeroed (the convention the monitor and the
    /// Figure 3 replay both use for the pre-20%-marker phase).
    pub fn select_static(&self, features: &[f32]) -> EstimatorKind {
        let schema = crate::features::FeatureSchema::get();
        let static_len = schema.static_len();
        assert!(features.len() >= static_len, "need at least the static feature prefix");
        match self.config.mode {
            FeatureMode::Static => self.select(&features[..static_len]),
            FeatureMode::StaticDynamic => {
                let mut full = vec![0.0f32; schema.len()];
                full[..static_len].copy_from_slice(&features[..static_len]);
                self.select(&full)
            }
        }
    }

    /// The model trained for a given candidate (for inspection).
    pub fn model(&self, kind: EstimatorKind) -> Option<&Mart> {
        self.models.iter().find(|(k, _)| *k == kind).map(|(_, m)| m)
    }

    /// Serialize the trained selector to a plain-text blob (candidates,
    /// feature mode, and one MART model per candidate). The paper's
    /// deployment story depends on models being cheap to ship and retrain.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("prosel-selector v1\n");
        out.push_str(&format!(
            "mode {}\ncandidates {}\n",
            self.config.mode.name(),
            self.config.candidates.iter().map(|k| k.name()).collect::<Vec<_>>().join(",")
        ));
        for (kind, model) in &self.models {
            out.push_str(&format!("model {}\n", kind.name()));
            out.push_str(&prosel_mart::model_io::to_string(model));
            out.push_str("endmodel\n");
        }
        out
    }

    /// Parse a selector from [`EstimatorSelector::to_text`] output.
    /// The boost parameters of the returned config are defaults (they only
    /// matter for retraining).
    pub fn from_text(s: &str) -> Result<EstimatorSelector, String> {
        let mut lines = s.lines().peekable();
        if lines.next().map(str::trim) != Some("prosel-selector v1") {
            return Err("bad selector header".into());
        }
        let mode_line = lines.next().ok_or("missing mode line")?;
        let mode = match mode_line.strip_prefix("mode ").map(str::trim) {
            Some("static") => FeatureMode::Static,
            Some("dynamic") => FeatureMode::StaticDynamic,
            other => return Err(format!("bad mode line: {other:?}")),
        };
        let cand_line = lines.next().ok_or("missing candidates line")?;
        let names = cand_line.strip_prefix("candidates ").ok_or("bad candidates line")?;
        let kind_by_name = |n: &str| -> Result<EstimatorKind, String> {
            EstimatorKind::CANDIDATES
                .into_iter()
                .find(|k| k.name() == n)
                .ok_or_else(|| format!("unknown estimator {n}"))
        };
        let candidates: Vec<EstimatorKind> =
            names.split(',').map(kind_by_name).collect::<Result<_, _>>()?;
        for (i, k) in candidates.iter().enumerate() {
            if candidates[..i].contains(k) {
                return Err(format!("duplicate candidate {k}"));
            }
        }

        // Strict section parsing: the trainer persists and reloads
        // selectors, so a torn, concatenated or duplicated blob must fail
        // loudly instead of silently yielding a model that scores with
        // whichever section happened to parse first.
        let mut models: Vec<(EstimatorKind, prosel_mart::Mart)> = Vec::new();
        while let Some(line) = lines.next() {
            let Some(name) = line.strip_prefix("model ") else {
                if line.trim().is_empty() {
                    continue;
                }
                return Err(format!("unexpected line: {line}"));
            };
            let kind = kind_by_name(name.trim())?;
            if !candidates.contains(&kind) {
                return Err(format!("model {kind} is not in the candidates list"));
            }
            if models.iter().any(|(k, _)| *k == kind) {
                return Err(format!("duplicate model section for {kind}"));
            }
            let mut blob = String::new();
            let mut terminated = false;
            for l in lines.by_ref() {
                if l.trim() == "endmodel" {
                    terminated = true;
                    break;
                }
                blob.push_str(l);
                blob.push('\n');
            }
            if !terminated {
                return Err(format!("model {kind} is missing its endmodel terminator"));
            }
            models.push((kind, prosel_mart::model_io::from_str(&blob)?));
        }
        if models.len() != candidates.len() {
            return Err(format!("expected {} models, found {}", candidates.len(), models.len()));
        }
        Ok(EstimatorSelector {
            config: SelectorConfig { candidates, mode, boost: BoostParams::default() },
            models,
        })
    }

    /// Evaluate on a held-out set.
    pub fn evaluate(&self, test: &TrainingSet) -> SelectionReport {
        let kinds = &self.config.candidates;
        let idxs: Vec<usize> =
            kinds.iter().map(|k| k.candidate_index().expect("candidate")).collect();
        let mut chosen_l1 = 0.0f64;
        let mut chosen_l2 = 0.0f64;
        let mut optimal = 0usize;
        let mut ratios = Vec::with_capacity(test.len());
        for r in &test.records {
            let kind = self.select(&r.features);
            let ci = kind.candidate_index().expect("candidate");
            let e = r.errors_l1[ci] as f64;
            chosen_l1 += e;
            chosen_l2 += r.errors_l2[ci] as f64;
            let min = idxs.iter().map(|&i| r.errors_l1[i]).fold(f32::INFINITY, f32::min) as f64;
            if e <= min + 1e-4 {
                optimal += 1;
            }
            ratios.push(if min > 1e-9 { e / min } else { 1.0 });
        }
        let n = test.len().max(1) as f64;
        SelectionReport {
            n: test.len(),
            chosen_l1: chosen_l1 / n,
            chosen_l2: chosen_l2 / n,
            pct_optimal: optimal as f64 / n,
            ratio_over_2x: ratios.iter().filter(|&&r| r > 2.0).count() as f64 / n,
            ratio_over_5x: ratios.iter().filter(|&&r| r > 5.0).count() as f64 / n,
            ratio_over_10x: ratios.iter().filter(|&&r| r > 10.0).count() as f64 / n,
            oracle_l1: test.oracle_l1(kinds),
        }
    }
}

/// Held-out evaluation summary.
#[derive(Debug, Clone)]
pub struct SelectionReport {
    pub n: usize,
    /// Mean L1 error of the *chosen* estimator per pipeline.
    pub chosen_l1: f64,
    pub chosen_l2: f64,
    /// Fraction of pipelines where the chosen estimator is optimal.
    pub pct_optimal: f64,
    /// Fractions of pipelines whose chosen-vs-minimum error ratio exceeds
    /// 2×/5×/10× (paper Table 6).
    pub ratio_over_2x: f64,
    pub ratio_over_5x: f64,
    pub ratio_over_10x: f64,
    /// Mean of the per-pipeline minimum error (oracle selection).
    pub oracle_l1: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSchema;
    use crate::pipeline_runs::PipelineRecord;

    /// Synthetic records where feature 0 perfectly determines which of
    /// DNE/TGN is better; everything else is terrible.
    fn synthetic_records(n: usize) -> Vec<PipelineRecord> {
        let dims = FeatureSchema::get().len();
        (0..n)
            .map(|i| {
                let x = (i % 2) as f32; // 0 => DNE good, 1 => TGN good
                let mut features = vec![0.0f32; dims];
                features[0] = x;
                features[1] = (i % 7) as f32; // noise
                let mut errors = vec![0.9f32; 8];
                errors[0] = if x == 0.0 { 0.01 } else { 0.5 };
                errors[1] = if x == 0.0 { 0.5 } else { 0.01 };
                PipelineRecord {
                    workload: "syn".into(),
                    query_idx: i,
                    pipeline_id: 0,
                    features,
                    errors_l1: errors.clone(),
                    errors_l2: errors,
                    total_getnext: 10,
                    weight: 1.0,
                    n_obs: 10,
                    fingerprint: "syn".into(),
                    oracle_l1: [0.0; 2],
                    oracle_l2: [0.0; 2],
                }
            })
            .collect()
    }

    #[test]
    fn selector_learns_separable_rule() {
        let records = synthetic_records(400);
        let train = TrainingSet::from_records(&records[..300]);
        let test = TrainingSet::from_records(&records[300..]);
        let cfg = SelectorConfig {
            candidates: vec![EstimatorKind::Dne, EstimatorKind::Tgn],
            mode: FeatureMode::StaticDynamic,
            boost: BoostParams::fast(),
        };
        let sel = EstimatorSelector::train(&train, &cfg);
        let report = sel.evaluate(&test);
        assert!(report.pct_optimal > 0.95, "pct_optimal {}", report.pct_optimal);
        assert!(report.chosen_l1 < 0.05, "chosen_l1 {}", report.chosen_l1);
        assert!((report.oracle_l1 - 0.01).abs() < 1e-3);
    }

    #[test]
    fn static_mode_restricts_features() {
        let records = synthetic_records(100);
        let train = TrainingSet::from_records(&records);
        let cfg = SelectorConfig {
            candidates: vec![EstimatorKind::Dne, EstimatorKind::Tgn],
            mode: FeatureMode::Static,
            boost: BoostParams::fast(),
        };
        let sel = EstimatorSelector::train(&train, &cfg);
        // Feature 0 is static, so static mode can still learn the rule.
        let k0 = sel.select(&records[0].features);
        let k1 = sel.select(&records[1].features);
        assert_eq!(k0, EstimatorKind::Dne);
        assert_eq!(k1, EstimatorKind::Tgn);
    }

    #[test]
    fn selector_text_round_trip() {
        let records = synthetic_records(120);
        let ts = TrainingSet::from_records(&records);
        let cfg = SelectorConfig {
            candidates: vec![EstimatorKind::Dne, EstimatorKind::Tgn],
            mode: FeatureMode::StaticDynamic,
            boost: BoostParams::fast(),
        };
        let sel = EstimatorSelector::train(&ts, &cfg);
        let text = sel.to_text();
        let back = EstimatorSelector::from_text(&text).expect("parse");
        for r in records.iter().take(20) {
            assert_eq!(sel.select(&r.features), back.select(&r.features));
        }
        assert!(EstimatorSelector::from_text("junk").is_err());
    }

    #[test]
    fn from_text_rejects_malformed_blobs() {
        let records = synthetic_records(80);
        let ts = TrainingSet::from_records(&records);
        let cfg = SelectorConfig {
            candidates: vec![EstimatorKind::Dne, EstimatorKind::Tgn],
            mode: FeatureMode::StaticDynamic,
            boost: BoostParams::fast(),
        };
        let sel = EstimatorSelector::train(&ts, &cfg);
        let text = sel.to_text();

        // Trailing garbage after the last model must not parse.
        assert!(EstimatorSelector::from_text(&format!("{text}stray line\n")).is_err());
        // Two selectors concatenated must not parse as the first one.
        assert!(EstimatorSelector::from_text(&format!("{text}{text}")).is_err());
        // A duplicated model section must be rejected, not shadowed.
        let first_model = {
            let start = text.find("model ").unwrap();
            let end = text[start..].find("endmodel\n").unwrap() + start + "endmodel\n".len();
            text[start..end].to_string()
        };
        assert!(EstimatorSelector::from_text(&format!("{text}{first_model}")).is_err());
        // A model for an estimator outside the candidates list is refused.
        let alien = first_model.replacen("model DNE", "model LUO", 1);
        let swapped = text.replacen(&first_model, &alien, 1);
        assert!(EstimatorSelector::from_text(&swapped).is_err());
        // Truncation (missing endmodel) is refused.
        let truncated = text.rfind("endmodel").map(|i| &text[..i]).unwrap();
        assert!(EstimatorSelector::from_text(truncated).is_err());
        // Duplicate candidates are refused.
        let dup = text.replacen("candidates DNE,TGN", "candidates DNE,DNE", 1);
        assert!(EstimatorSelector::from_text(&dup).is_err());
    }

    #[test]
    fn warm_retrain_improves_on_fresh_evidence_deterministically() {
        // Base selector trained on a slice where feature 0 separates
        // DNE/TGN; feedback re-teaches the same rule with more data.
        let records = synthetic_records(400);
        let base_set = TrainingSet::from_records(&records[..40]);
        let cfg = SelectorConfig {
            candidates: vec![EstimatorKind::Dne, EstimatorKind::Tgn],
            mode: FeatureMode::StaticDynamic,
            boost: BoostParams { iterations: 10, ..BoostParams::fast() },
        };
        let base = EstimatorSelector::train(&base_set, &cfg);
        let feedback = TrainingSet::from_records(&records[40..320]);
        let held = TrainingSet::from_records(&records[320..]);
        let a = EstimatorSelector::retrain_from(&base, &feedback, 40, 0xFEED);
        let b = EstimatorSelector::retrain_from(&base, &feedback, 40, 0xFEED);
        for r in held.records.iter().take(20) {
            assert_eq!(a.select(&r.features), b.select(&r.features), "determinism");
        }
        assert!(
            a.evaluate(&held).chosen_l1 <= base.evaluate(&held).chosen_l1,
            "warm retrain must not be worse on held-out data here"
        );
    }

    #[test]
    fn report_ratios_consistent() {
        let records = synthetic_records(100);
        let ts = TrainingSet::from_records(&records);
        let cfg = SelectorConfig {
            candidates: vec![EstimatorKind::Dne, EstimatorKind::Tgn],
            mode: FeatureMode::StaticDynamic,
            boost: BoostParams::fast(),
        };
        let sel = EstimatorSelector::train(&ts, &cfg);
        let report = sel.evaluate(&ts);
        assert!(report.ratio_over_10x <= report.ratio_over_5x);
        assert!(report.ratio_over_5x <= report.ratio_over_2x);
        assert_eq!(report.n, 100);
    }
}
