//! # prosel-core
//!
//! The paper's primary contribution: **statistical estimator selection**
//! for robust SQL progress estimation.
//!
//! No single progress estimator is robust across queries, plans and data
//! distributions. Instead of hand-writing a decision function, this crate
//! trains — for every candidate estimator — a MART regression model that
//! predicts the estimator's error on a pipeline from cheap features, and
//! selects the candidate with the smallest predicted error:
//!
//! * [`features`] — static plan features (§4.3) and dynamic runtime
//!   features (§4.4) with a stable named schema;
//! * [`pipeline_runs`] — executing workloads into labelled per-pipeline
//!   records (features + per-estimator errors);
//! * [`training`] — training-set assembly, feature modes, splits;
//! * [`selection`] — the per-estimator error models and the selection /
//!   evaluation logic (% optimal, error ratios, oracle floor);
//! * [`progress`] — an end-to-end query progress monitor (Figure 3):
//!   static choice at pipeline start, dynamic revision at the 20% marker,
//!   eq. (5) weighting across pipelines;
//! * [`textio`] — the shared strict text-codec helpers (FNV-1a checksums,
//!   bit-exact float hex, line cursor) behind selector, checkpoint and
//!   publication (de)serialization.

pub mod features;
pub mod pipeline_runs;
pub mod progress;
pub mod selection;
pub mod textio;
pub mod training;

pub use features::FeatureSchema;
pub use pipeline_runs::{
    collect_from_workload, collect_workload_records, pipeline_fingerprint, records_from_run,
    CollectConfig, PipelineRecord,
};
pub use progress::{PipelineChoice, ProgressMonitor, ProgressPoint};
pub use selection::{EstimatorSelector, SelectionReport, SelectorConfig};
pub use training::{FeatureMode, TrainingSet};
