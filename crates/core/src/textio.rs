//! Shared helpers for the workspace's strict line-oriented text codecs.
//!
//! Every persisted artifact in this workspace (selector text, MART model
//! text, learning checkpoints, publication frames) uses the same
//! deliberately simple serde-free format: a versioned header line,
//! whitespace-separated key/value fields validated positionally, and a
//! hard "nothing after the declared end" rule so torn or concatenated
//! files can never parse as a different artifact. This module collects
//! the pieces those codecs share:
//!
//! * [`fnv64`] — the FNV-1a checksum stamped into checkpoint and
//!   publication frames (same hash family the bench traffic harness uses
//!   for digests);
//! * [`f32_to_hex`] / [`f32_from_hex`] (and the `f64` pair) — float
//!   round-tripping via IEEE-754 bit patterns, so restored state is
//!   **bit-identical**, not merely close (Display-printed floats are fine
//!   for models that are re-scored, but checkpoint/restore promises the
//!   same reservoir and the same next retrain output);
//! * [`LineReader`] — a cursor over lines that turns "missing line",
//!   "wrong literal" and "trailing garbage" into typed `Err(String)`s
//!   with line numbers, instead of panics or silent acceptance.

/// FNV-1a 64-bit hash over a byte slice.
///
/// Used as the integrity checksum in publication frames and checkpoint
/// footers: cheap, dependency-free, and plenty for detecting torn writes
/// and bit rot (it is *not* a cryptographic signature).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Render an `f32` as its IEEE-754 bit pattern in lowercase hex.
pub fn f32_to_hex(v: f32) -> String {
    format!("{:08x}", v.to_bits())
}

/// Parse an `f32` from [`f32_to_hex`] output. Exact inverse, NaN included.
pub fn f32_from_hex(s: &str) -> Result<f32, String> {
    if s.len() != 8 {
        return Err(format!("expected 8 hex digits for an f32 bit pattern, got {s:?}"));
    }
    u32::from_str_radix(s, 16).map(f32::from_bits).map_err(|e| format!("bad f32 hex {s:?}: {e}"))
}

/// Render an `f64` as its IEEE-754 bit pattern in lowercase hex.
pub fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parse an `f64` from [`f64_to_hex`] output. Exact inverse, NaN included.
pub fn f64_from_hex(s: &str) -> Result<f64, String> {
    if s.len() != 16 {
        return Err(format!("expected 16 hex digits for an f64 bit pattern, got {s:?}"));
    }
    u64::from_str_radix(s, 16).map(f64::from_bits).map_err(|e| format!("bad f64 hex {s:?}: {e}"))
}

/// A line cursor for strict text codecs.
///
/// Wraps `str::lines()` with a running line number so every error names
/// the offending line, and enforces the workspace codec discipline:
/// missing lines, mismatched literals, wrong field keys, and content
/// after the declared end are all hard errors.
pub struct LineReader<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> LineReader<'a> {
    /// Start reading `text` from its first line.
    pub fn new(text: &'a str) -> Self {
        LineReader { lines: text.lines(), line_no: 0 }
    }

    /// The 1-based number of the most recently returned line.
    pub fn line_no(&self) -> usize {
        self.line_no
    }

    /// Next line, or an error if the input ends early.
    pub fn next_line(&mut self) -> Result<&'a str, String> {
        self.line_no += 1;
        self.lines.next().ok_or_else(|| format!("unexpected end of input at line {}", self.line_no))
    }

    /// Require the next line to equal `literal` exactly (after trimming
    /// trailing whitespace).
    pub fn expect(&mut self, literal: &str) -> Result<(), String> {
        let line = self.next_line()?;
        if line.trim_end() != literal {
            return Err(format!("line {}: expected {literal:?}, got {line:?}", self.line_no));
        }
        Ok(())
    }

    /// Parse the next line as `key1 v1 key2 v2 ...` with the given keys in
    /// order, returning the raw value strings.
    ///
    /// Mirrors `model_io`'s positional meta-line validation: both the key
    /// *names* and their order are part of the format, so field drift
    /// (renamed, reordered, added or dropped fields) is rejected instead
    /// of being silently misread.
    pub fn fields(&mut self, keys: &[&str]) -> Result<Vec<&'a str>, String> {
        let line = self.next_line()?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 2 * keys.len() {
            return Err(format!(
                "line {}: expected {} `key value` pairs ({}), got {line:?}",
                self.line_no,
                keys.len(),
                keys.join(", ")
            ));
        }
        let mut values = Vec::with_capacity(keys.len());
        for (i, key) in keys.iter().enumerate() {
            if parts[2 * i] != *key {
                return Err(format!(
                    "line {}: field {} must be {key:?}, got {:?}",
                    self.line_no,
                    i + 1,
                    parts[2 * i]
                ));
            }
            values.push(parts[2 * i + 1]);
        }
        Ok(values)
    }

    /// Consume the remainder, rejecting anything but trailing whitespace.
    ///
    /// The strictness that makes torn and concatenated artifacts
    /// unrepresentable: content past the declared end is an error, never
    /// ignored.
    pub fn finish(mut self) -> Result<(), String> {
        for line in self.lines.by_ref() {
            self.line_no += 1;
            if !line.trim().is_empty() {
                return Err(format!(
                    "line {}: trailing garbage after the declared end: {line:?}",
                    self.line_no
                ));
            }
        }
        Ok(())
    }
}

/// Parse one whitespace-separated value with a field name in the error.
pub fn parse<T: std::str::FromStr>(field: &str, raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse().map_err(|e| format!("{field}: bad value {raw:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn float_hex_round_trips_are_bit_exact() {
        for v in [0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, f32::NAN, f32::INFINITY, -123.456] {
            let back = f32_from_hex(&f32_to_hex(v)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
        for v in [0.0f64, -0.0, 1.5e-300, f64::NAN, f64::NEG_INFINITY, 987.654321] {
            let back = f64_from_hex(&f64_to_hex(v)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
        assert!(f32_from_hex("123").is_err());
        assert!(f32_from_hex("zzzzzzzz").is_err());
        assert!(f64_from_hex("0123").is_err());
    }

    #[test]
    fn line_reader_enforces_the_codec_discipline() {
        let mut r = LineReader::new("header v1\ncount 3 seed 7\n");
        r.expect("header v1").unwrap();
        let vals = r.fields(&["count", "seed"]).unwrap();
        assert_eq!(vals, vec!["3", "7"]);
        assert_eq!(parse::<usize>("count", vals[0]).unwrap(), 3);
        r.finish().unwrap();

        let mut r = LineReader::new("wrong\n");
        assert!(r.expect("header v1").unwrap_err().contains("line 1"));

        let mut r = LineReader::new("header v1\nseed 7 count 3\n");
        r.expect("header v1").unwrap();
        assert!(r.fields(&["count", "seed"]).is_err(), "reordered keys are field drift");

        let mut r = LineReader::new("header v1\n\n  \njunk\n");
        r.expect("header v1").unwrap();
        assert!(r.finish().unwrap_err().contains("trailing garbage"));

        let mut r = LineReader::new("one");
        r.next_line().unwrap();
        assert!(r.next_line().unwrap_err().contains("end of input"));
    }
}
