//! Feature extraction for estimator selection.
//!
//! Two families, following the paper's Sections 4.3 and 4.4:
//!
//! * [`static_features`] — computable from the plan and optimizer
//!   estimates before execution starts;
//! * [`dynamic_features`] — computed from execution feedback observed up
//!   to the 20%-of-driver-input marker, allowing the initial choice to be
//!   revised online.
//!
//! The combined vector has ~210 entries ("about 200 double values",
//! paper §6.4); [`schema::FeatureSchema`] names every position.

pub mod dynamic_features;
pub mod schema;
pub mod static_features;

use prosel_engine::QueryRun;
use prosel_estimators::PipelineObs;

pub use schema::FeatureSchema;

/// Extract the full feature vector (static ++ dynamic) for one pipeline.
pub fn extract(run: &QueryRun, obs: &PipelineObs<'_>) -> Vec<f32> {
    let mut v = static_features::extract(run, obs.pipeline_id());
    v.extend(dynamic_features::extract(obs));
    debug_assert_eq!(v.len(), FeatureSchema::get().len());
    debug_assert!(v.iter().all(|x| x.is_finite()), "non-finite feature");
    v
}
