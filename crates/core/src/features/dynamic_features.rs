//! Dynamic features (paper §4.4): execution feedback observed up to the
//! 20%-of-driver-input marker.
//!
//! Consistent observation points across queries are impossible ("if we
//! knew which fraction was done, progress estimation would be trivial"),
//! so markers `t{x}` are defined as the first observation where x% of the
//! driver-node input has been consumed. Two families:
//!
//! * **Pairwise differences** `|A(t{x}) − B(t{x})|` for the pairs
//!   DNE/TGN, DNE/TGNINT, TGN/TGNINT — divergence between estimators
//!   early in the pipeline signals per-tuple-work variance;
//! * **Time correlations** `Cor_{est,i,x}` for the six practical
//!   estimators: how the elapsed-time fraction at the i/4-sub-markers of
//!   x relates to the estimator's value — the only features that
//!   incorporate the actual passage of time.

use crate::features::schema::{COR_ESTIMATORS, COR_POINTS, DIFF_PAIRS, X_MARKERS};
use prosel_estimators::{EstimatorKind, ObsView};

fn kind_by_name(name: &str) -> EstimatorKind {
    match name {
        "DNE" => EstimatorKind::Dne,
        "TGN" => EstimatorKind::Tgn,
        "LUO" => EstimatorKind::Luo,
        "BATCHDNE" => EstimatorKind::BatchDne,
        "DNESEEK" => EstimatorKind::DneSeek,
        "TGNINT" => EstimatorKind::TgnInt,
        other => unreachable!("unknown estimator {other}"),
    }
}

/// First observation index where the driver fraction reaches `frac`
/// (clamped to the last observation when never reached).
fn marker(obs: &impl ObsView, frac: f64) -> usize {
    let df = obs.driver_fraction();
    df.iter().position(|&a| a >= frac).unwrap_or(df.len().saturating_sub(1))
}

/// Extract the dynamic feature suffix.
///
/// Generic over [`ObsView`] so the same definitions serve the post-hoc
/// path (batch `PipelineObs`) and the live path (`IncrementalObs` fed by
/// the monitor): on a prefix of a run, markers not yet reached clamp to
/// the latest observation, giving the *provisional* dynamic features the
/// online re-selection uses until the real markers arrive.
pub fn extract(obs: &impl ObsView) -> Vec<f32> {
    let curves: Vec<(EstimatorKind, std::borrow::Cow<'_, [f64]>)> = COR_ESTIMATORS
        .iter()
        .map(|&name| {
            let k = kind_by_name(name);
            (k, obs.curve(k))
        })
        .collect();
    let curve_of = |k: EstimatorKind| -> &[f64] {
        curves.iter().find(|(kk, _)| *kk == k).expect("curve").1.as_ref()
    };

    let start = obs.window_start();
    let times = obs.obs_times();
    let mut out = Vec::with_capacity(DIFF_PAIRS.len() * X_MARKERS.len() + 120);

    // Pairwise differences at t{x}.
    for (a, b) in DIFF_PAIRS {
        let ca = curve_of(kind_by_name(a));
        let cb = curve_of(kind_by_name(b));
        for x in X_MARKERS {
            let j = marker(obs, x as f64 / 100.0);
            out.push((ca[j] - cb[j]).abs() as f32);
        }
    }

    // Time correlations: for i = 1..=4, the elapsed-time fraction at
    // t{i·x/4} relative to t{x}, scaled by the inverse of the estimator's
    // value at t{x} (the paper's CorEST,i,x with the t{x} reference).
    for &name in &COR_ESTIMATORS {
        let c = curve_of(kind_by_name(name));
        for i in 1..=COR_POINTS {
            for x in X_MARKERS {
                let jx = marker(obs, x as f64 / 100.0);
                let ji = marker(obs, (x as f64 * i as f64 / COR_POINTS as f64) / 100.0);
                let t_x = (times[jx] - start).max(1e-9);
                let t_i = (times[ji] - start).max(0.0);
                let est = c[jx].max(1e-3); // guard 1/est
                let v = (t_i / t_x) * (1.0 / est);
                out.push(v.clamp(0.0, 1e4) as f32);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::schema::FeatureSchema;
    use prosel_engine::{run_plan, Catalog, ExecConfig};
    use prosel_estimators::PipelineObs;
    use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
    use prosel_planner::PlanBuilder;

    #[test]
    fn dynamic_vector_matches_schema_suffix() {
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 6).with_queries(6).with_scale(0.4);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        let s = FeatureSchema::get();
        let mut seen = 0;
        for (qi, q) in w.queries.iter().enumerate() {
            let plan = builder.build(q).unwrap();
            let run =
                run_plan(&catalog, &plan, &ExecConfig { seed: qi as u64, ..ExecConfig::default() });
            let ctx = prosel_estimators::TraceCtx::new(&run);
            for pid in 0..run.pipelines.len() {
                if let Some(obs) = PipelineObs::with_ctx(&run, pid, &ctx) {
                    let v = extract(&obs);
                    assert_eq!(v.len(), s.len() - s.static_len());
                    assert!(v.iter().all(|x| x.is_finite()));
                    seen += 1;
                }
            }
        }
        assert!(seen > 5);
    }

    #[test]
    fn markers_are_monotone() {
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 6).with_queries(3).with_scale(0.4);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        let plan = builder.build(&w.queries[0]).unwrap();
        let run = run_plan(&catalog, &plan, &ExecConfig::default());
        if let Some(obs) = PipelineObs::new(&run, 0) {
            let mut prev = 0usize;
            for x in X_MARKERS {
                let j = marker(&obs, x as f64 / 100.0);
                assert!(j >= prev, "marker not monotone at x={x}");
                prev = j;
            }
        }
    }
}
