//! Stable names for every feature position.

use prosel_engine::plan::OP_TYPE_NAMES;
use std::sync::OnceLock;

/// The x-percent markers used by dynamic features (paper §4.4.2).
pub const X_MARKERS: [u32; 5] = [1, 2, 5, 10, 20];

/// Estimators whose time-correlation features are computed.
pub const COR_ESTIMATORS: [&str; 6] = ["DNE", "TGN", "LUO", "BATCHDNE", "DNESEEK", "TGNINT"];

/// Pairs whose at-marker differences are computed.
pub const DIFF_PAIRS: [(&str, &str); 3] = [("DNE", "TGN"), ("DNE", "TGNINT"), ("TGN", "TGNINT")];

/// Number of time-correlation reference points per marker (the paper's
/// `i = 1, …, 4`).
pub const COR_POINTS: usize = 4;

/// Named layout of the feature vector.
pub struct FeatureSchema {
    names: Vec<String>,
    static_len: usize,
}

static SCHEMA: OnceLock<FeatureSchema> = OnceLock::new();

impl FeatureSchema {
    /// The process-wide schema (features are a fixed layout).
    pub fn get() -> &'static FeatureSchema {
        SCHEMA.get_or_init(FeatureSchema::build)
    }

    fn build() -> FeatureSchema {
        let mut names = Vec::new();
        // Static: per operator type.
        for op in OP_TYPE_NAMES {
            names.push(format!("Count_{op}"));
            names.push(format!("Card_{op}"));
            names.push(format!("SelAt_{op}"));
            names.push(format!("SelAbove_{op}"));
            names.push(format!("SelBelow_{op}"));
        }
        // Static: structural.
        names.push("SelAtDN".into());
        names.push("LogTotalE".into());
        names.push("NodeCount".into());
        names.push("DriverCount".into());
        names.push("NlInnerCount".into());
        names.push("PipelineWeight".into());
        let static_len = names.len();
        // Dynamic: pairwise differences at markers.
        for (a, b) in DIFF_PAIRS {
            for x in X_MARKERS {
                names.push(format!("{a}vs{b}_{x}"));
            }
        }
        // Dynamic: time correlations.
        for est in COR_ESTIMATORS {
            for i in 1..=COR_POINTS {
                for x in X_MARKERS {
                    names.push(format!("Cor_{est}_{i}_{x}"));
                }
            }
        }
        FeatureSchema { names, static_len }
    }

    /// Total number of features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of static features (prefix of the vector).
    pub fn static_len(&self) -> usize {
        self.static_len
    }

    /// Name of feature `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of a feature by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_expected_shape() {
        let s = FeatureSchema::get();
        // 14 op types × 5 + 6 structural = 76 static.
        assert_eq!(s.static_len(), 14 * 5 + 6);
        // + 3 pairs × 5 markers + 6 estimators × 4 points × 5 markers.
        assert_eq!(s.len(), s.static_len() + 15 + 120);
        // ~200 features, as the paper reports.
        assert!(s.len() > 180 && s.len() < 240);
    }

    #[test]
    fn names_are_unique() {
        let s = FeatureSchema::get();
        let mut sorted: Vec<&String> = s.names().iter().collect();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), s.len());
    }

    #[test]
    fn lookup_round_trips() {
        let s = FeatureSchema::get();
        assert_eq!(s.index_of("SelAtDN"), Some(14 * 5));
        let i = s.index_of("Cor_DNESEEK_4_20").expect("cor feature");
        assert_eq!(s.name(i), "Cor_DNESEEK_4_20");
        assert_eq!(s.index_of("NoSuchFeature"), None);
    }
}
