//! Static features (paper §4.3): plan-shape and optimizer-estimate
//! encodings available before the query starts.
//!
//! For every physical operator type `op` over the pipeline's nodes:
//!
//! * `Count_op` — number of instances;
//! * `Card_op` — Σ E_i at those instances (\[11\]'s encoding);
//! * `SelAt_op` — `Card_op` relative to the pipeline's total E (the
//!   paper's refinement: *relative* cardinalities matter for progress);
//! * `SelAbove_op` — relative E of nodes having an `op` descendant within
//!   the pipeline;
//! * `SelBelow_op` — relative E of nodes below an `op` node.
//!
//! Plus `SelAtDN` (driver-node share of E) and a few structural counts.

use prosel_engine::plan::{PhysicalPlan, OP_TYPE_COUNT};
use prosel_engine::{Pipeline, QueryRun};

/// Extract the static feature prefix for pipeline `pid` of a run.
pub fn extract(run: &QueryRun, pid: usize) -> Vec<f32> {
    extract_parts(&run.plan, &run.pipelines, pid)
}

/// Extract the static feature prefix from the plan and its pipeline
/// decomposition alone — no execution required. This is the form the
/// online monitor uses at query *registration*, before the first snapshot
/// exists (paper §4.3: static features are computable from the plan and
/// optimizer estimates).
pub fn extract_parts(plan: &PhysicalPlan, pipelines: &[Pipeline], pid: usize) -> Vec<f32> {
    extract_pipeline(plan, &pipelines[pid])
}

/// [`extract_parts`] for a single pipeline the caller already holds — the
/// form the online *harvest* path uses (the monitor retains each pipeline
/// inside its observation state, not the full decomposition). All three
/// entry points compute the identical vector.
pub fn extract_pipeline(plan: &PhysicalPlan, pipeline: &Pipeline) -> Vec<f32> {
    let nodes = &pipeline.nodes;
    let in_pipe = |n: usize| pipeline.contains(n);

    let total_e: f64 = nodes.iter().map(|&n| plan.node(n).est_rows).sum::<f64>().max(1.0);

    // Per-node sets: which op types appear strictly below / strictly above
    // each node *within the pipeline*.
    let mut below_mask = vec![0u32; plan.len()]; // op types among descendants
    for &n in nodes {
        let mut stack: Vec<usize> =
            plan.node(n).children.iter().copied().filter(|&c| in_pipe(c)).collect();
        let mut mask = 0u32;
        while let Some(c) = stack.pop() {
            mask |= 1 << plan.node(c).op.type_code();
            stack.extend(plan.node(c).children.iter().copied().filter(|&g| in_pipe(g)));
        }
        below_mask[n] = mask;
    }
    let mut above_mask = vec![0u32; plan.len()]; // op types among ancestors
    {
        let parents = plan.parents();
        for &n in nodes {
            let mut mask = 0u32;
            let mut cur = n;
            while let Some(p) = parents[cur] {
                if !in_pipe(p) {
                    break;
                }
                mask |= 1 << plan.node(p).op.type_code();
                cur = p;
            }
            above_mask[n] = mask;
        }
    }

    let mut out = Vec::with_capacity(OP_TYPE_COUNT * 5 + 6);
    for op in 0..OP_TYPE_COUNT {
        let bit = 1u32 << op;
        let mut count = 0.0f32;
        let mut card = 0.0f64;
        let mut sel_above = 0.0f64; // nodes with op below them
        let mut sel_below = 0.0f64; // nodes with op above them
        for &n in nodes {
            let e = plan.node(n).est_rows;
            if plan.node(n).op.type_code() == op {
                count += 1.0;
                card += e;
            }
            if below_mask[n] & bit != 0 {
                sel_above += e;
            }
            if above_mask[n] & bit != 0 {
                sel_below += e;
            }
        }
        out.push(count);
        out.push(card as f32);
        out.push((card / total_e) as f32);
        out.push((sel_above / total_e) as f32);
        out.push((sel_below / total_e) as f32);
    }

    let driver_e: f64 = pipeline.driver_nodes.iter().map(|&n| plan.node(n).est_rows).sum();
    out.push((driver_e / total_e) as f32); // SelAtDN
    out.push((total_e.ln_1p()) as f32); // LogTotalE
    out.push(nodes.len() as f32); // NodeCount
    out.push(pipeline.driver_nodes.len() as f32); // DriverCount
    out.push(pipeline.nl_inner_nodes.len() as f32); // NlInnerCount
    out.push(prosel_engine::pipeline_weight(plan, pipeline) as f32); // PipelineWeight
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::schema::FeatureSchema;
    use prosel_engine::{run_plan, Catalog, ExecConfig};
    use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
    use prosel_planner::PlanBuilder;

    fn a_run() -> QueryRun {
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 5).with_queries(5).with_scale(0.4);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        let plan = builder.build(&w.queries[1]).unwrap();
        run_plan(&catalog, &plan, &ExecConfig::default())
    }

    #[test]
    fn static_vector_matches_schema_prefix() {
        let run = a_run();
        let v = extract(&run, 0);
        assert_eq!(v.len(), FeatureSchema::get().static_len());
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn relative_features_bounded() {
        let run = a_run();
        let s = FeatureSchema::get();
        for pid in 0..run.pipelines.len() {
            let v = extract(&run, pid);
            for (i, name) in s.names()[..s.static_len()].iter().enumerate() {
                if name.starts_with("SelAt")
                    || name.starts_with("SelAbove")
                    || name.starts_with("SelBelow")
                {
                    assert!(
                        (0.0..=1.0 + 1e-6).contains(&(v[i] as f64)),
                        "{name} out of range: {}",
                        v[i]
                    );
                }
            }
        }
    }

    #[test]
    fn counts_match_pipeline_contents() {
        let run = a_run();
        let s = FeatureSchema::get();
        for pid in 0..run.pipelines.len() {
            let v = extract(&run, pid);
            let total: f32 = (0..prosel_engine::plan::OP_TYPE_COUNT)
                .map(|op| {
                    v[s.index_of(&format!("Count_{}", prosel_engine::plan::OP_TYPE_NAMES[op]))
                        .unwrap()]
                })
                .sum();
            assert_eq!(total as usize, run.pipelines[pid].nodes.len());
        }
    }
}
