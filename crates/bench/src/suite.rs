//! The canonical experiment suite: the paper's six workloads, with a
//! size knob, plus cached record collection.

use prosel_core::pipeline_runs::{collect_from_workload, CollectConfig, PipelineRecord};
use prosel_datagen::TuningLevel;
use prosel_mart::BoostParams;
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use std::collections::HashMap;
use std::time::Instant;

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpScale {
    /// Small sizes for CI / smoke runs (~1 minute total collection).
    Smoke,
    /// Default sizes: every experiment in a few minutes.
    Quick,
    /// Paper-sized query counts (1000 TPC-H queries etc.).
    Full,
}

impl ExpScale {
    pub fn parse(s: &str) -> Option<ExpScale> {
        match s {
            "smoke" => Some(ExpScale::Smoke),
            "quick" => Some(ExpScale::Quick),
            "full" => Some(ExpScale::Full),
            _ => None,
        }
    }

    /// Multiplier applied to per-workload query counts.
    fn queries(&self, quick: usize, full: usize) -> usize {
        match self {
            ExpScale::Smoke => (quick / 4).max(20),
            ExpScale::Quick => quick,
            ExpScale::Full => full,
        }
    }
}

/// MART parameters used by the harness: the paper's M=200 / 30 leaves,
/// with column subsampling (0.65) to keep the many leave-one-out foldings
/// affordable. `--scale full` effects are dominated by data sizes, not
/// this knob.
pub fn harness_boost() -> BoostParams {
    BoostParams { colsample: 0.65, ..BoostParams::default() }
}

/// The paper's six workloads: TPC-DS, TPC-H under three physical designs,
/// and the two "real-world" workloads.
pub fn paper_workloads(scale: ExpScale) -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::new(WorkloadKind::TpcdsLike, 12).with_queries(scale.queries(150, 200)),
        WorkloadSpec::new(WorkloadKind::TpchLike, 11)
            .with_queries(scale.queries(250, 1000))
            .with_tuning(TuningLevel::Untuned),
        WorkloadSpec::new(WorkloadKind::TpchLike, 11)
            .with_queries(scale.queries(250, 1000))
            .with_tuning(TuningLevel::PartiallyTuned),
        WorkloadSpec::new(WorkloadKind::TpchLike, 11)
            .with_queries(scale.queries(250, 1000))
            .with_tuning(TuningLevel::FullyTuned),
        WorkloadSpec::new(WorkloadKind::Real1, 13).with_queries(scale.queries(180, 477)),
        WorkloadSpec::new(WorkloadKind::Real2, 14).with_queries(scale.queries(180, 632)),
    ]
}

/// Record cache: workload label → records. Collection is the expensive
/// step shared by most experiments.
#[derive(Default)]
pub struct Suite {
    cache: HashMap<String, Vec<PipelineRecord>>,
    pub verbose: bool,
}

impl Suite {
    pub fn new(verbose: bool) -> Self {
        Suite { cache: HashMap::new(), verbose }
    }

    /// Collect (or fetch cached) records for a workload spec.
    pub fn records(&mut self, spec: &WorkloadSpec) -> &[PipelineRecord] {
        let label = spec.label();
        if !self.cache.contains_key(&label) {
            let t = Instant::now();
            let w = materialize(spec);
            let recs = collect_from_workload(&w, &CollectConfig::default())
                .unwrap_or_else(|e| panic!("collect {label}: {e}"));
            if self.verbose {
                eprintln!(
                    "[collect] {label}: {} queries -> {} pipeline records in {:.1}s",
                    spec.queries,
                    recs.len(),
                    t.elapsed().as_secs_f64()
                );
            }
            self.cache.insert(label.clone(), recs);
        }
        &self.cache[&label]
    }

    /// Records for several specs, concatenated.
    pub fn records_all(&mut self, specs: &[WorkloadSpec]) -> Vec<PipelineRecord> {
        let mut out = Vec::new();
        for s in specs {
            out.extend_from_slice(self.records(s));
        }
        out
    }
}

/// Aggregate per-query L1 errors from pipeline records (weight-combined,
/// eq. (5)); returns one error per (workload, query) per estimator index.
pub fn per_query_errors(records: &[PipelineRecord], n_kinds: usize) -> Vec<Vec<f64>> {
    let mut acc: HashMap<(String, usize), (Vec<f64>, f64)> = HashMap::new();
    for r in records {
        let e = acc
            .entry((r.workload.clone(), r.query_idx))
            .or_insert_with(|| (vec![0.0; n_kinds], 0.0));
        let w = r.weight.max(1e-9);
        for i in 0..n_kinds.min(r.errors_l1.len()) {
            e.0[i] += r.errors_l1[i] as f64 * w;
        }
        e.1 += w;
    }
    acc.into_values().map(|(sums, w)| sums.into_iter().map(|s| s / w.max(1e-9)).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_paper_workloads() {
        let specs = paper_workloads(ExpScale::Quick);
        assert_eq!(specs.len(), 6);
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 6, "labels must be unique: {labels:?}");
        // Full scale uses paper-sized counts.
        let full = paper_workloads(ExpScale::Full);
        assert_eq!(full[1].queries, 1000);
        assert_eq!(full[4].queries, 477);
    }

    #[test]
    fn suite_caches_collections() {
        let mut suite = Suite::new(false);
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 3).with_queries(8).with_scale(0.3);
        let a = suite.records(&spec).len();
        let b = suite.records(&spec).len();
        assert_eq!(a, b);
        assert_eq!(suite.cache.len(), 1);
    }

    #[test]
    fn per_query_aggregation() {
        let mut suite = Suite::new(false);
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 3).with_queries(8).with_scale(0.3);
        let recs = suite.records(&spec).to_vec();
        let per_q = per_query_errors(&recs, 3);
        assert!(!per_q.is_empty());
        for q in &per_q {
            assert_eq!(q.len(), 3);
            assert!(q.iter().all(|e| e.is_finite() && *e >= 0.0));
        }
    }
}
