//! Metrics collected while driving traffic through the monitor.
//!
//! Two strictly separated kinds of measurement live here:
//!
//! * **Deterministic counters** ([`TrafficCounters`]) — pure functions of
//!   the spec and the driver's logic. Two runs of the same spec must
//!   produce `==` counter blocks; the soak test asserts exactly that.
//! * **Wall-clock latencies** ([`LatencyStats`]) — `Instant`-measured
//!   nanoseconds for progress reads and selector hot-swaps. These vary
//!   run to run and are *reported*, never asserted deterministic.
//!
//! [`TrafficMetrics::emit`] folds both into the bench JSONL stream
//! (`PROSEL_BENCH_JSON`), from which `bench_report` builds the
//! `BENCH_<sha>.json` trajectory.

use crate::report::append_metric_sample;

/// A reservoir of nanosecond samples with exact quantiles.
///
/// Samples are kept raw (the soak issues at most a few hundred thousand
/// reads, comfortably in memory) so quantiles are exact rather than
/// sketched — the same sort-and-index rule as the estimator score tables.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<u64>,
}

impl LatencyStats {
    /// Record one sample, in nanoseconds.
    pub fn record(&mut self, nanos: u64) {
        self.samples.push(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean in nanoseconds; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&n| n as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Exact quantile `q ∈ [0, 1]` in nanoseconds; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// p50 / p99 / p999, the fields the bench report tracks.
    pub fn summary(&self) -> (u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.99), self.quantile(0.999))
    }
}

/// Deterministic driver counters — the reproducible half of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounters {
    /// Scheduled arrivals (post-duration-trim schedule length).
    pub arrivals: u64,
    /// Successful registrations acked by the service.
    pub registered: u64,
    /// Queries that reached `Finished` and were verified + unregistered.
    pub finished: u64,
    /// Trace events sent through the tap.
    pub events_sent: u64,
    /// Total approximate wire bytes of those events
    /// ([`prosel_engine::trace::TraceEvent::payload_bytes`]) — the
    /// quantity delta compression shrinks.
    pub event_bytes: u64,
    /// Progress / ETA reads issued.
    pub reads: u64,
    /// Selector hot-swaps issued.
    pub swaps: u64,
    /// Peak depth of the admission wait queue (arrivals held back by
    /// `max_concurrency`).
    pub queue_peak: u64,
    /// Peak number of simultaneously in-flight queries.
    pub max_in_flight: u64,
}

/// Everything one driven run produces.
#[derive(Debug, Clone, Default)]
pub struct TrafficMetrics {
    /// The deterministic half.
    pub counters: TrafficCounters,
    /// Latency of progress / ETA reads, measured at the driver.
    pub read_latency: LatencyStats,
    /// Latency of `swap_selector` round-trips.
    pub swap_latency: LatencyStats,
    /// Driver wall time for the whole run, in seconds.
    pub wall_seconds: f64,
    /// Invariant violations, empty on a clean run. Each entry is a
    /// human-readable description; the soak test asserts emptiness.
    pub violations: Vec<String>,
}

impl TrafficMetrics {
    /// Ingest throughput in events per wall second; 0 for an empty run.
    pub fn events_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.counters.events_sent as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Mean wire bytes per tap event; 0 for an empty run. Full-snapshot
    /// streams pay O(plan) here, delta streams O(changed counters).
    pub fn bytes_per_event(&self) -> f64 {
        if self.counters.events_sent > 0 {
            self.counters.event_bytes as f64 / self.counters.events_sent as f64
        } else {
            0.0
        }
    }

    /// Append the reportable fields to the bench JSONL stream under
    /// `traffic/<prefix>...` metric names. No-op unless
    /// `PROSEL_BENCH_JSON` is set.
    pub fn emit(&self, prefix: &str) {
        let name = |field: &str| format!("traffic/{prefix}{field}");
        let (p50, p99, p999) = self.read_latency.summary();
        append_metric_sample(&name("read_p50_ns"), p50 as f64);
        append_metric_sample(&name("read_p99_ns"), p99 as f64);
        append_metric_sample(&name("read_p999_ns"), p999 as f64);
        append_metric_sample(&name("ingest_events_per_s"), self.events_per_second());
        append_metric_sample(&name("tap_bytes_per_event"), self.bytes_per_event());
        if self.swap_latency.count() > 0 {
            append_metric_sample(&name("swap_p99_ns"), self.swap_latency.quantile(0.99) as f64);
        }
        append_metric_sample(&name("queue_peak"), self.counters.queue_peak as f64);
        append_metric_sample(&name("finished"), self.counters.finished as f64);
        append_metric_sample(&name("violations"), self.violations.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_exact_on_small_sets() {
        let mut s = LatencyStats::default();
        for n in [5u64, 1, 4, 2, 3] {
            s.record(n);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(0.5), 3);
        assert_eq!(s.quantile(1.0), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        // p99/p999 on a tiny set round to the max.
        assert_eq!(s.summary(), (3, 5, 5));
    }

    #[test]
    fn empty_stats_are_all_zero() {
        let s = LatencyStats::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        let m = TrafficMetrics::default();
        assert_eq!(m.events_per_second(), 0.0);
    }

    #[test]
    fn throughput_is_events_over_wall_time() {
        let m = TrafficMetrics {
            counters: TrafficCounters { events_sent: 5_000, ..Default::default() },
            wall_seconds: 2.5,
            ..Default::default()
        };
        assert!((m.events_per_second() - 2_000.0).abs() < 1e-9);
    }
}
