//! Open-loop skewed-traffic harness: millions of queries as a
//! first-class scenario.
//!
//! Everything else in this crate evaluates estimators *post-hoc*; this
//! module evaluates the serving stack — [`prosel_monitor::MonitorService`]
//! plus the online-learning loop — under the load shape it would face in
//! production: an **open-loop** arrival process (arrivals never slow down
//! for the service; queueing is visible, not hidden), Zipf-skewed over a
//! few hot plan templates drawn from the paper's six workloads, with
//! progress/ETA reads and selector hot-swaps issued while events stream.
//!
//! The pieces:
//!
//! * [`config`] — [`TrafficSpec`], the single reviewable description of a
//!   scenario (TOML-subset files under `crates/bench/specs/`);
//! * [`arrivals`] — [`schedule`], the pure spec → arrival-list expansion
//!   (Poisson or bursty instants, mix and template draws);
//! * [`driver`] — [`TemplateSet::build`] captures real engine event
//!   streams once, [`drive`] replays them against a live service in
//!   virtual time ([`prosel_engine::clock::ManualClock`] pacing);
//! * [`metrics`] — deterministic counters vs. wall-clock latency
//!   reservoirs, and the `BENCH_<sha>.json` emission.
//!
//! The determinism contract, relied on by `tests/traffic_soak.rs`: for a
//! fixed spec (without [`DriveOptions::retrain`]), two runs produce
//! byte-identical schedules, identical read-value digests and identical
//! [`TrafficOutcome::invariant_report`]s. Only the measured latencies
//! differ run to run.

pub mod arrivals;
pub mod config;
pub mod driver;
pub mod metrics;

pub use arrivals::{digest64, schedule, schedule_text, Arrival};
pub use config::{ArrivalProcess, TrafficSpec, MIX_LABELS};
pub use driver::{
    drive, drive_with, synthetic_selector, DriveOptions, TemplateSet, TrafficOutcome,
};
pub use metrics::{LatencyStats, TrafficCounters, TrafficMetrics};
