//! The traffic spec: everything that determines a workload schedule.
//!
//! A [`TrafficSpec`] is the single source of truth for one open-loop run:
//! the arrival process, the per-workload mix over the paper's six
//! workloads, the Zipf skew concentrating traffic on a few plan
//! templates, the service shape (shards, admission) and the driver's
//! read/swap cadences. Two specs that compare equal produce byte-identical
//! schedules ([`crate::traffic::arrivals::schedule`] is a pure function of
//! the spec).
//!
//! Specs are expressed in a small TOML subset (`key = value` lines plus
//! one optional `[mix]` section) so they can live next to the repo as
//! reviewable files — see `crates/bench/specs/traffic_quick.toml` — and be
//! loaded via [`TrafficSpec::from_toml`]. No external TOML crate is
//! needed for this grammar.

/// How arrival instants are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless open-loop traffic: exponential inter-arrival times with
    /// mean `1/rate` (arrivals per virtual second).
    Poisson {
        /// Mean arrival rate λ, queries per virtual second.
        rate: f64,
    },
    /// On/off traffic: `burst` back-to-back arrivals spaced `1/rate`
    /// apart, then a silent gap of `gap` virtual seconds, repeated. Total
    /// arrival count is preserved exactly — bursts only reshape *when*
    /// the same queries arrive.
    Bursty {
        /// In-burst arrival rate, queries per virtual second.
        rate: f64,
        /// Arrivals per burst (clamped to ≥ 1).
        burst: usize,
        /// Silent seconds between bursts.
        gap: f64,
    },
}

/// Labels of the six paper workloads, in the order of
/// [`crate::suite::paper_workloads`] — the mix axis of a [`TrafficSpec`].
pub const MIX_LABELS: [&str; 6] =
    ["tpcds", "tpch-untuned", "tpch-partial", "tpch-tuned", "real1", "real2"];

/// One open-loop traffic scenario, fully determining the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Master seed: arrivals, mix draws, template draws and the driver's
    /// read-target choices all derive from it.
    pub seed: u64,
    /// Total queries to arrive (the schedule length, unless `duration`
    /// trims it).
    pub num_queries: usize,
    /// Driver-side admission window: at most this many queries in flight;
    /// excess arrivals wait in FIFO order (open-loop — arrivals never
    /// slow down).
    pub max_concurrency: usize,
    /// Zipf exponent θ over template ranks: θ = 0 spreads traffic
    /// uniformly, θ ≥ 1 concentrates it on a few hot templates.
    pub zipf_exponent: f64,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Relative weights over [`MIX_LABELS`]; zero removes a workload from
    /// the mix (its templates are never built).
    pub mix: [f64; 6],
    /// Distinct plan templates captured per workload in the mix.
    pub templates_per_workload: usize,
    /// Data scale of the template workloads (small: templates only shape
    /// the event streams, not a full evaluation).
    pub workload_scale: f64,
    /// Monitor service shards.
    pub n_shards: usize,
    /// Issue one progress/ETA read per this many sent events (0 = no
    /// reads).
    pub read_every: usize,
    /// Hot-swap the selector every this many finished queries (0 = never
    /// swap).
    pub swap_every: usize,
    /// Scrape the service's metrics registry into a
    /// [`prosel_obs::MetricsSnapshot`] every this many finished queries
    /// (0 = only the final post-drain scrape). The scrapes ride the bench
    /// trajectory; they are excluded from the deterministic digests
    /// because they carry wall-clock latency histograms.
    pub scrape_every: usize,
    /// Tap delta compression during template capture, forwarded to
    /// [`prosel_engine::ExecConfig::delta_threshold`]: plans at least this
    /// many nodes wide emit sparse [`prosel_engine::trace::TraceEvent::Delta`]
    /// events past the full-snapshot baseline (0 = always emit full
    /// snapshots).
    pub delta_threshold: usize,
    /// Optional virtual-time horizon in seconds: arrivals scheduled past
    /// it are trimmed from the schedule.
    pub duration: Option<f64>,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        TrafficSpec {
            seed: 0x007A_FF1C,
            num_queries: 10_000,
            max_concurrency: 64,
            zipf_exponent: 1.1,
            arrivals: ArrivalProcess::Poisson { rate: 500.0 },
            mix: [1.0; 6],
            templates_per_workload: 4,
            workload_scale: 0.25,
            n_shards: 4,
            read_every: 16,
            swap_every: 512,
            scrape_every: 1024,
            delta_threshold: 0,
            duration: None,
        }
    }
}

impl TrafficSpec {
    /// The CI soak profile: ≥ 10k queries over all six workloads, small
    /// template scale, a few seconds of driver wall time.
    pub fn quick() -> TrafficSpec {
        TrafficSpec::default()
    }

    /// A seconds-scale profile for smoke tests and examples.
    pub fn smoke() -> TrafficSpec {
        TrafficSpec {
            num_queries: 800,
            max_concurrency: 32,
            templates_per_workload: 2,
            swap_every: 128,
            ..TrafficSpec::default()
        }
    }

    /// The stress profile: an order of magnitude more queries, bursty
    /// arrivals.
    pub fn full() -> TrafficSpec {
        TrafficSpec {
            num_queries: 100_000,
            max_concurrency: 256,
            arrivals: ArrivalProcess::Bursty { rate: 5000.0, burst: 128, gap: 0.02 },
            templates_per_workload: 6,
            n_shards: 8,
            ..TrafficSpec::default()
        }
    }

    /// Parse the TOML subset described in the module docs. Unknown keys
    /// are errors (a typo must not silently fall back to a default);
    /// omitted keys keep their [`TrafficSpec::default`] value.
    pub fn from_toml(text: &str) -> Result<TrafficSpec, String> {
        let mut spec = TrafficSpec::default();
        // The arrival process is assembled from up to four scalar keys.
        let mut arrival_kind: Option<String> = None;
        let (mut rate, mut burst, mut gap) = (None::<f64>, None::<usize>, None::<f64>);
        let mut in_mix = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let name = section.strip_suffix(']').unwrap_or("").trim();
                match name {
                    "mix" => in_mix = true,
                    other => return Err(format!("line {}: unknown section [{other}]", lineno + 1)),
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
            // Accept both kebab-case (the documented spelling) and
            // snake_case keys.
            let key = key.trim().replace('_', "-");
            let value = value.trim().trim_matches('"');
            let err = |what: &str| format!("line {}: {what} (got {value:?})", lineno + 1);
            if in_mix {
                let slot = MIX_LABELS
                    .iter()
                    .position(|&l| l == key)
                    .ok_or_else(|| err("unknown workload in [mix]"))?;
                let w: f64 = value.parse().map_err(|_| err("mix weight must be a number"))?;
                if !w.is_finite() || w < 0.0 {
                    return Err(err("mix weight must be finite and >= 0"));
                }
                spec.mix[slot] = w;
                continue;
            }
            match key.as_str() {
                "seed" => spec.seed = value.parse().map_err(|_| err("seed must be a u64"))?,
                "num-queries" => {
                    spec.num_queries =
                        value.parse().map_err(|_| err("num-queries must be a usize"))?;
                }
                "max-concurrency" => {
                    spec.max_concurrency =
                        value.parse().map_err(|_| err("max-concurrency must be a usize"))?;
                }
                "zipf-exponent" => {
                    spec.zipf_exponent =
                        value.parse().map_err(|_| err("zipf-exponent must be a number"))?;
                }
                "arrival" => arrival_kind = Some(value.to_string()),
                "rate" => rate = Some(value.parse().map_err(|_| err("rate must be a number"))?),
                "burst" => burst = Some(value.parse().map_err(|_| err("burst must be a usize"))?),
                "gap" => gap = Some(value.parse().map_err(|_| err("gap must be a number"))?),
                "templates-per-workload" => {
                    spec.templates_per_workload =
                        value.parse().map_err(|_| err("templates-per-workload must be a usize"))?;
                }
                "workload-scale" => {
                    spec.workload_scale =
                        value.parse().map_err(|_| err("workload-scale must be a number"))?;
                }
                "shards" => {
                    spec.n_shards = value.parse().map_err(|_| err("shards must be a usize"))?;
                }
                "read-every" => {
                    spec.read_every =
                        value.parse().map_err(|_| err("read-every must be a usize"))?;
                }
                "swap-every" => {
                    spec.swap_every =
                        value.parse().map_err(|_| err("swap-every must be a usize"))?;
                }
                "scrape-every" => {
                    spec.scrape_every =
                        value.parse().map_err(|_| err("scrape-every must be a usize"))?;
                }
                "delta-threshold" => {
                    spec.delta_threshold =
                        value.parse().map_err(|_| err("delta-threshold must be a usize"))?;
                }
                "duration" => {
                    spec.duration =
                        Some(value.parse().map_err(|_| err("duration must be a number"))?);
                }
                other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
            }
        }
        let default_rate = match TrafficSpec::default().arrivals {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Bursty { rate, .. } => rate,
        };
        spec.arrivals = match arrival_kind.as_deref() {
            None | Some("poisson") => {
                ArrivalProcess::Poisson { rate: rate.unwrap_or(default_rate) }
            }
            Some("bursty") => ArrivalProcess::Bursty {
                rate: rate.unwrap_or(default_rate),
                burst: burst.unwrap_or(64),
                gap: gap.unwrap_or(0.05),
            },
            Some(other) => return Err(format!("unknown arrival process {other:?}")),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Render this spec in the grammar [`Self::from_toml`] parses
    /// (round-trip: `from_toml(to_toml(s)) == s`).
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "num-queries = {}", self.num_queries);
        let _ = writeln!(out, "max-concurrency = {}", self.max_concurrency);
        let _ = writeln!(out, "zipf-exponent = {}", self.zipf_exponent);
        match self.arrivals {
            ArrivalProcess::Poisson { rate } => {
                let _ = writeln!(out, "arrival = \"poisson\"");
                let _ = writeln!(out, "rate = {rate}");
            }
            ArrivalProcess::Bursty { rate, burst, gap } => {
                let _ = writeln!(out, "arrival = \"bursty\"");
                let _ = writeln!(out, "rate = {rate}");
                let _ = writeln!(out, "burst = {burst}");
                let _ = writeln!(out, "gap = {gap}");
            }
        }
        let _ = writeln!(out, "templates-per-workload = {}", self.templates_per_workload);
        let _ = writeln!(out, "workload-scale = {}", self.workload_scale);
        let _ = writeln!(out, "shards = {}", self.n_shards);
        let _ = writeln!(out, "read-every = {}", self.read_every);
        let _ = writeln!(out, "swap-every = {}", self.swap_every);
        let _ = writeln!(out, "scrape-every = {}", self.scrape_every);
        let _ = writeln!(out, "delta-threshold = {}", self.delta_threshold);
        if let Some(d) = self.duration {
            let _ = writeln!(out, "duration = {d}");
        }
        let _ = writeln!(out, "\n[mix]");
        for (label, w) in MIX_LABELS.iter().zip(&self.mix) {
            let _ = writeln!(out, "{label} = {w}");
        }
        out
    }

    /// Reject specs that cannot drive anything.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_queries == 0 {
            return Err("num-queries must be > 0".into());
        }
        if self.max_concurrency == 0 {
            return Err("max-concurrency must be > 0".into());
        }
        if !self.zipf_exponent.is_finite() || self.zipf_exponent < 0.0 {
            return Err("zipf-exponent must be finite and >= 0".into());
        }
        let (rate_ok, shape_ok) = match self.arrivals {
            ArrivalProcess::Poisson { rate } => (rate.is_finite() && rate > 0.0, true),
            ArrivalProcess::Bursty { rate, gap, .. } => {
                (rate.is_finite() && rate > 0.0, gap.is_finite() && gap >= 0.0)
            }
        };
        if !rate_ok {
            return Err("arrival rate must be finite and > 0".into());
        }
        if !shape_ok {
            return Err("burst gap must be finite and >= 0".into());
        }
        if self.mix.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err("mix weights must be finite and >= 0".into());
        }
        if self.mix.iter().sum::<f64>() <= 0.0 {
            return Err("at least one mix weight must be > 0".into());
        }
        if self.templates_per_workload == 0 {
            return Err("templates-per-workload must be > 0".into());
        }
        if !(self.workload_scale.is_finite() && self.workload_scale > 0.0) {
            return Err("workload-scale must be finite and > 0".into());
        }
        if self.n_shards == 0 {
            return Err("shards must be > 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_roundtrip_preserves_the_spec() {
        for spec in [TrafficSpec::smoke(), TrafficSpec::quick(), TrafficSpec::full()] {
            let parsed = TrafficSpec::from_toml(&spec.to_toml()).expect("round-trip");
            assert_eq!(parsed, spec);
        }
    }

    #[test]
    fn parses_comments_sections_and_partial_keys() {
        let text = "\
# a scenario file\n\
seed = 9 # trailing comment\n\
num_queries = 123\n\
arrival = \"bursty\"\n\
rate = 250.0\n\
burst = 10\n\
gap = 0.5\n\
\n\
[mix]\n\
tpcds = 2.0\n\
real2 = 0.0\n";
        let spec = TrafficSpec::from_toml(text).expect("parse");
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.num_queries, 123);
        assert_eq!(spec.arrivals, ArrivalProcess::Bursty { rate: 250.0, burst: 10, gap: 0.5 });
        assert_eq!(spec.mix, [2.0, 1.0, 1.0, 1.0, 1.0, 0.0]);
        // Omitted keys keep their defaults.
        assert_eq!(spec.n_shards, TrafficSpec::default().n_shards);
    }

    #[test]
    fn unknown_keys_and_bad_values_are_errors() {
        assert!(TrafficSpec::from_toml("typo-key = 1").is_err());
        assert!(TrafficSpec::from_toml("seed = not-a-number").is_err());
        assert!(TrafficSpec::from_toml("arrival = \"fractal\"").is_err());
        assert!(TrafficSpec::from_toml("[mux]\ntpcds = 1").is_err());
        assert!(TrafficSpec::from_toml("[mix]\nklingon = 1").is_err());
        assert!(TrafficSpec::from_toml("num-queries = 0").is_err(), "validate() runs on parse");
    }

    #[test]
    fn delta_threshold_round_trips_and_parses() {
        let spec = TrafficSpec { delta_threshold: 8, ..TrafficSpec::smoke() };
        assert_eq!(TrafficSpec::from_toml(&spec.to_toml()).expect("round-trip"), spec);
        let parsed = TrafficSpec::from_toml("delta-threshold = 8").expect("parse");
        assert_eq!(parsed.delta_threshold, 8);
    }

    #[test]
    fn the_checked_in_sample_spec_parses() {
        let text = include_str!("../../specs/traffic_quick.toml");
        let spec = TrafficSpec::from_toml(text).expect("sample spec must stay valid");
        assert!(spec.num_queries >= 10_000, "the quick soak drives >= 10k queries");
        assert!(spec.n_shards > 1, "the soak exercises a multi-shard service");
        assert!(spec.delta_threshold > 0, "the quick soak exercises the delta tap");
    }
}
