//! The open-loop driver: replay a schedule against a live
//! [`prosel_monitor::MonitorService`].
//!
//! The driver splits the expensive and the hot parts of the run:
//!
//! 1. **Template capture** ([`TemplateSet::build`]) executes a handful of
//!    plans per workload *once* through the real engine
//!    ([`prosel_engine::run_plan_tapped`]) and keeps their tapped event
//!    streams. This is the only place queries actually execute.
//! 2. **Replay** ([`drive`]) walks the arrival schedule in virtual time
//!    with an event-driven simulation: each arriving query is registered
//!    with the service, its template's events are re-stamped (new query
//!    id, wall clock mapped onto the arrival timeline) and interleaved
//!    with every other in-flight query's events in global time order.
//!    Millions of queries then cost event *sends*, not query executions.
//!
//! The replay thread is single and service reads are wait-free snapshots;
//! the driver quiesces the service (drains every event already sent)
//! immediately before each read it digests, so each read observes exactly
//! the events sent before it — read *values* are deterministic functions
//! of the spec and fold into [`TrafficOutcome::reads_digest`]. The
//! quiesce happens *outside* the read timer: the measured latency is the
//! wait-free read alone, which is exactly the quantity the service
//! architecture pins flat under load. Wall-clock latencies measured
//! around those reads are the run's non-deterministic, *reported* half
//! ([`super::metrics`]).

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

use prosel_core::features::FeatureSchema;
use prosel_core::pipeline_runs::PipelineRecord;
use prosel_core::selection::{EstimatorSelector, SelectorConfig};
use prosel_core::training::TrainingSet;
use prosel_datagen::TuningLevel;
use prosel_engine::clock::{Clock, ManualClock};
use prosel_engine::plan::PhysicalPlan;
use prosel_engine::trace::TraceEvent;
use prosel_engine::{run_plan_tapped, Catalog, ExecConfig};
use prosel_estimators::EstimatorKind;
use prosel_learn::{LearnConfig, OnlineLearner, Trainer};
use prosel_mart::BoostParams;
use prosel_monitor::{HarvestConfig, MonitorBuilder, MonitorConfig, ShardStats};
use prosel_obs::{MetricsRegistry, MetricsSnapshot};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::arrivals::{digest64, schedule, schedule_text, Arrival};
use super::config::TrafficSpec;
use super::metrics::{TrafficCounters, TrafficMetrics};

/// Every replayed query is re-timed so its whole event stream spans this
/// many virtual seconds: it pins the offered load (`rate ×` this) to the
/// same order of magnitude as the admission window for every profile,
/// independent of how long the captured plan really ran.
pub const TARGET_SERVICE_SECONDS: f64 = 0.05;

/// One captured plan: the plan itself plus its tapped event stream,
/// re-timed to relative virtual seconds.
struct Template {
    plan: PhysicalPlan,
    /// `(relative_time, event)` pairs, non-decreasing in time; the event's
    /// `query` / `wall` fields are placeholders until replay re-stamps
    /// them.
    events: Vec<(f64, TraceEvent)>,
}

/// The captured plan templates of every workload in the mix.
pub struct TemplateSet {
    /// Indexed by mix slot ([`MIX_LABELS`]); empty for zero-weight slots.
    per_workload: Vec<Vec<Template>>,
}

/// The paper workload behind mix slot `i`, sized for template capture.
fn template_workload(spec: &TrafficSpec, slot: usize) -> WorkloadSpec {
    let (kind, seed, tuning) = match slot {
        0 => (WorkloadKind::TpcdsLike, 12, None),
        1 => (WorkloadKind::TpchLike, 11, Some(TuningLevel::Untuned)),
        2 => (WorkloadKind::TpchLike, 11, Some(TuningLevel::PartiallyTuned)),
        3 => (WorkloadKind::TpchLike, 11, Some(TuningLevel::FullyTuned)),
        4 => (WorkloadKind::Real1, 13, None),
        _ => (WorkloadKind::Real2, 14, None),
    };
    let mut w = WorkloadSpec::new(kind, seed)
        .with_queries(spec.templates_per_workload)
        .with_scale(spec.workload_scale);
    if let Some(t) = tuning {
        w = w.with_tuning(t);
    }
    w
}

impl TemplateSet {
    /// Execute `templates_per_workload` queries of every mix-positive
    /// workload through the engine and capture their event streams. The
    /// expensive step — build once, [`drive`] as often as needed.
    pub fn build(spec: &TrafficSpec) -> TemplateSet {
        let mut per_workload = Vec::with_capacity(spec.mix.len());
        for (slot, &weight) in spec.mix.iter().enumerate() {
            if weight <= 0.0 {
                per_workload.push(Vec::new());
                continue;
            }
            let w = materialize(&template_workload(spec, slot));
            let catalog = Catalog::new(&w.db, &w.design);
            let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
            let mut templates = Vec::with_capacity(spec.templates_per_workload);
            for (qi, q) in w.queries.iter().take(spec.templates_per_workload).enumerate() {
                let plan = builder.build(q).expect("template plan");
                let (tap, rx) = channel();
                let cfg = ExecConfig {
                    seed: spec.seed ^ ((slot as u64) << 32) ^ qi as u64,
                    // Few retained snapshots: templates bound the per-query
                    // event count (and thus the soak's ingest volume).
                    max_snapshots: 16,
                    // Captured streams carry the spec's tap wire format:
                    // with a nonzero threshold the replay sends sparse
                    // Delta events instead of full snapshots.
                    delta_threshold: spec.delta_threshold,
                    ..ExecConfig::default()
                };
                let _run = run_plan_tapped(&catalog, &plan, &cfg, 0, tap);
                let raw: Vec<TraceEvent> = rx.try_iter().collect();
                templates.push(Template { plan, events: retime(raw) });
            }
            per_workload.push(templates);
        }
        TemplateSet { per_workload }
    }

    /// Templates captured for mix slot `slot`.
    fn workload(&self, slot: usize) -> &[Template] {
        &self.per_workload[slot]
    }

    /// Total captured templates across the mix.
    pub fn len(&self) -> usize {
        self.per_workload.iter().map(Vec::len).sum()
    }

    /// True when no workload contributed templates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Map a captured stream onto `[0, TARGET_SERVICE_SECONDS]` relative time.
/// `Thinned` events carry no stamp and inherit the previous event's
/// instant (they mark a buffer transformation, not an observation).
fn retime(raw: Vec<TraceEvent>) -> Vec<(f64, TraceEvent)> {
    let total = raw
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Finished { total_time, .. } => Some(*total_time),
            _ => None,
        })
        .next_back()
        .unwrap_or(0.0);
    let scale = if total > 0.0 { TARGET_SERVICE_SECONDS / total } else { 0.0 };
    let mut last = 0.0f64;
    raw.into_iter()
        .map(|ev| {
            let rel = match &ev {
                TraceEvent::Snapshot { snapshot, .. } => snapshot.time * scale,
                TraceEvent::Delta { time, .. } => time * scale,
                TraceEvent::Finished { total_time, .. } => total_time * scale,
                TraceEvent::Thinned { .. } => last,
            };
            // The engine emits snapshots in time order; keep the replay
            // monotone even under float rounding.
            last = rel.max(last);
            (last, ev)
        })
        .collect()
}

/// Re-stamp one template event for replay: the new query id, and wall
/// time mapped onto the arrival timeline (`t0` + the template-relative
/// instant).
fn restamp(ev: &TraceEvent, query: usize, wall: f64) -> TraceEvent {
    match ev {
        TraceEvent::Snapshot { seq, snapshot, windows, .. } => TraceEvent::Snapshot {
            query,
            seq: *seq,
            wall,
            snapshot: snapshot.clone(),
            windows: windows.clone(),
        },
        TraceEvent::Delta { seq, time, changes, window_updates, .. } => TraceEvent::Delta {
            query,
            seq: *seq,
            wall,
            time: *time,
            changes: changes.clone(),
            window_updates: window_updates.clone(),
        },
        TraceEvent::Thinned { .. } => TraceEvent::Thinned { query },
        TraceEvent::Finished { windows, total_time, .. } => {
            TraceEvent::Finished { query, wall, windows: windows.clone(), total_time: *total_time }
        }
    }
}

/// A cheap trained selector that always prefers `kind` (constant error
/// models make features irrelevant) — the hot-swap payload for soaks and
/// examples, where selector *quality* is beside the point.
pub fn synthetic_selector(kind: EstimatorKind) -> EstimatorSelector {
    let dims = FeatureSchema::get().len();
    let idx = kind.candidate_index().expect("candidate kind");
    let records: Vec<PipelineRecord> = (0..24)
        .map(|i| {
            let mut errors = vec![0.9f32; 8];
            errors[idx] = 0.05;
            PipelineRecord {
                workload: "syn".into(),
                query_idx: i,
                pipeline_id: 0,
                features: vec![0.0; dims],
                errors_l1: errors.clone(),
                errors_l2: errors,
                total_getnext: 10,
                weight: 1.0,
                n_obs: 10,
                fingerprint: "syn".into(),
                oracle_l1: [0.0; 2],
                oracle_l2: [0.0; 2],
            }
        })
        .collect();
    let cfg = SelectorConfig {
        candidates: vec![EstimatorKind::Dne, EstimatorKind::Tgn],
        boost: BoostParams { iterations: 4, ..BoostParams::fast() },
        ..SelectorConfig::default()
    };
    EstimatorSelector::train(&TrainingSet::from_records(&records), &cfg)
}

/// Knobs of one [`drive`] call that are not part of the schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriveOptions {
    /// Attach a harvest sink and a background [`Trainer`] that retrains
    /// on finished queries and hot-swaps promoted models concurrently
    /// with the driver — the interference scenario. Costs determinism of
    /// [`TrafficOutcome::reads_digest`] (registrations racing a trainer
    /// swap may score under either model), so soak determinism checks run
    /// with this off.
    pub retrain: bool,
}

/// Everything one replayed run produced.
pub struct TrafficOutcome {
    /// FNV-1a over the canonical schedule text — two runs of one spec
    /// must agree byte-for-byte.
    pub schedule_digest: u64,
    /// Running fold of every read's `(index, kind, query, value-bits)` —
    /// the deterministic transcript of read *values*.
    pub reads_digest: u64,
    /// Counters, latencies and violations.
    pub metrics: TrafficMetrics,
    /// Service-wide [`ShardStats`] readout taken after the last event.
    pub stats: ShardStats,
    /// Final scrape of the service's metrics registry, taken after the
    /// post-drain quiesce — the authoritative registry view the soak's
    /// conservation assertions run against.
    pub obs: MetricsSnapshot,
    /// Cadence scrapes ([`TrafficSpec::scrape_every`] finished queries
    /// apart), oldest first. Excluded from [`Self::invariant_report`] —
    /// they carry wall-clock latency histograms.
    pub obs_scrapes: Vec<MetricsSnapshot>,
}

impl TrafficOutcome {
    /// The deterministic half of the run as one comparable string:
    /// counters, digests, shard-stats fold and violations — everything
    /// except wall-clock latencies. Two runs of one spec (without
    /// [`DriveOptions::retrain`]) must return identical reports.
    pub fn invariant_report(&self) -> String {
        let c = &self.metrics.counters;
        let s = &self.stats;
        let mut out = format!(
            "schedule={:016x} reads={:016x}\n\
             arrivals={} registered={} finished={} events={} event_bytes={} reads={} swaps={} \
             queue_peak={} max_in_flight={}\n\
             shards: admitted={} refused={} ingested={} unroutable={} rejected={} dropped={} \
             finished={} harvests={} still_registered={}\n",
            self.schedule_digest,
            self.reads_digest,
            c.arrivals,
            c.registered,
            c.finished,
            c.events_sent,
            c.event_bytes,
            c.reads,
            c.swaps,
            c.queue_peak,
            c.max_in_flight,
            s.admitted,
            s.refused,
            s.events_ingested,
            s.events_unroutable,
            s.events_rejected,
            s.queries_dropped,
            s.queries_finished,
            s.harvests,
            s.registered,
        );
        if self.metrics.violations.is_empty() {
            out.push_str("violations: none\n");
        } else {
            for v in &self.metrics.violations {
                out.push_str(&format!("violation: {v}\n"));
            }
        }
        out
    }
}

/// One instant of the replay simulation.
enum SimKind {
    /// Index into the arrival schedule.
    Arrive(usize),
    /// Deliver in-flight query's event number `event_idx`.
    Step { query: usize, event_idx: usize },
}

struct SimEvent {
    at: f64,
    /// Global tiebreak: equal instants pop in schedule order.
    seq: u64,
    kind: SimKind,
}

impl PartialEq for SimEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at.to_bits() == other.at.to_bits() && self.seq == other.seq
    }
}
impl Eq for SimEvent {}
impl PartialOrd for SimEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SimEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert so the earliest instant pops
        // first, seq breaking ties FIFO.
        other.at.total_cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// State of one in-flight query.
struct InFlight {
    /// Arrival timeline origin of its re-stamped walls.
    t0: f64,
    workload: usize,
    template: usize,
}

/// Fold one 64-bit word into a running FNV-1a digest.
fn fold(h: &mut u64, word: u64) {
    for b in word.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Replay `spec`'s schedule against a fresh [`prosel_monitor::MonitorService`] built from
/// `templates`. See the module docs for the execution model and
/// [`TrafficOutcome`] for what comes back.
pub fn drive(spec: &TrafficSpec, templates: &TemplateSet) -> TrafficOutcome {
    drive_with(spec, templates, DriveOptions::default())
}

/// [`drive`] with explicit [`DriveOptions`].
pub fn drive_with(
    spec: &TrafficSpec,
    templates: &TemplateSet,
    opts: DriveOptions,
) -> TrafficOutcome {
    let arrivals = schedule(spec);
    let schedule_digest = digest64(schedule_text(&arrivals).as_bytes());

    // The serving clock is the simulation clock: the driver drags it
    // forward to each event's instant, so staleness and deadline reads
    // are answered on the same timeline as the re-stamped event walls.
    let clock = Arc::new(ManualClock::new(0.0));
    let registry = Arc::new(MetricsRegistry::new());
    let config = MonitorConfig {
        clock: Arc::clone(&clock) as Arc<dyn Clock>,
        metrics: Some(Arc::clone(&registry)),
        ..MonitorConfig::default()
    };
    let selector = Arc::new(synthetic_selector(EstimatorKind::Dne));
    let mut builder =
        MonitorBuilder::with_selector(Arc::clone(&selector)).config(config).shards(spec.n_shards);
    let mut harvest_rx = None;
    if opts.retrain {
        let (sink, rx) = channel();
        builder = builder.harvester(
            Arc::new(sink),
            HarvestConfig { label: "traffic".into(), min_observations: 3 },
        );
        harvest_rx = Some(rx);
    }
    let service = Arc::new(builder.build_service().expect("selector-policy services always build"));
    let trainer = harvest_rx.map(|rx| {
        let mut learner = OnlineLearner::new(
            Arc::clone(&selector),
            LearnConfig { retrain_every: 256, min_records: 64, ..LearnConfig::default() },
        );
        // The learner shares the service's registry and trace ring: one
        // scrape covers serving and learning.
        learner.observe(&registry, service.trace_ring().clone());
        // Publish through a weak handle: the trainer must not keep the
        // service alive, or shutdown (which disconnects the harvest
        // channel) could never run.
        let weak = Arc::downgrade(&service);
        Trainer::spawn(learner, rx, move |s| {
            if let Some(svc) = weak.upgrade() {
                let _ = svc.swap_selector(Arc::clone(s));
            }
        })
    });

    // The driver's own hot-swap rotation (satellite of the scenario: the
    // selector changes under live traffic at a fixed cadence).
    let swap_payloads = [
        Arc::new(synthetic_selector(EstimatorKind::Tgn)),
        Arc::new(synthetic_selector(EstimatorKind::Dne)),
    ];

    let tap = service.tap();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5EED_D21E);
    let mut counters = TrafficCounters { arrivals: arrivals.len() as u64, ..Default::default() };
    let mut metrics = TrafficMetrics::default();
    let mut reads_digest = 0xcbf2_9ce4_8422_2325u64;
    let mut violations: Vec<String> = Vec::new();

    let mut heap = BinaryHeap::new();
    let mut sim_seq = 0u64;
    let mut next_arrival = 0usize;
    let push = |heap: &mut BinaryHeap<SimEvent>, sim_seq: &mut u64, at: f64, kind: SimKind| {
        heap.push(SimEvent { at, seq: *sim_seq, kind });
        *sim_seq += 1;
    };
    if !arrivals.is_empty() {
        push(&mut heap, &mut sim_seq, arrivals[0].at, SimKind::Arrive(0));
        next_arrival = 1;
    }

    let mut in_flight: HashMap<usize, InFlight> = HashMap::new();
    // Insertion-ordered in-flight ids for deterministic read-target draws.
    let mut in_flight_ids: Vec<usize> = Vec::new();
    let mut id_pos: HashMap<usize, usize> = HashMap::new();
    let mut wait_queue: VecDeque<Arrival> = VecDeque::new();
    let mut last_epoch = 0u64;
    let mut read_counter = 0u64;
    let mut obs_scrapes: Vec<MetricsSnapshot> = Vec::new();
    let wall_start = Instant::now();

    // Admit one arrival at instant `now`: register, track, schedule its
    // first event.
    macro_rules! admit {
        ($a:expr, $now:expr) => {{
            let a: Arrival = $a;
            let tpl = &templates.workload(a.workload)
                [a.template.min(templates.workload(a.workload).len().saturating_sub(1))];
            match service.try_register(a.query, &tpl.plan) {
                Ok(()) => counters.registered += 1,
                Err(e) => violations.push(format!("register q{}: {e}", a.query)),
            }
            in_flight
                .insert(a.query, InFlight { t0: $now, workload: a.workload, template: a.template });
            id_pos.insert(a.query, in_flight_ids.len());
            in_flight_ids.push(a.query);
            counters.max_in_flight = counters.max_in_flight.max(in_flight.len() as u64);
            if let Some((rel, _)) = tpl.events.first() {
                push(
                    &mut heap,
                    &mut sim_seq,
                    $now + rel,
                    SimKind::Step { query: a.query, event_idx: 0 },
                );
            } else {
                // A template with no events (degenerate capture): retire
                // immediately so the query cannot leak.
                violations
                    .push(format!("template {}/{} captured no events", a.workload, a.template));
                if let Err(e) = service.unregister(a.query) {
                    violations.push(format!("unregister q{}: {e}", a.query));
                }
                remove_in_flight(&mut in_flight, &mut in_flight_ids, &mut id_pos, a.query);
            }
        }};
    }

    while let Some(SimEvent { at, kind, .. }) = heap.pop() {
        clock.advance_to(at);
        match kind {
            SimKind::Arrive(idx) => {
                if next_arrival < arrivals.len() {
                    push(
                        &mut heap,
                        &mut sim_seq,
                        arrivals[next_arrival].at,
                        SimKind::Arrive(next_arrival),
                    );
                    next_arrival += 1;
                }
                let a = arrivals[idx];
                if in_flight.len() < spec.max_concurrency {
                    admit!(a, a.at);
                } else {
                    wait_queue.push_back(a);
                    counters.queue_peak = counters.queue_peak.max(wait_queue.len() as u64);
                }
            }
            SimKind::Step { query, event_idx } => {
                let Some(fl) = in_flight.get(&query) else {
                    violations.push(format!("step for retired q{query}"));
                    continue;
                };
                let tpl = &templates.workload(fl.workload)
                    [fl.template.min(templates.workload(fl.workload).len().saturating_sub(1))];
                let (rel, ev) = &tpl.events[event_idx];
                let wall = fl.t0 + rel;
                let is_last = event_idx + 1 == tpl.events.len();
                let stamped = restamp(ev, query, wall);
                counters.event_bytes += stamped.payload_bytes() as u64;
                if tap.send(stamped).is_err() {
                    violations.push(format!("tap rejected event for q{query}"));
                }
                counters.events_sent += 1;

                if spec.read_every > 0
                    && counters.events_sent.is_multiple_of(spec.read_every as u64)
                    && !in_flight_ids.is_empty()
                {
                    let target = in_flight_ids[rng.random_range(0..in_flight_ids.len())];
                    // Drain everything sent so far (outside the timer) so
                    // the read value is a pure function of the schedule;
                    // the timed read itself is the wait-free snapshot load.
                    service.quiesce();
                    let t = Instant::now();
                    let (kind_tag, bits) = match read_counter % 3 {
                        0 => ("progress", service.query_progress(target).map(f64::to_bits)),
                        1 => (
                            "remaining",
                            service.remaining_time(target).map(|eta| eta.remaining.to_bits()),
                        ),
                        _ => (
                            "deadline",
                            service.progress_at_deadline(target, at + 1.0).map(f64::to_bits),
                        ),
                    };
                    metrics.read_latency.record(t.elapsed().as_nanos() as u64);
                    counters.reads += 1;
                    read_counter += 1;
                    match bits {
                        Ok(b) => {
                            fold(&mut reads_digest, read_counter);
                            fold(&mut reads_digest, target as u64);
                            fold(&mut reads_digest, b);
                        }
                        Err(e) => violations
                            .push(format!("{kind_tag} read of registered q{target} failed: {e}")),
                    }
                }

                if is_last {
                    // The Finished event was just sent through the tap;
                    // drain it before asserting on its effect.
                    service.quiesce();
                    match service.is_finished(query) {
                        Ok(true) => {}
                        Ok(false) => violations
                            .push(format!("q{query} not finished after its Finished event")),
                        Err(e) => violations.push(format!("finish check q{query}: {e}")),
                    }
                    if let Err(e) = service.unregister(query) {
                        violations.push(format!("unregister q{query}: {e}"));
                    }
                    remove_in_flight(&mut in_flight, &mut in_flight_ids, &mut id_pos, query);
                    counters.finished += 1;

                    if spec.scrape_every > 0
                        && counters.finished.is_multiple_of(spec.scrape_every as u64)
                    {
                        obs_scrapes.push(service.metrics());
                    }

                    if spec.swap_every > 0
                        && counters.finished.is_multiple_of(spec.swap_every as u64)
                    {
                        let payload = &swap_payloads[(counters.swaps % 2) as usize];
                        let t = Instant::now();
                        match service.swap_selector(Arc::clone(payload)) {
                            Ok(epoch) => {
                                metrics.swap_latency.record(t.elapsed().as_nanos() as u64);
                                if epoch <= last_epoch {
                                    violations.push(format!(
                                        "swap epoch not monotone: {epoch} after {last_epoch}"
                                    ));
                                }
                                last_epoch = epoch;
                                counters.swaps += 1;
                            }
                            Err(e) => violations.push(format!("swap failed: {e}")),
                        }
                    }
                    if let Some(a) = wait_queue.pop_front() {
                        admit!(a, at);
                    }
                } else {
                    push(
                        &mut heap,
                        &mut sim_seq,
                        fl.t0 + tpl.events[event_idx + 1].0,
                        SimKind::Step { query, event_idx: event_idx + 1 },
                    );
                }
            }
        }
    }
    metrics.wall_seconds = wall_start.elapsed().as_secs_f64();

    if !in_flight.is_empty() || !wait_queue.is_empty() {
        violations.push(format!(
            "drain incomplete: {} in flight, {} queued",
            in_flight.len(),
            wait_queue.len()
        ));
    }

    // Drain every event sent above before the final readout, so the
    // conservation law must be exact here.
    service.quiesce();
    let stats = match service.stats() {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("stats readout: {e}"));
            ShardStats::default()
        }
    };
    if stats.events_ingested != counters.events_sent {
        violations.push(format!(
            "event conservation broken: sent {} ingested {}",
            counters.events_sent, stats.events_ingested
        ));
    }
    if stats.events_unroutable != 0 {
        violations.push(format!("{} events were unroutable", stats.events_unroutable));
    }
    if stats.events_rejected != 0 {
        violations.push(format!("{} events rejected by dead shards", stats.events_rejected));
    }
    if stats.queries_dropped != 0 {
        violations.push(format!("{} queries defensively dropped", stats.queries_dropped));
    }
    if stats.queries_finished != counters.finished {
        violations.push(format!(
            "finish conservation broken: driver {} shards {}",
            counters.finished, stats.queries_finished
        ));
    }
    if stats.registered != 0 {
        violations.push(format!("{} queries leaked past the drain", stats.registered));
    }

    // Tear down: dropping the only strong service handle drains and joins
    // the shards, which drops the harvest sink, which ends the trainer.
    drop(tap);
    drop(service);
    if let Some(t) = trainer {
        let _ = t.join();
    }

    // The final scrape happens after the trainer joined, so the learn_*
    // series include the tail retrain (the registry outlives the service).
    let obs = registry.snapshot();

    metrics.counters = counters;
    metrics.violations = violations;
    TrafficOutcome { schedule_digest, reads_digest, metrics, stats, obs, obs_scrapes }
}

fn remove_in_flight(
    in_flight: &mut HashMap<usize, InFlight>,
    ids: &mut Vec<usize>,
    pos: &mut HashMap<usize, usize>,
    query: usize,
) {
    in_flight.remove(&query);
    if let Some(p) = pos.remove(&query) {
        ids.swap_remove(p);
        if let Some(&moved) = ids.get(p) {
            pos.insert(moved, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> TrafficSpec {
        let mut spec = TrafficSpec {
            num_queries: 96,
            max_concurrency: 8,
            templates_per_workload: 1,
            workload_scale: 0.2,
            n_shards: 2,
            read_every: 4,
            swap_every: 16,
            ..TrafficSpec::default()
        };
        // Two workloads keep template capture cheap in debug builds.
        spec.mix = [1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        spec
    }

    #[test]
    fn tiny_drive_is_clean_and_deterministic() {
        let spec = tiny_spec();
        let templates = TemplateSet::build(&spec);
        assert_eq!(templates.len(), 2);
        let a = drive(&spec, &templates);
        let b = drive(&spec, &templates);
        assert_eq!(a.metrics.violations, Vec::<String>::new());
        assert_eq!(a.metrics.counters.finished, 96);
        assert_eq!(a.metrics.counters.registered, 96);
        assert!(a.metrics.counters.reads > 0 && a.metrics.counters.swaps > 0);
        assert_eq!(a.invariant_report(), b.invariant_report());
        assert_eq!(a.reads_digest, b.reads_digest);
    }

    #[test]
    fn admission_window_is_respected() {
        let spec = TrafficSpec { max_concurrency: 2, ..tiny_spec() };
        let templates = TemplateSet::build(&spec);
        let out = drive(&spec, &templates);
        assert!(out.metrics.violations.is_empty(), "{:?}", out.metrics.violations);
        assert!(out.metrics.counters.max_in_flight <= 2);
        assert!(out.metrics.counters.queue_peak > 0, "a 2-wide window must queue");
    }

    #[test]
    fn delta_tap_soak_is_clean_cheaper_on_the_wire_and_bit_identical() {
        let full_spec = tiny_spec();
        let delta_spec = TrafficSpec { delta_threshold: 1, ..tiny_spec() };
        let full = drive(&full_spec, &TemplateSet::build(&full_spec));
        let delta = drive(&delta_spec, &TemplateSet::build(&delta_spec));
        assert_eq!(delta.metrics.violations, Vec::<String>::new());
        assert_eq!(delta.metrics.counters.finished, 96);
        // Deltas replace full snapshots 1:1 — same event count, fewer
        // bytes on the wire.
        assert_eq!(delta.metrics.counters.events_sent, full.metrics.counters.events_sent);
        assert!(
            delta.metrics.counters.event_bytes < full.metrics.counters.event_bytes,
            "delta {} B vs full {} B",
            delta.metrics.counters.event_bytes,
            full.metrics.counters.event_bytes
        );
        // The shard reconstructs the exact counter stream from deltas, so
        // every progress/ETA read returns bitwise the same value as under
        // the full-snapshot wire format.
        assert_eq!(delta.reads_digest, full.reads_digest, "delta reconstruction must be bitwise");
    }

    #[test]
    fn retrain_mode_stays_clean() {
        let spec = tiny_spec();
        let templates = TemplateSet::build(&spec);
        let out = drive_with(&spec, &templates, DriveOptions { retrain: true });
        assert_eq!(out.metrics.violations, Vec::<String>::new());
        assert_eq!(out.metrics.counters.finished, 96);
        assert!(out.stats.harvests > 0, "the sink must see finished queries");
    }

    #[test]
    fn synthetic_selectors_train_for_both_candidates() {
        for kind in [EstimatorKind::Dne, EstimatorKind::Tgn] {
            let _ = synthetic_selector(kind);
        }
    }
}
