//! Open-loop arrival schedules: a pure function of the [`TrafficSpec`].
//!
//! [`schedule`] expands a spec into the full list of [`Arrival`]s — who
//! arrives when, from which workload, using which plan template — by
//! consuming a single seeded generator sequentially. Open-loop means the
//! schedule is fixed *before* the service sees any of it: arrival instants
//! never depend on service latency, which is exactly the regime where
//! admission pressure and read-tail latency become visible.
//!
//! Determinism is a first-class contract here: two calls with equal specs
//! return byte-identical [`schedule_text`] renderings (arrival instants
//! are compared by their IEEE-754 bit patterns, not by approximate
//! equality), and [`digest64`] folds that text into a compact fingerprint
//! for cheap cross-run assertions.

use prosel_datagen::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::config::{ArrivalProcess, TrafficSpec};

/// One scheduled query arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Query id, dense from 0 in arrival order.
    pub query: usize,
    /// Arrival instant in virtual seconds from the start of the run.
    pub at: f64,
    /// Index into [`super::config::MIX_LABELS`] — which paper workload
    /// this query is drawn from.
    pub workload: usize,
    /// Zero-based template rank within the workload; template 0 is the
    /// Zipf-hottest.
    pub template: usize,
}

/// Expand a spec into its arrival schedule.
///
/// The generator stream is consumed in a fixed order per arrival
/// (inter-arrival draw, then workload draw, then template draw), so the
/// schedule is bit-reproducible from `spec.seed` alone. A `duration`
/// horizon trims arrivals scheduled past it; otherwise the schedule has
/// exactly `spec.num_queries` entries.
pub fn schedule(spec: &TrafficSpec) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipf = Zipf::new(spec.templates_per_workload as u64, spec.zipf_exponent);
    let cumulative: Vec<f64> = spec
        .mix
        .iter()
        .scan(0.0f64, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let total_weight = *cumulative.last().expect("mix is non-empty");

    let mut out = Vec::with_capacity(spec.num_queries);
    let mut t = 0.0f64;
    for query in 0..spec.num_queries {
        t = match spec.arrivals {
            ArrivalProcess::Poisson { rate } => {
                // Inverse-CDF draw of an Exp(rate) gap. The shim's f64
                // samples live in [0, 1), so 1 - u > 0 and ln is finite.
                let u: f64 = rng.random();
                t + -(1.0 - u).ln() / rate
            }
            ArrivalProcess::Bursty { rate, burst, gap } => {
                let burst = burst.max(1);
                if query == 0 {
                    0.0
                } else if query % burst == 0 {
                    // A burst boundary: the silent gap, then the next
                    // burst starts.
                    t + gap
                } else {
                    t + 1.0 / rate
                }
            }
        };
        if let Some(horizon) = spec.duration {
            if t > horizon {
                break;
            }
        }
        let dart = rng.random::<f64>() * total_weight;
        let workload = cumulative.partition_point(|&c| c <= dart).min(spec.mix.len() - 1);
        let template = (zipf.sample(&mut rng) - 1) as usize;
        out.push(Arrival { query, at: t, workload, template });
    }
    out
}

/// Render a schedule in its canonical byte form: one line per arrival,
/// `query at-bits workload template`, with the instant spelled as its
/// IEEE-754 bit pattern so equality is exact.
pub fn schedule_text(arrivals: &[Arrival]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(arrivals.len() * 32);
    for a in arrivals {
        let _ = writeln!(out, "{} {:016x} {} {}", a.query, a.at.to_bits(), a.workload, a.template);
    }
    out
}

/// FNV-1a over the bytes — a compact fingerprint for comparing schedules
/// (or any deterministic driver transcript) across runs.
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_schedules_are_strictly_ordered_and_complete() {
        let spec = TrafficSpec { num_queries: 2_000, ..TrafficSpec::default() };
        let arrivals = schedule(&spec);
        assert_eq!(arrivals.len(), 2_000);
        for (i, pair) in arrivals.windows(2).enumerate() {
            assert!(pair[0].at < pair[1].at, "arrival {i} not strictly before its successor");
        }
        assert!(arrivals.iter().enumerate().all(|(i, a)| a.query == i), "dense query ids");
    }

    #[test]
    fn bursty_preserves_count_and_respects_the_gap() {
        let spec = TrafficSpec {
            num_queries: 1_000,
            arrivals: ArrivalProcess::Bursty { rate: 1000.0, burst: 100, gap: 1.0 },
            ..TrafficSpec::default()
        };
        let arrivals = schedule(&spec);
        assert_eq!(arrivals.len(), 1_000);
        // Burst boundaries jump by the full gap; in-burst spacing is 1/rate.
        let jump = arrivals[100].at - arrivals[99].at;
        assert!((jump - 1.0).abs() < 1e-12, "gap not honoured: {jump}");
        let step = arrivals[1].at - arrivals[0].at;
        assert!((step - 0.001).abs() < 1e-12, "in-burst spacing off: {step}");
    }

    #[test]
    fn duration_trims_the_tail() {
        let spec = TrafficSpec {
            num_queries: 10_000,
            arrivals: ArrivalProcess::Poisson { rate: 100.0 },
            duration: Some(1.0),
            ..TrafficSpec::default()
        };
        let arrivals = schedule(&spec);
        assert!(!arrivals.is_empty() && arrivals.len() < 10_000);
        assert!(arrivals.iter().all(|a| a.at <= 1.0));
    }

    #[test]
    fn zero_weight_workloads_never_arrive() {
        let mut spec = TrafficSpec { num_queries: 3_000, ..TrafficSpec::default() };
        spec.mix = [1.0, 0.0, 3.0, 0.0, 0.0, 0.0];
        let arrivals = schedule(&spec);
        let mut seen = [0usize; 6];
        for a in &arrivals {
            seen[a.workload] += 1;
        }
        assert_eq!(seen[1] + seen[3] + seen[4] + seen[5], 0);
        assert!(seen[0] > 0 && seen[2] > seen[0], "weight-3 workload should dominate weight-1");
    }

    #[test]
    fn same_seed_is_byte_identical_and_different_seed_is_not() {
        let spec = TrafficSpec { num_queries: 500, ..TrafficSpec::default() };
        let a = schedule_text(&schedule(&spec));
        let b = schedule_text(&schedule(&spec));
        assert_eq!(a, b);
        assert_eq!(digest64(a.as_bytes()), digest64(b.as_bytes()));
        let other = TrafficSpec { seed: spec.seed + 1, ..spec };
        assert_ne!(a, schedule_text(&schedule(&other)));
    }
}
