//! # prosel-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation section against the simulator substrate. Each
//! experiment lives in [`experiments`] and is driven by the `experiments`
//! binary (`cargo run -p prosel-bench --bin experiments --release -- all`).
//!
//! Absolute numbers are not expected to match the paper (different
//! hardware, a simulated engine, scaled-down data); the *shape* — which
//! estimator wins where, how selection compares to individual estimators,
//! where generalization degrades — is the reproduction target, and
//! `EXPERIMENTS.md` records paper-vs-measured for every row.

pub mod experiments;
pub mod report;
pub mod suite;
pub mod traffic;

pub use report::Table;
pub use suite::{paper_workloads, ExpScale, Suite};
pub use traffic::TrafficSpec;
