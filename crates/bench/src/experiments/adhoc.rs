//! Figure 4, Table 6 and Figure 5: estimator selection for fully
//! "ad-hoc" queries — leave-one-workload-out over the six workloads, so
//! test queries (and their database) were never seen in training.
//!
//! Reports:
//! * Fig. 4 — % of pipelines for which each approach picks/is the optimal
//!   estimator (paper: DNE 31%, TGN 44%, LUO 25%; selection 55% static,
//!   64% dynamic);
//! * Table 6 — fraction of pipelines with error ratio over 2×/5×/10×;
//! * Fig. 5 — average L1/L2 progress error for the three estimators and
//!   for selection over {3, 6} candidates × {static, dynamic} features,
//!   plus the oracle-selection floor and the PMAX/SAFE worst-case
//!   estimators (§6.2 text).

use crate::report::Table;
use crate::suite::{paper_workloads, ExpScale, Suite};
use prosel_core::selection::{EstimatorSelector, SelectorConfig};
use prosel_core::training::{FeatureMode, TrainingSet};
use prosel_estimators::EstimatorKind;

struct Agg {
    l1: f64,
    l2: f64,
    opt: f64,
    r2: f64,
    r5: f64,
    r10: f64,
    n: f64,
}

impl Agg {
    fn new() -> Self {
        Agg { l1: 0.0, l2: 0.0, opt: 0.0, r2: 0.0, r5: 0.0, r10: 0.0, n: 0.0 }
    }

    fn add(&mut self, rep: &prosel_core::selection::SelectionReport) {
        let n = rep.n as f64;
        self.l1 += rep.chosen_l1 * n;
        self.l2 += rep.chosen_l2 * n;
        self.opt += rep.pct_optimal * n;
        self.r2 += rep.ratio_over_2x * n;
        self.r5 += rep.ratio_over_5x * n;
        self.r10 += rep.ratio_over_10x * n;
        self.n += n;
    }
}

pub fn run(suite: &mut Suite, scale: ExpScale) -> String {
    let specs = paper_workloads(scale);
    let all_records = suite.records_all(&specs);
    let full = TrainingSet::from_records(&all_records);
    let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();

    // The four selection variants: candidates × feature mode.
    let variants: [(&str, Vec<EstimatorKind>, FeatureMode); 4] = [
        ("SEL3 (static)", EstimatorKind::ORIGINAL.to_vec(), FeatureMode::Static),
        ("SEL3 (dynamic)", EstimatorKind::ORIGINAL.to_vec(), FeatureMode::StaticDynamic),
        ("SEL6 (static)", EstimatorKind::EXTENDED.to_vec(), FeatureMode::Static),
        ("SEL6 (dynamic)", EstimatorKind::EXTENDED.to_vec(), FeatureMode::StaticDynamic),
    ];
    let mut aggs: Vec<Agg> = variants.iter().map(|_| Agg::new()).collect();

    for label in &labels {
        let (test, train) = full.split_by(|r| &r.workload == label);
        for (vi, (_, candidates, mode)) in variants.iter().enumerate() {
            let cfg = SelectorConfig {
                candidates: candidates.clone(),
                mode: *mode,
                boost: crate::suite::harness_boost(),
            };
            let sel = EstimatorSelector::train(&train, &cfg);
            let rep = sel.evaluate(&test);
            aggs[vi].add(&rep);
        }
    }

    let mut out = String::new();

    // ---- Figure 4: % optimal ----------------------------------------
    let three = EstimatorKind::ORIGINAL;
    let mut fig4 = Table::new(
        "Figure 4 — % of pipelines where the approach is/picks the optimal of {DNE,TGN,LUO}",
        &["approach", "% optimal"],
    );
    for k in three {
        fig4.row_pct(k.name(), &[full.pct_optimal(k, &three, 1e-4)]);
    }
    fig4.row_pct("EST. SEL. (static)", &[aggs[0].opt / aggs[0].n]);
    fig4.row_pct("EST. SEL. (dynamic)", &[aggs[1].opt / aggs[1].n]);
    out.push_str(&fig4.render());
    out.push_str("paper: DNE 31%, TGN 44%, LUO 25%; selection 55% (static), 64% (dynamic).\n\n");

    // ---- Table 6: ratio tails ----------------------------------------
    let mut t6 = Table::new(
        "Table 6 — % pipelines with (error / best-of-candidates) above 2x / 5x / 10x",
        &["approach", ">2x", ">5x", ">10x"],
    );
    // Fixed estimators, ratio vs best of the three.
    for k in three.iter() {
        let mut over = [0usize; 3];
        for r in &full.records {
            let min = three
                .iter()
                .map(|kk| r.errors_l1[kk.candidate_index().unwrap()])
                .fold(f32::INFINITY, f32::min)
                .max(1e-9);
            let ratio = r.errors_l1[k.candidate_index().unwrap()] / min;
            if ratio > 2.0 {
                over[0] += 1;
            }
            if ratio > 5.0 {
                over[1] += 1;
            }
            if ratio > 10.0 {
                over[2] += 1;
            }
        }
        let n = full.len() as f64;
        t6.row_pct(k.name(), &[over[0] as f64 / n, over[1] as f64 / n, over[2] as f64 / n]);
    }
    t6.row_pct(
        "EST. SEL. (ST)",
        &[aggs[0].r2 / aggs[0].n, aggs[0].r5 / aggs[0].n, aggs[0].r10 / aggs[0].n],
    );
    t6.row_pct(
        "EST. SEL. (DY)",
        &[aggs[1].r2 / aggs[1].n, aggs[1].r5 / aggs[1].n, aggs[1].r10 / aggs[1].n],
    );
    out.push_str(&t6.render());
    out.push_str(
        "paper: DNE 23.6/7.8/1.6, TGN 26.7/14.5/8.9, LUO 27.3/11.4/5.0,\n\
         SEL(ST) 13.2/3.7/1.0, SEL(DY) 6.3/0.8/0.3 (percent).\n\n",
    );

    // ---- Figure 5: average L1/L2 --------------------------------------
    let mut fig5 = Table::new(
        "Figure 5 — average progress-estimation error (leave-one-workload-out)",
        &["approach", "avg L1", "avg L2"],
    );
    for k in three {
        fig5.row_f(k.name(), &[full.mean_l1(k), full.mean_l2(k)], 4);
    }
    for (vi, (name, _, _)) in variants.iter().enumerate() {
        fig5.row_f(name, &[aggs[vi].l1 / aggs[vi].n, aggs[vi].l2 / aggs[vi].n], 4);
    }
    fig5.row_f("oracle over 3", &[full.oracle_l1(&EstimatorKind::ORIGINAL), f64::NAN], 4);
    fig5.row_f("oracle over 6", &[full.oracle_l1(&EstimatorKind::EXTENDED), f64::NAN], 4);
    // §6.2 text: worst-case estimators are impractical.
    fig5.row_f("PMAX", &[full.mean_l1(EstimatorKind::Pmax), full.mean_l2(EstimatorKind::Pmax)], 4);
    fig5.row_f("SAFE", &[full.mean_l1(EstimatorKind::Safe), full.mean_l2(EstimatorKind::Safe)], 4);
    out.push_str(&fig5.render());
    out.push_str(
        "paper L1: DNE .1748 TGN .1463 LUO .1616 | SEL3 .1410(st)/.1294(dy)\n\
         | SEL6 .1275(st)/.1271(dy); PMAX 0.50, SAFE 0.40; oracle 0.109/0.099.\n",
    );

    println!("{out}");
    out
}
