//! Extension experiment: wall-clock ETA accuracy of the monitor's
//! remaining-time serving (ISSUE 4 / ROADMAP "remaining-time conversion").
//!
//! Every query of a workload sample is executed tapped; the event stream
//! is re-stamped with **wall ≡ virtual time** (one virtual tick = one
//! second), which makes ground truth exact and the whole experiment
//! deterministic: at a snapshot taken at virtual time `t` of a query with
//! total virtual time `T`, the true remaining time is `T − t`. A
//! [`prosel_monitor::ProgressMonitor`] per estimator kind ingests the stream and serves
//! [`prosel_monitor::Eta`] answers whose point estimates are scored as
//! ratio error `max(pred/true, true/pred)` — the metric the paper uses for
//! worst-case progress error, applied to the remaining-time conversion —
//! and whose intervals are scored by *coverage*: how often
//! `[remaining_lo, remaining_hi]` brackets the truth.
//!
//! What to expect: ETA error tracks the underlying estimator's progress
//! error (the speed window converts both faithfully), the interval
//! widens exactly where speed is unstable (pipeline transitions), and
//! coverage is well below 100% — the interval brackets *observed speed
//! variation*, not future regime changes, which is the honest limit of
//! trailing-window estimation (cf. arXiv:1707.01880 in PAPERS.md).

use crate::report::Table;
use crate::suite::{ExpScale, Suite};
use prosel_engine::{run_plan_tapped, Catalog, ExecConfig, TraceEvent};
use prosel_estimators::EstimatorKind;
use prosel_monitor::MonitorBuilder;
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;

const KINDS: [EstimatorKind; 4] =
    [EstimatorKind::Dne, EstimatorKind::Tgn, EstimatorKind::Luo, EstimatorKind::TgnInt];

/// Re-stamp an event with wall ≡ virtual time, the experiment's
/// deterministic timeline.
fn virtualize_wall(ev: &TraceEvent) -> TraceEvent {
    match ev {
        TraceEvent::Snapshot { query, seq, snapshot, windows, .. } => TraceEvent::Snapshot {
            query: *query,
            seq: *seq,
            wall: snapshot.time,
            snapshot: snapshot.clone(),
            windows: windows.clone(),
        },
        TraceEvent::Delta { query, seq, time, changes, window_updates, .. } => TraceEvent::Delta {
            query: *query,
            seq: *seq,
            wall: *time,
            time: *time,
            changes: changes.clone(),
            window_updates: window_updates.clone(),
        },
        TraceEvent::Thinned { query } => TraceEvent::Thinned { query: *query },
        TraceEvent::Finished { query, windows, total_time, .. } => TraceEvent::Finished {
            query: *query,
            wall: *total_time,
            windows: windows.clone(),
            total_time: *total_time,
        },
    }
}

#[derive(Default)]
struct Score {
    ratios: Vec<f64>,
    covered: usize,
    points: usize,
}

impl Score {
    fn mean(&self) -> f64 {
        self.ratios.iter().sum::<f64>() / self.ratios.len().max(1) as f64
    }

    fn quantile(&mut self, q: f64) -> f64 {
        if self.ratios.is_empty() {
            return f64::NAN;
        }
        self.ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let idx = ((self.ratios.len() - 1) as f64 * q).round() as usize;
        self.ratios[idx]
    }

    fn coverage(&self) -> f64 {
        self.covered as f64 / self.points.max(1) as f64
    }
}

pub fn run(_suite: &mut Suite, scale: ExpScale) -> String {
    let (n_workloads, queries) = match scale {
        ExpScale::Smoke => (2usize, 8usize),
        ExpScale::Quick => (3, 16),
        ExpScale::Full => (6, 40),
    };
    let specs: Vec<WorkloadSpec> = [
        WorkloadSpec::new(WorkloadKind::TpchLike, 0xE7A1),
        WorkloadSpec::new(WorkloadKind::TpcdsLike, 0xE7A2),
        WorkloadSpec::new(WorkloadKind::Real1, 0xE7A3),
        WorkloadSpec::new(WorkloadKind::Real2, 0xE7A4),
        WorkloadSpec::new(WorkloadKind::TpchLike, 0xE7A5),
        WorkloadSpec::new(WorkloadKind::TpcdsLike, 0xE7A6),
    ]
    .into_iter()
    .take(n_workloads)
    .map(|s| s.with_queries(queries))
    .collect();

    let mut out = String::new();
    let mut table = Table::new(
        "Extension — ETA accuracy vs ground-truth remaining time (wall ≡ virtual clock)",
        &["workload", "estimator", "points", "mean", "p50", "p90", "coverage"],
    );
    let mut total_points = 0usize;
    for spec in &specs {
        let w = materialize(spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        let mut scores: Vec<Score> = KINDS.iter().map(|_| Score::default()).collect();
        for (qi, query) in w.queries.iter().enumerate() {
            let plan = builder.build(query).expect("plan");
            let (tap, rx) = std::sync::mpsc::channel();
            let cfg = ExecConfig { seed: 0xE7A + qi as u64, ..ExecConfig::default() };
            let run = run_plan_tapped(&catalog, &plan, &cfg, qi, tap);
            let events: Vec<TraceEvent> = rx.try_iter().map(|ev| virtualize_wall(&ev)).collect();
            let total = run.trace.total_time;
            if total <= 0.0 {
                continue;
            }
            // Endgame snapshots where the truth itself is ~0 measure
            // nothing but division noise; score the body of the run.
            let floor = 0.02 * total;
            for (ki, kind) in KINDS.iter().enumerate() {
                let mut monitor = MonitorBuilder::fixed(*kind)
                    .build_monitor()
                    .expect("only online kinds are scored");
                monitor.register(qi, &plan);
                for ev in &events {
                    let truth = match ev {
                        TraceEvent::Snapshot { snapshot, .. } => total - snapshot.time,
                        TraceEvent::Delta { time, .. } => total - time,
                        _ => {
                            monitor.ingest(ev.clone());
                            continue;
                        }
                    };
                    monitor.ingest(ev.clone());
                    let eta = monitor.remaining_time(qi).expect("registered");
                    if !eta.is_known() || truth < floor {
                        continue;
                    }
                    let score = &mut scores[ki];
                    score.points += 1;
                    // Guard both sides: a pinned-to-1.0 estimate mid-run
                    // serves remaining 0, which the epsilon keeps finite.
                    let eps = 1e-3 * total;
                    let (p, t) = (eta.remaining.max(eps), truth.max(eps));
                    score.ratios.push((p / t).max(t / p));
                    if eta.remaining_lo - 1e-9 <= truth && truth <= eta.remaining_hi + 1e-9 {
                        score.covered += 1;
                    }
                }
            }
        }
        for (ki, kind) in KINDS.iter().enumerate() {
            let s = &mut scores[ki];
            total_points += s.points;
            table.row(&[
                spec.label(),
                kind.name().to_string(),
                s.points.to_string(),
                format!("{:.3}", s.mean()),
                format!("{:.3}", s.quantile(0.5)),
                format!("{:.3}", s.quantile(0.9)),
                format!("{:.1}%", s.coverage() * 100.0),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "{total_points} scored (estimator, snapshot) points; ratio = max(pred/true, true/pred)\n\
         over remaining time, scored while true remaining ≥ 2% of the run; coverage = how\n\
         often [remaining_lo, remaining_hi] bracketed the truth. Wall ≡ virtual clock, so\n\
         ETA error isolates estimator quality from host timing noise and the experiment is\n\
         deterministic.\n",
    ));
    println!("{out}");
    out
}
