//! Design-choice ablations called out in DESIGN.md.
//!
//! * **Regression vs classification** — the paper (§4.1) models the
//!   *error magnitude* of each estimator instead of classifying the best
//!   one, so catastrophic mis-selections are penalized. The ablation
//!   trains an indicator ("is this estimator the best?") classifier with
//!   the same MART machinery and compares.
//! * **Static-weight combination** — the paper's negative result: a fixed
//!   weighted combination of estimators is brittle because the weights
//!   track the training workload's mix of query types. The ablation fits
//!   least-squares weights over the six estimator curves on two different
//!   training workloads and shows both the weight instability and the
//!   test-error degradation.

use crate::report::Table;
use crate::suite::{paper_workloads, ExpScale, Suite};
use prosel_core::selection::{EstimatorSelector, SelectorConfig};
use prosel_core::training::{FeatureMode, TrainingSet};
use prosel_datagen::TuningLevel;
use prosel_engine::{run_plan, Catalog, ExecConfig};
use prosel_estimators::{l1_error, EstimatorKind, PipelineObs, TraceCtx};
use prosel_mart::{Dataset, Mart};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;

/// Regression (predict error, take argmin) vs classification (predict
/// is-best indicator, take argmax).
pub fn run_classification(suite: &mut Suite, scale: ExpScale) -> String {
    let specs = paper_workloads(scale);
    let all = suite.records_all(&specs);
    let full = TrainingSet::from_records(&all);
    let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
    let candidates = EstimatorKind::EXTENDED;
    let dims = FeatureMode::StaticDynamic.dims();

    let mut reg_l1 = 0.0;
    let mut cls_l1 = 0.0;
    let mut reg_opt = 0.0;
    let mut cls_opt = 0.0;
    let mut n = 0.0;
    for label in &labels {
        let (test, train) = full.split_by(|r| &r.workload == label);

        // Regression selection (the paper's design).
        let cfg = SelectorConfig {
            candidates: candidates.to_vec(),
            mode: FeatureMode::StaticDynamic,
            boost: crate::suite::harness_boost(),
        };
        let sel = EstimatorSelector::train(&train, &cfg);
        let rep = sel.evaluate(&test);
        reg_l1 += rep.chosen_l1 * rep.n as f64;
        reg_opt += rep.pct_optimal * rep.n as f64;

        // One-vs-rest classification with the same learner.
        let classifiers: Vec<Mart> = candidates
            .iter()
            .map(|&k| {
                let ci = k.candidate_index().unwrap();
                let mut data = Dataset::new(dims);
                for r in &train.records {
                    let best = r.best_candidate();
                    data.push(&r.features[..dims], if best == ci { 1.0 } else { 0.0 });
                }
                Mart::train(&data, &crate::suite::harness_boost())
            })
            .collect();
        for r in &test.records {
            let scores: Vec<f32> =
                classifiers.iter().map(|m| m.predict(&r.features[..dims])).collect();
            let pick = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            let ci = candidates[pick].candidate_index().unwrap();
            cls_l1 += r.errors_l1[ci] as f64;
            let min = candidates
                .iter()
                .map(|k| r.errors_l1[k.candidate_index().unwrap()])
                .fold(f32::INFINITY, f32::min);
            if r.errors_l1[ci] <= min + 1e-4 {
                cls_opt += 1.0;
            }
        }
        n += test.len() as f64;
    }

    let mut table = Table::new(
        "Ablation — selection as regression (paper) vs classification",
        &["setup", "avg L1", "% optimal"],
    );
    table.row(&[
        "error regression (argmin)".into(),
        format!("{:.4}", reg_l1 / n),
        format!("{:.1}%", reg_opt / n * 100.0),
    ]);
    table.row(&[
        "is-best classification (argmax)".into(),
        format!("{:.4}", cls_l1 / n),
        format!("{:.1}%", cls_opt / n * 100.0),
    ]);
    let mut out = table.render();
    out.push_str(
        "paper §4.1: regression is preferred because it models error *size*,\n\
         minimizing the cost of inevitable mis-selections.\n",
    );
    println!("{out}");
    out
}

/// Solve the 6×6 normal equations (Gaussian elimination, partial pivot).
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot =
            (col..n).max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (v, &p) in rest[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *v -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

/// Fit least-squares weights over the six estimator curves of a workload.
fn fit_weights(spec: &WorkloadSpec) -> Vec<f64> {
    let kinds = EstimatorKind::EXTENDED;
    let w = materialize(spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let mut ata = vec![vec![0.0f64; kinds.len()]; kinds.len()];
    let mut atb = vec![0.0f64; kinds.len()];
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let run = run_plan(&catalog, &plan, &ExecConfig { seed: qi as u64, ..Default::default() });
        let ctx = TraceCtx::new(&run);
        for pid in 0..run.pipelines.len() {
            let Some(obs) = PipelineObs::with_ctx(&run, pid, &ctx) else { continue };
            if obs.len() < 5 {
                continue;
            }
            let truth = obs.truth();
            let curves: Vec<Vec<f64>> = kinds.iter().map(|&k| obs.curve(k)).collect();
            for j in 0..obs.len() {
                for a in 0..kinds.len() {
                    for b in 0..kinds.len() {
                        ata[a][b] += curves[a][j] * curves[b][j];
                    }
                    atb[a] += curves[a][j] * truth[j];
                }
            }
        }
    }
    solve(ata, atb).unwrap_or_else(|| vec![1.0 / kinds.len() as f64; kinds.len()])
}

/// Error of the weighted-combination estimator on a workload.
fn combo_error(spec: &WorkloadSpec, weights: &[f64]) -> (f64, usize) {
    let kinds = EstimatorKind::EXTENDED;
    let w = materialize(spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let mut sum = 0.0;
    let mut n = 0usize;
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder.build(q).expect("plan");
        let run = run_plan(&catalog, &plan, &ExecConfig { seed: qi as u64, ..Default::default() });
        let ctx = TraceCtx::new(&run);
        for pid in 0..run.pipelines.len() {
            let Some(obs) = PipelineObs::with_ctx(&run, pid, &ctx) else { continue };
            if obs.len() < 5 {
                continue;
            }
            let truth = obs.truth();
            let curves: Vec<Vec<f64>> = kinds.iter().map(|&k| obs.curve(k)).collect();
            let combined: Vec<f64> = (0..obs.len())
                .map(|j| {
                    curves.iter().zip(weights).map(|(c, &w)| c[j] * w).sum::<f64>().clamp(0.0, 1.0)
                })
                .collect();
            sum += l1_error(&combined, &truth);
            n += 1;
        }
    }
    (sum / n.max(1) as f64, n)
}

/// Static-weight combination (the paper's §4.1 negative result).
pub fn run_combination(_suite: &mut Suite, scale: ExpScale) -> String {
    let q = match scale {
        ExpScale::Smoke => 40,
        ExpScale::Quick => 120,
        ExpScale::Full => 300,
    };
    // Two training mixes with very different query-type frequencies.
    let train_scan = WorkloadSpec::new(WorkloadKind::TpchLike, 31)
        .with_queries(q)
        .with_tuning(TuningLevel::Untuned);
    let train_nlj = WorkloadSpec::new(WorkloadKind::TpchLike, 31)
        .with_queries(q)
        .with_skew(2.0)
        .with_tuning(TuningLevel::FullyTuned);
    let test = WorkloadSpec::new(WorkloadKind::Real1, 33).with_queries(q);

    let w_scan = fit_weights(&train_scan);
    let w_nlj = fit_weights(&train_nlj);
    let (e_scan, n) = combo_error(&test, &w_scan);
    let (e_nlj, _) = combo_error(&test, &w_nlj);
    // Baseline: the single best estimator on the test workload.
    let kinds = EstimatorKind::EXTENDED;
    let mut unit = vec![0.0; kinds.len()];
    let mut best_single = f64::INFINITY;
    let mut best_name = "";
    for (i, k) in kinds.iter().enumerate() {
        unit.iter_mut().for_each(|v| *v = 0.0);
        unit[i] = 1.0;
        let (e, _) = combo_error(&test, &unit);
        if e < best_single {
            best_single = e;
            best_name = k.name();
        }
    }

    let mut out = String::new();
    let mut t = Table::new(
        "Ablation — static-weight estimator combination (paper §4.1 negative result)",
        &["fit on", "DNE", "TGN", "LUO", "BATCHDNE", "DNESEEK", "TGNINT", "test L1"],
    );
    let mut row = |label: &str, w: &[f64], e: f64| {
        let mut cells = vec![label.to_string()];
        cells.extend(w.iter().map(|v| format!("{v:+.2}")));
        cells.push(format!("{e:.4}"));
        t.row(&cells);
    };
    row("scan-heavy workload", &w_scan, e_scan);
    row("NLJ-heavy workload", &w_nlj, e_nlj);
    out.push_str(&t.render());
    out.push_str(&format!(
        "test pipelines: {n}; best single estimator on test: {best_name} (L1 {best_single:.4}).\n\
         paper: combination weights fluctuate with the training mix (e.g. DNE's\n\
         weight tracks the frequency of nested-loop queries) and the combined\n\
         estimator is not robust under workload shift — selection is.\n",
    ));
    println!("{out}");
    out
}
