//! One module per table/figure of the paper's evaluation (Section 6),
//! plus the design-choice ablations DESIGN.md calls out.
//!
//! Every experiment has the signature
//! `run(suite: &mut Suite, scale: ExpScale) -> String`, printing and
//! returning its report.

pub mod ablation;
pub mod adhoc;
pub mod curves;
pub mod drift;
pub mod eta;
pub mod fig1;
pub mod importance;
pub mod multiquery;
pub mod online_learning;
pub mod refinement;
pub mod sensitivity;
pub mod table1;
pub mod table7;
pub mod table8;
pub mod traffic;
pub mod validate;

use crate::suite::{ExpScale, Suite};

/// All experiment names in paper order.
pub const ALL: &[&str] = &[
    "fig1",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig4",
    "table6",
    "fig5",
    "fig6",
    "fig7",
    "table7",
    "feature-importance",
    "table8",
    "validate-models",
    "ablate-classification",
    "ablate-combination",
    "ablate-refinement",
    "multiquery",
    "eta-accuracy",
    "online-learning",
    "drift",
    "traffic-soak",
];

/// Dispatch one experiment by name.
pub fn run_one(name: &str, suite: &mut Suite, scale: ExpScale) -> Option<String> {
    let out = match name {
        "fig1" => fig1::run(suite, scale),
        "table1" => table1::run(suite, scale),
        "table2" => sensitivity::run_table2(suite, scale),
        "table3" => sensitivity::run_table3(suite, scale),
        "table4" => sensitivity::run_table4(suite, scale),
        "table5" => sensitivity::run_table5(suite, scale),
        "fig4" | "table6" | "fig5" => adhoc::run(suite, scale),
        "fig6" => curves::run_fig6(suite, scale),
        "fig7" => curves::run_fig7(suite, scale),
        "table7" => table7::run(suite, scale),
        "feature-importance" => importance::run(suite, scale),
        "table8" => table8::run(suite, scale),
        "validate-models" => validate::run(suite, scale),
        "ablate-classification" => ablation::run_classification(suite, scale),
        "ablate-combination" => ablation::run_combination(suite, scale),
        "ablate-refinement" => refinement::run(suite, scale),
        "multiquery" => multiquery::run(suite, scale),
        "eta-accuracy" | "eta_accuracy" => eta::run(suite, scale),
        "online-learning" | "online_learning" => online_learning::run(suite, scale),
        "drift" => drift::run(suite, scale),
        "traffic-soak" | "traffic_soak" | "traffic" => traffic::run(suite, scale),
        _ => return None,
    };
    Some(out)
}
