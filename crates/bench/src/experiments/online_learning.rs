//! Extension experiment: the **closed online-learning loop** (ISSUE 5 /
//! ROADMAP "feeding the switch history back as a training signal").
//!
//! The realistic cold-start situation: a selector bootstrapped on one
//! distribution (a small TPC-H-like slice) serves traffic from another
//! (TPC-DS-like). Each feedback round executes a batch of production
//! queries *tapped* through a harvesting [`prosel_monitor::ProgressMonitor`], the
//! harvested records feed the [`OnlineLearner`] (bounded reservoir
//! buffer, deterministic holdout, guarded promotion), the promoted model is
//! hot-swapped into the monitor ([`prosel_monitor::ProgressMonitor::swap_selector`] — new
//! registrations only), and the held-out selection L1 of the currently
//! served model is scored against a *batch-collected* held-out workload
//! the loop never trains on.
//!
//! What to expect: held-out selection L1 falls (or, in the worst round,
//! stays flat — guarded promotion turns "the feedback round produced a
//! worse model" into "no change") from the bootstrap baseline towards the
//! in-distribution ceiling; the whole run is deterministic under the
//! fixed seeds, and CI tracks the after-feedback L1 in `BENCH_<sha>.json`
//! via [`append_metric_sample`].

use crate::report::{append_metric_sample, Table};
use crate::suite::{ExpScale, Suite};
use prosel_core::selection::{EstimatorSelector, SelectorConfig};
use prosel_core::training::TrainingSet;
use prosel_engine::{run_plan_tapped, Catalog, ExecConfig};
use prosel_learn::{BufferConfig, LearnConfig, OnlineLearner};
use prosel_mart::BoostParams;
use prosel_monitor::{HarvestConfig, MonitorBuilder};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;
use std::sync::Arc;

pub fn run(suite: &mut Suite, scale: ExpScale) -> String {
    let (rounds, queries_per_round, bootstrap_q, heldout_q) = match scale {
        ExpScale::Smoke => (3usize, 24usize, 8usize, 32usize),
        ExpScale::Quick => (4, 40, 10, 48),
        ExpScale::Full => (6, 80, 16, 96),
    };
    // A deliberately shallow bootstrap: few out-of-distribution records,
    // few boosting rounds — the cold-start model the loop exists to fix.
    let boost = BoostParams { iterations: 8, ..BoostParams::fast() };

    // Bootstrap distribution: TPC-H-like. Production + held-out: TPC-DS-
    // like (different seeds for feedback vs held-out — the loop never
    // sees the held-out queries).
    let bootstrap = WorkloadSpec::new(WorkloadKind::TpchLike, 0x0B00).with_queries(bootstrap_q);
    let heldout = WorkloadSpec::new(WorkloadKind::TpcdsLike, 0x0D05).with_queries(heldout_q);
    let baseline = Arc::new(EstimatorSelector::train(
        &TrainingSet::from_records(suite.records(&bootstrap)),
        &SelectorConfig { boost: boost.clone(), ..SelectorConfig::default() },
    ));
    let held = TrainingSet::from_records(suite.records(&heldout));
    let baseline_l1 = baseline.evaluate(&held).chosen_l1;

    let mut learner = OnlineLearner::new(
        Arc::clone(&baseline),
        LearnConfig {
            buffer: BufferConfig { capacity: 2048, group_quota: 32, ..BufferConfig::default() },
            retrain_every: 0, // one explicit retrain per feedback round
            holdout_every: 3,
            min_records: 16,
            warm_trees: 32,
            ..LearnConfig::default()
        },
    );

    // One long-lived harvesting monitor; each round's registrations pick
    // up whatever the loop promoted last (the hot-swap path).
    let (sink, harvest_rx) = std::sync::mpsc::channel();
    let mut monitor = MonitorBuilder::with_selector(Arc::clone(&baseline))
        .harvester(Arc::new(sink), HarvestConfig { label: "prod".into(), min_observations: 5 })
        .build_monitor()
        .expect("selector-policy monitors always build");

    let mut table = Table::new(
        "Extension — online-learning loop: held-out selection L1 per feedback round",
        &["round", "harvested", "buffer", "epoch", "promoted", "val L1", "held-out L1"],
    );
    table.row(&[
        "boot".into(),
        "-".into(),
        "0".into(),
        "0".into(),
        "-".into(),
        "-".into(),
        format!("{baseline_l1:.4}"),
    ]);

    let mut epoch = 0u64;
    for round in 0..rounds {
        let spec = WorkloadSpec::new(WorkloadKind::TpcdsLike, 0x0D10 + round as u64)
            .with_queries(queries_per_round);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        for (qi, q) in w.queries.iter().enumerate() {
            let query_id = round * 100_000 + qi;
            let plan = builder.build(q).expect("plan");
            let (tap, events) = std::sync::mpsc::channel();
            monitor.register(query_id, &plan);
            let cfg = ExecConfig { seed: 0x0D0 ^ query_id as u64, ..ExecConfig::default() };
            let _run = run_plan_tapped(&catalog, &plan, &cfg, query_id, tap);
            monitor.drain(&events);
            // Result consumed; free the state.
            monitor.unregister(query_id).expect("query was registered above");
        }
        let mut harvested = 0usize;
        for h in harvest_rx.try_iter() {
            harvested += h.records.len();
            learner.absorb(&h);
        }
        let outcome = learner.retrain();
        if outcome.promoted {
            epoch = monitor.swap_selector(learner.current());
        }
        let current_l1 = learner.current().evaluate(&held).chosen_l1;
        table.row(&[
            round.to_string(),
            harvested.to_string(),
            learner.buffer().len().to_string(),
            epoch.to_string(),
            if outcome.promoted { "yes".into() } else { "no".into() },
            if outcome.validation > 0 {
                format!("{:.4}", outcome.candidate_l1)
            } else {
                "-".into()
            },
            format!("{current_l1:.4}"),
        ]);
    }

    let final_l1 = learner.current().evaluate(&held).chosen_l1;
    let stats = learner.stats();
    let mut out = table.render();
    out.push_str(&format!(
        "bootstrap {} on {}; feedback+held-out on {} (disjoint seeds). Guarded promotion:\n\
         {} retrains, {} promoted, {} rejected. Held-out selection L1 {:.4} -> {:.4}\n\
         ({}; the guard makes 'worse than baseline' impossible on the validation slice,\n\
         and the whole loop is deterministic under the fixed seeds).\n",
        bootstrap.label(),
        "tpch-like bootstrap records",
        heldout.label(),
        stats.retrains,
        stats.promotions,
        stats.rejections,
        baseline_l1,
        final_l1,
        if final_l1 <= baseline_l1 { "improved or equal" } else { "regressed" },
    ));
    append_metric_sample("experiment/online-learning/heldout_l1_baseline", baseline_l1);
    append_metric_sample("experiment/online-learning/heldout_l1_after_feedback", final_l1);
    append_metric_sample(
        "experiment/online-learning/heldout_l1_improvement",
        baseline_l1 - final_l1,
    );
    println!("{out}");
    out
}
