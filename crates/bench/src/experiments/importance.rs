//! Section 6.5: feature importance via greedy forward selection, plus
//! the gain ranking of the trained error models.
//!
//! Paper findings: the first selected feature is `SelBelow_NL Join`
//! (relative input volume of nested-loop operators), the second a
//! time-correlation feature of DNESEEK, the third `SelAtDN`; of the next
//! ten, seven are dynamic (six of them time-correlations).

use crate::report::Table;
use crate::suite::{paper_workloads, ExpScale, Suite};
use prosel_core::features::FeatureSchema;
use prosel_core::selection::{EstimatorSelector, SelectorConfig};
use prosel_core::training::{FeatureMode, TrainingSet};
use prosel_estimators::EstimatorKind;
use prosel_mart::{greedy_forward_selection, BoostParams, Dataset};

pub fn run(suite: &mut Suite, scale: ExpScale) -> String {
    let records = suite.records_all(&paper_workloads(match scale {
        ExpScale::Full => ExpScale::Quick, // greedy selection is O(rounds·d) trainings
        s => s,
    }));
    let ts = TrainingSet::from_records(&records);
    let schema = FeatureSchema::get();

    // ---- Greedy forward selection over the mean-of-candidates error ----
    // (the paper runs selection for the regression models; we target the
    // error of the overall best-candidate choice signal: the minimum
    // candidate error, which captures "what makes pipelines hard").
    // We also run it for the DNE-error model specifically.
    let cap = match scale {
        ExpScale::Smoke => 400,
        _ => 1200,
    };
    let rounds = match scale {
        ExpScale::Smoke => 5,
        _ => 8,
    };
    let full = ts.dataset_for(EstimatorKind::Dne, FeatureMode::StaticDynamic);
    let mut train = Dataset::new(full.n_features());
    let mut hold = Dataset::new(full.n_features());
    for i in 0..full.len().min(cap) {
        if i % 4 == 0 {
            hold.push(full.row(i), full.target(i));
        } else {
            train.push(full.row(i), full.target(i));
        }
    }
    let steps = greedy_forward_selection(&train, &hold, rounds, &BoostParams::fast());

    let mut out = String::new();
    let mut t = Table::new(
        "§6.5 — greedy forward feature selection (DNE-error model)",
        &["round", "feature", "holdout MSE"],
    );
    for (i, s) in steps.iter().enumerate() {
        t.row(&[format!("{}", i + 1), schema.name(s.feature).to_string(), format!("{:.5}", s.mse)]);
    }
    out.push_str(&t.render());

    // ---- Gain importance of the full six-model selector ----------------
    let cfg = SelectorConfig::default();
    let selector = EstimatorSelector::train(&ts, &cfg);
    let mut gains = vec![0.0f64; schema.len()];
    for kind in EstimatorKind::EXTENDED {
        if let Some(m) = selector.model(kind) {
            for (f, g) in m.feature_gain.iter().enumerate() {
                gains[f] += g;
            }
        }
    }
    let mut ranked: Vec<(usize, f64)> = gains.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let total: f64 = ranked.iter().map(|(_, g)| g).sum();
    let mut t2 = Table::new(
        "§6.5 — top features by MART split gain (all six error models)",
        &["rank", "feature", "gain share", "dynamic?"],
    );
    let static_len = schema.static_len();
    for (rank, (f, g)) in ranked.iter().take(15).enumerate() {
        t2.row(&[
            format!("{}", rank + 1),
            schema.name(*f).to_string(),
            format!("{:.1}%", g / total * 100.0),
            if *f >= static_len { "yes".into() } else { "no".into() },
        ]);
    }
    out.push_str(&t2.render());
    let dyn_in_top10 = ranked.iter().take(10).filter(|(f, _)| *f >= static_len).count();
    out.push_str(&format!(
        "dynamic features in gain top-10: {dyn_in_top10}\n\
         paper: SelBelow_NLJoin first, then Cor_DNESEEK, then SelAtDN; 7 of the\n\
         next 10 are dynamic (6 time-correlations).\n",
    ));
    println!("{out}");
    out
}
