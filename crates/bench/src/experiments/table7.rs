//! Table 7: MART training times (seconds) as a function of the number of
//! training examples and boosting iterations M.
//!
//! Paper values (seconds): negligible below 6K examples, 15s at
//! 60K × M=200, 41s at 60K × M=1000 — i.e. cheap enough to retrain the
//! selector inside a running system.

use crate::report::Table;
use crate::suite::{paper_workloads, ExpScale, Suite};
use prosel_core::training::{FeatureMode, TrainingSet};
use prosel_estimators::EstimatorKind;
use prosel_mart::{BoostParams, Dataset, Mart};
use std::time::Instant;

pub fn run(suite: &mut Suite, scale: ExpScale) -> String {
    // Source examples from real collected records, bootstrapped up to the
    // requested sizes.
    let specs = paper_workloads(ExpScale::Smoke);
    let records = suite.records_all(&specs[..2.min(specs.len())]);
    let ts = TrainingSet::from_records(&records);
    let base = ts.dataset_for(EstimatorKind::Dne, FeatureMode::StaticDynamic);
    assert!(base.len() > 50, "need source examples");

    let (sizes, iters): (&[usize], &[usize]) = match scale {
        ExpScale::Smoke => (&[100, 500, 3000], &[20, 50, 100]),
        ExpScale::Quick => (&[100, 500, 3000, 6000], &[20, 50, 100, 200]),
        ExpScale::Full => (&[100, 500, 3000, 6000, 60_000], &[20, 50, 100, 200, 500, 1000]),
    };

    let header: Vec<String> = std::iter::once("examples".to_string())
        .chain(iters.iter().map(|m| format!("M={m}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("Table 7 — training times (seconds)", &header_refs);

    for &n in sizes {
        // Bootstrap to n examples.
        let mut data = Dataset::new(base.n_features());
        for i in 0..n {
            let src = i % base.len();
            data.push(base.row(src), base.target(src));
        }
        let mut cells = vec![format!("{n}")];
        for &m in iters {
            let t = Instant::now();
            let model = Mart::train(&data, &BoostParams { iterations: m, ..Default::default() });
            let secs = t.elapsed().as_secs_f64();
            std::hint::black_box(&model);
            cells.push(if secs < 1.0 { "< 1".to_string() } else { format!("{secs:.0}") });
        }
        table.row(&cells);
    }
    let mut out = table.render();
    out.push_str("paper: < 1s everywhere below 60K examples; 60K: 8..41s for M=20..1000.\n");
    println!("{out}");
    out
}
