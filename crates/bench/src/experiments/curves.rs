//! Figures 6 and 7: example progress-over-time curves for the two
//! archetypal hard cases.
//!
//! * Fig. 6 — a nested-loop-join pipeline with a partially blocking batch
//!   sort: estimators based heavily on driver nodes (DNE) race ahead once
//!   the driver input is consumed even though the nested iteration is far
//!   from done; BATCHDNE tracks the batch sort instead.
//! * Fig. 7 — a complex hash-join query with selectivity misestimates:
//!   TGN cannot recover from the cardinality error, while interpolating /
//!   driver-based estimators adjust as the pipeline progresses.

use crate::report::Table;
use crate::suite::{ExpScale, Suite};
use prosel_datagen::TuningLevel;
use prosel_engine::plan::OperatorKind;
use prosel_engine::{run_plan, Catalog, ExecConfig};
use prosel_estimators::{EstimatorKind, PipelineObs};
use prosel_planner::query::{FilterSpec, JoinSpec, QuerySpec, TableRef};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::{PlanBuilder, PlannerConfig};

fn curve_table(
    title: &str,
    obs: &PipelineObs<'_>,
    kinds: &[EstimatorKind],
    points: usize,
) -> String {
    let truth = obs.truth();
    let curves: Vec<(EstimatorKind, Vec<f64>)> = kinds.iter().map(|&k| (k, obs.curve(k))).collect();
    let mut header = vec!["time%", "true"];
    for (k, _) in &curves {
        header.push(k.name());
    }
    let mut table = Table::new(title, &header);
    let n = obs.len();
    let step = (n / points).max(1);
    for j in (0..n).step_by(step) {
        let t_frac = truth[j];
        let mut cells = vec![format!("{:.0}%", t_frac * 100.0), format!("{:.3}", t_frac)];
        for (_, c) in &curves {
            cells.push(format!("{:.3}", c[j]));
        }
        table.row(&cells);
    }
    table.render()
}

/// Figure 6: nested-loop join with a batch sort.
pub fn run_fig6(_suite: &mut Suite, _scale: ExpScale) -> String {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 1106)
        .with_queries(1)
        .with_scale(3.0)
        .with_skew(2.0)
        .with_tuning(TuningLevel::FullyTuned);
    let w = materialize(&spec);
    // A filtered orders side driving a nested iteration into lineitem; the
    // planner config forces the batch sort so the figure's scenario is
    // reproduced deliberately.
    let q = QuerySpec {
        tables: vec![
            TableRef::new("orders").with_filter(FilterSpec::Range {
                col: "o_orderdate".into(),
                lo: 0,
                hi: 520, // narrow: the access path is a date-ordered seek,
                         // so the outer is NOT sorted on the join key
            }),
            TableRef::new("lineitem"),
        ],
        joins: vec![JoinSpec {
            left_table: 0,
            left_col: "o_orderkey".into(),
            right_col: "l_orderkey".into(),
        }],
        aggregate: None,
        order_by: None,
        top: None,
    };
    let cfg = PlannerConfig {
        seek_cost: 1.0,             // force the nested loop
        batch_sort_min_outer: 10.0, // force the batch sort
        ..PlannerConfig::default()
    };
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design).with_config(cfg);
    let plan = builder.build(&q).expect("plan");
    assert!(
        plan.nodes.iter().any(|n| matches!(n.op, OperatorKind::BatchSort { .. })),
        "figure 6 requires a batch sort:\n{}",
        plan.render()
    );
    let catalog = Catalog::new(&w.db, &w.design);
    let run = run_plan(&catalog, &plan, &ExecConfig::default());
    // Pick the pipeline containing the batch sort.
    let pid = run
        .pipelines
        .iter()
        .position(|p| !p.batch_sort_nodes.is_empty())
        .expect("batch-sort pipeline");
    let obs = PipelineObs::new(&run, pid).expect("observations");
    let mut out = format!(
        "Figure 6 — nested-loop + batch-sort pipeline ({} obs)\nplan:\n{}\n",
        obs.len(),
        plan.render()
    );
    out.push_str(&curve_table(
        "progress over time",
        &obs,
        &[EstimatorKind::Dne, EstimatorKind::BatchDne, EstimatorKind::Tgn],
        14,
    ));
    out.push_str(
        "paper: the partially blocking batch sort makes driver-node-heavy\n\
         estimators (DNE) overestimate severely; BATCHDNE corrects this.\n",
    );
    println!("{out}");
    out
}

/// Figure 7: complex hash-join query with cardinality misestimates.
pub fn run_fig7(_suite: &mut Suite, _scale: ExpScale) -> String {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 1107)
        .with_queries(1)
        .with_scale(3.0)
        .with_skew(2.0)
        .with_tuning(TuningLevel::Untuned);
    let w = materialize(&spec);
    // Three-way hash join; the cold equality constant on a skewed column
    // is badly misestimated, which is what TGN inherits.
    let q = QuerySpec {
        tables: vec![
            TableRef::new("customer").with_filter(FilterSpec::Cmp {
                col: "c_mktsegment".into(),
                op: prosel_engine::CmpOp::Eq,
                val: 4,
            }),
            TableRef::new("orders"),
            TableRef::new("lineitem").with_filter(FilterSpec::Range {
                col: "l_shipdate".into(),
                lo: 0,
                hi: 2000,
            }),
        ],
        joins: vec![
            JoinSpec { left_table: 0, left_col: "c_custkey".into(), right_col: "o_custkey".into() },
            JoinSpec {
                left_table: 1,
                left_col: "o_orderkey".into(),
                right_col: "l_orderkey".into(),
            },
        ],
        aggregate: None,
        order_by: None,
        top: None,
    };
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plan = builder.build(&q).expect("plan");
    assert!(
        plan.nodes.iter().any(|n| matches!(n.op, OperatorKind::HashJoin { .. })),
        "figure 7 requires hash joins:\n{}",
        plan.render()
    );
    let catalog = Catalog::new(&w.db, &w.design);
    let run = run_plan(&catalog, &plan, &ExecConfig::default());
    let ctx = prosel_estimators::TraceCtx::new(&run);
    // Use the final (largest) probe pipeline.
    let pid = (0..run.pipelines.len())
        .filter(|&p| PipelineObs::with_ctx(&run, p, &ctx).map_or(0, |o| o.len()) >= 10)
        .max_by_key(|&p| run.pipelines[p].nodes.len())
        .expect("probe pipeline");
    let obs = PipelineObs::with_ctx(&run, pid, &ctx).expect("observations");
    let mut out = format!(
        "Figure 7 — complex hash-join pipeline ({} obs)\nplan:\n{}\n",
        obs.len(),
        plan.render()
    );
    out.push_str(&curve_table(
        "progress over time",
        &obs,
        &[EstimatorKind::Dne, EstimatorKind::Tgn, EstimatorKind::Luo, EstimatorKind::TgnInt],
        14,
    ));
    out.push_str(
        "paper: TGN has no way to recover from selectivity misestimates, while\n\
         interpolating (TGNINT, LUO) and driver-based (DNE) estimators adjust\n\
         as the pipeline consumes its driver input.\n",
    );
    println!("{out}");
    out
}
