//! Figure 1: per-query error ratio (estimator error / best-of-three
//! error) for DNE, TGN, LUO across all workloads.
//!
//! The paper plots, per estimator, the sorted ratio curve over all
//! queries on a log axis, showing that each estimator is near-optimal for
//! a subset of queries but degrades by 5× or more for a significant
//! fraction. We print the sorted-curve percentiles and the tail
//! fractions.

use crate::report::Table;
use crate::suite::{paper_workloads, per_query_errors, ExpScale, Suite};
use prosel_estimators::EstimatorKind;

pub fn run(suite: &mut Suite, scale: ExpScale) -> String {
    let records = suite.records_all(&paper_workloads(scale));
    let per_query = per_query_errors(&records, 3);

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 1 — error ratio to best-of-three, {} queries across 6 workloads\n",
        per_query.len()
    ));
    let mut table = Table::new(
        "sorted ratio-curve percentiles (log-scale in the paper)",
        &["estimator", "p25", "p50", "p75", "p90", "p95", "p99", "max", ">=2x", ">=5x"],
    );
    for (i, kind) in EstimatorKind::ORIGINAL.iter().enumerate() {
        let mut ratios: Vec<f64> = per_query
            .iter()
            .map(|errs| {
                let min = errs.iter().take(3).cloned().fold(f64::INFINITY, f64::min).max(1e-9);
                errs[i] / min
            })
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| ratios[((ratios.len() - 1) as f64 * p) as usize];
        let frac = |t: f64| ratios.iter().filter(|&&r| r >= t).count() as f64 / ratios.len() as f64;
        table.row(&[
            kind.name().to_string(),
            format!("{:.2}", q(0.25)),
            format!("{:.2}", q(0.50)),
            format!("{:.2}", q(0.75)),
            format!("{:.2}", q(0.90)),
            format!("{:.2}", q(0.95)),
            format!("{:.2}", q(0.99)),
            format!("{:.1}", ratios.last().copied().unwrap_or(1.0)),
            format!("{:.1}%", frac(2.0) * 100.0),
            format!("{:.1}%", frac(5.0) * 100.0),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "paper: each estimator is close to optimal for a subset of queries but\n\
         degrades to a 5x+ error ratio for a significant fraction of the workload.\n",
    );
    println!("{out}");
    out
}
