//! Table 8 / Section 6.6: how many estimators do we need?
//!
//! For every candidate estimator, the fraction of pipelines for which it
//! is (a) *(close to) optimal* — optimal, or within 0.01 absolute or 1%
//! relative of the optimum — and (b) *significantly outperforms all
//! others* — strictly best, by more than 0.01 absolute and 1% relative.
//!
//! Paper conclusion: no estimator is close-to-optimal for even 50% of
//! pipelines (so no single default suffices), and every estimator except
//! DNE and PMAX significantly wins somewhere (so the candidate set should
//! keep them).

use crate::report::Table;
use crate::suite::{paper_workloads, ExpScale, Suite};
use prosel_estimators::EstimatorKind;

pub fn run(suite: &mut Suite, scale: ExpScale) -> String {
    let records = suite.records_all(&paper_workloads(scale));
    let n = records.len() as f64;
    let kinds = EstimatorKind::CANDIDATES;

    let mut close = vec![0usize; kinds.len()];
    let mut dominant = vec![0usize; kinds.len()];
    for r in &records {
        let errs: Vec<f32> = (0..kinds.len()).map(|i| r.errors_l1[i]).collect();
        let min = errs.iter().cloned().fold(f32::INFINITY, f32::min);
        for (i, &e) in errs.iter().enumerate() {
            let abs_close = e - min < 0.01;
            let rel_close = e <= min * 1.01 + 1e-9;
            if e <= min || abs_close || rel_close {
                close[i] += 1;
            }
            // Significantly outperforms: best, with the runner-up more
            // than 0.01 absolute AND 1% relative worse.
            let next_best = errs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &v)| v)
                .fold(f32::INFINITY, f32::min);
            if e <= min && next_best - e > 0.01 && next_best > e * 1.01 {
                dominant[i] += 1;
            }
        }
    }

    let mut table = Table::new(
        "Table 8 — (close-to-)optimal and significantly-outperforms fractions",
        &["estimator", "% (close to) optimal", "% significantly outperforms"],
    );
    for (i, k) in kinds.iter().enumerate() {
        table.row_pct(k.name(), &[close[i] as f64 / n, dominant[i] as f64 / n]);
    }
    let mut out = table.render();
    out.push_str(
        "paper: close-to-optimal DNE 37.6 TGN 37.7 LUO 30.3 PMAX 0.2 SAFE 4.7\n\
         BATCHDNE 39.2 DNESEEK 45.5 TGNINT 31.1 (%); significant wins TGN 17.7\n\
         DNESEEK 9.4 TGNINT 6.7 SAFE 4.2 LUO 3.9 BATCHDNE 2.2 DNE 0.2 PMAX 0.06 (%).\n\
         Conclusion: no single default estimator; all but DNE/PMAX earn their seat.\n",
    );
    println!("{out}");
    out
}
