//! Refinement ablation (the paper's §7 outlook): how much of TGN's
//! accuracy comes from *online cardinality refinement*?
//!
//! Four rungs on the refinement ladder, all sharing the Total-GetNext
//! structure:
//!
//! 1. **TGNRAW** — unrefined optimizer estimates E_i;
//! 2. **TGN** — E_i clamped into worst-case bounds as counters arrive
//!    (the refinement of \[6\]);
//! 3. **TGNINT** — E_i interpolated toward the scaled-up observations
//!    (the refinement of \[13\], the paper's eq. (8));
//! 4. **GetNext model** — exact N_i (the §6.7 oracle; the refinement
//!    ceiling).
//!
//! The paper's conclusion — "significant improvements ... may be possible
//! by improving upon the current techniques used to refine cardinality
//! estimates" — is quantified by the gap between each rung and the oracle.

use crate::report::Table;
use crate::suite::{ExpScale, Suite};
use prosel_engine::{run_plan, Catalog, ExecConfig};
use prosel_estimators::{evaluate_pipeline_shared, EstimatorKind, TraceCtx};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;

pub fn run(_suite: &mut Suite, scale: ExpScale) -> String {
    let kinds = [
        EstimatorKind::TgnRaw,
        EstimatorKind::Tgn,
        EstimatorKind::TgnInt,
        EstimatorKind::GetNextOracle,
    ];
    let queries = match scale {
        ExpScale::Smoke => 60,
        ExpScale::Quick => 200,
        ExpScale::Full => 500,
    };
    // Skewed TPC-H maximizes estimation error — the regime where
    // refinement matters most.
    let mut rows: Vec<(String, Vec<f64>, usize)> = Vec::new();
    for skew in [0.0, 2.0] {
        let spec =
            WorkloadSpec::new(WorkloadKind::TpchLike, 55).with_queries(queries).with_skew(skew);
        let w = materialize(&spec);
        let catalog = Catalog::new(&w.db, &w.design);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        let mut sums = vec![0.0f64; kinds.len()];
        let mut n = 0usize;
        for (qi, q) in w.queries.iter().enumerate() {
            let plan = builder.build(q).expect("plan");
            let run =
                run_plan(&catalog, &plan, &ExecConfig { seed: qi as u64, ..Default::default() });
            let ctx = TraceCtx::new(&run);
            for pid in 0..run.pipelines.len() {
                if let Some(errs) = evaluate_pipeline_shared(&run, pid, &kinds, &ctx) {
                    for (i, e) in errs.iter().enumerate() {
                        sums[i] += e.l1;
                    }
                    n += 1;
                }
            }
        }
        rows.push((
            format!("TPC-H Z={skew}"),
            sums.into_iter().map(|s| s / n.max(1) as f64).collect(),
            n,
        ));
    }

    let mut table = Table::new(
        "Ablation §7 — online cardinality refinement ladder (mean pipeline L1)",
        &["workload", "TGN raw E", "TGN clamped", "TGNINT interp.", "true N (oracle)"],
    );
    for (label, errs, _) in &rows {
        table.row_f(label, errs, 4);
    }
    let mut out = table.render();
    for (label, errs, n) in &rows {
        let closed = if errs[0] > errs[3] {
            (errs[0] - errs[1].min(errs[2])) / (errs[0] - errs[3]) * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "{label}: {n} pipelines; existing refinements close {closed:.0}% of the\n\
             raw-to-oracle gap — the rest is the paper's §7 headroom.\n"
        ));
    }
    println!("{out}");
    out
}
