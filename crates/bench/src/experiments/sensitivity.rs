//! Tables 2–5: sensitivity of estimator selection to systematic
//! differences between training and test workloads — selectivity
//! (GetNext volume), physical design, data skew, data size.
//!
//! Methodology per the paper's Section 6.1: three buckets of pipelines;
//! each experiment trains the selector (among DNE/TGN/LUO) on two buckets
//! and tests on the third, reporting the fraction of test pipelines for
//! which each individual estimator is optimal, and the fraction for which
//! selection picks the optimal one.

use crate::report::Table;
use crate::suite::{ExpScale, Suite};
use prosel_core::pipeline_runs::PipelineRecord;
use prosel_core::selection::{EstimatorSelector, SelectorConfig};
use prosel_core::training::{FeatureMode, TrainingSet};
use prosel_datagen::TuningLevel;
use prosel_estimators::EstimatorKind;
use prosel_planner::workload::{WorkloadKind, WorkloadSpec};
use std::collections::HashMap;

fn tpch_queries(scale: ExpScale) -> usize {
    match scale {
        ExpScale::Smoke => 60,
        ExpScale::Quick => 250,
        ExpScale::Full => 1000,
    }
}

/// Leave-one-bucket-out evaluation over three record buckets.
fn three_bucket_experiment(
    title: &str,
    bucket_names: [&str; 3],
    buckets: [Vec<PipelineRecord>; 3],
) -> String {
    let three = EstimatorKind::ORIGINAL;
    let mut cols: Vec<Vec<f64>> = Vec::new(); // per test bucket: [dne, tgn, luo, sel]
    for ti in 0..3 {
        let test = TrainingSet::from_records(&buckets[ti]);
        let mut train_records = Vec::new();
        for (bi, b) in buckets.iter().enumerate() {
            if bi != ti {
                train_records.extend_from_slice(b);
            }
        }
        let train = TrainingSet::from_records(&train_records);
        let cfg = SelectorConfig {
            candidates: three.to_vec(),
            mode: FeatureMode::StaticDynamic,
            boost: crate::suite::harness_boost(),
        };
        let sel = EstimatorSelector::train(&train, &cfg);
        let report = sel.evaluate(&test);
        let mut col: Vec<f64> = three.iter().map(|&k| test.pct_optimal(k, &three, 1e-4)).collect();
        col.push(report.pct_optimal);
        cols.push(col);
    }
    let mut table =
        Table::new(title, &["estimator", bucket_names[0], bucket_names[1], bucket_names[2]]);
    for (i, name) in ["DNE", "TGN", "LUO", "EST. SEL."].iter().enumerate() {
        table.row_pct(name, &[cols[0][i], cols[1][i], cols[2][i]]);
    }
    let out = table.render();
    println!("{out}");
    out
}

/// Table 2 — selectivity shift: pipelines of recurring shapes bucketed by
/// total GetNext volume (small / medium / large) within each shape.
pub fn run_table2(suite: &mut Suite, scale: ExpScale) -> String {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 11).with_queries(tpch_queries(scale));
    let records = suite.records(&spec).to_vec();
    // Group by fingerprint; keep shapes occurring >= 6 times.
    let mut groups: HashMap<&str, Vec<&PipelineRecord>> = HashMap::new();
    for r in &records {
        groups.entry(&r.fingerprint).or_default().push(r);
    }
    let mut buckets: [Vec<PipelineRecord>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (_, mut rs) in groups {
        if rs.len() < 6 {
            continue;
        }
        rs.sort_by_key(|r| r.total_getnext);
        let n = rs.len();
        for (i, r) in rs.into_iter().enumerate() {
            let b = (i * 3 / n).min(2);
            buckets[b].push(r.clone());
        }
    }
    three_bucket_experiment(
        "Table 2 — % optimal under selectivity (GetNext volume) train/test shift",
        ["small", "medium", "large"],
        buckets,
    )
}

/// Table 3 — physical design shift: train on two TPC-H designs, test on
/// the third.
pub fn run_table3(suite: &mut Suite, scale: ExpScale) -> String {
    let mut buckets: Vec<Vec<PipelineRecord>> = Vec::new();
    for tuning in [TuningLevel::FullyTuned, TuningLevel::PartiallyTuned, TuningLevel::Untuned] {
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 11)
            .with_queries(tpch_queries(scale))
            .with_tuning(tuning);
        buckets.push(suite.records(&spec).to_vec());
    }
    let [a, b, c]: [Vec<PipelineRecord>; 3] = buckets.try_into().unwrap();
    three_bucket_experiment(
        "Table 3 — % optimal under physical-design train/test shift",
        ["fully tuned", "partially tuned", "untuned"],
        [a, b, c],
    )
}

/// Table 4 — skew shift: TPC-H generated with Z = 0, 1, 2.
pub fn run_table4(suite: &mut Suite, scale: ExpScale) -> String {
    let mut buckets: Vec<Vec<PipelineRecord>> = Vec::new();
    for z in [0.0, 1.0, 2.0] {
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 11)
            .with_queries(tpch_queries(scale))
            .with_skew(z);
        buckets.push(suite.records(&spec).to_vec());
    }
    let [a, b, c]: [Vec<PipelineRecord>; 3] = buckets.try_into().unwrap();
    three_bucket_experiment(
        "Table 4 — % optimal under data-skew train/test shift",
        ["Z = 0", "Z = 1", "Z = 2"],
        [a, b, c],
    )
}

/// Table 5 — size shift: TPC-H at (scaled-down) SF 2, 5, 10.
pub fn run_table5(suite: &mut Suite, scale: ExpScale) -> String {
    let mut buckets: Vec<Vec<PipelineRecord>> = Vec::new();
    for sf in [2.0, 5.0, 10.0] {
        // Fewer queries at the larger scale factors to bound runtime.
        let q = (tpch_queries(scale) as f64 * (2.0f64 / sf).min(1.0)).max(40.0) as usize;
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 11).with_queries(q).with_scale(sf);
        buckets.push(suite.records(&spec).to_vec());
    }
    let [a, b, c]: [Vec<PipelineRecord>; 3] = buckets.try_into().unwrap();
    three_bucket_experiment(
        "Table 5 — % optimal under data-size train/test shift",
        ["small (SF2)", "medium (SF5)", "large (SF10)"],
        [a, b, c],
    )
}
