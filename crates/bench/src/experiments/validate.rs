//! Section 6.7: validating the Total GetNext and Bytes Processed models
//! themselves, using the true totals (unknowable mid-query).
//!
//! Paper: the idealized GetNext model reaches L1 = 0.062 / L2 = 0.073 —
//! far better than any practical estimator, so it is a sound theoretical
//! basis and better cardinality refinement is a promising direction. The
//! idealized bytes model is about 2× worse (L1 = 0.12 / L2 = 0.142).

use crate::report::Table;
use crate::suite::{paper_workloads, ExpScale, Suite};
use prosel_estimators::EstimatorKind;

pub fn run(suite: &mut Suite, scale: ExpScale) -> String {
    let records = suite.records_all(&paper_workloads(scale));
    let n = records.len() as f64;
    let mean = |f: &dyn Fn(&prosel_core::PipelineRecord) -> f32| -> f64 {
        records.iter().map(|r| f(r) as f64).sum::<f64>() / n
    };

    let mut table = Table::new(
        "§6.7 — idealized progress models (true totals) vs practical estimators",
        &["model", "avg L1", "avg L2"],
    );
    table.row_f(
        "GetNext model (true N_i)",
        &[mean(&|r| r.oracle_l1[0]), mean(&|r| r.oracle_l2[0])],
        4,
    );
    table.row_f(
        "Bytes model (true totals)",
        &[mean(&|r| r.oracle_l1[1]), mean(&|r| r.oracle_l2[1])],
        4,
    );
    for k in [EstimatorKind::Tgn, EstimatorKind::Luo] {
        let ts = prosel_core::TrainingSet::from_records(&records);
        table.row_f(&format!("{} (practical)", k.name()), &[ts.mean_l1(k), ts.mean_l2(k)], 4);
    }
    let mut out = table.render();
    out.push_str(
        "paper: GetNext model L1 0.062 / L2 0.073; Bytes model L1 0.12 / L2 0.142.\n\
         The GetNext model with exact cardinalities is far better than anything\n\
         practical — better online cardinality refinement is the open headroom.\n",
    );
    println!("{out}");
    out
}
