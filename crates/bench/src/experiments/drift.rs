//! Extension experiment: **buffer decay under distribution drift**.
//!
//! The scenario the [`prosel_learn::DecayPolicy`] exists for: a learning
//! loop bootstrapped and fed on one workload distribution (TPC-H-like)
//! whose traffic then *shifts* to another (TPC-DS-like). The training
//! buffer's per-group quota floors — the right call under stationary
//! traffic, where they stop heavy templates from evicting rare ones —
//! become exactly wrong under drift: the pre-shift groups are guaranteed
//! a slice of every future training set, anchoring the selector to a
//! distribution that no longer exists.
//!
//! Two identical learners absorb the same harvest stream — phase A
//! (pre-shift) rounds, then phase B (post-shift) rounds — and retrain
//! each round. The only difference is the buffer's decay policy:
//! `DecayPolicy::None` vs a max-age bound sized so pre-shift records age
//! out during phase B. Both are scored after every round on a held-out
//! post-shift workload the loop never trains on. Expected shape: the
//! decayed learner's post-shift held-out L1 ends at or below the
//! no-decay learner's (asserted), because its buffer drains the stale
//! distribution while the no-decay buffer's quota floors pin it.
//! Deterministic under the fixed seeds; CI tracks the final L1s in
//! `BENCH_<sha>.json` via [`append_metric_sample`].

use crate::report::{append_metric_sample, Table};
use crate::suite::{ExpScale, Suite};
use prosel_core::pipeline_runs::PipelineRecord;
use prosel_core::selection::{EstimatorSelector, SelectorConfig};
use prosel_core::training::TrainingSet;
use prosel_learn::{BufferConfig, DecayPolicy, LearnConfig, OnlineLearner};
use prosel_mart::BoostParams;
use prosel_monitor::HarvestedQuery;
use prosel_planner::workload::{WorkloadKind, WorkloadSpec};
use std::sync::Arc;

/// Wrap a round's records as harvest envelopes (a few records per
/// "query", matching what a harvesting monitor would deliver).
fn envelopes(records: &[PipelineRecord], round: usize) -> Vec<HarvestedQuery> {
    records
        .chunks(4)
        .enumerate()
        .map(|(qi, chunk)| HarvestedQuery {
            query: round * 10_000 + qi,
            selector_epoch: 0,
            total_time: 0.0,
            records: chunk.to_vec(),
            switches: Vec::new(),
        })
        .collect()
}

pub fn run(suite: &mut Suite, scale: ExpScale) -> String {
    let (pre_rounds, post_rounds, queries_per_round, heldout_q) = match scale {
        ExpScale::Smoke => (3usize, 3usize, 16usize, 32usize),
        ExpScale::Quick => (4, 4, 24, 48),
        ExpScale::Full => (4, 6, 40, 96),
    };
    let boost = BoostParams { iterations: 8, ..BoostParams::fast() };

    // Phase A (pre-shift): TPC-H-like. Phase B (post-shift): TPC-DS-like.
    // Held-out scoring: a disjoint-seed TPC-DS-like batch.
    let bootstrap = WorkloadSpec::new(WorkloadKind::TpchLike, 0xD21F0).with_queries(heldout_q);
    let heldout = WorkloadSpec::new(WorkloadKind::TpcdsLike, 0xD21F1).with_queries(heldout_q);
    let baseline = Arc::new(EstimatorSelector::train(
        &TrainingSet::from_records(suite.records(&bootstrap)),
        &SelectorConfig { boost: boost.clone(), ..SelectorConfig::default() },
    ));
    let held = TrainingSet::from_records(suite.records(&heldout));
    let baseline_l1 = baseline.evaluate(&held).chosen_l1;

    // Collect every round's harvest up front: the max-age bound is sized
    // to the post-shift volume, so decay drains exactly the stale
    // distribution while keeping (essentially) every fresh record — the
    // operator's calibration "how much history is one model's worth of
    // traffic", made self-sizing here so every scale stays in regime.
    let round_records: Vec<Vec<PipelineRecord>> = (0..pre_rounds + post_rounds)
        .map(|round| {
            let kind =
                if round < pre_rounds { WorkloadKind::TpchLike } else { WorkloadKind::TpcdsLike };
            let spec =
                WorkloadSpec::new(kind, 0xD21F10 + round as u64).with_queries(queries_per_round);
            suite.records(&spec).to_vec()
        })
        .collect();
    let post_volume: usize = round_records[pre_rounds..].iter().map(Vec::len).sum();

    // Identical learners except for the buffer's decay policy. The
    // holdout guard is off: promotion is unconditional, so the final
    // models differ only through what the buffers retain. Capacity
    // exceeds the whole stream: under capacity-bound traffic nothing is
    // ever evicted, so without decay the pre-shift records contaminate
    // every future training set — decay is the only drain.
    let capacity = 2048;
    let max_age = post_volume as u64;
    let config = |decay: DecayPolicy| LearnConfig {
        buffer: BufferConfig { capacity, group_quota: 24, decay, ..BufferConfig::default() },
        retrain_every: 0, // one explicit retrain per round
        holdout_every: 0,
        min_records: 16,
        warm_trees: 0, // refit from the buffer: the buffer *is* the policy
        ..LearnConfig::default()
    };
    let mut no_decay = OnlineLearner::new(Arc::clone(&baseline), config(DecayPolicy::None));
    let mut decayed =
        OnlineLearner::new(Arc::clone(&baseline), config(DecayPolicy::MaxAge { max_age }));

    let mut table = Table::new(
        "Extension — drift: post-shift held-out selection L1, decay vs no-decay",
        &["round", "phase", "stale/no-decay", "stale/decayed", "L1 no-decay", "L1 decayed"],
    );
    let stale_count = |learner: &OnlineLearner| {
        learner.buffer().records().iter().filter(|r| r.workload.starts_with("tpch")).count()
    };

    let mut final_nodecay = baseline_l1;
    let mut final_decayed = baseline_l1;
    for (round, records) in round_records.iter().enumerate() {
        let pre_phase = round < pre_rounds;
        for h in envelopes(records, round) {
            no_decay.absorb(&h);
            decayed.absorb(&h);
        }
        no_decay.retrain();
        decayed.retrain();
        final_nodecay = no_decay.current().evaluate(&held).chosen_l1;
        final_decayed = decayed.current().evaluate(&held).chosen_l1;
        table.row(&[
            round.to_string(),
            if pre_phase { "pre".into() } else { "POST".into() },
            format!("{}/{}", stale_count(&no_decay), no_decay.buffer().len()),
            format!("{}/{}", stale_count(&decayed), decayed.buffer().len()),
            format!("{final_nodecay:.4}"),
            format!("{final_decayed:.4}"),
        ]);
    }

    let mut out = table.render();
    out.push_str(&format!(
        "shift after round {}: tpch-like -> tpcds-like; held-out = disjoint tpcds-like.\n\
         max_age {} offered records (the post-shift volume); buffer capacity {}.\n\
         Post-shift held-out L1: bootstrap {:.4}, no-decay {:.4}, decayed {:.4}\n\
         (the stale columns show the no-decay buffer holding the dead distribution\n\
         forever while the max-age bound drains it).\n",
        pre_rounds - 1,
        max_age,
        capacity,
        baseline_l1,
        final_nodecay,
        final_decayed,
    ));
    append_metric_sample("experiment/drift/post_shift_heldout_l1", final_decayed);
    append_metric_sample("experiment/drift/post_shift_heldout_l1_no_decay", final_nodecay);
    append_metric_sample("experiment/drift/decay_improvement", final_nodecay - final_decayed);
    println!("{out}");

    assert!(
        stale_count(&decayed) < stale_count(&no_decay),
        "the max-age bound must drain pre-shift records faster than the reservoir alone"
    );
    assert!(
        final_decayed <= final_nodecay,
        "decayed learner must be no worse than no-decay on post-shift held-out L1 \
         ({final_decayed:.4} vs {final_nodecay:.4})"
    );
    out
}
