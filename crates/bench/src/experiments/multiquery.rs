//! Extension experiment (beyond the paper): progress estimation under
//! multi-query concurrency — the future-work direction the paper names in
//! Section 2 (Luo et al.'s multi-query progress indicators \[12\]).
//!
//! Two concurrency regimes are measured against isolated execution:
//!
//! * **steady** — three similar queries share the machine for their whole
//!   lifetime (fair round-robin row slices). The uniform dilation adds a
//!   near-constant time overhead per row, which *dilutes* each query's own
//!   per-row work variance — counter-based estimators can even improve.
//! * **staggered** — a long target query runs with two short competitors
//!   that finish mid-flight, so the target's processing speed jumps twice.
//!   Counter-based estimators mis-map counters to time across the regime
//!   changes; the speed-based LUO model adapts after a lag.

use crate::report::Table;
use crate::suite::{ExpScale, Suite};
use prosel_engine::{run_concurrent, run_plan, Catalog, ConcurrentConfig, ExecConfig, QueryRun};
use prosel_estimators::{evaluate_pipeline_shared, EstimatorKind, TraceCtx};
use prosel_planner::query::{AggKind, AggSpec, FilterSpec, JoinSpec, QuerySpec, TableRef};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;

const KINDS: [EstimatorKind; 4] =
    [EstimatorKind::Dne, EstimatorKind::Tgn, EstimatorKind::Luo, EstimatorKind::TgnInt];

fn mean_errors(runs: &[QueryRun]) -> (Vec<f64>, usize) {
    let mut sums = vec![0.0f64; KINDS.len()];
    let mut n = 0usize;
    for run in runs {
        let ctx = TraceCtx::new(run);
        for pid in 0..run.pipelines.len() {
            if let Some(errs) = evaluate_pipeline_shared(run, pid, &KINDS, &ctx) {
                for (i, e) in errs.iter().enumerate() {
                    sums[i] += e.l1;
                }
                n += 1;
            }
        }
    }
    (sums.into_iter().map(|s| s / n.max(1) as f64).collect(), n)
}

/// A long scan-heavy target query (orders ⋈ lineitem, grouped).
fn target_query() -> QuerySpec {
    QuerySpec {
        tables: vec![TableRef::new("orders"), TableRef::new("lineitem")],
        joins: vec![JoinSpec {
            left_table: 0,
            left_col: "o_orderkey".into(),
            right_col: "l_orderkey".into(),
        }],
        aggregate: Some(AggSpec {
            group_cols: vec![(0, "o_orderpriority".into())],
            aggs: vec![AggKind::Sum { table: 1, col: "l_extendedprice".into() }],
            having: None,
        }),
        order_by: None,
        top: None,
    }
}

/// A short competitor (a slice of lineitem).
fn competitor_query(hi: i64) -> QuerySpec {
    QuerySpec {
        tables: vec![TableRef::new("lineitem").with_filter(FilterSpec::Range {
            col: "l_shipdate".into(),
            lo: 0,
            hi,
        })],
        joins: vec![],
        aggregate: Some(AggSpec {
            group_cols: vec![(0, "l_returnflag".into())],
            aggs: vec![AggKind::Count],
            having: None,
        }),
        order_by: None,
        top: None,
    }
}

pub fn run(_suite: &mut Suite, scale: ExpScale) -> String {
    let queries = match scale {
        ExpScale::Smoke => 24,
        ExpScale::Quick => 60,
        ExpScale::Full => 120,
    };
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 77).with_queries(queries);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plans: Vec<_> = w.queries.iter().map(|q| builder.build(q).expect("plan")).collect();

    // ---- steady regime: similar queries, whole-lifetime sharing --------
    let solo: Vec<QueryRun> = plans
        .iter()
        .enumerate()
        .map(|(qi, p)| {
            run_plan(&catalog, p, &ExecConfig { seed: qi as u64, ..ExecConfig::default() })
        })
        .collect();
    let mut steady = Vec::new();
    for (gi, group) in plans.chunks(3).enumerate() {
        let cfg = ConcurrentConfig {
            exec: ExecConfig { seed: gi as u64, ..ExecConfig::default() },
            ..Default::default()
        };
        steady.extend(run_concurrent(&catalog, group, &cfg));
    }
    let (solo_err, n_solo) = mean_errors(&solo);
    let (steady_err, _) = mean_errors(&steady);

    // ---- staggered regime: long target + short competitors -------------
    let target = builder.build(&target_query()).expect("target plan");
    let reps = (queries / 6).max(4);
    let mut tgt_solo = Vec::new();
    let mut tgt_conc = Vec::new();
    for rep in 0..reps {
        let exec = ExecConfig { seed: 0x7a6 + rep as u64, ..ExecConfig::default() };
        tgt_solo.push(run_plan(&catalog, &target, &exec));
        let comp_a = builder.build(&competitor_query(600)).expect("competitor");
        let comp_b = builder.build(&competitor_query(1400)).expect("competitor");
        let runs = run_concurrent(
            &catalog,
            &[target.clone(), comp_a, comp_b],
            &ConcurrentConfig { exec, ..Default::default() },
        );
        tgt_conc.push(runs.into_iter().next().expect("target run"));
    }
    let (tsolo_err, n_tgt) = mean_errors(&tgt_solo);
    let (tconc_err, _) = mean_errors(&tgt_conc);

    let mut out = String::new();
    let mut t1 = Table::new(
        "Extension — steady 3-way sharing vs isolation (mean pipeline L1)",
        &["estimator", "solo", "concurrent", "change"],
    );
    let mut t2 = Table::new(
        "Extension — staggered competitors (speed regime changes), target query only",
        &["estimator", "solo", "concurrent", "change"],
    );
    for (i, k) in KINDS.iter().enumerate() {
        t1.row(&[
            k.name().to_string(),
            format!("{:.4}", solo_err[i]),
            format!("{:.4}", steady_err[i]),
            format!("{:+.0}%", (steady_err[i] / solo_err[i].max(1e-9) - 1.0) * 100.0),
        ]);
        t2.row(&[
            k.name().to_string(),
            format!("{:.4}", tsolo_err[i]),
            format!("{:.4}", tconc_err[i]),
            format!("{:+.0}%", (tconc_err[i] / tsolo_err[i].max(1e-9) - 1.0) * 100.0),
        ]);
    }
    out.push_str(&t1.render());
    out.push_str(&format!("pipelines: {n_solo} (whole workload)\n\n"));
    out.push_str(&t2.render());
    out.push_str(&format!(
        "target pipelines: {n_tgt} per setting.\n\
         Interpretation: steady fair sharing adds near-uniform per-row overhead\n\
         and can even smooth counter-based estimators, but competitors that\n\
         finish mid-flight change the target's speed regime and hurt them —\n\
         the scenario multi-query progress estimators [12] are built for.\n",
    ));
    println!("{out}");
    out
}
