//! Table 1: fraction of pipelines containing each operator for TPC-H
//! under the three physical designs.
//!
//! Paper reference values (TPC-H, Z=1):
//!
//! | operator        | untuned | partial | full  |
//! |-----------------|---------|---------|-------|
//! | NEST. LOOP JOIN | 32.6%   | 26.6%   | 42.1% |
//! | MERGE JOIN      | 22.7%   | 12.8%   | 12.9% |
//! | HASH JOIN/AGG   | 78.8%   | 82.9%   | 72.9% |
//! | INDEX SEEK      | 47.4%   | 65.3%   | 96.2% |
//! | BATCHSORT       | 11.7%   |  8.3%   | 33.9% |
//! | STREAMAGG       | 18.2%   |  9.7%   | 21.4% |

use crate::report::Table;
use crate::suite::{ExpScale, Suite};
use prosel_datagen::TuningLevel;
use prosel_engine::pipeline::decompose;
use prosel_engine::plan::OperatorKind;
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;

pub fn run(_suite: &mut Suite, scale: ExpScale) -> String {
    let queries = match scale {
        ExpScale::Smoke => 60,
        ExpScale::Quick => 250,
        ExpScale::Full => 1000,
    };
    // operator groups, as in the paper's Table 1
    type OpPredicate = fn(&OperatorKind) -> bool;
    let groups: [(&str, OpPredicate); 6] = [
        ("NEST. LOOP JOIN", |op| matches!(op, OperatorKind::NestedLoopJoin { .. })),
        ("MERGE JOIN", |op| matches!(op, OperatorKind::MergeJoin { .. })),
        ("HASH JOIN/AGG.", |op| {
            matches!(op, OperatorKind::HashJoin { .. } | OperatorKind::HashAggregate { .. })
        }),
        ("INDEX SEEK", |op| matches!(op, OperatorKind::IndexSeek { .. })),
        ("BATCHSORT", |op| matches!(op, OperatorKind::BatchSort { .. })),
        ("STREAMAGG.", |op| matches!(op, OperatorKind::StreamAggregate { .. })),
    ];

    let mut fractions = vec![vec![0.0f64; 3]; groups.len()];
    for (ti, tuning) in TuningLevel::ALL.iter().enumerate() {
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 11)
            .with_queries(queries)
            .with_tuning(*tuning);
        let w = materialize(&spec);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        let mut n_pipelines = 0usize;
        let mut hits = vec![0usize; groups.len()];
        for q in &w.queries {
            let plan = builder.build(q).expect("plan");
            for p in decompose(&plan) {
                n_pipelines += 1;
                for (gi, (_, pred)) in groups.iter().enumerate() {
                    if p.nodes.iter().any(|&n| pred(&plan.node(n).op)) {
                        hits[gi] += 1;
                    }
                }
            }
        }
        for gi in 0..groups.len() {
            fractions[gi][ti] = hits[gi] as f64 / n_pipelines.max(1) as f64;
        }
    }

    let mut table = Table::new(
        "Table 1 — % pipelines containing operator (TPC-H x physical design)",
        &["operator", "untuned", "partially tuned", "fully tuned"],
    );
    for (gi, (name, _)) in groups.iter().enumerate() {
        table.row_pct(name, &fractions[gi]);
    }
    let mut out = table.render();
    out.push_str("paper trend: index seeks, nested loops and batch sorts increase with tuning.\n");
    println!("{out}");
    out
}
