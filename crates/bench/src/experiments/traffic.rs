//! Extension experiment: the open-loop traffic soak as a reported
//! scenario (ISSUE 6 / ROADMAP "millions of queries as a first-class
//! scenario").
//!
//! Two drives of the same [`TrafficSpec`] over one captured
//! [`TemplateSet`]:
//!
//! 1. **serve-only** — the deterministic baseline: registrations, skewed
//!    event replay, progress/ETA reads and driver-issued hot-swaps, no
//!    background work;
//! 2. **serve+retrain** — the same schedule with a harvest sink and a
//!    background [`prosel_learn::Trainer`] retraining on finished queries
//!    and hot-swapping promoted models concurrently — the interference
//!    measurement.
//!
//! The table reports ingest throughput, read p50/p99/p999, swap latency
//! and queue depth for both, and `BENCH_<sha>.json` tracks them via
//! [`crate::report::append_metric_sample`] (`traffic/...` and
//! `traffic/retrain_...` series). Counters and read values of the
//! serve-only drive are deterministic; latencies are the measured,
//! machine-dependent half.

use crate::report::{append_metric_sample, Table};
use crate::suite::{ExpScale, Suite};
use crate::traffic::{drive_with, DriveOptions, TemplateSet, TrafficOutcome, TrafficSpec};

/// The spec driven at each scale; `PROSEL_TRAFFIC_SPEC=<path.toml>`
/// overrides it at any scale.
pub fn spec_for(scale: ExpScale) -> TrafficSpec {
    if let Ok(path) = std::env::var("PROSEL_TRAFFIC_SPEC") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("PROSEL_TRAFFIC_SPEC {path}: {e}"));
        return TrafficSpec::from_toml(&text)
            .unwrap_or_else(|e| panic!("PROSEL_TRAFFIC_SPEC {path}: {e}"));
    }
    match scale {
        ExpScale::Smoke => TrafficSpec::smoke(),
        ExpScale::Quick => TrafficSpec::quick(),
        ExpScale::Full => TrafficSpec::full(),
    }
}

fn row_of(label: &str, out: &TrafficOutcome) -> Vec<String> {
    let c = &out.metrics.counters;
    let (p50, p99, p999) = out.metrics.read_latency.summary();
    vec![
        label.into(),
        c.finished.to_string(),
        format!("{:.0}", out.metrics.events_per_second()),
        format!("{:.0}", out.metrics.bytes_per_event()),
        format!("{:.1}", p50 as f64 / 1e3),
        format!("{:.1}", p99 as f64 / 1e3),
        format!("{:.1}", p999 as f64 / 1e3),
        format!("{:.1}", out.metrics.swap_latency.quantile(0.99) as f64 / 1e3),
        c.queue_peak.to_string(),
        out.metrics.violations.len().to_string(),
    ]
}

pub fn run(_suite: &mut Suite, scale: ExpScale) -> String {
    let spec = spec_for(scale);
    let templates = TemplateSet::build(&spec);
    let serve = drive_with(&spec, &templates, DriveOptions::default());
    let retrain = drive_with(&spec, &templates, DriveOptions { retrain: true });

    let mut table = Table::new(
        "Extension — open-loop traffic soak: serving latency with and without background retraining",
        &[
            "mode",
            "finished",
            "events/s",
            "B/event",
            "read p50 us",
            "read p99 us",
            "read p999 us",
            "swap p99 us",
            "queue peak",
            "violations",
        ],
    );
    table.row(&row_of("serve", &serve));
    table.row(&row_of("serve+retrain", &retrain));

    let mut out = table.render();
    out.push_str(&format!(
        "{} arrivals ({} shards, window {}), schedule digest {:016x}; \
         serve-only reads digest {:016x} (deterministic per spec).\n\
         retrain drive: {} harvests absorbed by the background trainer.\n",
        serve.metrics.counters.arrivals,
        spec.n_shards,
        spec.max_concurrency,
        serve.schedule_digest,
        serve.reads_digest,
        retrain.stats.harvests,
    ));
    for (v, mode) in serve
        .metrics
        .violations
        .iter()
        .map(|v| (v, "serve"))
        .chain(retrain.metrics.violations.iter().map(|v| (v, "serve+retrain")))
    {
        out.push_str(&format!("VIOLATION [{mode}]: {v}\n"));
    }

    serve.metrics.emit("");
    retrain.metrics.emit("retrain_");
    append_metric_sample(
        "traffic/retrain_read_p99_delta_ns",
        retrain.metrics.read_latency.quantile(0.99) as f64
            - serve.metrics.read_latency.quantile(0.99) as f64,
    );

    // The registry's own view of each drive — scraped by the driver on
    // the spec's cadence plus once after the drain — rides the same
    // trajectory under `obs/...` names.
    let emit_obs = |prefix: &str, run: &TrafficOutcome| {
        let snap = &run.obs;
        if let Some(h) = snap.histogram("service_read_ns") {
            append_metric_sample(
                &format!("obs/{prefix}service_read_p99_ns"),
                h.quantile(0.99) as f64,
            );
        }
        if let Some(h) = snap.merge_histograms("_ingest_ns") {
            append_metric_sample(
                &format!("obs/{prefix}shard_ingest_p99_ns"),
                h.quantile(0.99) as f64,
            );
        }
        let c = |name: &str| snap.counter(name).unwrap_or(0) as f64;
        append_metric_sample(&format!("obs/{prefix}tap_events_total"), c("tap_events_total"));
        append_metric_sample(&format!("obs/{prefix}tap_bytes_total"), c("tap_bytes_total"));
        append_metric_sample(
            &format!("obs/{prefix}runtime_steals_total"),
            c("runtime_steals_total"),
        );
        append_metric_sample(&format!("obs/{prefix}scrapes"), run.obs_scrapes.len() as f64);
    };
    emit_obs("", &serve);
    emit_obs("retrain_", &retrain);
    if let Some(h) = retrain.obs.histogram("learn_retrain_ns") {
        append_metric_sample("obs/retrain_learn_retrain_p99_ns", h.quantile(0.99) as f64);
    }
    for name in ["learn_retrains_total", "learn_promotions_total", "learn_decay_evictions_total"] {
        append_metric_sample(
            &format!("obs/retrain_{name}"),
            retrain.obs.counter(name).unwrap_or(0) as f64,
        );
    }

    println!("{out}");
    out
}
