//! Plain-text table rendering for experiment output, plus the
//! machine-readable `BENCH_<sha>.json` perf-trajectory artifact.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: first cell is a label, the rest are formatted floats.
    pub fn row_f(&mut self, label: &str, values: &[f64], precision: usize) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.row(&cells)
    }

    /// Like [`Table::row_f`] but rendering values as percentages.
    pub fn row_pct(&mut self, label: &str, values: &[f64]) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{:.1}%", v * 100.0)));
        self.row(&cells)
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// One benchmark's aggregated timing in the trajectory artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Fully qualified bench name (`group/function/param`).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Timed iterations behind the mean.
    pub iters: u64,
}

/// Parse the JSONL sample stream the criterion shim appends under
/// `PROSEL_BENCH_JSON` (one `{"name":…,"mean_ns":…,"iters":…}` object per
/// line). Malformed lines are skipped — a torn final line from an aborted
/// bench run must not sink the whole report.
pub fn parse_bench_jsonl(text: &str) -> Vec<BenchEntry> {
    fn str_field(line: &str, key: &str) -> Option<String> {
        let start = line.find(&format!("\"{key}\":\""))? + key.len() + 4;
        let mut out = String::new();
        let mut chars = line[start..].chars();
        loop {
            match chars.next()? {
                '\\' => out.push(chars.next()?),
                '"' => return Some(out),
                c => out.push(c),
            }
        }
    }
    fn num_field(line: &str, key: &str) -> Option<f64> {
        let start = line.find(&format!("\"{key}\":"))? + key.len() + 3;
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].trim().parse().ok()
    }
    text.lines()
        .filter_map(|line| {
            let name = str_field(line, "name")?;
            let mean_ns = num_field(line, "mean_ns").filter(|v| v.is_finite() && *v >= 0.0)?;
            let iters = num_field(line, "iters").unwrap_or(0.0) as u64;
            Some(BenchEntry { name, mean_ns, iters })
        })
        .collect()
}

/// Append one experiment *metric* sample to the `PROSEL_BENCH_JSON`
/// stream (same JSONL shape as the criterion shim's timing samples, with
/// the metric value carried in the `mean_ns` field and `iters` 1), so
/// experiment-level quality metrics — e.g. the online-learning
/// experiment's held-out selection L1 — ride the same `BENCH_<sha>.json`
/// trajectory as the timing benches. No-op when the variable is unset;
/// write failures are reported but never fail the experiment.
pub fn append_metric_sample(name: &str, value: f64) {
    use std::io::Write as _;
    let Ok(path) = std::env::var("PROSEL_BENCH_JSON") else { return };
    let line = format!("{{\"name\":\"{}\",\"mean_ns\":{value},\"iters\":1}}\n", json_escape(name));
    let write = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = write {
        eprintln!("append_metric_sample: cannot append to {path}: {e}");
    }
}

/// Fold repeated samples of the same bench into one entry
/// (iteration-weighted mean), sorted by name — the canonical entry list
/// for [`bench_trajectory_json`].
pub fn aggregate_bench_entries(samples: &[BenchEntry]) -> Vec<BenchEntry> {
    let mut acc: BTreeMap<&str, (f64, u64)> = BTreeMap::new();
    for s in samples {
        let weight = s.iters.max(1);
        let e = acc.entry(&s.name).or_insert((0.0, 0));
        e.0 += s.mean_ns * weight as f64;
        e.1 += weight;
    }
    acc.into_iter()
        .map(|(name, (weighted, iters))| BenchEntry {
            name: name.to_string(),
            mean_ns: weighted / iters as f64,
            iters,
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Render the `BENCH_<sha>.json` perf-trajectory artifact: per-bench mean
/// nanoseconds keyed by the commit they were measured at, so successive CI
/// runs form a comparable time series.
pub fn bench_trajectory_json(sha: &str, entries: &[BenchEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"sha\": \"{}\",", json_escape(sha));
    let _ = writeln!(out, "  \"unit\": \"ns/iter\",");
    let _ = writeln!(out, "  \"benches\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        // One record per line, in the same shape as the shim's JSONL
        // samples, so the artifact's bench lines parse with the same
        // reader.
        let _ = writeln!(
            out,
            "    {{\"name\":\"{}\",\"mean_ns\":{},\"iters\":{}}}{comma}",
            json_escape(&e.name),
            e.mean_ns,
            e.iters
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "v1", "v2"]);
        t.row_f("short", &[1.0, 2.5], 2);
        t.row_f("a-much-longer-label", &[0.123, 45.678], 2);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("45.68"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".to_string()]);
    }

    #[test]
    fn pct_rows() {
        let mut t = Table::new("p", &["who", "share"]);
        t.row_pct("dne", &[0.317]);
        assert!(t.render().contains("31.7%"));
    }

    #[test]
    fn jsonl_roundtrip_and_aggregation() {
        let text = "\
{\"name\":\"g/f/1\",\"mean_ns\":100,\"iters\":10}\n\
{\"name\":\"g/f/1\",\"mean_ns\":200,\"iters\":30}\n\
{\"name\":\"solo\",\"mean_ns\":5.5,\"iters\":3}\n\
garbage line that must be skipped\n\
{\"name\":\"torn\",\"mean_ns\":nope}\n";
        let samples = parse_bench_jsonl(text);
        assert_eq!(samples.len(), 3);
        let agg = aggregate_bench_entries(&samples);
        assert_eq!(agg.len(), 2);
        // Iteration-weighted: (100*10 + 200*30) / 40 = 175.
        assert_eq!(agg[0].name, "g/f/1");
        assert!((agg[0].mean_ns - 175.0).abs() < 1e-9);
        assert_eq!(agg[0].iters, 40);
        assert_eq!(agg[1].name, "solo");
    }

    #[test]
    fn trajectory_json_parses_back() {
        let entries = vec![
            BenchEntry { name: "a/b".into(), mean_ns: 12.5, iters: 10 },
            BenchEntry { name: "we\"ird".into(), mean_ns: 3.0, iters: 1 },
        ];
        let json = bench_trajectory_json("abc123", &entries);
        assert!(json.contains("\"sha\": \"abc123\""));
        assert!(json.contains("\"unit\": \"ns/iter\""));
        // The artifact's bench lines are themselves parseable records.
        let back = parse_bench_jsonl(&json);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "a/b");
        assert_eq!(back[1].name, "we\"ird");
        assert!((back[0].mean_ns - 12.5).abs() < 1e-12);
    }
}
