//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: first cell is a label, the rest are formatted floats.
    pub fn row_f(&mut self, label: &str, values: &[f64], precision: usize) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.row(&cells)
    }

    /// Like [`Table::row_f`] but rendering values as percentages.
    pub fn row_pct(&mut self, label: &str, values: &[f64]) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{:.1}%", v * 100.0)));
        self.row(&cells)
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "v1", "v2"]);
        t.row_f("short", &[1.0, 2.5], 2);
        t.row_f("a-much-longer-label", &[0.123, 45.678], 2);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("45.68"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".to_string()]);
    }

    #[test]
    fn pct_rows() {
        let mut t = Table::new("p", &["who", "share"]);
        t.row_pct("dne", &[0.317]);
        assert!(t.render().contains("31.7%"));
    }
}
