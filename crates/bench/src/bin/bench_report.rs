//! Fold the criterion shim's JSONL bench samples into the
//! `BENCH_<sha>.json` perf-trajectory artifact CI uploads.
//!
//! ```text
//! PROSEL_BENCH_JSON=bench-samples.jsonl cargo bench ...   # produce samples
//! bench_report [SAMPLES.jsonl] [SHA] [OUT_DIR]            # fold them
//! ```
//!
//! Defaults: samples from `bench-samples.jsonl`, sha from `$GITHUB_SHA`
//! (falling back to `local`), artifact written to the current directory.

use prosel_bench::report::{aggregate_bench_entries, bench_trajectory_json, parse_bench_jsonl};

fn main() {
    let mut args = std::env::args().skip(1);
    let samples_path = args.next().unwrap_or_else(|| "bench-samples.jsonl".to_string());
    let sha = args
        .next()
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "local".to_string());
    let out_dir = args.next().unwrap_or_else(|| ".".to_string());

    let text = std::fs::read_to_string(&samples_path).unwrap_or_else(|e| {
        eprintln!("bench_report: cannot read {samples_path}: {e}");
        eprintln!("run the benches with PROSEL_BENCH_JSON={samples_path} first");
        std::process::exit(2);
    });
    let samples = parse_bench_jsonl(&text);
    if samples.is_empty() {
        eprintln!("bench_report: no parseable samples in {samples_path}");
        std::process::exit(2);
    }
    let entries = aggregate_bench_entries(&samples);
    let json = bench_trajectory_json(&sha, &entries);
    let out_path = format!("{out_dir}/BENCH_{sha}.json");
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("bench_report: cannot write {out_path}: {e}"));
    println!("wrote {out_path}: {} benches from {} samples", entries.len(), samples.len());
}
