//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--scale smoke|quick|full] [--out FILE] <experiment>...
//! experiments all                  # everything, in paper order
//! experiments fig4 table6 fig5     # the ad-hoc block only
//! experiments --list
//! ```

use prosel_bench::experiments::{run_one, ALL};
use prosel_bench::suite::{ExpScale, Suite};
use std::io::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExpScale::Quick;
    let mut out_path: Option<String> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                scale = ExpScale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?}; use smoke|quick|full");
                    std::process::exit(2);
                });
            }
            "--out" => out_path = it.next(),
            "--list" => {
                for n in ALL {
                    println!("{n}");
                }
                return;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--scale smoke|quick|full] [--out FILE] <name>...|all\n\
                     experiments: {}",
                    ALL.join(", ")
                );
                return;
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() || names.iter().any(|n| n == "all") {
        names = ALL.iter().map(|s| s.to_string()).collect();
        // fig4/table6/fig5 share one run; dedup.
        names.retain(|n| n != "table6" && n != "fig5");
    }

    let mut suite = Suite::new(true);
    let t0 = Instant::now();
    let mut out_file = out_path
        .as_ref()
        .map(|p| std::fs::File::create(p).unwrap_or_else(|e| panic!("create {p}: {e}")));
    for name in &names {
        eprintln!("\n===== {name} (scale {scale:?}) =====");
        let t = Instant::now();
        match run_one(name, &mut suite, scale) {
            Some(text) => {
                eprintln!("[{name}] done in {:.1}s", t.elapsed().as_secs_f64());
                if let Some(f) = out_file.as_mut() {
                    let _ = writeln!(f, "\n===== {name} =====");
                    let _ = f.write_all(text.as_bytes());
                    let _ = f.flush();
                }
            }
            None => {
                eprintln!("unknown experiment {name:?}; --list shows the options");
                std::process::exit(2);
            }
        }
    }
    eprintln!("\nall experiments done in {:.1}s", t0.elapsed().as_secs_f64());
    if let Some(path) = out_path {
        eprintln!("report written to {path}");
    }
}
