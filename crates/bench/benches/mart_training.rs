//! MART training throughput (Table 7's companion): time per model as a
//! function of example count at the paper's M=200 / 30 leaves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prosel_mart::{BoostParams, Dataset, Mart};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn synthetic(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new(d);
    let mut row = vec![0.0f32; d];
    for _ in 0..n {
        for v in row.iter_mut() {
            *v = rng.random_range(-1.0..1.0);
        }
        let y = row[0] * 2.0 - row[1] + row[2] * row[2];
        data.push(&row, y);
    }
    data
}

fn bench_mart(c: &mut Criterion) {
    let mut group = c.benchmark_group("mart_train");
    group.sample_size(10);
    for &n in &[500usize, 3000] {
        let data = synthetic(n, 200, 7);
        group.bench_with_input(BenchmarkId::new("m200_leaves30", n), &data, |b, data| {
            b.iter(|| black_box(Mart::train(data, &BoostParams::default())))
        });
    }
    // Prediction latency (selection-time inference).
    let data = synthetic(3000, 200, 7);
    let model = Mart::train(&data, &BoostParams::default());
    group.bench_function("predict_one", |b| b.iter(|| black_box(model.predict(data.row(3)))));
    group.finish();
}

criterion_group!(benches, bench_mart);
criterion_main!(benches);
