//! End-to-end selection latency: predicted-error evaluation across all
//! candidate models for one pipeline's features (what happens each time a
//! pipeline starts / revises its estimator choice).

use criterion::{criterion_group, criterion_main, Criterion};
use prosel_core::pipeline_runs::collect_workload_records;
use prosel_core::selection::{EstimatorSelector, SelectorConfig};
use prosel_core::training::TrainingSet;
use prosel_mart::BoostParams;
use prosel_planner::workload::{WorkloadKind, WorkloadSpec};
use std::hint::black_box;

fn bench_selection(c: &mut Criterion) {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 5).with_queries(60);
    let records = collect_workload_records(&spec).expect("records");
    let train = TrainingSet::from_records(&records);
    let cfg = SelectorConfig::default()
        .with_boost(BoostParams { iterations: 200, ..BoostParams::default() });
    let selector = EstimatorSelector::train(&train, &cfg);
    let features = records[0].features.clone();

    c.bench_function("selector_select_one_pipeline", |b| {
        b.iter(|| black_box(selector.select(&features)))
    });
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
