//! Cost of extracting the ~210-dimensional feature vector for a pipeline
//! (the paper: "about 200 double values" written per query — must be
//! negligible next to execution).

use criterion::{criterion_group, criterion_main, Criterion};
use prosel_core::features;
use prosel_engine::{run_plan, Catalog, ExecConfig};
use prosel_estimators::PipelineObs;
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;
use std::hint::black_box;

fn bench_features(c: &mut Criterion) {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 5).with_queries(4);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plan = builder.build(&w.queries[1]).expect("plan");
    let run = run_plan(&catalog, &plan, &ExecConfig::default());
    let ctx = prosel_estimators::TraceCtx::new(&run);
    let pid = (0..run.pipelines.len())
        .max_by_key(|&p| PipelineObs::with_ctx(&run, p, &ctx).map_or(0, |o| o.len()))
        .unwrap();
    let obs = PipelineObs::with_ctx(&run, pid, &ctx).unwrap();

    c.bench_function("feature_extract_full", |b| {
        b.iter(|| black_box(features::extract(&run, &obs)))
    });
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
