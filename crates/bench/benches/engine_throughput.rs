//! Execution-engine throughput: GetNext-counted rows per second for the
//! main operator shapes. Companion to the paper's low-overhead claim —
//! the counters and snapshots must not dominate execution.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use prosel_datagen::tpch::{generate, TpchConfig};
use prosel_datagen::{PhysicalDesign, TuningLevel};
use prosel_engine::plan::{CmpOp, OperatorKind, PhysicalPlan, PlanNode, Predicate};
use prosel_engine::{run_plan, Catalog, ExecConfig};
use std::hint::black_box;

fn node(op: OperatorKind, children: Vec<usize>, est: f64, cols: usize) -> PlanNode {
    PlanNode { op, children, est_rows: est, est_row_bytes: 8.0 * cols as f64, out_cols: cols }
}

fn bench_engine(c: &mut Criterion) {
    let db = generate(&TpchConfig { scale: 2.0, skew: 1.0, seed: 42 });
    let design = PhysicalDesign::derive(&db, TuningLevel::FullyTuned);
    let catalog = Catalog::new(&db, &design);
    let li_rows = db.table("lineitem").rows() as f64;

    let mut group = c.benchmark_group("engine");

    // Scan + filter over lineitem.
    let scan_plan = PhysicalPlan {
        nodes: vec![
            node(
                OperatorKind::TableScan { table: "lineitem".into(), cols: vec![0, 3] },
                vec![],
                li_rows,
                2,
            ),
            node(
                OperatorKind::Filter { pred: Predicate::ColCmp { col: 1, op: CmpOp::Lt, val: 25 } },
                vec![0],
                li_rows / 2.0,
                2,
            ),
        ],
        root: 1,
    };
    group.throughput(Throughput::Elements(db.table("lineitem").rows() as u64));
    group.bench_function("scan_filter_lineitem", |b| {
        b.iter(|| black_box(run_plan(&catalog, &scan_plan, &ExecConfig::default())))
    });

    // Hash join orders x lineitem.
    let o_rows = db.table("orders").rows() as f64;
    let join_plan = PhysicalPlan {
        nodes: vec![
            node(
                OperatorKind::TableScan { table: "lineitem".into(), cols: vec![0] },
                vec![],
                li_rows,
                1,
            ),
            node(
                OperatorKind::TableScan { table: "orders".into(), cols: vec![0] },
                vec![],
                o_rows,
                1,
            ),
            node(OperatorKind::HashJoin { probe_key: 0, build_key: 0 }, vec![0, 1], li_rows, 2),
        ],
        root: 2,
    };
    group.throughput(Throughput::Elements(
        (db.table("lineitem").rows() + db.table("orders").rows()) as u64,
    ));
    group.bench_function("hash_join_orders_lineitem", |b| {
        b.iter(|| black_box(run_plan(&catalog, &join_plan, &ExecConfig::default())))
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
