//! Per-observation cost of computing every candidate estimator — the
//! paper's "low overhead" requirement: all estimators derive from the
//! same few counters, so tracking all of them costs barely more than one.

use criterion::{criterion_group, criterion_main, Criterion};
use prosel_engine::{run_plan, Catalog, ExecConfig};
use prosel_estimators::{EstimatorKind, PipelineObs};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;
use std::hint::black_box;

fn bench_estimators(c: &mut Criterion) {
    let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 5).with_queries(4);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let plan = builder.build(&w.queries[1]).expect("plan");
    let run = run_plan(&catalog, &plan, &ExecConfig::default());
    let ctx = prosel_estimators::TraceCtx::new(&run);
    let pid = (0..run.pipelines.len())
        .max_by_key(|&p| PipelineObs::with_ctx(&run, p, &ctx).map_or(0, |o| o.len()))
        .unwrap();

    let mut group = c.benchmark_group("estimators");
    // Building the per-pipeline observation state (bounds, aggregates).
    group.bench_function("pipeline_obs_build", |b| {
        b.iter(|| black_box(PipelineObs::new(&run, pid).unwrap()))
    });
    // Rendering one estimator curve from the prepared state.
    let obs = PipelineObs::with_ctx(&run, pid, &ctx).unwrap();
    for kind in [EstimatorKind::Dne, EstimatorKind::Tgn, EstimatorKind::Luo] {
        group.bench_function(format!("curve_{}", kind.name()), |b| {
            b.iter(|| black_box(obs.curve(kind)))
        });
    }
    // All eight candidates together (what a training pass does).
    group.bench_function("curve_all8", |b| {
        b.iter(|| {
            for kind in EstimatorKind::CANDIDATES {
                black_box(obs.curve(kind));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
