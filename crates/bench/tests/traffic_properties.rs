//! Property net over the open-loop arrival generators
//! ([`prosel_bench::traffic::arrivals`]).
//!
//! The contracts the traffic harness is built on, exercised over
//! randomized specs:
//!
//! * Poisson inter-arrival gaps have mean ≈ 1/λ (the process really is
//!   open-loop at the requested rate), are all positive and finite;
//! * bursty generation preserves the exact arrival count — bursts only
//!   reshape *when* queries arrive — and honours the configured gap;
//! * Zipf template draws are monotone in rank: hotter (lower) ranks are
//!   drawn at least as often as colder ones, up to sampling noise, and
//!   rank 0 dominates under skew;
//! * a spec is a *schedule*, byte-for-byte: same seed → identical
//!   [`schedule_text`], different seed → different text;
//! * the TOML round-trip preserves the schedule, not just the struct.

use proptest::prelude::*;
use prosel_bench::traffic::{digest64, schedule, schedule_text, ArrivalProcess, TrafficSpec};

/// A spec whose randomized knobs stay in the cheap, valid range.
fn small_spec(seed: u64, n: usize, rate: f64, zipf: f64) -> TrafficSpec {
    TrafficSpec {
        seed,
        num_queries: n,
        zipf_exponent: zipf,
        arrivals: ArrivalProcess::Poisson { rate },
        ..TrafficSpec::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn poisson_gaps_have_the_requested_mean(
        seed in 0u64..1_000_000,
        rate in 1.0f64..2_000.0,
    ) {
        let n = 2_000usize;
        let arrivals = schedule(&small_spec(seed, n, rate, 0.0));
        prop_assert_eq!(arrivals.len(), n);
        let mut prev = 0.0f64;
        let mut sum = 0.0f64;
        for a in &arrivals {
            let gap = a.at - prev;
            prop_assert!(gap > 0.0 && gap.is_finite(), "gap {gap} at q{}", a.query);
            sum += gap;
            prev = a.at;
        }
        let mean = sum / n as f64;
        // Exp(λ) has σ = 1/λ, so the sample mean's standard error is
        // (1/λ)/√n ≈ 2.2% here; 12% absorbs unlucky seeds at 48 cases.
        let expected = 1.0 / rate;
        prop_assert!(
            (mean - expected).abs() < expected * 0.12,
            "mean gap {mean} vs expected {expected}"
        );
    }

    #[test]
    fn bursty_preserves_count_and_gap(
        seed in 0u64..1_000_000,
        n in 100usize..1_500,
        rate in 100.0f64..5_000.0,
        burst in 1usize..64,
        gap in 0.01f64..1.0,
    ) {
        let spec = TrafficSpec {
            seed,
            num_queries: n,
            arrivals: ArrivalProcess::Bursty { rate, burst, gap },
            ..TrafficSpec::default()
        };
        let arrivals = schedule(&spec);
        prop_assert_eq!(arrivals.len(), n, "bursts must not change the total");
        for pair in arrivals.windows(2) {
            let step = pair[1].at - pair[0].at;
            let expected = if pair[1].query % burst == 0 { gap } else { 1.0 / rate };
            prop_assert!(
                (step - expected).abs() < 1e-9,
                "step {step} vs expected {expected} before q{}", pair[1].query
            );
        }
    }

    #[test]
    fn template_draws_are_monotone_in_rank(
        seed in 0u64..1_000_000,
        zipf in 0.8f64..2.5,
        templates in 2usize..8,
    ) {
        let n = 6_000usize;
        let spec = TrafficSpec {
            templates_per_workload: templates,
            ..small_spec(seed, n, 500.0, zipf)
        };
        let arrivals = schedule(&spec);
        let mut counts = vec![0i64; templates];
        for a in &arrivals {
            prop_assert!(a.template < templates, "template out of range");
            counts[a.template] += 1;
        }
        // Monotone up to binomial noise: 4σ on n draws.
        let slack = 4.0 * (n as f64).sqrt();
        for r in 0..templates - 1 {
            prop_assert!(
                counts[r] as f64 + slack >= counts[r + 1] as f64,
                "rank {r} ({}) colder than rank {} ({})",
                counts[r], r + 1, counts[r + 1]
            );
        }
        prop_assert!(
            counts[0] > counts[templates - 1],
            "skew {zipf} must make rank 0 strictly hotter than the tail"
        );
    }

    #[test]
    fn schedules_are_bytes_of_the_seed(
        seed in 0u64..1_000_000,
        n in 50usize..500,
        rate in 10.0f64..1_000.0,
        zipf in 0.0f64..2.0,
    ) {
        let spec = small_spec(seed, n, rate, zipf);
        let a = schedule_text(&schedule(&spec));
        let b = schedule_text(&schedule(&spec));
        prop_assert_eq!(&a, &b, "same spec must be byte-identical");
        prop_assert_eq!(digest64(a.as_bytes()), digest64(b.as_bytes()));
        let other = schedule_text(&schedule(&TrafficSpec { seed: seed ^ 0xDEAD_BEEF, ..spec }));
        prop_assert!(a != other, "a different seed must move the schedule");
    }

    #[test]
    fn toml_roundtrip_preserves_the_schedule(
        seed in 0u64..1_000_000,
        n in 50usize..300,
        rate in 10.0f64..1_000.0,
        zipf in 0.0f64..2.0,
    ) {
        let spec = small_spec(seed, n, rate, zipf);
        let parsed = TrafficSpec::from_toml(&spec.to_toml()).expect("round-trip");
        prop_assert_eq!(
            schedule_text(&schedule(&spec)),
            schedule_text(&schedule(&parsed)),
            "a spec file must reproduce the exact schedule"
        );
    }
}
