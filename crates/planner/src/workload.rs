//! Workload generation: parameterized query-template families standing in
//! for the paper's six workloads.
//!
//! | paper workload | here | shape |
//! |---|---|---|
//! | TPC-H (1000 queries, Zipf z) | [`WorkloadKind::TpchLike`] | 12 templates over the 8-table schema |
//! | TPC-DS (200 random queries) | [`WorkloadKind::TpcdsLike`] | 6 star-join reporting templates |
//! | Real-1 (477 queries, 5–8-way joins + nested sub-queries) | [`WorkloadKind::Real1`] | 5 templates, 5–8 tables, HAVING blocks |
//! | Real-2 (632 queries, ~12 joins) | [`WorkloadKind::Real2`] | snowflake templates joining up to 13 tables |
//!
//! Template parameters (filter constants, ranges, TOP sizes, aggregate
//! choices) are drawn from the *actual data distribution* via histogram
//! quantiles, so requested selectivities are realistic. Everything is
//! seeded.

use crate::query::{AggKind, AggSpec, FilterSpec, JoinSpec, OrderTarget, QuerySpec, TableRef};
use crate::stats::DbStats;
use prosel_datagen::realworld::{self, RealConfig};
use prosel_datagen::tpcds::{self, TpcdsConfig};
use prosel_datagen::tpch::{self, TpchConfig};
use prosel_datagen::{Database, PhysicalDesign, TuningLevel};
use prosel_engine::CmpOp;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which workload family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    TpchLike,
    TpcdsLike,
    Real1,
    Real2,
}

impl WorkloadKind {
    pub const ALL: [WorkloadKind; 4] =
        [WorkloadKind::TpchLike, WorkloadKind::TpcdsLike, WorkloadKind::Real1, WorkloadKind::Real2];

    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::TpchLike => "tpch",
            WorkloadKind::TpcdsLike => "tpcds",
            WorkloadKind::Real1 => "real1",
            WorkloadKind::Real2 => "real2",
        }
    }

    /// Default query count (scaled down from the paper's 1000/200/477/632).
    pub fn default_queries(&self) -> usize {
        match self {
            WorkloadKind::TpchLike => 160,
            WorkloadKind::TpcdsLike => 80,
            WorkloadKind::Real1 => 110,
            WorkloadKind::Real2 => 110,
        }
    }

    fn default_scale(&self) -> f64 {
        match self {
            WorkloadKind::TpchLike => 2.0,
            WorkloadKind::TpcdsLike => 2.0,
            WorkloadKind::Real1 => 1.5,
            WorkloadKind::Real2 => 1.2,
        }
    }
}

/// Full specification of one workload instance.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    pub kind: WorkloadKind,
    pub seed: u64,
    pub queries: usize,
    pub scale: f64,
    pub skew: f64,
    pub tuning: TuningLevel,
}

impl WorkloadSpec {
    pub fn new(kind: WorkloadKind, seed: u64) -> Self {
        WorkloadSpec {
            kind,
            seed,
            queries: kind.default_queries(),
            scale: kind.default_scale(),
            skew: 1.0,
            tuning: TuningLevel::PartiallyTuned,
        }
    }

    pub fn with_queries(mut self, n: usize) -> Self {
        self.queries = n;
        self
    }

    pub fn with_scale(mut self, s: f64) -> Self {
        self.scale = s;
        self
    }

    pub fn with_skew(mut self, z: f64) -> Self {
        self.skew = z;
        self
    }

    pub fn with_tuning(mut self, t: TuningLevel) -> Self {
        self.tuning = t;
        self
    }

    /// Short identifier used in reports.
    pub fn label(&self) -> String {
        format!("{}_sf{}_z{}_{}", self.kind.name(), self.scale, self.skew, self.tuning.name())
    }
}

/// A fully materialized workload: database, statistics, physical design
/// and the query batch.
pub struct Workload {
    pub spec: WorkloadSpec,
    pub db: Database,
    pub stats: DbStats,
    pub design: PhysicalDesign,
    pub queries: Vec<QuerySpec>,
}

/// Generate the database for a spec.
pub fn build_database(spec: &WorkloadSpec) -> Database {
    match spec.kind {
        WorkloadKind::TpchLike => {
            tpch::generate(&TpchConfig { scale: spec.scale, skew: spec.skew, seed: spec.seed })
        }
        WorkloadKind::TpcdsLike => {
            tpcds::generate(&TpcdsConfig { scale: spec.scale, skew: spec.skew, seed: spec.seed })
        }
        WorkloadKind::Real1 => realworld::generate_real1(&RealConfig {
            scale: spec.scale,
            skew: spec.skew.max(0.8),
            seed: spec.seed,
        }),
        WorkloadKind::Real2 => realworld::generate_real2(&RealConfig {
            scale: spec.scale,
            skew: spec.skew.max(0.8),
            seed: spec.seed,
        }),
    }
}

/// Materialize database + stats + physical design + queries.
pub fn materialize(spec: &WorkloadSpec) -> Workload {
    let db = build_database(spec);
    let stats = DbStats::build(&db);
    let design = PhysicalDesign::derive(&db, spec.tuning);
    let queries = generate_queries(spec, &db, &stats);
    Workload { spec: spec.clone(), db, stats, design, queries }
}

/// Generate the query batch for a spec.
pub fn generate_queries(spec: &WorkloadSpec, db: &Database, stats: &DbStats) -> Vec<QuerySpec> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x00b5_e55e_dc0f_fee5);
    let mut out = Vec::with_capacity(spec.queries);
    let mut attempts = 0usize;
    while out.len() < spec.queries && attempts < spec.queries * 20 {
        attempts += 1;
        let q = match spec.kind {
            WorkloadKind::TpchLike => tpch_template(&mut rng, stats),
            WorkloadKind::TpcdsLike => tpcds_template(&mut rng, stats),
            WorkloadKind::Real1 => real1_template(&mut rng, stats),
            WorkloadKind::Real2 => real2_template(&mut rng, db, stats),
        };
        if q.validate().is_ok() {
            out.push(q);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Parameter helpers
// ---------------------------------------------------------------------------

/// A range filter on `col` with approximate selectivity drawn from
/// `[min_sel, max_sel]`.
fn range_filter(
    stats: &DbStats,
    rng: &mut StdRng,
    table: &str,
    db_col: usize,
    col: &str,
    min_sel: f64,
    max_sel: f64,
) -> FilterSpec {
    let hist = &stats.table(table).columns[db_col].histogram;
    let sel = rng.random_range(min_sel..max_sel);
    let start = rng.random_range(0.0..(1.0 - sel).max(1e-6));
    let lo = hist.quantile(start);
    let hi = hist.quantile(start + sel).max(lo);
    FilterSpec::Range { col: col.to_string(), lo, hi }
}

/// An equality filter. Most constants are drawn from the actual value
/// distribution (frequent values picked more often — the easy case), but
/// a fraction is drawn uniformly from the domain: under skew those "cold"
/// constants are exactly the ones histogram uniformity misestimates,
/// giving the workload realistic hard cases.
fn eq_filter(
    stats: &DbStats,
    rng: &mut StdRng,
    table: &str,
    db_col: usize,
    col: &str,
) -> FilterSpec {
    let cs = &stats.table(table).columns[db_col];
    let val = if rng.random_bool(0.4) {
        rng.random_range(cs.min..=cs.max.max(cs.min))
    } else {
        cs.histogram.quantile(rng.random_range(0.0..1.0))
    };
    FilterSpec::Cmp { col: col.to_string(), op: CmpOp::Eq, val }
}

fn join(left_table: usize, left_col: &str, right_col: &str) -> JoinSpec {
    JoinSpec { left_table, left_col: left_col.into(), right_col: right_col.into() }
}

// ---------------------------------------------------------------------------
// TPC-H-like templates
// ---------------------------------------------------------------------------

fn tpch_template(rng: &mut StdRng, stats: &DbStats) -> QuerySpec {
    // Column indices in the generated schema (fixed by the generator).
    const L_SHIPDATE: usize = 6;
    const O_ORDERDATE: usize = 2;
    const O_TOTALPRICE: usize = 3;
    const C_MKTSEGMENT: usize = 2;
    const P_BRAND: usize = 1;

    match rng.random_range(0..14) {
        // Q1-style pricing summary over lineitem.
        0 => QuerySpec {
            tables: vec![TableRef::new("lineitem").with_filter(range_filter(
                stats,
                rng,
                "lineitem",
                L_SHIPDATE,
                "l_shipdate",
                0.5,
                0.95,
            ))],
            joins: vec![],
            aggregate: Some(AggSpec {
                group_cols: vec![(0, "l_returnflag".into()), (0, "l_linestatus".into())],
                aggs: vec![
                    AggKind::Sum { table: 0, col: "l_quantity".into() },
                    AggKind::Sum { table: 0, col: "l_extendedprice".into() },
                    AggKind::Count,
                ],
                having: None,
            }),
            order_by: None,
            top: None,
        },
        // Q3-style shipping priority: customer ⋈ orders ⋈ lineitem.
        1 => QuerySpec {
            tables: vec![
                TableRef::new("customer").with_filter(eq_filter(
                    stats,
                    rng,
                    "customer",
                    C_MKTSEGMENT,
                    "c_mktsegment",
                )),
                TableRef::new("orders").with_filter(range_filter(
                    stats,
                    rng,
                    "orders",
                    O_ORDERDATE,
                    "o_orderdate",
                    0.1,
                    0.6,
                )),
                TableRef::new("lineitem"),
            ],
            joins: vec![join(0, "c_custkey", "o_custkey"), join(1, "o_orderkey", "l_orderkey")],
            aggregate: Some(AggSpec {
                group_cols: vec![(1, "o_orderdate".into())],
                aggs: vec![AggKind::Sum { table: 2, col: "l_extendedprice".into() }],
                having: None,
            }),
            order_by: Some(OrderTarget::AggResult { idx: 0 }),
            top: Some(rng.random_range(5..20)),
        },
        // Q4-style order priority checking.
        2 => QuerySpec {
            tables: vec![
                TableRef::new("orders").with_filter(range_filter(
                    stats,
                    rng,
                    "orders",
                    O_ORDERDATE,
                    "o_orderdate",
                    0.05,
                    0.3,
                )),
                TableRef::new("lineitem"),
            ],
            joins: vec![join(0, "o_orderkey", "l_orderkey")],
            aggregate: Some(AggSpec {
                group_cols: vec![(0, "o_orderpriority".into())],
                aggs: vec![AggKind::Count],
                having: None,
            }),
            order_by: None,
            top: None,
        },
        // Q5-style local supplier volume: 6-way join.
        3 => QuerySpec {
            tables: vec![
                TableRef::new("customer"),
                TableRef::new("orders").with_filter(range_filter(
                    stats,
                    rng,
                    "orders",
                    O_ORDERDATE,
                    "o_orderdate",
                    0.1,
                    0.4,
                )),
                TableRef::new("lineitem"),
                TableRef::new("supplier"),
                TableRef::new("nation"),
                TableRef::new("region").with_filter(FilterSpec::Cmp {
                    col: "r_regionkey".into(),
                    op: CmpOp::Eq,
                    val: rng.random_range(1..=5),
                }),
            ],
            joins: vec![
                join(0, "c_custkey", "o_custkey"),
                join(1, "o_orderkey", "l_orderkey"),
                join(2, "l_suppkey", "s_suppkey"),
                join(3, "s_nationkey", "n_nationkey"),
                join(4, "n_regionkey", "r_regionkey"),
            ],
            aggregate: Some(AggSpec {
                group_cols: vec![(4, "n_nationkey".into())],
                aggs: vec![AggKind::Sum { table: 2, col: "l_extendedprice".into() }],
                having: None,
            }),
            order_by: Some(OrderTarget::AggResult { idx: 0 }),
            top: None,
        },
        // Q6-style revenue forecast (tight scan + filters).
        4 => QuerySpec {
            tables: vec![TableRef::new("lineitem")
                .with_filter(range_filter(
                    stats,
                    rng,
                    "lineitem",
                    L_SHIPDATE,
                    "l_shipdate",
                    0.1,
                    0.25,
                ))
                .with_filter(FilterSpec::Range {
                    col: "l_discount".into(),
                    lo: rng.random_range(0..=3),
                    hi: rng.random_range(4..=7),
                })
                .with_filter(FilterSpec::Cmp {
                    col: "l_quantity".into(),
                    op: CmpOp::Lt,
                    val: rng.random_range(20..=45),
                })],
            joins: vec![],
            aggregate: Some(AggSpec {
                group_cols: vec![(0, "l_linestatus".into())],
                aggs: vec![AggKind::Sum { table: 0, col: "l_extendedprice".into() }],
                having: None,
            }),
            order_by: None,
            top: None,
        },
        // Q17-style small-quantity-order revenue: part ⋈ lineitem.
        5 => QuerySpec {
            tables: vec![
                TableRef::new("part")
                    .with_filter(eq_filter(stats, rng, "part", P_BRAND, "p_brand")),
                TableRef::new("lineitem"),
            ],
            joins: vec![join(0, "p_partkey", "l_partkey")],
            aggregate: Some(AggSpec {
                group_cols: vec![(0, "p_partkey".into())],
                aggs: vec![AggKind::Count, AggKind::Sum { table: 1, col: "l_quantity".into() }],
                having: Some((CmpOp::Gt, rng.random_range(1..6))),
            }),
            order_by: None,
            top: None,
        },
        // Part/partsupp stock report.
        6 => QuerySpec {
            tables: vec![
                TableRef::new("part").with_filter(FilterSpec::Range {
                    col: "p_size".into(),
                    lo: 1,
                    hi: rng.random_range(5..25),
                }),
                TableRef::new("partsupp"),
            ],
            joins: vec![join(0, "p_partkey", "ps_partkey")],
            aggregate: Some(AggSpec {
                group_cols: vec![(0, "p_brand".into())],
                aggs: vec![AggKind::Sum { table: 1, col: "ps_supplycost".into() }],
                having: None,
            }),
            order_by: Some(OrderTarget::AggResult { idx: 0 }),
            top: Some(20),
        },
        // Q18-style large volume customers.
        7 => QuerySpec {
            tables: vec![TableRef::new("orders"), TableRef::new("lineitem")],
            joins: vec![join(0, "o_orderkey", "l_orderkey")],
            aggregate: Some(AggSpec {
                group_cols: vec![(0, "o_orderkey".into())],
                aggs: vec![AggKind::Sum { table: 1, col: "l_quantity".into() }],
                having: Some((CmpOp::Gt, rng.random_range(100..250))),
            }),
            order_by: Some(OrderTarget::AggResult { idx: 0 }),
            top: Some(100),
        },
        // Supplier activity: supplier ⋈ lineitem ⋈ orders.
        8 => QuerySpec {
            tables: vec![
                TableRef::new("supplier"),
                TableRef::new("lineitem").with_filter(range_filter(
                    stats,
                    rng,
                    "lineitem",
                    L_SHIPDATE,
                    "l_shipdate",
                    0.2,
                    0.6,
                )),
                TableRef::new("orders"),
            ],
            joins: vec![join(0, "s_suppkey", "l_suppkey"), join(1, "l_orderkey", "o_orderkey")],
            aggregate: Some(AggSpec {
                group_cols: vec![(0, "s_suppkey".into())],
                aggs: vec![AggKind::Count],
                having: Some((CmpOp::Gt, rng.random_range(5..50))),
            }),
            order_by: None,
            top: None,
        },
        // Expensive-orders listing: sort + top, no aggregate.
        9 => QuerySpec {
            tables: vec![TableRef::new("orders").with_filter(range_filter(
                stats,
                rng,
                "orders",
                O_TOTALPRICE,
                "o_totalprice",
                0.05,
                0.4,
            ))],
            joins: vec![],
            aggregate: None,
            order_by: Some(OrderTarget::Column { table: 0, col: "o_orderdate".into() }),
            top: Some(rng.random_range(50..500)),
        },
        // Partsupp sourcing by nation: partsupp ⋈ supplier ⋈ nation.
        10 => QuerySpec {
            tables: vec![
                TableRef::new("partsupp"),
                TableRef::new("supplier"),
                TableRef::new("nation"),
            ],
            joins: vec![join(0, "ps_suppkey", "s_suppkey"), join(1, "s_nationkey", "n_nationkey")],
            aggregate: Some(AggSpec {
                group_cols: vec![(2, "n_nationkey".into())],
                aggs: vec![AggKind::Sum { table: 0, col: "ps_availqty".into() }],
                having: None,
            }),
            order_by: None,
            top: None,
        },
        // Order-detail lookup: a narrow orders slice seeking into the
        // customer and nation primary keys (nested iteration even in the
        // untuned design, whose PK indexes always exist).
        11 => QuerySpec {
            tables: vec![
                TableRef::new("orders").with_filter(range_filter(
                    stats,
                    rng,
                    "orders",
                    O_ORDERDATE,
                    "o_orderdate",
                    0.01,
                    0.06,
                )),
                TableRef::new("customer"),
                TableRef::new("nation"),
            ],
            joins: vec![join(0, "o_custkey", "c_custkey"), join(1, "c_nationkey", "n_nationkey")],
            aggregate: Some(AggSpec {
                group_cols: vec![(2, "n_nationkey".into())],
                aggs: vec![AggKind::Sum { table: 0, col: "o_totalprice".into() }],
                having: None,
            }),
            order_by: None,
            top: None,
        },
        // Shipment audit: a narrow lineitem slice seeking into the orders
        // primary key.
        12 => QuerySpec {
            tables: vec![
                TableRef::new("lineitem").with_filter(range_filter(
                    stats,
                    rng,
                    "lineitem",
                    L_SHIPDATE,
                    "l_shipdate",
                    0.01,
                    0.05,
                )),
                TableRef::new("orders"),
            ],
            joins: vec![join(0, "l_orderkey", "o_orderkey")],
            aggregate: Some(AggSpec {
                group_cols: vec![(1, "o_orderstatus".into())],
                aggs: vec![AggKind::Count, AggKind::Sum { table: 0, col: "l_quantity".into() }],
                having: None,
            }),
            order_by: None,
            top: None,
        },
        // Q12-style shipping modes: lineitem ⋈ orders.
        _ => QuerySpec {
            tables: vec![
                TableRef::new("lineitem")
                    .with_filter(eq_filter(stats, rng, "lineitem", 10, "l_shipmode"))
                    .with_filter(range_filter(
                        stats,
                        rng,
                        "lineitem",
                        7,
                        "l_receiptdate",
                        0.1,
                        0.5,
                    )),
                TableRef::new("orders"),
            ],
            joins: vec![join(0, "l_orderkey", "o_orderkey")],
            aggregate: Some(AggSpec {
                group_cols: vec![(1, "o_orderpriority".into())],
                aggs: vec![AggKind::Count],
                having: None,
            }),
            order_by: None,
            top: None,
        },
    }
}

// ---------------------------------------------------------------------------
// TPC-DS-like templates
// ---------------------------------------------------------------------------

fn tpcds_template(rng: &mut StdRng, stats: &DbStats) -> QuerySpec {
    const D_YEAR: usize = 1;
    const I_CATEGORY: usize = 1;
    const C_BIRTH: usize = 1;
    match rng.random_range(0..6) {
        // Brand revenue by month.
        0 => QuerySpec {
            tables: vec![
                TableRef::new("store_sales"),
                TableRef::new("date_dim")
                    .with_filter(eq_filter(stats, rng, "date_dim", D_YEAR, "d_year"))
                    .with_filter(FilterSpec::Cmp {
                        col: "d_moy".into(),
                        op: CmpOp::Eq,
                        val: rng.random_range(1..=12),
                    }),
                TableRef::new("item").with_filter(eq_filter(
                    stats,
                    rng,
                    "item",
                    I_CATEGORY,
                    "i_category",
                )),
            ],
            joins: vec![
                join(0, "ss_sold_date_sk", "d_date_sk"),
                join(0, "ss_item_sk", "i_item_sk"),
            ],
            aggregate: Some(AggSpec {
                group_cols: vec![(2, "i_brand".into())],
                aggs: vec![AggKind::Sum { table: 0, col: "ss_ext_sales_price".into() }],
                having: None,
            }),
            order_by: Some(OrderTarget::AggResult { idx: 0 }),
            top: Some(100),
        },
        // Store revenue for a category.
        1 => QuerySpec {
            tables: vec![
                TableRef::new("store_sales"),
                TableRef::new("item").with_filter(eq_filter(
                    stats,
                    rng,
                    "item",
                    I_CATEGORY,
                    "i_category",
                )),
            ],
            joins: vec![join(0, "ss_item_sk", "i_item_sk")],
            aggregate: Some(AggSpec {
                group_cols: vec![(0, "ss_store_sk".into())],
                aggs: vec![AggKind::Sum { table: 0, col: "ss_ext_sales_price".into() }],
                having: None,
            }),
            order_by: None,
            top: None,
        },
        // Demographic slice across four dimensions.
        2 => QuerySpec {
            tables: vec![
                TableRef::new("store_sales"),
                TableRef::new("date_dim").with_filter(range_filter(
                    stats,
                    rng,
                    "date_dim",
                    0,
                    "d_date_sk",
                    0.1,
                    0.5,
                )),
                TableRef::new("store"),
                TableRef::new("customer_dim").with_filter(FilterSpec::Cmp {
                    col: "c_gender".into(),
                    op: CmpOp::Eq,
                    val: rng.random_range(1..=2),
                }),
            ],
            joins: vec![
                join(0, "ss_sold_date_sk", "d_date_sk"),
                join(0, "ss_store_sk", "s_store_sk"),
                join(0, "ss_customer_sk", "c_customer_sk"),
            ],
            aggregate: Some(AggSpec {
                group_cols: vec![(2, "s_state".into())],
                aggs: vec![AggKind::Count],
                having: None,
            }),
            order_by: None,
            top: None,
        },
        // Promotion effectiveness.
        3 => QuerySpec {
            tables: vec![
                TableRef::new("store_sales"),
                TableRef::new("promotion").with_filter(FilterSpec::Cmp {
                    col: "p_channel".into(),
                    op: CmpOp::Eq,
                    val: rng.random_range(1..=4),
                }),
                TableRef::new("item"),
            ],
            joins: vec![join(0, "ss_promo_sk", "p_promo_sk"), join(0, "ss_item_sk", "i_item_sk")],
            aggregate: Some(AggSpec {
                group_cols: vec![(2, "i_category".into())],
                aggs: vec![AggKind::Sum { table: 0, col: "ss_ext_sales_price".into() }],
                having: None,
            }),
            order_by: None,
            top: None,
        },
        // Hot items (heavy aggregation + having + top).
        4 => QuerySpec {
            tables: vec![TableRef::new("store_sales").with_filter(range_filter(
                stats,
                rng,
                "store_sales",
                5,
                "ss_quantity",
                0.2,
                0.7,
            ))],
            joins: vec![],
            aggregate: Some(AggSpec {
                group_cols: vec![(0, "ss_item_sk".into())],
                aggs: vec![AggKind::Count, AggKind::Sum { table: 0, col: "ss_quantity".into() }],
                having: Some((CmpOp::Gt, rng.random_range(2..12))),
            }),
            order_by: Some(OrderTarget::AggResult { idx: 1 }),
            top: Some(50),
        },
        // Birth-cohort revenue.
        _ => QuerySpec {
            tables: vec![
                TableRef::new("store_sales"),
                TableRef::new("customer_dim").with_filter(range_filter(
                    stats,
                    rng,
                    "customer_dim",
                    C_BIRTH,
                    "c_birth_year",
                    0.1,
                    0.4,
                )),
                TableRef::new("date_dim"),
            ],
            joins: vec![
                join(0, "ss_customer_sk", "c_customer_sk"),
                join(0, "ss_sold_date_sk", "d_date_sk"),
            ],
            aggregate: Some(AggSpec {
                group_cols: vec![(1, "c_birth_year".into())],
                aggs: vec![AggKind::Sum { table: 0, col: "ss_ext_sales_price".into() }],
                having: None,
            }),
            order_by: None,
            top: None,
        },
    }
}

// ---------------------------------------------------------------------------
// Real-1 templates (5–8-way joins, HAVING as the nested-sub-query stand-in)
// ---------------------------------------------------------------------------

fn real1_template(rng: &mut StdRng, stats: &DbStats) -> QuerySpec {
    const A_SIZE: usize = 3;
    const P_PRICE: usize = 2;
    const S_AMOUNT: usize = 6;
    match rng.random_range(0..5) {
        // Regional revenue: 5-way join.
        0 => QuerySpec {
            tables: vec![
                TableRef::new("sales"),
                TableRef::new("accounts").with_filter(FilterSpec::Cmp {
                    col: "a_region".into(),
                    op: CmpOp::Eq,
                    val: rng.random_range(1..=15),
                }),
                TableRef::new("products"),
                TableRef::new("employees"),
                TableRef::new("territories"),
            ],
            joins: vec![
                join(0, "s_account", "a_id"),
                join(0, "s_product", "p_id"),
                join(0, "s_employee", "e_id"),
                join(3, "e_territory", "t_id"),
            ],
            aggregate: Some(AggSpec {
                group_cols: vec![(4, "t_region".into())],
                aggs: vec![AggKind::Sum { table: 0, col: "s_amount".into() }],
                having: None,
            }),
            order_by: None,
            top: None,
        },
        // Category counts with correlated price/size filters + HAVING.
        1 => QuerySpec {
            tables: vec![
                TableRef::new("sales"),
                TableRef::new("products").with_filter(range_filter(
                    stats, rng, "products", P_PRICE, "p_price", 0.1, 0.5,
                )),
                TableRef::new("accounts")
                    .with_filter(eq_filter(stats, rng, "accounts", 2, "a_industry"))
                    .with_filter(range_filter(stats, rng, "accounts", A_SIZE, "a_size", 0.2, 0.8)),
                TableRef::new("dates").with_filter(eq_filter(stats, rng, "dates", 1, "d_year")),
            ],
            joins: vec![
                join(0, "s_product", "p_id"),
                join(0, "s_account", "a_id"),
                join(0, "s_date", "d_id"),
            ],
            aggregate: Some(AggSpec {
                group_cols: vec![(1, "p_category".into())],
                aggs: vec![AggKind::Count],
                having: Some((CmpOp::Gt, rng.random_range(2..20))),
            }),
            order_by: None,
            top: None,
        },
        // Carrier delays: 6-way join through shipments.
        2 => QuerySpec {
            tables: vec![
                TableRef::new("shipments").with_filter(FilterSpec::Range {
                    col: "sh_delay".into(),
                    lo: rng.random_range(0..10),
                    hi: rng.random_range(20..60),
                }),
                TableRef::new("sales"),
                TableRef::new("accounts"),
                TableRef::new("products"),
                TableRef::new("employees"),
                TableRef::new("territories"),
            ],
            joins: vec![
                join(0, "sh_sale", "s_id"),
                join(1, "s_account", "a_id"),
                join(1, "s_product", "p_id"),
                join(1, "s_employee", "e_id"),
                join(4, "e_territory", "t_id"),
            ],
            aggregate: Some(AggSpec {
                group_cols: vec![(0, "sh_carrier".into())],
                aggs: vec![AggKind::Sum { table: 0, col: "sh_delay".into() }, AggKind::Count],
                having: None,
            }),
            order_by: Some(OrderTarget::AggResult { idx: 0 }),
            top: None,
        },
        // Quota attainment: 8-way join.
        3 => QuerySpec {
            tables: vec![
                TableRef::new("sales"),
                TableRef::new("employees"),
                TableRef::new("targets").with_filter(FilterSpec::Range {
                    col: "tg_quarter".into(),
                    lo: 1,
                    hi: rng.random_range(3..=12),
                }),
                TableRef::new("territories"),
                TableRef::new("accounts"),
                TableRef::new("products"),
                TableRef::new("dates"),
                TableRef::new("shipments"),
            ],
            joins: vec![
                join(0, "s_employee", "e_id"),
                join(1, "e_id", "tg_employee"),
                join(1, "e_territory", "t_id"),
                join(0, "s_account", "a_id"),
                join(0, "s_product", "p_id"),
                join(0, "s_date", "d_id"),
                join(0, "s_id", "sh_sale"),
            ],
            aggregate: Some(AggSpec {
                group_cols: vec![(3, "t_region".into())],
                aggs: vec![AggKind::Sum { table: 0, col: "s_amount".into() }],
                having: None,
            }),
            order_by: None,
            top: None,
        },
        // Big-ticket listing: sort + top.
        _ => QuerySpec {
            tables: vec![
                TableRef::new("sales").with_filter(range_filter(
                    stats, rng, "sales", S_AMOUNT, "s_amount", 0.02, 0.3,
                )),
                TableRef::new("accounts"),
                TableRef::new("products"),
            ],
            joins: vec![join(0, "s_account", "a_id"), join(0, "s_product", "p_id")],
            aggregate: None,
            order_by: Some(OrderTarget::Column { table: 0, col: "s_amount".into() }),
            top: Some(rng.random_range(20..200)),
        },
    }
}

// ---------------------------------------------------------------------------
// Real-2 templates (snowflake, up to 12 joins)
// ---------------------------------------------------------------------------

fn real2_template(rng: &mut StdRng, db: &Database, stats: &DbStats) -> QuerySpec {
    let n_dims = realworld::REAL2_DIMS;
    // Choose how many dimension branches to traverse (4..=6) and how many
    // of those continue into their sub-dimension (most of them).
    let branches = rng.random_range(4..=n_dims);
    let mut dims: Vec<usize> = (0..n_dims).collect();
    // Seeded partial shuffle.
    for i in 0..branches {
        let j = rng.random_range(i..n_dims);
        dims.swap(i, j);
    }
    let chosen = &dims[..branches];

    let mut tables = vec![TableRef::new("events")];
    let mut joins = Vec::new();
    let mut filters_placed = 0;
    let mut group: Option<(usize, String)> = None;

    for &d in chosen {
        let dim_name = format!("dim{d}");
        let mut dref = TableRef::new(&dim_name);
        if filters_placed < 3 && rng.random_bool(0.6) {
            dref = dref.with_filter(FilterSpec::Cmp {
                col: "d_attr".into(),
                op: CmpOp::Le,
                val: rng.random_range(3..=9),
            });
            filters_placed += 1;
        }
        let dim_idx = tables.len();
        tables.push(dref);
        joins.push(join(0, &format!("e_dim{d}"), "d_id"));
        if group.is_none() {
            group = Some((dim_idx, "d_attr".into()));
        }
        // Continue into the sub-dimension most of the time.
        if rng.random_bool(0.8) {
            let sub_name = format!("subdim{d}");
            let mut sref = TableRef::new(&sub_name);
            if filters_placed < 3 && rng.random_bool(0.3) {
                sref = sref.with_filter(FilterSpec::Cmp {
                    col: "sd_attr".into(),
                    op: CmpOp::Le,
                    val: rng.random_range(2..=5),
                });
                filters_placed += 1;
            }
            tables.push(sref);
            joins.push(join(dim_idx, "d_sub", "sd_id"));
        }
    }
    let _ = (db, stats);

    QuerySpec {
        tables,
        joins,
        aggregate: Some(AggSpec {
            group_cols: vec![group.expect("at least one dim")],
            aggs: vec![AggKind::Sum { table: 0, col: "e_metric1".into() }, AggKind::Count],
            having: if rng.random_bool(0.3) {
                Some((CmpOp::Gt, rng.random_range(2..30)))
            } else {
                None
            },
        }),
        order_by: if rng.random_bool(0.4) { Some(OrderTarget::AggResult { idx: 0 }) } else { None },
        top: if rng.random_bool(0.3) { Some(rng.random_range(10..100)) } else { None },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_generate_valid_queries() {
        for kind in WorkloadKind::ALL {
            let spec = WorkloadSpec::new(kind, 7).with_queries(30).with_scale(0.5);
            let db = build_database(&spec);
            let stats = DbStats::build(&db);
            let queries = generate_queries(&spec, &db, &stats);
            assert_eq!(queries.len(), 30, "{kind:?}");
            for q in &queries {
                assert!(q.validate().is_ok(), "{kind:?}: {q:?}");
            }
        }
    }

    #[test]
    fn workload_generation_deterministic() {
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 3).with_queries(10).with_scale(0.3);
        let db = build_database(&spec);
        let stats = DbStats::build(&db);
        let a = generate_queries(&spec, &db, &stats);
        let b = generate_queries(&spec, &db, &stats);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn real2_queries_are_deep() {
        let spec = WorkloadSpec::new(WorkloadKind::Real2, 5).with_queries(20).with_scale(0.5);
        let db = build_database(&spec);
        let stats = DbStats::build(&db);
        let queries = generate_queries(&spec, &db, &stats);
        let max_tables = queries.iter().map(|q| q.tables.len()).max().unwrap();
        assert!(max_tables >= 9, "expected deep snowflake joins, got {max_tables}");
    }
}
