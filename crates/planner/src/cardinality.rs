//! Cardinality estimation (the E_i oracle with realistic errors).
//!
//! Standard System-R style estimation: histogram lookups for single-column
//! predicates, attribute independence for conjunctions, NDV containment
//! for equi-joins, and distinct-count capping for aggregations. With
//! skewed and correlated data these assumptions misestimate in exactly the
//! ways the paper's Section 4.4.1 identifies as the factor that hurts TGN.

use crate::query::FilterSpec;
use crate::stats::{ColumnStats, TableStats};
use prosel_engine::CmpOp;

/// Selectivity of one filter against a column's statistics.
pub fn filter_selectivity(stats: &TableStats, col: usize, filter: &FilterSpec) -> f64 {
    let rows = stats.rows as f64;
    if rows <= 0.0 {
        return 0.0;
    }
    let cs = &stats.columns[col];
    let est_rows = match *filter {
        FilterSpec::Cmp { op, val, .. } => match op {
            CmpOp::Eq => cs.histogram.estimate_eq(val),
            CmpOp::Ne => rows - cs.histogram.estimate_eq(val),
            CmpOp::Lt => cs.histogram.estimate_range(cs.min, val.saturating_sub(1)),
            CmpOp::Le => cs.histogram.estimate_range(cs.min, val),
            CmpOp::Gt => cs.histogram.estimate_range(val.saturating_add(1), cs.max),
            CmpOp::Ge => cs.histogram.estimate_range(val, cs.max),
        },
        FilterSpec::Range { lo, hi, .. } => cs.histogram.estimate_range(lo, hi),
    };
    (est_rows / rows).clamp(0.0, 1.0)
}

/// Combined selectivity of several filters on one table under the
/// attribute-independence assumption.
pub fn conjunct_selectivity(stats: &TableStats, filters: &[(usize, FilterSpec)]) -> f64 {
    filters.iter().map(|(col, f)| filter_selectivity(stats, *col, f)).product()
}

/// Equi-join size estimate under the containment assumption:
/// `|L ⋈ R| = |L|·|R| / max(ndv_L, ndv_R)`.
///
/// NDVs come from *base-table* statistics — filters are assumed not to
/// change the value distribution (independence again), a second classic
/// error source.
pub fn join_size(
    left_rows: f64,
    right_rows: f64,
    left_col: &ColumnStats,
    right_col: &ColumnStats,
) -> f64 {
    let ndv = left_col.ndv.max(right_col.ndv).max(1.0);
    (left_rows * right_rows / ndv).max(0.0)
}

/// Estimated number of groups for a grouping over `cols`' statistics with
/// `input_rows` input rows: product of NDVs, capped by the input size
/// (and damped like real optimizers to avoid absurd products).
pub fn group_count(input_rows: f64, group_col_stats: &[&ColumnStats]) -> f64 {
    if input_rows <= 0.0 {
        return 0.0;
    }
    let mut ndv_product: f64 = 1.0;
    for cs in group_col_stats {
        ndv_product *= cs.ndv.max(1.0);
    }
    // Cap: cannot exceed input rows; damp products of multiple columns.
    if group_col_stats.len() > 1 {
        ndv_product = ndv_product.powf(0.8);
    }
    ndv_product.min(input_rows).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TableStats;
    use prosel_datagen::schema::{ColumnMeta, ColumnRole, TableMeta};
    use prosel_datagen::{Column, Table};

    fn table_with(col: Vec<i64>) -> TableStats {
        let meta = TableMeta::new(
            "t",
            64,
            vec![ColumnMeta::new("c", ColumnRole::Value { min: 0, max: 1000 })],
        );
        let t = Table::new(meta, vec![Column { name: "c".into(), data: col }]);
        TableStats::build(&t)
    }

    #[test]
    fn eq_selectivity_uniform() {
        let stats = table_with((0..1000).map(|i| i % 10).collect());
        let sel = filter_selectivity(
            &stats,
            0,
            &FilterSpec::Cmp { col: "c".into(), op: CmpOp::Eq, val: 3 },
        );
        assert!((sel - 0.1).abs() < 0.05, "sel {sel}");
    }

    #[test]
    fn range_selectivity() {
        let stats = table_with((0..1000).collect());
        let sel =
            filter_selectivity(&stats, 0, &FilterSpec::Range { col: "c".into(), lo: 0, hi: 249 });
        assert!((sel - 0.25).abs() < 0.1, "sel {sel}");
        let gt = filter_selectivity(
            &stats,
            0,
            &FilterSpec::Cmp { col: "c".into(), op: CmpOp::Gt, val: 499 },
        );
        assert!((gt - 0.5).abs() < 0.1, "gt {gt}");
    }

    #[test]
    fn independence_multiplies() {
        let stats = table_with((0..1000).collect());
        let f1 = (0usize, FilterSpec::Range { col: "c".into(), lo: 0, hi: 499 });
        let f2 = (0usize, FilterSpec::Range { col: "c".into(), lo: 250, hi: 749 });
        let sel = conjunct_selectivity(&stats, &[f1, f2]);
        // Independence says 0.25; truth is 0.25 here but the point is the product.
        assert!((sel - 0.25).abs() < 0.1, "sel {sel}");
    }

    #[test]
    fn join_size_containment() {
        let l = table_with((0..1000).map(|i| i % 100).collect());
        let r = table_with((0..100).collect());
        let est = join_size(1000.0, 100.0, &l.columns[0], &r.columns[0]);
        // ndv = 100 on both sides => 1000*100/100 = 1000.
        assert!((est - 1000.0).abs() / 1000.0 < 0.3, "est {est}");
    }

    #[test]
    fn group_count_capped() {
        let s = table_with((0..1000).collect());
        let g = group_count(50.0, &[&s.columns[0]]);
        assert!(g <= 50.0);
        let g2 = group_count(1e9, &[&s.columns[0]]);
        assert!(g2 <= s.columns[0].ndv * 1.01);
    }
}
