//! A small SQL front-end.
//!
//! Parses the decision-support subset the paper's workloads exercise into
//! a [`QuerySpec`]:
//!
//! ```sql
//! SELECT n_nationkey, SUM(l_extendedprice), COUNT(*)
//! FROM customer, orders, lineitem, supplier, nation
//! WHERE c_custkey = o_custkey
//!   AND o_orderkey = l_orderkey
//!   AND l_suppkey = s_suppkey
//!   AND s_nationkey = n_nationkey
//!   AND o_orderdate BETWEEN 100 AND 500
//!   AND c_mktsegment = 3
//! GROUP BY n_nationkey
//! HAVING SUM(l_extendedprice) > 1000
//! ORDER BY 2
//! LIMIT 10
//! ```
//!
//! Supported: integer literals; `=`, `<>`, `<`, `<=`, `>`, `>=`,
//! `BETWEEN`; conjunctive `WHERE` mixing equi-join predicates
//! (`col = col`) and single-column filters; `COUNT(*)`, `SUM`, `MIN`,
//! `MAX`; `GROUP BY` of one or two columns; `HAVING` on the first
//! aggregate; `ORDER BY` a select-list position or column; `LIMIT`.
//! Column names must be unique across the referenced tables (true for
//! every schema in `prosel-datagen`, which follows the TPC prefix
//! convention).

use crate::query::{AggKind, AggSpec, FilterSpec, JoinSpec, OrderTarget, QuerySpec, TableRef};
use prosel_datagen::Database;
use prosel_engine::CmpOp;

/// Parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError(pub String);

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL error: {}", self.0)
    }
}

impl std::error::Error for SqlError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SqlError> {
    Err(SqlError(msg.into()))
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    Star,
    Comma,
    LParen,
    RParen,
    Op(String),
}

fn keyword(t: &Tok, kw: &str) -> bool {
    matches!(t, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
}

fn tokenize(input: &str) -> Result<Vec<Tok>, SqlError> {
    let mut toks = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Op("=".into()));
                i += 1;
            }
            '<' | '>' => {
                let mut op = String::from(c);
                if i + 1 < bytes.len() {
                    let n = bytes[i + 1] as char;
                    if n == '=' || (c == '<' && n == '>') {
                        op.push(n);
                        i += 1;
                    }
                }
                toks.push(Tok::Op(op));
                i += 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                match text.parse::<i64>() {
                    Ok(v) => toks.push(Tok::Num(v)),
                    Err(_) => return err(format!("bad number {text:?}")),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push(Tok::Ident(input[start..i].to_string()));
            }
            other => return err(format!("unexpected character {other:?}")),
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<&'a Tok, SqlError> {
        let t = self.toks.get(self.pos).ok_or(SqlError("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        let t = self.next()?;
        if keyword(t, kw) {
            Ok(())
        } else {
            err(format!("expected {kw}, found {t:?}"))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| keyword(t, kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s.clone()),
            t => err(format!("expected identifier, found {t:?}")),
        }
    }

    fn number(&mut self) -> Result<i64, SqlError> {
        match self.next()? {
            Tok::Num(v) => Ok(*v),
            t => err(format!("expected number, found {t:?}")),
        }
    }
}

/// Raw (unresolved) select item.
#[derive(Debug, Clone)]
enum SelectItem {
    Column(String),
    Agg { func: String, col: Option<String> },
}

/// Raw WHERE conjunct.
#[derive(Debug, Clone)]
enum Conjunct {
    Join(String, String),
    Cmp(String, CmpOp, i64),
    Between(String, i64, i64),
}

#[derive(Debug, Clone)]
struct RawQuery {
    select: Vec<SelectItem>,
    from: Vec<String>,
    conjuncts: Vec<Conjunct>,
    group_by: Vec<String>,
    having: Option<(CmpOp, i64)>,
    order_by: Option<OrderBy>,
    limit: Option<u64>,
}

#[derive(Debug, Clone)]
enum OrderBy {
    Position(usize),
    Column(String),
}

fn parse_raw(sql: &str) -> Result<RawQuery, SqlError> {
    let toks = tokenize(sql)?;
    let mut p = Parser { toks: &toks, pos: 0 };
    p.expect_kw("SELECT")?;

    // --- select list ---
    let mut select = Vec::new();
    loop {
        let t = p.next()?.clone();
        match t {
            Tok::Ident(name)
                if ["COUNT", "SUM", "MIN", "MAX"].iter().any(|f| name.eq_ignore_ascii_case(f))
                    && p.peek() == Some(&Tok::LParen) =>
            {
                p.next()?; // (
                let col = match p.next()? {
                    Tok::Star => None,
                    Tok::Ident(c) => Some(c.clone()),
                    t => return err(format!("expected column or * in aggregate, found {t:?}")),
                };
                match p.next()? {
                    Tok::RParen => {}
                    t => return err(format!("expected ), found {t:?}")),
                }
                select.push(SelectItem::Agg { func: name.to_uppercase(), col });
            }
            Tok::Ident(name) => select.push(SelectItem::Column(name)),
            Tok::Star => return err("SELECT * is not supported; name the columns".to_string()),
            t => return err(format!("bad select item {t:?}")),
        }
        if p.peek() == Some(&Tok::Comma) {
            p.next()?;
        } else {
            break;
        }
    }

    // --- FROM ---
    p.expect_kw("FROM")?;
    let mut from = vec![p.ident()?];
    while p.peek() == Some(&Tok::Comma) {
        p.next()?;
        from.push(p.ident()?);
    }

    // --- WHERE ---
    let mut conjuncts = Vec::new();
    if p.eat_kw("WHERE") {
        loop {
            let lhs = p.ident()?;
            if p.peek().is_some_and(|t| keyword(t, "BETWEEN")) {
                p.next()?;
                let lo = p.number()?;
                p.expect_kw("AND")?;
                let hi = p.number()?;
                conjuncts.push(Conjunct::Between(lhs, lo, hi));
            } else {
                let op = match p.next()? {
                    Tok::Op(o) => match o.as_str() {
                        "=" => CmpOp::Eq,
                        "<>" => CmpOp::Ne,
                        "<" => CmpOp::Lt,
                        "<=" => CmpOp::Le,
                        ">" => CmpOp::Gt,
                        ">=" => CmpOp::Ge,
                        other => return err(format!("unknown operator {other}")),
                    },
                    t => return err(format!("expected operator, found {t:?}")),
                };
                match p.next()? {
                    Tok::Num(v) => conjuncts.push(Conjunct::Cmp(lhs, op, *v)),
                    Tok::Ident(rhs) => {
                        if op != CmpOp::Eq {
                            return err("only equi-joins are supported between columns");
                        }
                        conjuncts.push(Conjunct::Join(lhs, rhs.clone()));
                    }
                    t => return err(format!("expected value or column, found {t:?}")),
                }
            }
            if !p.eat_kw("AND") {
                break;
            }
        }
    }

    // --- GROUP BY ---
    let mut group_by = Vec::new();
    if p.eat_kw("GROUP") {
        p.expect_kw("BY")?;
        group_by.push(p.ident()?);
        while p.peek() == Some(&Tok::Comma) {
            p.next()?;
            group_by.push(p.ident()?);
        }
    }

    // --- HAVING (applies to the first aggregate in the select list) ---
    let mut having = None;
    if p.eat_kw("HAVING") {
        // Accept `HAVING <agg>(...) <op> <num>` or `HAVING <op-num>` forms;
        // the aggregate reference is validated but only its position is used.
        if let Some(Tok::Ident(_)) = p.peek() {
            let _f = p.ident()?;
            if p.peek() == Some(&Tok::LParen) {
                p.next()?;
                loop {
                    match p.next()? {
                        Tok::RParen => break,
                        Tok::Star | Tok::Ident(_) | Tok::Comma => {}
                        t => return err(format!("bad HAVING aggregate: {t:?}")),
                    }
                }
            }
        }
        let op = match p.next()? {
            Tok::Op(o) => match o.as_str() {
                "=" => CmpOp::Eq,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                other => return err(format!("unknown HAVING operator {other}")),
            },
            t => return err(format!("expected operator in HAVING, found {t:?}")),
        };
        having = Some((op, p.number()?));
    }

    // --- ORDER BY ---
    let mut order_by = None;
    if p.eat_kw("ORDER") {
        p.expect_kw("BY")?;
        order_by = Some(match p.next()? {
            Tok::Num(n) => OrderBy::Position(*n as usize),
            Tok::Ident(c) => OrderBy::Column(c.clone()),
            t => return err(format!("bad ORDER BY target {t:?}")),
        });
        // DESC/ASC are accepted and ignored (the engine sorts ascending;
        // direction does not affect progress behaviour).
        let _ = p.eat_kw("DESC") || p.eat_kw("ASC");
    }

    // --- LIMIT ---
    let mut limit = None;
    if p.eat_kw("LIMIT") {
        let v = p.number()?;
        if v <= 0 {
            return err("LIMIT must be positive");
        }
        limit = Some(v as u64);
    }

    if p.pos != toks.len() {
        return err(format!("trailing tokens at {:?}", p.toks[p.pos]));
    }
    Ok(RawQuery { select, from, conjuncts, group_by, having, order_by, limit })
}

// ---------------------------------------------------------------------------
// Resolution against a database schema
// ---------------------------------------------------------------------------

/// Resolve `col` to the (unique) FROM table containing it.
fn table_of(db: &Database, from: &[String], col: &str) -> Result<usize, SqlError> {
    let mut found = None;
    for (ti, t) in from.iter().enumerate() {
        let table = db.try_table(t).ok_or_else(|| SqlError(format!("unknown table {t}")))?;
        if table.meta.col(col).is_some() {
            if found.is_some() {
                return err(format!("ambiguous column {col}"));
            }
            found = Some(ti);
        }
    }
    found.ok_or_else(|| SqlError(format!("unknown column {col}")))
}

/// Parse SQL text and resolve it into a [`QuerySpec`] against `db`.
///
/// The FROM tables are reordered (stably) so that every table after the
/// first is connected to an earlier one by a join predicate — the
/// left-deep order the plan builder requires.
pub fn parse_sql(db: &Database, sql: &str) -> Result<QuerySpec, SqlError> {
    let raw = parse_raw(sql)?;

    // Every FROM table must exist and every select column must resolve,
    // even when it is not otherwise referenced.
    for t in &raw.from {
        db.try_table(t).ok_or_else(|| SqlError(format!("unknown table {t}")))?;
    }
    for item in &raw.select {
        if let SelectItem::Column(c) = item {
            table_of(db, &raw.from, c)?;
        }
    }

    // Resolve filters and joins to tables.
    let mut filters: Vec<(usize, FilterSpec)> = Vec::new();
    let mut joins_raw: Vec<(usize, String, usize, String)> = Vec::new();
    for c in &raw.conjuncts {
        match c {
            Conjunct::Cmp(col, op, val) => {
                let t = table_of(db, &raw.from, col)?;
                filters.push((t, FilterSpec::Cmp { col: col.clone(), op: *op, val: *val }));
            }
            Conjunct::Between(col, lo, hi) => {
                let t = table_of(db, &raw.from, col)?;
                filters.push((t, FilterSpec::Range { col: col.clone(), lo: *lo, hi: *hi }));
            }
            Conjunct::Join(a, b) => {
                let ta = table_of(db, &raw.from, a)?;
                let tb = table_of(db, &raw.from, b)?;
                if ta == tb {
                    return err(format!("join {a} = {b} stays within one table"));
                }
                joins_raw.push((ta, a.clone(), tb, b.clone()));
            }
        }
    }

    // Order tables left-deep: start from FROM[0], repeatedly attach a table
    // joined to the connected set.
    let n = raw.from.len();
    let mut order: Vec<usize> = vec![0];
    let mut joins: Vec<JoinSpec> = Vec::new();
    while order.len() < n {
        let mut attached = false;
        // Stable: prefer the earliest unattached FROM table.
        for cand in 0..n {
            if order.contains(&cand) {
                continue;
            }
            // A join predicate connecting cand to the connected set?
            if let Some((ta, ca, _tb, cb)) = joins_raw
                .iter()
                .find(|(ta, _, tb, _)| {
                    (*tb == cand && order.contains(ta)) || (*ta == cand && order.contains(tb))
                })
                .map(|(ta, ca, tb, cb)| {
                    if *tb == cand {
                        (*ta, ca.clone(), *tb, cb.clone())
                    } else {
                        (*tb, cb.clone(), *ta, ca.clone())
                    }
                })
            {
                let left_pos = order.iter().position(|&t| t == ta).expect("connected");
                joins.push(JoinSpec { left_table: left_pos, left_col: ca, right_col: cb });
                order.push(cand);
                attached = true;
                break;
            }
        }
        if !attached {
            return err(
                "FROM tables are not connected by join predicates (cross joins are not supported)",
            );
        }
    }
    let pos_of = |from_idx: usize| order.iter().position(|&t| t == from_idx).expect("ordered");

    // Tables with their filters, in left-deep order.
    let tables: Vec<TableRef> = order
        .iter()
        .map(|&fi| {
            let mut tref = TableRef::new(&raw.from[fi]);
            for (t, f) in &filters {
                if *t == fi {
                    tref = tref.with_filter(f.clone());
                }
            }
            tref
        })
        .collect();

    // Select list: non-aggregate columns must match GROUP BY when
    // aggregates are present.
    let agg_items: Vec<&SelectItem> =
        raw.select.iter().filter(|s| matches!(s, SelectItem::Agg { .. })).collect();
    let aggregate = if agg_items.is_empty() {
        if raw.having.is_some() {
            return err("HAVING requires an aggregate in the select list");
        }
        if !raw.group_by.is_empty() {
            return err("GROUP BY without aggregates is not supported");
        }
        None
    } else {
        let group_cols: Vec<(usize, String)> = if raw.group_by.is_empty() {
            // Implicit grouping: the non-aggregate select columns.
            raw.select
                .iter()
                .filter_map(|s| match s {
                    SelectItem::Column(c) => Some(c.clone()),
                    _ => None,
                })
                .map(|c| Ok((pos_of(table_of(db, &raw.from, &c)?), c)))
                .collect::<Result<_, SqlError>>()?
        } else {
            raw.group_by
                .iter()
                .map(|c| Ok((pos_of(table_of(db, &raw.from, c)?), c.clone())))
                .collect::<Result<_, SqlError>>()?
        };
        if group_cols.is_empty() {
            return err("aggregate queries must group by at least one column");
        }
        if group_cols.len() > 2 {
            return err("at most two GROUP BY columns are supported");
        }
        let aggs: Vec<AggKind> = agg_items
            .iter()
            .map(|item| {
                let SelectItem::Agg { func, col } = item else { unreachable!() };
                Ok(match (func.as_str(), col) {
                    ("COUNT", _) => AggKind::Count,
                    ("SUM", Some(c)) => {
                        AggKind::Sum { table: pos_of(table_of(db, &raw.from, c)?), col: c.clone() }
                    }
                    ("MIN", Some(c)) => {
                        AggKind::Min { table: pos_of(table_of(db, &raw.from, c)?), col: c.clone() }
                    }
                    ("MAX", Some(c)) => {
                        AggKind::Max { table: pos_of(table_of(db, &raw.from, c)?), col: c.clone() }
                    }
                    (f, None) => return err(format!("{f} requires a column")),
                    (f, _) => return err(format!("unknown aggregate {f}")),
                })
            })
            .collect::<Result<_, SqlError>>()?;
        Some(AggSpec { group_cols, aggs, having: raw.having })
    };

    // ORDER BY resolution.
    let order_by = match raw.order_by {
        None => None,
        Some(OrderBy::Position(p)) => {
            let item = raw
                .select
                .get(p.wrapping_sub(1))
                .ok_or_else(|| SqlError(format!("ORDER BY position {p} out of range")))?;
            match item {
                SelectItem::Column(c) => Some(OrderTarget::Column {
                    table: pos_of(table_of(db, &raw.from, c)?),
                    col: c.clone(),
                }),
                SelectItem::Agg { .. } => {
                    let idx = agg_items
                        .iter()
                        .position(|i| std::ptr::eq(*i, item))
                        .expect("aggregate present");
                    Some(OrderTarget::AggResult { idx })
                }
            }
        }
        Some(OrderBy::Column(c)) => {
            let table = pos_of(table_of(db, &raw.from, &c)?);
            // Must be a group column to survive the aggregate.
            if let Some(agg) = &aggregate {
                if !agg.group_cols.iter().any(|(t, gc)| *t == table && *gc == c) {
                    return Err(SqlError(format!(
                        "ORDER BY column {c:?} is not in the GROUP BY list"
                    )));
                }
            }
            Some(OrderTarget::Column { table, col: c })
        }
    };

    let spec = QuerySpec { tables, joins, aggregate, order_by, top: raw.limit };
    spec.validate().map_err(SqlError)?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_datagen::tpch::{generate, TpchConfig};

    fn db() -> Database {
        generate(&TpchConfig { scale: 0.3, skew: 1.0, seed: 3 })
    }

    #[test]
    fn parses_q3_style_query() {
        let db = db();
        let sql = "SELECT o_orderdate, SUM(l_extendedprice) \
                   FROM customer, orders, lineitem \
                   WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey \
                     AND c_mktsegment = 2 AND o_orderdate BETWEEN 100 AND 900 \
                   GROUP BY o_orderdate ORDER BY 2 DESC LIMIT 10";
        let q = parse_sql(&db, sql).expect("parse");
        assert_eq!(q.tables.len(), 3);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.tables[0].table, "customer");
        assert_eq!(q.tables[0].filters.len(), 1);
        assert_eq!(q.tables[1].filters.len(), 1); // orders date range
        let agg = q.aggregate.as_ref().unwrap();
        assert_eq!(agg.group_cols.len(), 1);
        assert!(matches!(q.order_by, Some(OrderTarget::AggResult { idx: 0 })));
        assert_eq!(q.top, Some(10));
    }

    #[test]
    fn reorders_disconnected_from_list() {
        let db = db();
        // lineitem listed before orders, joined through orders: the parser
        // must still produce a connected left-deep order.
        let sql = "SELECT o_orderpriority, COUNT(*) \
                   FROM lineitem, orders \
                   WHERE o_orderkey = l_orderkey \
                   GROUP BY o_orderpriority";
        let q = parse_sql(&db, sql).expect("parse");
        assert_eq!(q.tables[0].table, "lineitem");
        assert_eq!(q.tables[1].table, "orders");
        assert_eq!(q.joins[0].left_col, "l_orderkey");
        assert_eq!(q.joins[0].right_col, "o_orderkey");
    }

    #[test]
    fn having_and_count_star() {
        let db = db();
        let sql = "SELECT p_partkey, COUNT(*), SUM(l_quantity) FROM part, lineitem \
                   WHERE p_partkey = l_partkey GROUP BY p_partkey HAVING COUNT(*) > 3";
        let q = parse_sql(&db, sql).expect("parse");
        let agg = q.aggregate.unwrap();
        assert_eq!(agg.aggs.len(), 2);
        assert!(matches!(agg.aggs[0], AggKind::Count));
        assert_eq!(agg.having, Some((CmpOp::Gt, 3)));
    }

    #[test]
    fn implicit_group_by_from_select_list() {
        let db = db();
        let sql = "SELECT l_returnflag, COUNT(*) FROM lineitem";
        let q = parse_sql(&db, sql).expect("parse");
        let agg = q.aggregate.unwrap();
        assert_eq!(agg.group_cols[0].1, "l_returnflag");
    }

    #[test]
    fn rejects_malformed_queries() {
        let db = db();
        for (sql, needle) in [
            // `FROM` lexes as an identifier select item, so the error
            // surfaces at the missing FROM keyword.
            ("SELECT FROM lineitem", "expected FROM"),
            ("SELECT l_quantity FROM nosuch", "unknown table"),
            ("SELECT zzz FROM lineitem", "unknown column"),
            ("SELECT l_quantity, o_totalprice FROM lineitem, orders", "not connected"),
            ("SELECT l_quantity FROM lineitem WHERE l_quantity < l_discount", "equi-join"),
            ("SELECT COUNT(*) FROM lineitem LIMIT 0", "LIMIT must be positive"),
            ("SELECT l_quantity FROM lineitem HAVING COUNT(*) > 1", "HAVING requires"),
        ] {
            let e = parse_sql(&db, sql).expect_err(sql);
            assert!(
                e.0.contains(needle),
                "query {sql:?}: expected error containing {needle:?}, got {e}"
            );
        }
    }

    #[test]
    fn parsed_queries_plan_and_run() {
        use crate::{DbStats, PlanBuilder};
        use prosel_datagen::{PhysicalDesign, TuningLevel};
        use prosel_engine::{run_plan, Catalog, ExecConfig};

        let db = db();
        let stats = DbStats::build(&db);
        let design = PhysicalDesign::derive(&db, TuningLevel::PartiallyTuned);
        let catalog = Catalog::new(&db, &design);
        let builder = PlanBuilder::new(&db, &stats, &design);

        let sql = "SELECT n_nationkey, SUM(o_totalprice) \
                   FROM customer, orders, nation \
                   WHERE c_custkey = o_custkey AND c_nationkey = n_nationkey \
                     AND o_orderdate BETWEEN 0 AND 1200 \
                   GROUP BY n_nationkey ORDER BY 2 LIMIT 5";
        let q = parse_sql(&db, sql).expect("parse");
        let plan = builder.build(&q).expect("plan");
        let run = run_plan(&catalog, &plan, &ExecConfig::default());
        assert!(run.result_rows <= 5);
        assert!(run.trace.total_time > 0.0);
    }
}
