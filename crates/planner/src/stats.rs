//! Table and column statistics.
//!
//! The optimizer stand-in builds equi-depth histograms and distinct-count
//! estimates from a bounded row *sample* of each column — like a real
//! system's `CREATE STATISTICS ... WITH SAMPLE`. Estimates derived from
//! them inherit the classic error sources: uniformity-within-bucket,
//! sampled NDV extrapolation, and (downstream, in
//! [`crate::cardinality`]) attribute-independence and join containment.
//! Those errors are the paper's Section 4.4.1 "cardinality estimation
//! error" factor — they must exist for TGN to have something to be
//! sensitive to.

use prosel_datagen::{Database, Table};
use std::collections::HashMap;

/// Number of histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 32;
/// Maximum sampled rows per column.
pub const SAMPLE_CAP: usize = 8192;

/// Equi-depth histogram over an `i64` column.
#[derive(Debug, Clone)]
pub struct EquiDepthHistogram {
    /// Bucket boundaries, ascending; bucket `i` covers
    /// `(bounds[i], bounds[i+1]]` (first bucket includes its lower bound).
    bounds: Vec<i64>,
    /// Estimated rows per bucket (scaled up from the sample).
    counts: Vec<f64>,
    /// Estimated distinct values per bucket.
    distincts: Vec<f64>,
}

impl EquiDepthHistogram {
    /// Build from a (sampled) set of values, scaling counts to `total_rows`.
    /// The sample is sorted in place.
    pub fn build(sample: &mut [i64], total_rows: u64) -> Self {
        if sample.is_empty() {
            return EquiDepthHistogram {
                bounds: vec![0, 0],
                counts: vec![0.0],
                distincts: vec![0.0],
            };
        }
        sample.sort_unstable();
        let n = sample.len();
        let buckets = HISTOGRAM_BUCKETS.min(n).max(1);
        let scale = total_rows as f64 / n as f64;
        let mut bounds = Vec::with_capacity(buckets + 1);
        let mut counts = Vec::with_capacity(buckets);
        let mut distincts = Vec::with_capacity(buckets);
        bounds.push(sample[0]);
        let mut start = 0usize;
        for b in 0..buckets {
            let mut end = (n * (b + 1)) / buckets;
            if end <= start {
                continue;
            }
            // Extend so equal values do not straddle buckets.
            while end < n && sample[end] == sample[end - 1] {
                end += 1;
            }
            let slice = &sample[start..end];
            let mut ndv = 1u64;
            for w in slice.windows(2) {
                if w[0] != w[1] {
                    ndv += 1;
                }
            }
            bounds.push(slice[slice.len() - 1]);
            counts.push(slice.len() as f64 * scale);
            distincts.push(ndv as f64);
            start = end;
            if end >= n {
                break;
            }
        }
        EquiDepthHistogram { bounds, counts, distincts }
    }

    /// Total estimated rows.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Estimated number of rows with `value == v` (uniformity within the
    /// containing bucket).
    pub fn estimate_eq(&self, v: i64) -> f64 {
        let nb = self.counts.len();
        for i in 0..nb {
            let lo = self.bounds[i];
            let hi = self.bounds[i + 1];
            let contains = if i == 0 { v >= lo && v <= hi } else { v > lo && v <= hi };
            if contains {
                let ndv = self.distincts[i].max(1.0);
                return self.counts[i] / ndv;
            }
        }
        0.0
    }

    /// Estimated number of rows with `lo <= value <= hi` (linear
    /// interpolation within partially covered buckets).
    pub fn estimate_range(&self, lo: i64, hi: i64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        let mut est = 0.0;
        let nb = self.counts.len();
        for i in 0..nb {
            let blo = if i == 0 { self.bounds[0] } else { self.bounds[i] };
            let bhi = self.bounds[i + 1];
            // Overlap of [lo,hi] with (blo,bhi] (first bucket [blo,bhi]).
            let olo = lo.max(blo);
            let ohi = hi.min(bhi);
            if ohi < olo {
                continue;
            }
            let width = (bhi - blo).max(1) as f64;
            let overlap = (ohi - olo + 1).min(bhi - blo + 1) as f64;
            est += self.counts[i] * (overlap / width).min(1.0);
        }
        est
    }

    /// Value at quantile `q ∈ [0,1]` (used by workload generators to pick
    /// predicate constants with a target selectivity).
    pub fn quantile(&self, q: f64) -> i64 {
        let total = self.total();
        if total <= 0.0 {
            return self.bounds[0];
        }
        let mut acc = 0.0;
        let target = q.clamp(0.0, 1.0) * total;
        for i in 0..self.counts.len() {
            if acc + self.counts[i] >= target {
                let frac = ((target - acc) / self.counts[i]).clamp(0.0, 1.0);
                let lo = self.bounds[i] as f64;
                let hi = self.bounds[i + 1] as f64;
                return (lo + frac * (hi - lo)).round() as i64;
            }
            acc += self.counts[i];
        }
        *self.bounds.last().unwrap()
    }
}

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    pub min: i64,
    pub max: i64,
    /// Estimated number of distinct values (sample-extrapolated).
    pub ndv: f64,
    pub histogram: EquiDepthHistogram,
}

impl ColumnStats {
    pub fn build(col: &[i64]) -> Self {
        let rows = col.len();
        if rows == 0 {
            return ColumnStats {
                min: 0,
                max: 0,
                ndv: 0.0,
                histogram: EquiDepthHistogram::build(&mut [], 0),
            };
        }
        // Pseudo-random sample, capped. A *systematic* (every k-th row)
        // sample aliases with periodic column layouts, so rows are chosen
        // by a hash of their position instead.
        let step = rows.div_ceil(SAMPLE_CAP) as u64;
        let mut sample: Vec<i64> = if step <= 1 {
            col.to_vec()
        } else {
            col.iter()
                .enumerate()
                .filter(|(i, _)| {
                    let mut z = *i as u64 ^ 0x9E37_79B9_7F4A_7C15;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    (z ^ (z >> 31)).is_multiple_of(step)
                })
                .map(|(_, &v)| v)
                .collect()
        };
        if sample.is_empty() {
            sample.push(col[0]);
        }
        let sample_n = sample.len();
        let histogram = EquiDepthHistogram::build(&mut sample, rows as u64);
        // `sample` is sorted now.
        let mut sample_ndv = 1u64;
        for w in sample.windows(2) {
            if w[0] != w[1] {
                sample_ndv += 1;
            }
        }
        // First-order jackknife-style scale-up: if almost every sampled row
        // is distinct, assume the column scales with the table; otherwise
        // assume the sample saw most values.
        let ndv = if sample_ndv as f64 >= 0.9 * sample_n as f64 {
            sample_ndv as f64 * (rows as f64 / sample_n as f64)
        } else {
            sample_ndv as f64
        };
        let (mut min, mut max) = (col[0], col[0]);
        for &v in col {
            min = min.min(v);
            max = max.max(v);
        }
        ColumnStats { min, max, ndv: ndv.min(rows as f64), histogram }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone)]
pub struct TableStats {
    pub rows: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    pub fn build(table: &Table) -> Self {
        TableStats {
            rows: table.rows() as u64,
            columns: (0..table.columns.len())
                .map(|c| ColumnStats::build(table.column(c)))
                .collect(),
        }
    }
}

/// Statistics for a whole database.
#[derive(Debug, Clone)]
pub struct DbStats {
    tables: HashMap<String, TableStats>,
}

impl DbStats {
    pub fn build(db: &Database) -> Self {
        DbStats {
            tables: db.tables().map(|t| (t.name().to_string(), TableStats::build(t))).collect(),
        }
    }

    pub fn table(&self, name: &str) -> &TableStats {
        self.tables.get(name).unwrap_or_else(|| panic!("no statistics for table {name}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_eq_on_uniform_column() {
        let col: Vec<i64> = (0..10_000).map(|i| i % 100).collect();
        let stats = ColumnStats::build(&col);
        // Each value appears 100 times.
        let est = stats.histogram.estimate_eq(42);
        assert!((est - 100.0).abs() < 60.0, "est {est}");
        assert!((stats.ndv - 100.0).abs() < 15.0, "ndv {}", stats.ndv);
    }

    #[test]
    fn histogram_range_covers_total() {
        let col: Vec<i64> = (0..5000).collect();
        let stats = ColumnStats::build(&col);
        let all = stats.histogram.estimate_range(0, 4999);
        assert!((all - 5000.0).abs() / 5000.0 < 0.05, "all {all}");
        let half = stats.histogram.estimate_range(0, 2499);
        assert!((half - 2500.0).abs() / 2500.0 < 0.15, "half {half}");
        assert_eq!(stats.histogram.estimate_range(10, 5), 0.0);
    }

    #[test]
    fn skewed_column_misestimated() {
        // 90% of rows are value 1; uniformity-in-bucket must misestimate
        // the cold values (this error is a feature, not a bug).
        let mut col = vec![1i64; 9000];
        col.extend(2..=1001);
        let stats = ColumnStats::build(&col);
        let hot = stats.histogram.estimate_eq(1);
        assert!(hot > 4000.0, "hot value should be seen as frequent: {hot}");
        let cold = stats.histogram.estimate_eq(500);
        // True count is 1; the estimate will be off but bounded by bucket size.
        assert!(cold < 600.0);
    }

    #[test]
    fn quantile_monotone() {
        let col: Vec<i64> = (0..1000).map(|i| i * 3).collect();
        let stats = ColumnStats::build(&col);
        let q1 = stats.histogram.quantile(0.1);
        let q5 = stats.histogram.quantile(0.5);
        let q9 = stats.histogram.quantile(0.9);
        assert!(q1 < q5 && q5 < q9);
        assert!(q5 > 1000 && q5 < 2000, "median {q5}");
    }

    #[test]
    fn empty_column_safe() {
        let stats = ColumnStats::build(&[]);
        assert_eq!(stats.ndv, 0.0);
        assert_eq!(stats.histogram.estimate_eq(5), 0.0);
        assert_eq!(stats.histogram.estimate_range(0, 10), 0.0);
    }

    #[test]
    fn db_stats_lookup() {
        let db = prosel_datagen::tpch::generate(&prosel_datagen::tpch::TpchConfig {
            scale: 0.2,
            skew: 1.0,
            seed: 5,
        });
        let stats = DbStats::build(&db);
        let li = stats.table("lineitem");
        assert_eq!(li.rows, db.table("lineitem").rows() as u64);
        assert!(li.columns.len() >= 10);
    }
}
