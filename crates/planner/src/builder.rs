//! Physical plan construction (the optimizer stand-in).
//!
//! Builds left-deep plans from [`QuerySpec`]s: access-path selection
//! (table scan vs index-range seek), join-method selection (hash vs merge
//! vs nested-loop-with-seek vs naive rescan nested loop, with batch sorts
//! inserted above large nested-iteration outers), aggregate placement
//! (stream when sorted, hash otherwise), and dead-column projection.
//!
//! Every node is annotated with E_i from [`crate::cardinality`] — exact
//! for base-table scans (like a real system, which knows base cardinalities)
//! and *estimated* (with realistic errors) everywhere else.
//!
//! The available indexes — the physical design — steer the choices, which
//! is how the paper's Table 1 operator-mix shift across tuning levels
//! arises.

use crate::cardinality::{conjunct_selectivity, filter_selectivity, group_count, join_size};
use crate::query::{AggKind, AggSpec, FilterSpec, OrderTarget, QuerySpec, TableRef};
use crate::stats::DbStats;
use prosel_datagen::{Database, PhysicalDesign};
use prosel_engine::plan::{
    AggFunc, CmpOp, NodeId, OperatorKind, PhysicalPlan, PlanNode, Predicate, SeekKind,
};

/// Tunables for plan construction.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Use an index-range seek as the access path when some indexed filter
    /// has selectivity at or below this.
    pub seek_max_selectivity: f64,
    /// Amortized planner-cost of one inner-side index lookup.
    pub seek_cost: f64,
    /// Planner-cost per build-side row of a hash join.
    pub hash_build_cost: f64,
    /// Inner tables at or below this many rows may use naive rescan
    /// nested-loop joins.
    pub tiny_inner_rows: u64,
    /// Insert a batch sort above nested-loop outers estimated at or above
    /// this many rows.
    pub batch_sort_min_outer: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            seek_max_selectivity: 0.25,
            seek_cost: 12.0,
            hash_build_cost: 2.0,
            tiny_inner_rows: 64,
            batch_sort_min_outer: 150.0,
        }
    }
}

/// A column of the current intermediate result: which base table
/// occurrence it came from and its name there. Aggregate outputs use
/// [`BoundCol::agg`].
#[derive(Debug, Clone, PartialEq)]
struct BoundCol {
    table_idx: usize,
    name: String,
}

impl BoundCol {
    fn agg(idx: usize) -> Self {
        BoundCol { table_idx: usize::MAX, name: format!("$agg{idx}") }
    }
}

/// Projection requirement for one table: `cols[..carry_len]` must survive
/// past the access path (join/group/aggregate/order columns);
/// `cols[carry_len..]` are filter-only and get projected away right above
/// the access-path filter.
#[derive(Debug, Clone)]
struct Needed {
    cols: Vec<String>,
    carry_len: usize,
}

/// Plan builder over one database + statistics + physical design.
pub struct PlanBuilder<'a> {
    db: &'a Database,
    stats: &'a DbStats,
    design: &'a PhysicalDesign,
    cfg: PlannerConfig,
}

/// Intermediate build state: the partially constructed left-deep plan.
struct Partial {
    root: NodeId,
    est: f64,
    bound: Vec<BoundCol>,
    /// Column (position in `bound`) the output is currently sorted by.
    sorted: Option<usize>,
}

impl<'a> PlanBuilder<'a> {
    pub fn new(db: &'a Database, stats: &'a DbStats, design: &'a PhysicalDesign) -> Self {
        PlanBuilder { db, stats, design, cfg: PlannerConfig::default() }
    }

    pub fn with_config(mut self, cfg: PlannerConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Build the physical plan for `spec`.
    pub fn build(&self, spec: &QuerySpec) -> Result<PhysicalPlan, String> {
        spec.validate()?;
        let mut nodes: Vec<PlanNode> = Vec::new();
        let needed = self.needed_columns(spec);

        // Access path for the driving table; prefer sorted access on the
        // first join column if that could enable a merge join.
        let first_merge_col = spec.joins.first().and_then(|j| {
            if j.left_table == 0 && self.has_index(&spec.tables[0].table, &j.left_col) {
                Some(j.left_col.clone())
            } else {
                None
            }
        });
        let mut cur = self.access_path(
            &mut nodes,
            0,
            &spec.tables[0],
            &needed[0],
            first_merge_col.as_deref(),
        );

        for ji in 0..spec.joins.len() {
            let right_idx = ji + 1;
            cur = self.attach_join(&mut nodes, cur, spec, ji, right_idx, &needed[right_idx])?;
            cur = self.project_dead_columns(&mut nodes, cur, spec, ji + 1);
        }

        if let Some(agg) = &spec.aggregate {
            cur = self.attach_aggregate(&mut nodes, cur, spec, agg)?;
        }
        if let Some(order) = &spec.order_by {
            cur = self.attach_order(&mut nodes, cur, spec, order)?;
        }
        if let Some(n) = spec.top {
            let est = cur.est.min(n as f64);
            let out_cols = cur.bound.len();
            let root = push(
                &mut nodes,
                OperatorKind::Top { n },
                vec![cur.root],
                est,
                8.0 * out_cols as f64,
                out_cols,
            );
            cur = Partial { root, est, bound: cur.bound, sorted: cur.sorted };
        }

        let plan = PhysicalPlan { nodes, root: cur.root };
        plan.validate()?;
        Ok(plan)
    }

    fn has_index(&self, table: &str, col: &str) -> bool {
        self.design.has_index(table, col)
    }

    /// Per-table projection lists: carry columns (joins, aggregates,
    /// ordering) first, then filter-only columns.
    fn needed_columns(&self, spec: &QuerySpec) -> Vec<Needed> {
        let n = spec.tables.len();
        let mut lists: Vec<Vec<String>> = vec![Vec::new(); n];
        let add = |lists: &mut Vec<Vec<String>>, t: usize, col: &str| {
            if !lists[t].iter().any(|c| c == col) {
                lists[t].push(col.to_string());
            }
        };
        for (ji, j) in spec.joins.iter().enumerate() {
            add(&mut lists, j.left_table, &j.left_col);
            add(&mut lists, ji + 1, &j.right_col);
        }
        if let Some(agg) = &spec.aggregate {
            for (t, c) in &agg.group_cols {
                add(&mut lists, *t, c);
            }
            for a in &agg.aggs {
                match a {
                    AggKind::Count => {}
                    AggKind::Sum { table, col }
                    | AggKind::Min { table, col }
                    | AggKind::Max { table, col } => add(&mut lists, *table, col),
                }
            }
        }
        if let Some(OrderTarget::Column { table, col }) = &spec.order_by {
            add(&mut lists, *table, col);
        }
        // Every table must carry at least one column (its first column when
        // nothing else is referenced — e.g. single-table COUNT(*) scans).
        for (t, tref) in spec.tables.iter().enumerate() {
            if lists[t].is_empty() {
                let table = self.db.table(&tref.table);
                add(&mut lists, t, &table.meta.columns[0].name);
            }
        }
        let carry_lens: Vec<usize> = lists.iter().map(|l| l.len()).collect();
        // Filter columns go last so they can be projected away.
        for (t, tref) in spec.tables.iter().enumerate() {
            for f in &tref.filters {
                add(&mut lists, t, f.col());
            }
        }
        lists
            .into_iter()
            .zip(carry_lens)
            .map(|(cols, carry_len)| Needed { cols, carry_len })
            .collect()
    }

    /// Build the access path for one table: `IndexSeek(StaticRange)` when a
    /// selective indexed filter exists, an ordered `IndexScan` when the
    /// caller wants sorted output, plain `TableScan` otherwise; remaining
    /// filters above; filter-only columns projected away.
    fn access_path(
        &self,
        nodes: &mut Vec<PlanNode>,
        table_idx: usize,
        tref: &TableRef,
        needed: &Needed,
        prefer_sort_col: Option<&str>,
    ) -> Partial {
        let table = self.db.table(&tref.table);
        let tstats = self.stats.table(&tref.table);
        let rows = tstats.rows as f64;
        let col_idx = |name: &str| -> usize { table.col(name) };
        let proj: Vec<usize> = needed.cols.iter().map(|c| col_idx(c)).collect();
        let pos_of = |name: &str| -> usize {
            needed.cols.iter().position(|c| c == name).expect("needed column missing")
        };

        // Candidate indexed filter with the best (lowest) selectivity.
        let mut best_seek: Option<(usize, f64)> = None;
        for (fi, f) in tref.filters.iter().enumerate() {
            if !self.has_index(&tref.table, f.col()) {
                continue;
            }
            let range_ok = match f {
                FilterSpec::Range { .. } => true,
                FilterSpec::Cmp { op, .. } => !matches!(op, CmpOp::Ne),
            };
            if !range_ok {
                continue;
            }
            let sel = filter_selectivity(tstats, col_idx(f.col()), f);
            if sel <= self.cfg.seek_max_selectivity && best_seek.is_none_or(|(_, s)| sel < s) {
                best_seek = Some((fi, sel));
            }
        }

        let (leaf, leaf_est, mut sorted, seek_filter): (NodeId, f64, Option<usize>, Option<usize>) =
            if let Some((fi, sel)) = best_seek {
                let f = &tref.filters[fi];
                let key = col_idx(f.col());
                let cs = &tstats.columns[key];
                let (lo, hi) = match f {
                    FilterSpec::Range { lo, hi, .. } => (*lo, *hi),
                    FilterSpec::Cmp { op, val, .. } => match op {
                        CmpOp::Eq => (*val, *val),
                        CmpOp::Lt => (cs.min, val.saturating_sub(1)),
                        CmpOp::Le => (cs.min, *val),
                        CmpOp::Gt => (val.saturating_add(1), cs.max),
                        CmpOp::Ge => (*val, cs.max),
                        CmpOp::Ne => unreachable!("filtered above"),
                    },
                };
                let est = (rows * sel).max(1.0);
                let id = push(
                    nodes,
                    OperatorKind::IndexSeek {
                        table: tref.table.clone(),
                        key_col: key,
                        cols: proj.clone(),
                        seek: SeekKind::StaticRange { lo, hi },
                    },
                    vec![],
                    est,
                    table.row_bytes() as f64,
                    proj.len(),
                );
                (id, est, Some(pos_of(f.col())), Some(fi))
            } else if let Some(sort_col) =
                prefer_sort_col.filter(|c| self.has_index(&tref.table, c))
            {
                let key = col_idx(sort_col);
                let id = push(
                    nodes,
                    OperatorKind::IndexScan {
                        table: tref.table.clone(),
                        key_col: key,
                        cols: proj.clone(),
                    },
                    vec![],
                    rows.max(1.0), // base cardinality is known exactly
                    table.row_bytes() as f64,
                    proj.len(),
                );
                (id, rows.max(1.0), Some(pos_of(sort_col)), None)
            } else {
                let id = push(
                    nodes,
                    OperatorKind::TableScan { table: tref.table.clone(), cols: proj.clone() },
                    vec![],
                    rows.max(1.0),
                    table.row_bytes() as f64,
                    proj.len(),
                );
                (id, rows.max(1.0), None, None)
            };

        // Remaining filters above the leaf.
        let rest: Vec<(usize, FilterSpec)> = tref
            .filters
            .iter()
            .enumerate()
            .filter(|(fi, _)| Some(*fi) != seek_filter)
            .map(|(_, f)| (col_idx(f.col()), f.clone()))
            .collect();
        let mut root = leaf;
        let mut est = leaf_est;
        if !rest.is_empty() {
            let sel = conjunct_selectivity(tstats, &rest);
            let specs: Vec<FilterSpec> = rest.iter().map(|(_, f)| f.clone()).collect();
            let pred = filters_to_predicate(&specs, &|name| pos_of(name));
            est = (est * sel).max(1.0);
            root = push(
                nodes,
                OperatorKind::Filter { pred },
                vec![root],
                est,
                table.row_bytes() as f64,
                proj.len(),
            );
        }

        let mut bound: Vec<BoundCol> =
            needed.cols.iter().map(|c| BoundCol { table_idx, name: c.clone() }).collect();

        // Project away the filter-only suffix.
        if needed.carry_len < needed.cols.len() {
            let keep: Vec<usize> = (0..needed.carry_len).collect();
            bound.truncate(needed.carry_len);
            sorted = sorted.filter(|&s| s < needed.carry_len);
            root = push(
                nodes,
                OperatorKind::Project { cols: keep },
                vec![root],
                est,
                8.0 * needed.carry_len as f64,
                needed.carry_len,
            );
        }

        Partial { root, est, bound, sorted }
    }

    /// Join `cur` with `spec.tables[right_idx]`.
    fn attach_join(
        &self,
        nodes: &mut Vec<PlanNode>,
        cur: Partial,
        spec: &QuerySpec,
        join_idx: usize,
        right_idx: usize,
        right_needed: &Needed,
    ) -> Result<Partial, String> {
        let join = &spec.joins[join_idx];
        let tref = &spec.tables[right_idx];
        let table = self.db.table(&tref.table);
        let tstats = self.stats.table(&tref.table);
        let t_rows = tstats.rows as f64;

        let left_pos = cur
            .bound
            .iter()
            .position(|b| b.table_idx == join.left_table && b.name == join.left_col)
            .ok_or_else(|| {
                format!(
                    "join {join_idx}: left column {}.{} not in scope",
                    join.left_table, join.left_col
                )
            })?;

        let local_filters: Vec<(usize, FilterSpec)> =
            tref.filters.iter().map(|f| (table.col(f.col()), f.clone())).collect();
        let local_sel = if local_filters.is_empty() {
            1.0
        } else {
            conjunct_selectivity(tstats, &local_filters)
        };
        let t_after = (t_rows * local_sel).max(1.0);

        let left_base = &spec.tables[join.left_table].table;
        let lcol_stats =
            &self.stats.table(left_base).columns[self.db.table(left_base).col(&join.left_col)];
        let rcol_stats = &tstats.columns[table.col(&join.right_col)];
        let raw_join = join_size(cur.est, t_rows, lcol_stats, rcol_stats).max(1.0);
        let post_join = (raw_join * local_sel).max(1.0);

        // Method costs. Seeks are cheap when the inner table is small
        // enough to stay buffer-pool resident, or when the batch sort that
        // would be inserted localizes the references ([9]; paper §5.1).
        let idx_on_right = self.has_index(&tref.table, &join.right_col);
        let inner_bytes = t_rows * table.row_bytes() as f64;
        let eff_seek_cost = if inner_bytes <= 96.0 * 1024.0 {
            2.5
        } else if cur.est >= self.cfg.batch_sort_min_outer {
            self.cfg.seek_cost * 0.35
        } else {
            self.cfg.seek_cost
        };
        let cost_nlj =
            if idx_on_right { cur.est * eff_seek_cost + post_join } else { f64::INFINITY };
        let cost_rescan = if tstats.rows <= self.cfg.tiny_inner_rows {
            cur.est * t_rows * 0.5 + post_join
        } else {
            f64::INFINITY
        };
        let merge_feasible =
            idx_on_right && cur.sorted == Some(left_pos) && local_filters.is_empty();
        let cost_merge = if merge_feasible { cur.est + t_rows + post_join } else { f64::INFINITY };
        // Hash joins whose build side exceeds memory pay for spilling.
        let est_build_bytes = t_after.min(cur.est) * 24.0;
        let spill_penalty =
            if est_build_bytes > 24.0 * 1024.0 { 0.8 * (t_after + cur.est) } else { 0.0 };
        let cost_hash = t_after.min(cur.est) * self.cfg.hash_build_cost
            + t_after.max(cur.est)
            + post_join
            + spill_penalty;
        // Sort both inputs, then merge — attractive for large-large joins
        // that would make the hash join spill.
        let cost_sort_merge = 0.08
            * (cur.est * (cur.est + 2.0).log2() + t_after * (t_after + 2.0).log2())
            + cur.est
            + t_after
            + post_join;
        let best = cost_nlj.min(cost_rescan).min(cost_merge).min(cost_hash).min(cost_sort_merge);

        if best == cost_merge {
            return Ok(self.build_merge_join(
                nodes,
                cur,
                join_idx,
                right_idx,
                spec,
                right_needed,
                left_pos,
                t_rows,
                post_join,
            ));
        }
        if best == cost_sort_merge {
            return Ok(self.build_sort_merge_join(
                nodes,
                cur,
                spec,
                join_idx,
                right_idx,
                right_needed,
                left_pos,
                post_join,
            ));
        }
        if best == cost_nlj || best == cost_rescan {
            return Ok(self.build_nl_join(
                nodes,
                cur,
                spec,
                join_idx,
                right_idx,
                right_needed,
                left_pos,
                raw_join,
                post_join,
                t_rows,
                best == cost_nlj,
            ));
        }
        Ok(self.build_hash_join(
            nodes,
            cur,
            spec,
            join_idx,
            right_idx,
            right_needed,
            left_pos,
            post_join,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn build_merge_join(
        &self,
        nodes: &mut Vec<PlanNode>,
        cur: Partial,
        join_idx: usize,
        right_idx: usize,
        spec: &QuerySpec,
        right_needed: &Needed,
        left_pos: usize,
        t_rows: f64,
        post_join: f64,
    ) -> Partial {
        let join = &spec.joins[join_idx];
        let tref = &spec.tables[right_idx];
        let table = self.db.table(&tref.table);
        // No local filters by feasibility; carry columns only.
        let carry = &right_needed.cols[..right_needed.carry_len];
        let key = table.col(&join.right_col);
        let proj: Vec<usize> = carry.iter().map(|c| table.col(c)).collect();
        let right = push(
            nodes,
            OperatorKind::IndexScan { table: tref.table.clone(), key_col: key, cols: proj },
            vec![],
            t_rows.max(1.0),
            table.row_bytes() as f64,
            carry.len(),
        );
        let right_key =
            carry.iter().position(|c| c == &join.right_col).expect("join col projected");
        let out_cols = cur.bound.len() + carry.len();
        let root = push(
            nodes,
            OperatorKind::MergeJoin { left_key: left_pos, right_key },
            vec![cur.root, right],
            post_join,
            8.0 * out_cols as f64,
            out_cols,
        );
        let mut bound = cur.bound;
        bound.extend(carry.iter().map(|c| BoundCol { table_idx: right_idx, name: c.clone() }));
        Partial { root, est: post_join, bound, sorted: Some(left_pos) }
    }

    /// Sort both inputs on the join key, then merge-join them.
    #[allow(clippy::too_many_arguments)]
    fn build_sort_merge_join(
        &self,
        nodes: &mut Vec<PlanNode>,
        cur: Partial,
        spec: &QuerySpec,
        join_idx: usize,
        right_idx: usize,
        right_needed: &Needed,
        left_pos: usize,
        post_join: f64,
    ) -> Partial {
        let join = &spec.joins[join_idx];
        let tref = &spec.tables[right_idx];
        // Left input sorted on the join column (unless already sorted).
        let left_sorted = if cur.sorted == Some(left_pos) {
            cur.root
        } else {
            push(
                nodes,
                OperatorKind::Sort { key_cols: vec![left_pos] },
                vec![cur.root],
                cur.est,
                8.0 * cur.bound.len() as f64,
                cur.bound.len(),
            )
        };
        // Right input: access path, then sort on its join column.
        let right_sub = self.access_path(nodes, right_idx, tref, right_needed, None);
        let right_key = right_sub
            .bound
            .iter()
            .position(|b| b.name == join.right_col)
            .expect("join col projected");
        let right_sorted = if right_sub.sorted == Some(right_key) {
            right_sub.root
        } else {
            push(
                nodes,
                OperatorKind::Sort { key_cols: vec![right_key] },
                vec![right_sub.root],
                right_sub.est,
                8.0 * right_sub.bound.len() as f64,
                right_sub.bound.len(),
            )
        };
        let out_cols = cur.bound.len() + right_sub.bound.len();
        let root = push(
            nodes,
            OperatorKind::MergeJoin { left_key: left_pos, right_key },
            vec![left_sorted, right_sorted],
            post_join,
            8.0 * out_cols as f64,
            out_cols,
        );
        let mut bound = cur.bound;
        bound.extend(right_sub.bound);
        Partial { root, est: post_join, bound, sorted: Some(left_pos) }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_nl_join(
        &self,
        nodes: &mut Vec<PlanNode>,
        cur: Partial,
        spec: &QuerySpec,
        join_idx: usize,
        right_idx: usize,
        right_needed: &Needed,
        left_pos: usize,
        raw_join: f64,
        post_join: f64,
        t_rows: f64,
        use_seek: bool,
    ) -> Partial {
        let join = &spec.joins[join_idx];
        let tref = &spec.tables[right_idx];
        let table = self.db.table(&tref.table);

        // Maybe batch-sort the outer to localize inner references.
        let mut outer_root = cur.root;
        let mut outer_sorted = cur.sorted;
        if use_seek && cur.est >= self.cfg.batch_sort_min_outer && cur.sorted != Some(left_pos) {
            let batch = (cur.est / 3.0).clamp(64.0, 4096.0) as usize;
            outer_root = push(
                nodes,
                OperatorKind::BatchSort { key_col: left_pos, batch },
                vec![outer_root],
                cur.est,
                8.0 * cur.bound.len() as f64,
                cur.bound.len(),
            );
            outer_sorted = None; // sorted only within batches
        }

        let proj: Vec<usize> = right_needed.cols.iter().map(|c| table.col(c)).collect();
        let pos_of = |name: &str| -> usize {
            right_needed.cols.iter().position(|c| c == name).expect("needed column missing")
        };
        let mut inner = if use_seek {
            push(
                nodes,
                OperatorKind::IndexSeek {
                    table: tref.table.clone(),
                    key_col: table.col(&join.right_col),
                    cols: proj,
                    seek: SeekKind::BoundParam,
                },
                vec![],
                raw_join, // total GetNext calls over all rebinds
                table.row_bytes() as f64,
                right_needed.cols.len(),
            )
        } else {
            let scan = push(
                nodes,
                OperatorKind::TableScan { table: tref.table.clone(), cols: proj },
                vec![],
                (cur.est * t_rows).max(1.0),
                table.row_bytes() as f64,
                right_needed.cols.len(),
            );
            push(
                nodes,
                OperatorKind::Filter {
                    pred: Predicate::BoundCmp { col: pos_of(&join.right_col), op: CmpOp::Eq },
                },
                vec![scan],
                raw_join,
                table.row_bytes() as f64,
                right_needed.cols.len(),
            )
        };
        if !tref.filters.is_empty() {
            let pred = filters_to_predicate(&tref.filters, &|name| pos_of(name));
            inner = push(
                nodes,
                OperatorKind::Filter { pred },
                vec![inner],
                post_join,
                table.row_bytes() as f64,
                right_needed.cols.len(),
            );
        }
        // Project the inner down to carry columns before the join output.
        if right_needed.carry_len < right_needed.cols.len() {
            inner = push(
                nodes,
                OperatorKind::Project { cols: (0..right_needed.carry_len).collect() },
                vec![inner],
                post_join,
                8.0 * right_needed.carry_len as f64,
                right_needed.carry_len,
            );
        }
        let carry = &right_needed.cols[..right_needed.carry_len];
        let out_cols = cur.bound.len() + carry.len();
        let root = push(
            nodes,
            OperatorKind::NestedLoopJoin { outer_key: left_pos },
            vec![outer_root, inner],
            post_join,
            8.0 * out_cols as f64,
            out_cols,
        );
        let mut bound = cur.bound;
        bound.extend(carry.iter().map(|c| BoundCol { table_idx: right_idx, name: c.clone() }));
        Partial { root, est: post_join, bound, sorted: outer_sorted }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_hash_join(
        &self,
        nodes: &mut Vec<PlanNode>,
        cur: Partial,
        spec: &QuerySpec,
        join_idx: usize,
        right_idx: usize,
        right_needed: &Needed,
        left_pos: usize,
        post_join: f64,
    ) -> Partial {
        let join = &spec.joins[join_idx];
        let tref = &spec.tables[right_idx];
        let right_sub = self.access_path(nodes, right_idx, tref, right_needed, None);
        let right_key = right_sub
            .bound
            .iter()
            .position(|b| b.name == join.right_col)
            .expect("join col projected");
        // Build the smaller estimated side.
        let (probe, build, probe_key, build_key, probe_bound, build_bound, probe_sorted) =
            if right_sub.est <= cur.est {
                (
                    cur.root,
                    right_sub.root,
                    left_pos,
                    right_key,
                    cur.bound,
                    right_sub.bound,
                    cur.sorted,
                )
            } else {
                (
                    right_sub.root,
                    cur.root,
                    right_key,
                    left_pos,
                    right_sub.bound,
                    cur.bound,
                    right_sub.sorted,
                )
            };
        let out_cols = probe_bound.len() + build_bound.len();
        let root = push(
            nodes,
            OperatorKind::HashJoin { probe_key, build_key },
            vec![probe, build],
            post_join,
            8.0 * out_cols as f64,
            out_cols,
        );
        let mut bound = probe_bound;
        bound.extend(build_bound);
        Partial { root, est: post_join, bound, sorted: probe_sorted }
    }

    /// Insert a projection dropping columns not used by joins after
    /// `next_join`, aggregation, or ordering.
    fn project_dead_columns(
        &self,
        nodes: &mut Vec<PlanNode>,
        cur: Partial,
        spec: &QuerySpec,
        next_join: usize,
    ) -> Partial {
        let live = |b: &BoundCol| -> bool {
            for j in spec.joins.iter().skip(next_join) {
                if j.left_table == b.table_idx && j.left_col == b.name {
                    return true;
                }
            }
            if let Some(agg) = &spec.aggregate {
                for (t, c) in &agg.group_cols {
                    if *t == b.table_idx && c == &b.name {
                        return true;
                    }
                }
                for a in &agg.aggs {
                    match a {
                        AggKind::Count => {}
                        AggKind::Sum { table, col }
                        | AggKind::Min { table, col }
                        | AggKind::Max { table, col } => {
                            if *table == b.table_idx && col == &b.name {
                                return true;
                            }
                        }
                    }
                }
                return false; // aggregation consumes everything else
            }
            if let Some(OrderTarget::Column { table, col }) = &spec.order_by {
                if *table == b.table_idx && col == &b.name {
                    return true;
                }
            }
            // Without aggregation every column is in the SELECT list.
            true
        };
        let keep: Vec<usize> = (0..cur.bound.len()).filter(|&i| live(&cur.bound[i])).collect();
        if keep.is_empty() || cur.bound.len() - keep.len() < 2 {
            return cur;
        }
        let bound: Vec<BoundCol> = keep.iter().map(|&i| cur.bound[i].clone()).collect();
        let sorted = cur.sorted.and_then(|s| keep.iter().position(|&i| i == s));
        let root = push(
            nodes,
            OperatorKind::Project { cols: keep.clone() },
            vec![cur.root],
            cur.est,
            8.0 * keep.len() as f64,
            keep.len(),
        );
        Partial { root, est: cur.est, bound, sorted }
    }

    fn attach_aggregate(
        &self,
        nodes: &mut Vec<PlanNode>,
        cur: Partial,
        spec: &QuerySpec,
        agg: &AggSpec,
    ) -> Result<Partial, String> {
        let find = |t: usize, c: &str| -> Result<usize, String> {
            cur.bound
                .iter()
                .position(|b| b.table_idx == t && b.name == c)
                .ok_or_else(|| format!("aggregate column {t}.{c} not in scope"))
        };
        let group_pos: Vec<usize> =
            agg.group_cols.iter().map(|(t, c)| find(*t, c)).collect::<Result<_, String>>()?;
        let aggs: Vec<AggFunc> = agg
            .aggs
            .iter()
            .map(|a| {
                Ok(match a {
                    AggKind::Count => AggFunc::Count,
                    AggKind::Sum { table, col } => AggFunc::Sum { col: find(*table, col)? },
                    AggKind::Min { table, col } => AggFunc::Min { col: find(*table, col)? },
                    AggKind::Max { table, col } => AggFunc::Max { col: find(*table, col)? },
                })
            })
            .collect::<Result<_, String>>()?;

        let group_stats: Vec<&crate::stats::ColumnStats> = agg
            .group_cols
            .iter()
            .map(|(t, c)| {
                let base = &spec.tables[*t].table;
                &self.stats.table(base).columns[self.db.table(base).col(c)]
            })
            .collect();
        let est = group_count(cur.est, &group_stats);
        let out_cols = group_pos.len() + aggs.len();
        let streaming = group_pos.len() == 1
            && cur.sorted.is_some()
            && cur.sorted == group_pos.first().copied();
        let op = if streaming {
            OperatorKind::StreamAggregate { group_cols: group_pos.clone(), aggs }
        } else {
            OperatorKind::HashAggregate { group_cols: group_pos.clone(), aggs }
        };
        let mut root = push(nodes, op, vec![cur.root], est, 8.0 * out_cols as f64, out_cols);
        let mut bound: Vec<BoundCol> = agg
            .group_cols
            .iter()
            .map(|(t, c)| BoundCol { table_idx: *t, name: c.clone() })
            .collect();
        for i in 0..agg.aggs.len() {
            bound.push(BoundCol::agg(i));
        }
        let mut est_out = est;
        if let Some((op_cmp, val)) = &agg.having {
            // Real optimizers guess a fixed selectivity for HAVING.
            est_out = (est * 0.33).max(1.0);
            root = push(
                nodes,
                OperatorKind::Filter {
                    pred: Predicate::ColCmp { col: group_pos.len(), op: *op_cmp, val: *val },
                },
                vec![root],
                est_out,
                8.0 * out_cols as f64,
                out_cols,
            );
        }
        let sorted = if streaming { Some(0) } else { None };
        Ok(Partial { root, est: est_out, bound, sorted })
    }

    fn attach_order(
        &self,
        nodes: &mut Vec<PlanNode>,
        cur: Partial,
        spec: &QuerySpec,
        order: &OrderTarget,
    ) -> Result<Partial, String> {
        let pos = match order {
            OrderTarget::Column { table, col } => cur
                .bound
                .iter()
                .position(|b| b.table_idx == *table && &b.name == col)
                .ok_or_else(|| format!("order column {table}.{col} not in scope"))?,
            OrderTarget::AggResult { idx } => {
                let agg = spec.aggregate.as_ref().expect("validated");
                agg.group_cols.len() + idx
            }
        };
        if cur.sorted == Some(pos) {
            return Ok(cur);
        }
        let out_cols = cur.bound.len();
        let root = push(
            nodes,
            OperatorKind::Sort { key_cols: vec![pos] },
            vec![cur.root],
            cur.est,
            8.0 * out_cols as f64,
            out_cols,
        );
        Ok(Partial { root, est: cur.est, bound: cur.bound, sorted: Some(pos) })
    }
}

/// Lower filter specs to a conjunctive [`Predicate`] over projected
/// positions.
fn filters_to_predicate(filters: &[FilterSpec], pos: &dyn Fn(&str) -> usize) -> Predicate {
    let mut preds: Vec<Predicate> = filters
        .iter()
        .map(|f| match f {
            FilterSpec::Cmp { col, op, val } => {
                Predicate::ColCmp { col: pos(col), op: *op, val: *val }
            }
            FilterSpec::Range { col, lo, hi } => {
                Predicate::ColRange { col: pos(col), lo: *lo, hi: *hi }
            }
        })
        .collect();
    let mut acc = preds.pop().expect("at least one filter");
    while let Some(p) = preds.pop() {
        acc = Predicate::And(Box::new(p), Box::new(acc));
    }
    acc
}

/// Append a node, returning its id.
fn push(
    nodes: &mut Vec<PlanNode>,
    op: OperatorKind,
    children: Vec<NodeId>,
    est_rows: f64,
    est_row_bytes: f64,
    out_cols: usize,
) -> NodeId {
    let id = nodes.len();
    nodes.push(PlanNode { op, children, est_rows, est_row_bytes, out_cols });
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{JoinSpec, TableRef};
    use prosel_datagen::tpch::{generate, TpchConfig};
    use prosel_datagen::TuningLevel;

    fn setup() -> (prosel_datagen::Database, DbStats) {
        let db = generate(&TpchConfig { scale: 0.3, skew: 1.0, seed: 11 });
        let stats = DbStats::build(&db);
        (db, stats)
    }

    #[test]
    fn single_table_scan_plan() {
        let (db, stats) = setup();
        let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
        let b = PlanBuilder::new(&db, &stats, &design);
        let spec = QuerySpec::single(TableRef::new("lineitem").with_filter(FilterSpec::Range {
            col: "l_shipdate".into(),
            lo: 100,
            hi: 500,
        }));
        let plan = b.build(&spec).unwrap();
        assert!(plan.validate().is_ok());
        // Untuned: table scan + filter (+ maybe project).
        assert!(matches!(plan.node(0).op, OperatorKind::TableScan { .. }));
        assert!(plan.nodes.iter().any(|n| matches!(n.op, OperatorKind::Filter { .. })));
    }

    #[test]
    fn tuned_design_uses_index_seek_access() {
        let (db, stats) = setup();
        let design = PhysicalDesign::derive(&db, TuningLevel::FullyTuned);
        let b = PlanBuilder::new(&db, &stats, &design);
        let spec = QuerySpec::single(TableRef::new("lineitem").with_filter(FilterSpec::Range {
            col: "l_shipdate".into(),
            lo: 100,
            hi: 200,
        }));
        let plan = b.build(&spec).unwrap();
        assert!(
            plan.nodes.iter().any(|n| matches!(n.op, OperatorKind::IndexSeek { .. })),
            "expected a seek access path:\n{}",
            plan.render()
        );
    }

    #[test]
    fn untuned_join_is_hash_join() {
        let (db, stats) = setup();
        let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
        let b = PlanBuilder::new(&db, &stats, &design);
        let spec = QuerySpec {
            tables: vec![TableRef::new("orders"), TableRef::new("lineitem")],
            joins: vec![JoinSpec {
                left_table: 0,
                left_col: "o_orderkey".into(),
                right_col: "l_orderkey".into(),
            }],
            aggregate: None,
            order_by: None,
            top: None,
        };
        let plan = b.build(&spec).unwrap();
        assert!(
            plan.nodes.iter().any(|n| matches!(n.op, OperatorKind::HashJoin { .. })),
            "expected hash join:\n{}",
            plan.render()
        );
    }

    #[test]
    fn tuned_selective_outer_uses_nlj_with_seek() {
        let (db, stats) = setup();
        let design = PhysicalDesign::derive(&db, TuningLevel::FullyTuned);
        let b = PlanBuilder::new(&db, &stats, &design);
        // Small filtered orders side drives a seek into lineitem.
        let spec = QuerySpec {
            tables: vec![
                TableRef::new("orders").with_filter(FilterSpec::Range {
                    col: "o_orderdate".into(),
                    lo: 0,
                    hi: 60,
                }),
                TableRef::new("lineitem"),
            ],
            joins: vec![JoinSpec {
                left_table: 0,
                left_col: "o_orderkey".into(),
                right_col: "l_orderkey".into(),
            }],
            aggregate: None,
            order_by: None,
            top: None,
        };
        let plan = b.build(&spec).unwrap();
        assert!(
            plan.nodes.iter().any(|n| matches!(n.op, OperatorKind::NestedLoopJoin { .. })),
            "expected nested loop:\n{}",
            plan.render()
        );
        assert!(plan
            .nodes
            .iter()
            .any(|n| matches!(n.op, OperatorKind::IndexSeek { seek: SeekKind::BoundParam, .. })));
    }

    #[test]
    fn aggregate_and_order_compose() {
        let (db, stats) = setup();
        let design = PhysicalDesign::derive(&db, TuningLevel::Untuned);
        let b = PlanBuilder::new(&db, &stats, &design);
        let spec = QuerySpec {
            tables: vec![TableRef::new("lineitem")],
            joins: vec![],
            aggregate: Some(AggSpec {
                group_cols: vec![(0, "l_returnflag".into())],
                aggs: vec![AggKind::Count, AggKind::Sum { table: 0, col: "l_quantity".into() }],
                having: None,
            }),
            order_by: Some(OrderTarget::AggResult { idx: 0 }),
            top: Some(5),
        };
        let plan = b.build(&spec).unwrap();
        let kinds: Vec<&str> = plan.nodes.iter().map(|n| n.op.name()).collect();
        assert!(kinds.contains(&"HashAggregate"));
        assert!(kinds.contains(&"Sort"));
        assert!(kinds.contains(&"Top"));
    }

    #[test]
    fn estimates_are_positive_and_finite() {
        let (db, stats) = setup();
        for level in TuningLevel::ALL {
            let design = PhysicalDesign::derive(&db, level);
            let b = PlanBuilder::new(&db, &stats, &design);
            let spec = QuerySpec {
                tables: vec![
                    TableRef::new("customer").with_filter(FilterSpec::Cmp {
                        col: "c_mktsegment".into(),
                        op: CmpOp::Eq,
                        val: 1,
                    }),
                    TableRef::new("orders"),
                    TableRef::new("lineitem"),
                ],
                joins: vec![
                    JoinSpec {
                        left_table: 0,
                        left_col: "c_custkey".into(),
                        right_col: "o_custkey".into(),
                    },
                    JoinSpec {
                        left_table: 1,
                        left_col: "o_orderkey".into(),
                        right_col: "l_orderkey".into(),
                    },
                ],
                aggregate: Some(AggSpec {
                    group_cols: vec![(1, "o_orderdate".into())],
                    aggs: vec![AggKind::Sum { table: 2, col: "l_extendedprice".into() }],
                    having: None,
                }),
                order_by: None,
                top: None,
            };
            let plan = b.build(&spec).unwrap();
            for n in &plan.nodes {
                assert!(n.est_rows.is_finite() && n.est_rows >= 0.0);
            }
        }
    }
}
