//! Logical query specifications (what workload generators produce and the
//! plan builder consumes).
//!
//! A [`QuerySpec`] is a select-project-join-aggregate block: a list of
//! base tables with local filters, a left-deep join order (join `i`
//! attaches `tables[i+1]` to a column of an earlier table), an optional
//! aggregation with HAVING, an optional ORDER BY and TOP.

use prosel_engine::CmpOp;

/// A single-column filter.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterSpec {
    Cmp { col: String, op: CmpOp, val: i64 },
    Range { col: String, lo: i64, hi: i64 },
}

impl FilterSpec {
    pub fn col(&self) -> &str {
        match self {
            FilterSpec::Cmp { col, .. } | FilterSpec::Range { col, .. } => col,
        }
    }
}

/// A base-table occurrence with pushed-down filters.
#[derive(Debug, Clone)]
pub struct TableRef {
    pub table: String,
    pub filters: Vec<FilterSpec>,
}

impl TableRef {
    pub fn new(table: &str) -> Self {
        TableRef { table: table.to_string(), filters: Vec::new() }
    }

    pub fn with_filter(mut self, f: FilterSpec) -> Self {
        self.filters.push(f);
        self
    }
}

/// Join `i` connects `tables[i+1].right_col` to `tables[left_table].left_col`
/// (`left_table <= i`).
#[derive(Debug, Clone)]
pub struct JoinSpec {
    pub left_table: usize,
    pub left_col: String,
    pub right_col: String,
}

/// Aggregate function over a (table, column) of the join output.
#[derive(Debug, Clone)]
pub enum AggKind {
    Count,
    Sum { table: usize, col: String },
    Min { table: usize, col: String },
    Max { table: usize, col: String },
}

/// Aggregation block: group by up to two columns, compute `aggs`, then
/// optionally filter groups (HAVING) on the first aggregate's value.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub group_cols: Vec<(usize, String)>,
    pub aggs: Vec<AggKind>,
    pub having: Option<(CmpOp, i64)>,
}

/// ORDER BY target.
#[derive(Debug, Clone)]
pub enum OrderTarget {
    /// A join-output column.
    Column { table: usize, col: String },
    /// The `idx`-th aggregate result (requires an aggregation block).
    AggResult { idx: usize },
}

/// One logical query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub tables: Vec<TableRef>,
    pub joins: Vec<JoinSpec>,
    pub aggregate: Option<AggSpec>,
    pub order_by: Option<OrderTarget>,
    pub top: Option<u64>,
}

impl QuerySpec {
    /// Single-table query.
    pub fn single(table: TableRef) -> Self {
        QuerySpec {
            tables: vec![table],
            joins: Vec::new(),
            aggregate: None,
            order_by: None,
            top: None,
        }
    }

    /// Validate index invariants (joins reference earlier tables, etc.).
    pub fn validate(&self) -> Result<(), String> {
        if self.tables.is_empty() {
            return Err("query must reference at least one table".into());
        }
        if self.joins.len() + 1 != self.tables.len() {
            return Err(format!(
                "{} tables need {} joins, found {}",
                self.tables.len(),
                self.tables.len() - 1,
                self.joins.len()
            ));
        }
        for (i, j) in self.joins.iter().enumerate() {
            if j.left_table > i {
                return Err(format!(
                    "join {i} references table {} which is not yet joined",
                    j.left_table
                ));
            }
        }
        if let Some(agg) = &self.aggregate {
            if agg.group_cols.is_empty() || agg.group_cols.len() > 2 {
                return Err("aggregation must group by 1 or 2 columns".into());
            }
            if agg.aggs.is_empty() {
                return Err("aggregation must compute at least one aggregate".into());
            }
            if agg.having.is_some() && agg.aggs.is_empty() {
                return Err("HAVING requires an aggregate".into());
            }
            for (t, _) in &agg.group_cols {
                if *t >= self.tables.len() {
                    return Err("group column references unknown table".into());
                }
            }
        }
        if let Some(OrderTarget::AggResult { idx }) = &self.order_by {
            match &self.aggregate {
                None => return Err("ORDER BY aggregate requires aggregation".into()),
                Some(a) if *idx >= a.aggs.len() => {
                    return Err("ORDER BY references missing aggregate".into())
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_join_indices() {
        let q = QuerySpec {
            tables: vec![TableRef::new("a"), TableRef::new("b")],
            joins: vec![JoinSpec { left_table: 0, left_col: "x".into(), right_col: "y".into() }],
            aggregate: None,
            order_by: None,
            top: None,
        };
        assert!(q.validate().is_ok());

        let bad = QuerySpec {
            tables: vec![TableRef::new("a"), TableRef::new("b")],
            joins: vec![JoinSpec { left_table: 5, left_col: "x".into(), right_col: "y".into() }],
            aggregate: None,
            order_by: None,
            top: None,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_aggregate_rules() {
        let mut q = QuerySpec::single(TableRef::new("a"));
        q.aggregate =
            Some(AggSpec { group_cols: vec![], aggs: vec![AggKind::Count], having: None });
        assert!(q.validate().is_err());
        q.aggregate = Some(AggSpec {
            group_cols: vec![(0, "c".into())],
            aggs: vec![AggKind::Count],
            having: None,
        });
        assert!(q.validate().is_ok());
        q.order_by = Some(OrderTarget::AggResult { idx: 3 });
        assert!(q.validate().is_err());
        q.order_by = Some(OrderTarget::AggResult { idx: 0 });
        assert!(q.validate().is_ok());
    }
}
