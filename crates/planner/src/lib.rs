//! # prosel-planner
//!
//! The query-optimizer stand-in: statistics ([`stats`]), System-R-style
//! cardinality estimation ([`cardinality`]), physical plan construction
//! steered by the physical design ([`builder`]), and parameterized
//! workload generation for the paper's six evaluation workloads
//! ([`workload`]).
//!
//! Cardinality estimates carry realistic error (histogram uniformity,
//! sampled NDV, attribute independence, join containment) — the paper's
//! estimator-selection framework exists precisely because such errors make
//! E_i-based progress estimators unreliable in data- and query-dependent
//! ways.

pub mod builder;
pub mod cardinality;
pub mod query;
pub mod sql;
pub mod stats;
pub mod workload;

pub use builder::{PlanBuilder, PlannerConfig};
pub use query::{AggKind, AggSpec, FilterSpec, JoinSpec, OrderTarget, QuerySpec, TableRef};
pub use sql::{parse_sql, SqlError};
pub use stats::{ColumnStats, DbStats, EquiDepthHistogram, TableStats};
pub use workload::{
    build_database, generate_queries, materialize, Workload, WorkloadKind, WorkloadSpec,
};
