//! Plan-shape tests: the builder must produce the right operator
//! structures for each join method, keep column bookkeeping consistent on
//! deep plans, and stay within the engine's tuple-arity limit.

use prosel_datagen::{PhysicalDesign, TuningLevel};
use prosel_engine::plan::{OperatorKind, SeekKind};
use prosel_engine::{run_plan, Catalog, ExecConfig, MAX_COLS};
use prosel_planner::query::{
    AggKind, AggSpec, FilterSpec, JoinSpec, OrderTarget, QuerySpec, TableRef,
};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::{DbStats, PlanBuilder, PlannerConfig};

fn tpch(tuning: TuningLevel) -> (prosel_datagen::Database, DbStats, PhysicalDesign) {
    let db = prosel_datagen::tpch::generate(&prosel_datagen::tpch::TpchConfig {
        scale: 1.0,
        skew: 1.0,
        seed: 99,
    });
    let stats = DbStats::build(&db);
    let design = PhysicalDesign::derive(&db, tuning);
    (db, stats, design)
}

fn op_names(plan: &prosel_engine::PhysicalPlan) -> Vec<&'static str> {
    plan.nodes.iter().map(|n| n.op.name()).collect()
}

#[test]
fn naive_rescan_join_for_tiny_inner() {
    let (db, stats, design) = tpch(TuningLevel::Untuned);
    let b = PlanBuilder::new(&db, &stats, &design);
    // nation (25 rows) as the inner of supplier ⋈ nation; untuned has no
    // FK index, so with a small outer the rescan nested loop is viable.
    let q = QuerySpec {
        tables: vec![
            TableRef::new("supplier").with_filter(FilterSpec::Range {
                col: "s_acctbal".into(),
                lo: 9000,
                hi: 9999,
            }),
            TableRef::new("region"),
        ],
        joins: vec![JoinSpec {
            left_table: 0,
            left_col: "s_nationkey".into(),
            right_col: "r_regionkey".into(),
        }],
        aggregate: None,
        order_by: None,
        top: None,
    };
    let plan = b.build(&q).unwrap();
    // Either a rescan NLJ (BoundCmp filter) or a cached-seek NLJ; never a
    // hash join for a 5-row inner with a tiny outer.
    assert!(
        op_names(&plan).contains(&"NestedLoopJoin"),
        "expected nested loop:\n{}",
        plan.render()
    );
}

#[test]
fn sort_merge_join_for_large_large_untuned() {
    let (db, stats, design) = tpch(TuningLevel::Untuned);
    // Force hash to look bad by shrinking its cost knobs is not needed:
    // orders ⋈ lineitem at scale 1 exceeds the spill budget, so sort-merge
    // competes. Verify the builder *can* produce it and that the plan runs.
    let b = PlanBuilder::new(&db, &stats, &design).with_config(PlannerConfig {
        hash_build_cost: 50.0, // make hash unattractive
        ..Default::default()
    });
    let q = QuerySpec {
        tables: vec![TableRef::new("orders"), TableRef::new("lineitem")],
        joins: vec![JoinSpec {
            left_table: 0,
            left_col: "o_orderkey".into(),
            right_col: "l_orderkey".into(),
        }],
        aggregate: None,
        order_by: None,
        top: None,
    };
    let plan = b.build(&q).unwrap();
    let names = op_names(&plan);
    assert!(names.contains(&"MergeJoin"), "expected merge join:\n{}", plan.render());
    assert!(names.contains(&"Sort"), "sort-merge needs sorts:\n{}", plan.render());
    let catalog = Catalog::new(&db, &design);
    let run = run_plan(&catalog, &plan, &ExecConfig::default());
    // Every lineitem row joins its order exactly once.
    assert_eq!(run.result_rows, db.table("lineitem").rows() as u64);
}

#[test]
fn index_merge_join_when_both_sides_ordered() {
    let (db, stats, design) = tpch(TuningLevel::FullyTuned);
    let b = PlanBuilder::new(&db, &stats, &design).with_config(PlannerConfig {
        seek_cost: 1e6, // rule out the nested loop
        ..Default::default()
    });
    let q = QuerySpec {
        tables: vec![TableRef::new("orders"), TableRef::new("lineitem")],
        joins: vec![JoinSpec {
            left_table: 0,
            left_col: "o_orderkey".into(),
            right_col: "l_orderkey".into(),
        }],
        aggregate: None,
        order_by: None,
        top: None,
    };
    let plan = b.build(&q).unwrap();
    let names = op_names(&plan);
    assert!(names.contains(&"MergeJoin"), "expected merge join:\n{}", plan.render());
    // Fully tuned: both sides come pre-ordered from indexes — a sortless
    // merge must be possible.
    let sortless = names.iter().filter(|&&n| n == "Sort").count() == 0;
    assert!(sortless, "index-index merge should not need sorts:\n{}", plan.render());
}

#[test]
fn nlj_inner_filters_sit_above_the_seek() {
    let (db, stats, design) = tpch(TuningLevel::FullyTuned);
    let b = PlanBuilder::new(&db, &stats, &design)
        .with_config(PlannerConfig { seek_cost: 0.5, ..Default::default() });
    let q = QuerySpec {
        tables: vec![
            TableRef::new("orders").with_filter(FilterSpec::Range {
                col: "o_orderdate".into(),
                lo: 0,
                hi: 100,
            }),
            TableRef::new("lineitem").with_filter(FilterSpec::Cmp {
                col: "l_returnflag".into(),
                op: prosel_engine::CmpOp::Eq,
                val: 3,
            }),
        ],
        joins: vec![JoinSpec {
            left_table: 0,
            left_col: "o_orderkey".into(),
            right_col: "l_orderkey".into(),
        }],
        aggregate: None,
        order_by: None,
        top: None,
    };
    let plan = b.build(&q).unwrap();
    // Find the NLJ and verify its inner subtree contains a BoundParam seek
    // with a filter above it.
    let nlj = plan
        .nodes
        .iter()
        .position(|n| matches!(n.op, OperatorKind::NestedLoopJoin { .. }))
        .unwrap_or_else(|| panic!("no NLJ:\n{}", plan.render()));
    let inner = plan.node(nlj).children[1];
    let inner_ops: Vec<&str> = std::iter::once(inner)
        .chain(plan.descendants(inner))
        .map(|n| plan.node(n).op.name())
        .collect();
    assert!(inner_ops.contains(&"Filter"), "inner filter missing:\n{}", plan.render());
    assert!(
        plan.nodes
            .iter()
            .any(|n| matches!(&n.op, OperatorKind::IndexSeek { seek: SeekKind::BoundParam, .. })),
        "bound-param seek missing:\n{}",
        plan.render()
    );
    // Execute and cross-check against a direct count.
    let catalog = Catalog::new(&db, &design);
    let run = run_plan(&catalog, &plan, &ExecConfig::default());
    let orders = db.table("orders");
    let li = db.table("lineitem");
    let mut expected = 0u64;
    let ok_col = li.col("l_orderkey");
    let rf_col = li.col("l_returnflag");
    let od_col = orders.col("o_orderdate");
    for i in 0..li.rows() {
        let o = li.value(i, ok_col) as usize - 1;
        if li.value(i, rf_col) == 3 && (0..=100).contains(&orders.value(o, od_col)) {
            expected += 1;
        }
    }
    assert_eq!(run.result_rows, expected);
}

#[test]
fn deep_snowflake_plans_fit_tuple_arity() {
    // The widest plans come from Real-2's 12-way joins: every intermediate
    // node must stay within MAX_COLS, which the dead-column projections
    // guarantee.
    let spec = WorkloadSpec::new(WorkloadKind::Real2, 5).with_queries(60);
    let w = materialize(&spec);
    let b = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let mut max_cols = 0;
    let mut projects = 0;
    for q in &w.queries {
        let plan = b.build(q).unwrap();
        for n in &plan.nodes {
            max_cols = max_cols.max(n.out_cols);
            if matches!(n.op, OperatorKind::Project { .. }) {
                projects += 1;
            }
        }
    }
    assert!(max_cols <= MAX_COLS, "arity {max_cols} exceeds MAX_COLS");
    assert!(projects > 0, "dead-column projection never fired");
}

#[test]
fn having_becomes_filter_over_aggregate() {
    let (db, stats, design) = tpch(TuningLevel::PartiallyTuned);
    let b = PlanBuilder::new(&db, &stats, &design);
    let q = QuerySpec {
        tables: vec![TableRef::new("orders"), TableRef::new("lineitem")],
        joins: vec![JoinSpec {
            left_table: 0,
            left_col: "o_orderkey".into(),
            right_col: "l_orderkey".into(),
        }],
        aggregate: Some(AggSpec {
            group_cols: vec![(0, "o_orderkey".into())],
            aggs: vec![AggKind::Sum { table: 1, col: "l_quantity".into() }],
            having: Some((prosel_engine::CmpOp::Gt, 150)),
        }),
        order_by: Some(OrderTarget::AggResult { idx: 0 }),
        top: Some(10),
    };
    let plan = b.build(&q).unwrap();
    let parents = plan.parents();
    // Find the aggregate, and require a Filter as its (transitive) parent
    // before the Sort/Top stack.
    let agg = plan
        .nodes
        .iter()
        .position(|n| {
            matches!(
                n.op,
                OperatorKind::HashAggregate { .. } | OperatorKind::StreamAggregate { .. }
            )
        })
        .expect("aggregate");
    let parent = parents[agg].expect("aggregate has a parent");
    assert!(
        matches!(plan.node(parent).op, OperatorKind::Filter { .. }),
        "HAVING filter must sit directly above the aggregate:\n{}",
        plan.render()
    );
    let catalog = Catalog::new(&db, &design);
    let run = run_plan(&catalog, &plan, &ExecConfig::default());
    assert!(run.result_rows <= 10);
}
