//! Substrate smoke test: every workload's queries must plan and execute.

use prosel_engine::{run_plan, Catalog, ExecConfig, OperatorKind};
use prosel_planner::workload::{materialize, WorkloadKind, WorkloadSpec};
use prosel_planner::PlanBuilder;

fn run_workload(kind: WorkloadKind) -> (usize, Vec<&'static str>) {
    let spec = WorkloadSpec::new(kind, 42).with_queries(25).with_scale(0.6);
    let w = materialize(&spec);
    let catalog = Catalog::new(&w.db, &w.design);
    let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
    let cfg = ExecConfig::default();
    let mut ops = Vec::new();
    let mut pipelines = 0usize;
    for (qi, q) in w.queries.iter().enumerate() {
        let plan = builder
            .build(q)
            .unwrap_or_else(|e| panic!("{kind:?} query {qi} failed to plan: {e}\n{q:?}"));
        let run = run_plan(&catalog, &plan, &ExecConfig { seed: qi as u64, ..cfg.clone() });
        assert!(run.trace.total_time > 0.0, "{kind:?} query {qi} did no work");
        assert!(!run.trace.snapshots.is_empty());
        pipelines += run.pipelines.len();
        for n in &plan.nodes {
            ops.push(n.op.name());
        }
        // True totals must be consistent with the last snapshot.
        let last = run.trace.snapshots.last().unwrap();
        assert_eq!(last.k.as_ref(), run.trace.final_k.as_slice());
    }
    (pipelines, ops)
}

#[test]
fn tpch_workload_end_to_end() {
    let (pipelines, ops) = run_workload(WorkloadKind::TpchLike);
    assert!(pipelines >= 25, "each query has at least one pipeline");
    // The operator mix must include the interesting operators.
    for needed in ["HashJoin", "Filter", "TableScan"] {
        assert!(ops.contains(&needed), "missing {needed} in tpch plans");
    }
}

#[test]
fn tpcds_workload_end_to_end() {
    let (_p, ops) = run_workload(WorkloadKind::TpcdsLike);
    assert!(ops.contains(&"HashAggregate") || ops.contains(&"StreamAggregate"));
}

#[test]
fn real1_workload_end_to_end() {
    let (_p, ops) = run_workload(WorkloadKind::Real1);
    assert!(ops.iter().filter(|&&o| o == "NestedLoopJoin" || o == "HashJoin").count() > 10);
}

#[test]
fn real2_workload_end_to_end() {
    let (_p, ops) = run_workload(WorkloadKind::Real2);
    let joins = ops
        .iter()
        .filter(|&&o| o == "NestedLoopJoin" || o == "HashJoin" || o == "MergeJoin")
        .count();
    assert!(joins >= 100, "real2 should be join-heavy, saw {joins}");
}

#[test]
fn tuned_designs_shift_operator_mix() {
    use prosel_datagen::TuningLevel;
    let mix = |tuning: TuningLevel| -> (usize, usize) {
        let spec = WorkloadSpec::new(WorkloadKind::TpchLike, 42)
            .with_queries(40)
            .with_scale(0.6)
            .with_tuning(tuning);
        let w = materialize(&spec);
        let builder = PlanBuilder::new(&w.db, &w.stats, &w.design);
        let mut seeks = 0;
        let mut nlj = 0;
        for q in &w.queries {
            let plan = builder.build(q).expect("plan");
            for n in &plan.nodes {
                match n.op {
                    OperatorKind::IndexSeek { .. } => seeks += 1,
                    OperatorKind::NestedLoopJoin { .. } => nlj += 1,
                    _ => {}
                }
            }
        }
        (seeks, nlj)
    };
    let (seek_u, _nlj_u) = mix(TuningLevel::Untuned);
    let (seek_f, nlj_f) = mix(TuningLevel::FullyTuned);
    assert!(seek_f > seek_u, "tuning should add index seeks: untuned {seek_u}, full {seek_f}");
    assert!(nlj_f > 0, "fully tuned should use nested loops");
}
