//! Property net over the [`SpeedTracker`] window math.
//!
//! The invariants the ETA subsystem promises, exercised over randomized
//! sample streams (including regressions, stalls and clamped progress):
//!
//! * ETAs are never negative, and never NaN;
//! * once two samples were accepted, the point estimate is finite;
//! * the interval always brackets the point estimate, and the window's
//!   consecutive-speed bounds always bracket its end-to-end speed;
//! * `progress_at` is clamped, non-decreasing in the deadline, and serves
//!   the latest sample for past deadlines;
//! * an identically-driven [`ManualClock`] produces byte-identical ETA
//!   streams across runs — the determinism that makes ETA serving
//!   regression-testable at all.

use proptest::collection::vec;
use proptest::prelude::*;
use prosel_engine::clock::{Clock, ManualClock};
use prosel_monitor::{Eta, SpeedTracker};

/// Every wall quantity of an [`Eta`], as raw bits — "byte-identical"
/// comparisons compare these, not approximate float equality.
fn eta_bits(e: &Eta) -> [u64; 6] {
    [
        e.as_of.to_bits(),
        e.progress.to_bits(),
        e.speed.to_bits(),
        e.remaining.to_bits(),
        e.remaining_lo.to_bits(),
        e.remaining_hi.to_bits(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn eta_is_nonnegative_finite_and_bracketed(
        window in 2usize..16,
        dts in vec(0.001f64..5.0, 1..48),
        dps in vec(-0.05f64..0.15, 1..48),
    ) {
        let mut tracker = SpeedTracker::new(window);
        let (mut wall, mut progress) = (0.0f64, 0.0f64);
        let mut accepted = usize::from(tracker.offer(wall, progress));
        for (dt, dp) in dts.iter().zip(&dps) {
            // Stalls (dp <= 0) and regressions are part of the stream on
            // purpose: the tracker must reject them, not corrupt itself.
            wall += dt;
            progress = (progress + dp).clamp(0.0, 1.0);
            accepted += usize::from(tracker.offer(wall, progress));

            let e = tracker.estimate();
            prop_assert!(e.remaining >= 0.0 && !e.remaining.is_nan());
            prop_assert!(e.remaining_lo >= 0.0 && e.remaining_hi >= 0.0);
            prop_assert!(
                e.remaining_lo <= e.remaining && e.remaining <= e.remaining_hi,
                "interval [{}, {}] must bracket point {}",
                e.remaining_lo, e.remaining_hi, e.remaining
            );
            if accepted >= 2 {
                prop_assert!(e.is_known(), "{accepted} accepted samples but unknown ETA");
                prop_assert!(e.remaining.is_finite() && e.speed > 0.0);
                let (slow, fast) = tracker.speed_bounds().expect("known => bounds");
                prop_assert!(
                    slow <= e.speed + 1e-12 && e.speed <= fast + 1e-12,
                    "window speed {} outside consecutive bounds [{slow}, {fast}]",
                    e.speed
                );
            } else {
                prop_assert!(!e.is_known());
            }
            prop_assert!(tracker.len() <= window, "ring buffer must stay bounded");
        }
    }

    #[test]
    fn progress_at_deadline_is_clamped_and_monotone(
        dts in vec(0.01f64..3.0, 2..32),
        dps in vec(0.001f64..0.1, 2..32),
        probe in 0.0f64..50.0,
    ) {
        let mut tracker = SpeedTracker::new(8);
        let (mut wall, mut progress) = (1.0f64, 0.0f64);
        tracker.offer(wall, progress);
        for (dt, dp) in dts.iter().zip(&dps) {
            wall += dt;
            progress = (progress + dp).clamp(0.0, 1.0);
            tracker.offer(wall, progress);
        }
        let (as_of, latest) = tracker.latest().expect("samples offered");
        prop_assert_eq!(tracker.progress_at(as_of), latest);
        prop_assert_eq!(tracker.progress_at(as_of - 0.5), latest);
        let mut prev = 0.0f64;
        for i in 0..8 {
            let p = tracker.progress_at(as_of + probe * i as f64 / 8.0);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p + 1e-12 >= prev, "prediction must not shrink with later deadlines");
            prev = p;
        }
    }

    #[test]
    fn manual_clock_streams_are_byte_identical(
        step in 0.001f64..1.0,
        dps in vec(0.001f64..0.08, 2..40),
        window in 2usize..12,
    ) {
        // Two independent trackers fed from two identically-driven manual
        // clocks must serve bit-for-bit the same ETA stream.
        let run = || -> Vec<[u64; 6]> {
            let clock = ManualClock::stepping(0.0, step);
            let mut tracker = SpeedTracker::new(window);
            let mut progress = 0.0f64;
            let mut out = Vec::new();
            for dp in &dps {
                progress = (progress + dp).clamp(0.0, 1.0);
                tracker.offer(clock.now(), progress);
                out.push(eta_bits(&tracker.estimate()));
            }
            out
        };
        prop_assert_eq!(run(), run());
    }
}
