//! The observability tax, measured: a one-shard [`MonitorService`] drives
//! the same synthetic snapshot stream twice — once with the default
//! instrumentation (`ObsOptions::default()`: counters + sampled latency
//! histograms) and once untimed (`ObsOptions::untimed()`: counters only,
//! no `Instant` reads on the hot paths) — and reports per-event ingest
//! cost and read p99 for both sides.
//!
//! The acceptance bar this pins: the instrumented side must stay within
//! ~10% of the uninstrumented side on both metrics. The bench prints the
//! ratios and appends them to `PROSEL_BENCH_JSON` (criterion-shim JSONL,
//! folded by `bench_report`) rather than hard-asserting, so a noisy CI
//! box degrades the trajectory, not the build:
//!
//! * `obs/ingest_ns_instrumented` / `obs/ingest_ns_uninstrumented` —
//!   best-of mean nanoseconds per delivered event, ingest through drain;
//! * `obs/read_p99_ns_instrumented` / `obs/read_p99_ns_uninstrumented` —
//!   p99 of per-call `query_progress` wall time;
//! * `obs/ingest_overhead_pct` / `obs/read_p99_overhead_pct` — the A/B
//!   deltas as percentages (negative = instrumented side measured
//!   faster, i.e. the tax is below the noise floor).
//!
//! The two sides are timed in interleaved pairs with best-of selection
//! (the `monitor_overhead` idiom) so frequency and thermal drift hit
//! both equally. As a cross-check, the instrumented side also prints the
//! registry's own `service_read_ns` p99 next to the externally measured
//! one — the scrape consumers see the same latency the caller pays.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use prosel_engine::plan::{CmpOp, OperatorKind, PhysicalPlan, PlanNode, Predicate};
use prosel_engine::trace::{Snapshot, TraceEvent};
use prosel_estimators::EstimatorKind;
use prosel_monitor::{MetricsRegistry, MonitorBuilder, MonitorService, ObsOptions};
use std::sync::Arc;
use std::time::Instant;

const QUERIES: usize = 32;
const SNAPS_PER_QUERY: usize = 128;
const READS_PER_QUERY: usize = 400;

fn scan_filter_plan(rows: f64) -> PhysicalPlan {
    PhysicalPlan {
        nodes: vec![
            PlanNode {
                op: OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] },
                children: vec![],
                est_rows: rows,
                est_row_bytes: 16.0,
                out_cols: 2,
            },
            PlanNode {
                op: OperatorKind::Filter {
                    pred: Predicate::ColCmp { col: 1, op: CmpOp::Lt, val: 5 },
                },
                children: vec![0],
                est_rows: rows / 2.0,
                est_row_bytes: 16.0,
                out_cols: 2,
            },
        ],
        root: 1,
    }
}

/// The full event stream: `SNAPS_PER_QUERY` evenly spaced snapshots for
/// each of `QUERIES` queries, interleaved round-robin the way a live tap
/// would deliver them.
fn event_stream(rows: u64) -> Vec<TraceEvent> {
    let mut out = Vec::with_capacity(QUERIES * SNAPS_PER_QUERY);
    for i in 0..SNAPS_PER_QUERY {
        let k0 = rows * (i as u64 + 1) / SNAPS_PER_QUERY as u64;
        let k1 = k0 / 2;
        for q in 0..QUERIES {
            let time = (i + 1) as f64;
            out.push(TraceEvent::Snapshot {
                query: q,
                seq: i as u64,
                wall: time,
                snapshot: Snapshot {
                    time,
                    k: vec![k0, k1].into_boxed_slice(),
                    bytes_read: vec![k0 * 16, 0].into_boxed_slice(),
                    bytes_written: vec![0, k1 * 16].into_boxed_slice(),
                    materialized: vec![0, 0].into_boxed_slice(),
                },
                windows: vec![(0.5, time)].into_boxed_slice(),
            });
        }
    }
    out
}

fn build_service(obs: ObsOptions) -> (MonitorService, Arc<MetricsRegistry>) {
    let registry = Arc::new(MetricsRegistry::new());
    let service = MonitorBuilder::fixed(EstimatorKind::Dne)
        .shards(1)
        .metrics(Arc::clone(&registry))
        .observability(obs)
        .build_service()
        .expect("DNE is an online kind");
    (service, registry)
}

struct DriveResult {
    ingest_ns: u64,
    reads: Vec<u64>,
    registry: Arc<MetricsRegistry>,
}

/// One full drive of a side: register, ingest the whole stream, drain,
/// then hammer the read path. Returns per-event ingest nanoseconds, the
/// sorted per-read nanoseconds, and the side's registry — the service is
/// shut down before returning so the next side starts cold-for-cold.
fn drive(plan: &Arc<PhysicalPlan>, events: &[TraceEvent], obs: ObsOptions) -> DriveResult {
    let (service, registry) = build_service(obs);
    for q in 0..QUERIES {
        service.register(q, Arc::clone(plan));
    }
    let t = Instant::now();
    for ev in events {
        service.ingest(ev.clone());
    }
    service.quiesce();
    let ingest_ns = t.elapsed().as_nanos() as u64 / events.len() as u64;

    let mut reads = Vec::with_capacity(QUERIES * READS_PER_QUERY);
    for _ in 0..READS_PER_QUERY {
        for q in 0..QUERIES {
            let t = Instant::now();
            std::hint::black_box(service.query_progress(q).expect("registered"));
            reads.push(t.elapsed().as_nanos() as u64);
        }
    }
    reads.sort_unstable();
    service.shutdown();
    DriveResult { ingest_ns, reads, registry }
}

fn p99(sorted: &[u64]) -> u64 {
    sorted[(sorted.len() * 99 / 100).min(sorted.len() - 1)]
}

fn append_samples(lines: &str) {
    if let Ok(path) = std::env::var("PROSEL_BENCH_JSON") {
        use std::io::Write;
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(lines.as_bytes()));
        if let Err(e) = write {
            eprintln!("metrics_overhead: cannot append to {path}: {e}");
        }
    }
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let plan = Arc::new(scan_filter_plan(1_000_000.0));
    let events = event_stream(1_000_000);

    // Criterion's view of the ingest path, both sides; the direct A/B
    // below is what feeds the trajectory.
    let mut group = c.benchmark_group("metrics_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("instrumented", |b| {
        b.iter(|| drive(&plan, &events, ObsOptions::default()).ingest_ns)
    });
    group.bench_function("uninstrumented", |b| {
        b.iter(|| drive(&plan, &events, ObsOptions::untimed()).ingest_ns)
    });
    group.finish();

    // The A/B proper: interleaved pairs, best-of selection, rep 0 as
    // warmup — drift hits both sides equally and the ratio stays a
    // property of the code.
    let reps: usize = if std::env::var("PROSEL_BENCH_QUICK").is_ok() { 3 } else { 10 };
    let mut timed_ingest = u64::MAX;
    let mut untimed_ingest = u64::MAX;
    let mut timed_read_p99 = u64::MAX;
    let mut untimed_read_p99 = u64::MAX;
    let mut last_timed_registry = None;
    for rep in 0..=reps {
        // The drive that runs first in a pair inherits a fatter read
        // tail from the previous service's thread teardown, so the
        // order alternates per rep — best-of gives each side its quiet
        // slots and the position bias cancels.
        let (timed, untimed) = if rep % 2 == 0 {
            let timed = drive(&plan, &events, ObsOptions::default());
            (timed, drive(&plan, &events, ObsOptions::untimed()))
        } else {
            let untimed = drive(&plan, &events, ObsOptions::untimed());
            (drive(&plan, &events, ObsOptions::default()), untimed)
        };
        if rep > 0 {
            timed_ingest = timed_ingest.min(timed.ingest_ns);
            untimed_ingest = untimed_ingest.min(untimed.ingest_ns);
            timed_read_p99 = timed_read_p99.min(p99(&timed.reads));
            untimed_read_p99 = untimed_read_p99.min(p99(&untimed.reads));
            last_timed_registry = Some(timed.registry);
        }
    }

    let pct = |a: u64, b: u64| (a as f64 - b as f64) / b.max(1) as f64 * 100.0;
    let ingest_pct = pct(timed_ingest, untimed_ingest);
    let read_pct = pct(timed_read_p99, untimed_read_p99);
    println!(
        "metrics_overhead: ingest {timed_ingest} ns/event instrumented vs \
         {untimed_ingest} ns/event untimed ({ingest_pct:+.1}%)"
    );
    println!(
        "metrics_overhead: read p99 {timed_read_p99} ns instrumented vs \
         {untimed_read_p99} ns untimed ({read_pct:+.1}%)"
    );
    // Cross-check: the registry's own sampled read histogram should put
    // its p99 in the same regime as the externally timed one.
    if let Some(registry) = last_timed_registry {
        let snap = registry.snapshot();
        if let Some(h) = snap.histogram("service_read_ns") {
            println!(
                "metrics_overhead: registry-reported service_read_ns p99 {} ns \
                 (externally measured {timed_read_p99} ns)",
                h.quantile(0.99)
            );
        }
    }

    let n_events = events.len();
    let n_reads = QUERIES * READS_PER_QUERY;
    append_samples(&format!(
        "{{\"name\":\"obs/ingest_ns_instrumented\",\"mean_ns\":{timed_ingest},\"iters\":{n_events}}}\n\
         {{\"name\":\"obs/ingest_ns_uninstrumented\",\"mean_ns\":{untimed_ingest},\"iters\":{n_events}}}\n\
         {{\"name\":\"obs/read_p99_ns_instrumented\",\"mean_ns\":{timed_read_p99},\"iters\":{n_reads}}}\n\
         {{\"name\":\"obs/read_p99_ns_uninstrumented\",\"mean_ns\":{untimed_read_p99},\"iters\":{n_reads}}}\n\
         {{\"name\":\"obs/ingest_overhead_pct\",\"mean_ns\":{ingest_pct:.2},\"iters\":1}}\n\
         {{\"name\":\"obs/read_p99_overhead_pct\",\"mean_ns\":{read_pct:.2},\"iters\":1}}\n"
    ));
}

criterion_group!(benches, bench_metrics_overhead);
criterion_main!(benches);
