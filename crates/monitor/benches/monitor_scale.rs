//! Scaling of the monitor layer along its two new axes.
//!
//! **Pipelines** (`ingest_by_pipelines`): plans of a *fixed node count*
//! whose pipeline count varies (sorts are pipeline breakers, filters are
//! not). With the shared [`prosel_estimators::SnapshotCtx`] the
//! refinement-bound pass runs once per query per snapshot, so the
//! per-event ingest cost must stay (roughly) flat as the pipeline count
//! grows — before the hoist it grew linearly with it (O(pipelines × plan)
//! per snapshot).
//!
//! **Shards** (`service_ingest_by_shards`): a 1000-query workload is
//! streamed through a [`MonitorService`] tap by four producer threads
//! while N shard workers ingest. Events per second must scale with the
//! shard count (the acceptance bar: > 2× at 4 shards vs. 1).
//!
//! Both groups report element throughput (events), so the per-element
//! time printed per size is directly comparable within a group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prosel_datagen::schema::{ColumnMeta, ColumnRole, TableMeta};
use prosel_datagen::{Column, Database, PhysicalDesign, Table, TuningLevel};
use prosel_engine::plan::{CmpOp, OperatorKind, PhysicalPlan, PlanNode, Predicate};
use prosel_engine::trace::TraceEvent;
use prosel_engine::{decompose, run_plan_tapped, Catalog, CostModel, ExecConfig};
use prosel_estimators::{EstimatorKind, IncrementalObs};
use prosel_monitor::MonitorBuilder;
use std::sync::Arc;

const ROWS: usize = 2000;
/// Non-scan operators per plan: constant across the pipeline-count sweep.
const CHAIN_OPS: usize = 15;

fn db() -> Database {
    let mut db = Database::new("scale");
    let meta = TableMeta::new(
        "t",
        64,
        vec![
            ColumnMeta::new("id", ColumnRole::PrimaryKey),
            ColumnMeta::new("v", ColumnRole::Value { min: 0, max: 9 }),
        ],
    );
    db.add(Table::new(
        meta,
        vec![
            Column { name: "id".into(), data: (1..=ROWS as i64).collect() },
            Column { name: "v".into(), data: (0..ROWS as i64).map(|i| i % 10).collect() },
        ],
    ));
    db
}

/// A scan under a chain of `CHAIN_OPS` operators, `n_sorts` of which are
/// sorts (pipeline breakers) spread evenly through the chain and the rest
/// pass-all filters — node count is constant, pipeline count is
/// `n_sorts + 1`.
fn chain_plan(n_sorts: usize) -> PhysicalPlan {
    assert!(n_sorts <= CHAIN_OPS);
    let mut nodes = vec![PlanNode {
        op: OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] },
        children: vec![],
        est_rows: ROWS as f64,
        est_row_bytes: 16.0,
        out_cols: 2,
    }];
    let mut placed_sorts = 0usize;
    for i in 0..CHAIN_OPS {
        let want_sorts = n_sorts * (i + 1) / CHAIN_OPS;
        let op = if placed_sorts < want_sorts {
            placed_sorts += 1;
            OperatorKind::Sort { key_cols: vec![0] }
        } else {
            OperatorKind::Filter { pred: Predicate::ColCmp { col: 1, op: CmpOp::Lt, val: 100 } }
        };
        nodes.push(PlanNode {
            op,
            children: vec![i],
            est_rows: ROWS as f64,
            est_row_bytes: 16.0,
            out_cols: 2,
        });
    }
    let root = nodes.len() - 1;
    PhysicalPlan { nodes, root }
}

/// Execute `plan` once, recording its live event stream.
fn record_events(catalog: &Catalog<'_>, plan: &PhysicalPlan) -> Vec<TraceEvent> {
    let (tap, rx) = std::sync::mpsc::channel();
    let cfg = ExecConfig {
        cost: CostModel::deterministic(),
        initial_snapshot_interval: 300.0,
        ..ExecConfig::default()
    };
    run_plan_tapped(catalog, plan, &cfg, 0, tap);
    rx.try_iter().collect()
}

/// The recorded event, re-addressed to `query` (the stream itself is
/// identical for every query running the same plan deterministically).
fn retag(ev: &TraceEvent, query: usize) -> TraceEvent {
    match ev {
        TraceEvent::Snapshot { seq, wall, snapshot, windows, .. } => TraceEvent::Snapshot {
            query,
            seq: *seq,
            wall: *wall,
            snapshot: snapshot.clone(),
            windows: windows.clone(),
        },
        TraceEvent::Delta { seq, wall, time, changes, window_updates, .. } => TraceEvent::Delta {
            query,
            seq: *seq,
            wall: *wall,
            time: *time,
            changes: changes.clone(),
            window_updates: window_updates.clone(),
        },
        TraceEvent::Thinned { .. } => TraceEvent::Thinned { query },
        TraceEvent::Finished { wall, windows, total_time, .. } => TraceEvent::Finished {
            query,
            wall: *wall,
            windows: windows.clone(),
            total_time: *total_time,
        },
    }
}

/// Per-event ingest cost vs. pipeline count at a fixed plan size: flat ⇒
/// the per-snapshot bound pass is shared, not per-pipeline.
fn bench_ingest_by_pipelines(c: &mut Criterion) {
    let database = db();
    let design = PhysicalDesign::derive(&database, TuningLevel::Untuned);
    let catalog = Catalog::new(&database, &design);
    let mut group = c.benchmark_group("ingest_by_pipelines");
    group.sample_size(10);
    for n_sorts in [0usize, 3, 7, 15] {
        let plan = chain_plan(n_sorts);
        let n_pipelines = decompose(&plan).len();
        let events = record_events(&catalog, &plan);
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n_pipelines}_pipelines")),
            &events,
            |b, events| {
                b.iter(|| {
                    let mut monitor =
                        MonitorBuilder::fixed(EstimatorKind::Dne).build_monitor().expect("build");
                    monitor.register(0, &plan);
                    for ev in events {
                        monitor.ingest(ev.clone());
                    }
                    monitor.query_progress(0)
                })
            },
        );
        // A/B reference at each size: the pre-hoist path — every pipeline
        // computes the refinement bounds itself (`offer` instead of
        // `offer_shared`), O(pipelines × plan) per snapshot. The gap to
        // the entry above is the shared-bounds win.
        let plan_arc = Arc::new(plan.clone());
        let pipelines = decompose(&plan_arc);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n_pipelines}_pipelines_unshared")),
            &events,
            |b, events| {
                b.iter(|| {
                    let mut obs: Vec<IncrementalObs> = pipelines
                        .iter()
                        .map(|p| IncrementalObs::new(Arc::clone(&plan_arc), p))
                        .collect();
                    for ev in events {
                        if let TraceEvent::Snapshot { seq, snapshot, windows, .. } = ev {
                            for o in &mut obs {
                                let pid = o.pipeline_id();
                                o.offer(*seq, snapshot, windows[pid]);
                            }
                        }
                    }
                    obs.last().and_then(|o| o.value(EstimatorKind::Dne))
                })
            },
        );
    }
    group.finish();
}

/// Service ingest throughput vs. shard count on a 1000-query workload
/// (four producer threads streaming through the routed tap).
///
/// Shard workers are real OS threads, so the speedup is bounded by the
/// host's core count: on ≥ 4 cores expect > 2× at 4 shards vs. 1; on a
/// single-core host (e.g. a pinned CI container) the expected result is
/// *parity* — which still verifies that sharding adds no overhead. The
/// group prints the detected parallelism so results read unambiguously.
fn bench_service_ingest_by_shards(c: &mut Criterion) {
    const N_QUERIES: usize = 1000;
    const N_PRODUCERS: usize = 4;
    println!(
        "service_ingest_by_shards: host parallelism = {} (speedup is bounded by cores)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let database = db();
    let design = PhysicalDesign::derive(&database, TuningLevel::Untuned);
    let catalog = Catalog::new(&database, &design);
    let plan = chain_plan(7);
    let events = record_events(&catalog, &plan);
    let mut group = c.benchmark_group("service_ingest_by_shards");
    group.sample_size(10);
    for n_shards in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((N_QUERIES * events.len()) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n_shards}_shards")),
            &events,
            |b, events| {
                b.iter(|| {
                    let service = MonitorBuilder::fixed(EstimatorKind::Dne)
                        .shards(n_shards)
                        .build_service()
                        .expect("build");
                    // Bulk admission: one round-trip per shard, not per
                    // query (blocking per-query registration would be
                    // latency-bound and mask the ingest scaling).
                    let queries: Vec<usize> = (0..N_QUERIES).collect();
                    for (q, r) in service.try_register_batch(&queries, &plan) {
                        r.unwrap_or_else(|e| panic!("q{q}: {e}"));
                    }
                    std::thread::scope(|scope| {
                        for p in 0..N_PRODUCERS {
                            let service = &service;
                            scope.spawn(move || {
                                let tap = service.tap();
                                // Interleave queries (outer loop = event
                                // index) to mimic concurrent execution.
                                for ev in events {
                                    for q in (p..N_QUERIES).step_by(N_PRODUCERS) {
                                        tap.send(retag(ev, q)).expect("shard alive");
                                    }
                                }
                            });
                        }
                    });
                    // Barrier: reads are wait-free snapshots, so proving
                    // every queued event was ingested takes an explicit
                    // drain.
                    service.quiesce();
                    let done = service.query_progress(0);
                    service.shutdown();
                    done
                })
            },
        );
    }
    group.finish();
}

/// Read-tail latency under saturated ingest — the wait-free-read
/// acceptance bar: with > 10k queries registered **per pool worker** and
/// writer threads saturating the tap continuously, the p99 of a service
/// read must stay flat (a snapshot load, not a queue round-trip). The
/// measured p99 is appended to `$PROSEL_BENCH_JSON` as
/// `read_p99_under_saturated_ingest` in the criterion-shim JSONL format,
/// so `bench_report` folds it into `BENCH_<sha>.json` alongside the
/// criterion groups.
///
/// The saturating stream uses *unroutable* query ids (≥ the registered
/// count): it exercises the full enqueue → drain → stats-publish path on
/// every shard without growing per-query state, so the measurement window
/// is stationary.
fn bench_read_tail_under_saturated_ingest(_c: &mut Criterion) {
    use prosel_engine::trace::Snapshot;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    const N_SHARDS: usize = 2;
    const N_QUERIES: usize = 24_576; // > 10k per worker even on 2 cores
    const N_WRITERS: usize = 2;
    const WRITE_BATCH: usize = 256;
    let reads: usize = match std::env::var("PROSEL_BENCH_QUICK") {
        Ok(_) => 10_000,
        Err(_) => 100_000,
    };

    let plan = PhysicalPlan {
        nodes: vec![PlanNode {
            op: OperatorKind::TableScan { table: "t".into(), cols: vec![0] },
            children: vec![],
            est_rows: 100.0,
            est_row_bytes: 8.0,
            out_cols: 1,
        }],
        root: 0,
    };
    let snapshot_event = |query: usize, seq: u64, time: f64, k: u64| TraceEvent::Snapshot {
        query,
        seq,
        wall: time,
        snapshot: Snapshot {
            time,
            k: vec![k].into_boxed_slice(),
            bytes_read: vec![k * 8].into_boxed_slice(),
            bytes_written: vec![0].into_boxed_slice(),
            materialized: vec![0].into_boxed_slice(),
        },
        windows: vec![(1.0, time)].into_boxed_slice(),
    };

    let service =
        MonitorBuilder::fixed(EstimatorKind::Dne).shards(N_SHARDS).build_service().expect("build");
    let queries: Vec<usize> = (0..N_QUERIES).collect();
    for (q, r) in service.try_register_batch(&queries, &plan) {
        r.unwrap_or_else(|e| panic!("q{q}: {e}"));
    }
    // Pre-feed three snapshots per query so every read path (progress,
    // ETA, deadline prediction) serves real values, then drain.
    let tap = service.tap();
    for seq in 0..3u64 {
        for q in 0..N_QUERIES {
            tap.send(snapshot_event(q, seq, (seq + 1) as f64 * 10.0, 25 * (seq + 1)))
                .expect("shard alive");
        }
    }
    service.quiesce();

    // Saturate: writer threads stream unroutable batches at full tilt for
    // the whole measurement window.
    let stop = AtomicBool::new(false);
    let p99_ns = std::thread::scope(|scope| {
        for w in 0..N_WRITERS {
            let service = &service;
            let stop = &stop;
            scope.spawn(move || {
                let tap = service.tap();
                let mut seq = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let batch: Vec<TraceEvent> = (0..WRITE_BATCH)
                        .map(|i| {
                            seq += 1;
                            snapshot_event(N_QUERIES + w * WRITE_BATCH + i, seq, 1.0, 1)
                        })
                        .collect();
                    tap.send_batch(batch).expect("shards alive");
                }
            });
        }
        let mut samples_ns: Vec<u64> = Vec::with_capacity(reads);
        for i in 0..reads {
            let q = (i * 7919) % N_QUERIES; // prime stride across shards
            let t = Instant::now();
            let ok = match i % 3 {
                0 => service.query_progress(q).is_ok(),
                1 => service.remaining_time(q).is_ok(),
                _ => service.progress_at_deadline(q, 60.0).is_ok(),
            };
            samples_ns.push(t.elapsed().as_nanos() as u64);
            assert!(ok, "read of registered q{q} failed under load");
        }
        stop.store(true, Ordering::Release);
        samples_ns.sort_unstable();
        samples_ns[(samples_ns.len() * 99) / 100]
    });
    let stats = service.stats().expect("stats are always served");
    println!(
        "read_p99_under_saturated_ingest: {N_QUERIES} queries on {} worker(s), \
         p99 = {p99_ns} ns over {reads} reads ({} events ingested during the window)",
        service.n_workers(),
        stats.events_ingested + stats.events_unroutable,
    );
    service.shutdown();

    // Same JSONL shape the criterion shim appends, so bench_report folds
    // this metric in with no special casing.
    if let Ok(path) = std::env::var("PROSEL_BENCH_JSON") {
        use std::io::Write;
        let line = format!(
            "{{\"name\":\"read_p99_under_saturated_ingest\",\"mean_ns\":{p99_ns},\"iters\":{reads}}}\n"
        );
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = write {
            eprintln!("monitor_scale: cannot append to {path}: {e}");
        }
    }
}

criterion_group!(
    benches,
    bench_ingest_by_pipelines,
    bench_service_ingest_by_shards,
    bench_read_tail_under_saturated_ingest
);
criterion_main!(benches);
