//! Per-snapshot overhead of the online monitor.
//!
//! The claim under test: `IncrementalObs::append` (and the full
//! `ProgressMonitor::ingest` path around it) costs O(1) amortized per
//! snapshot — the time to ingest N snapshots grows linearly in N, i.e.
//! the *per-element* cost stays flat as the trace gets longer. The batch
//! path, by contrast, recomputes every curve from scratch, so polling it
//! per tick would be quadratic. Each group below is parameterized by the
//! trace length with element throughput reported, so a flat per-element
//! time across the sizes is the pass criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prosel_engine::plan::{CmpOp, OperatorKind, PhysicalPlan, PlanNode, Predicate};
use prosel_engine::trace::{CounterKind, CounterUpdate, DeltaEncoder, Snapshot, TraceEvent};
use prosel_engine::{decompose, Pipeline};
use prosel_estimators::soa::BoundsKernel;
use prosel_estimators::{EstimatorKind, IncrementalObs, SnapshotCtx};
use prosel_monitor::MonitorBuilder;
use std::sync::Arc;

fn scan_filter_plan(rows: f64) -> PhysicalPlan {
    PhysicalPlan {
        nodes: vec![
            PlanNode {
                op: OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] },
                children: vec![],
                est_rows: rows,
                est_row_bytes: 16.0,
                out_cols: 2,
            },
            PlanNode {
                op: OperatorKind::Filter {
                    pred: Predicate::ColCmp { col: 1, op: CmpOp::Lt, val: 5 },
                },
                children: vec![0],
                est_rows: rows / 2.0,
                est_row_bytes: 16.0,
                out_cols: 2,
            },
        ],
        root: 1,
    }
}

/// A synthetic live trace of `n` evenly spaced snapshots over a scan +
/// filter pipeline that consumes `rows` driver rows in total.
fn synthetic_snapshots(n: usize, rows: u64) -> Vec<Snapshot> {
    (0..n)
        .map(|i| {
            let k0 = rows * (i as u64 + 1) / n as u64;
            let k1 = k0 / 2;
            Snapshot {
                time: (i + 1) as f64,
                k: vec![k0, k1].into_boxed_slice(),
                bytes_read: vec![k0 * 16, 0].into_boxed_slice(),
                bytes_written: vec![0, k1 * 16].into_boxed_slice(),
                materialized: vec![0, 0].into_boxed_slice(),
            }
        })
        .collect()
}

fn bench_incremental_append(c: &mut Criterion) {
    let plan = Arc::new(scan_filter_plan(1_000_000.0));
    let pipelines: Vec<Pipeline> = decompose(&plan);
    let mut group = c.benchmark_group("incremental_append");
    group.sample_size(10);
    for n in [512usize, 2048, 8192] {
        let snaps = synthetic_snapshots(n, 1_000_000);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &snaps, |b, snaps| {
            b.iter(|| {
                let mut obs = IncrementalObs::new(Arc::clone(&plan), &pipelines[0]);
                for (i, s) in snaps.iter().enumerate() {
                    obs.offer(i as u64, s, (0.5, s.time));
                }
                obs.value(EstimatorKind::Dne)
            })
        });
    }
    group.finish();
}

fn bench_monitor_ingest(c: &mut Criterion) {
    let plan = scan_filter_plan(1_000_000.0);
    let mut group = c.benchmark_group("monitor_ingest");
    group.sample_size(10);
    for n in [512usize, 2048, 8192] {
        let snaps = synthetic_snapshots(n, 1_000_000);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &snaps, |b, snaps| {
            b.iter(|| {
                let mut monitor =
                    MonitorBuilder::fixed(EstimatorKind::Dne).build_monitor().expect("build");
                monitor.register(0, &plan);
                for (seq, s) in snaps.iter().enumerate() {
                    monitor.ingest(TraceEvent::Snapshot {
                        query: 0,
                        seq: seq as u64,
                        wall: s.time,
                        snapshot: s.clone(),
                        windows: vec![(0.5, s.time)].into_boxed_slice(),
                    });
                }
                monitor.query_progress(0)
            })
        });
    }
    group.finish();
}

fn bench_serving(c: &mut Criterion) {
    let plan = scan_filter_plan(1_000_000.0);
    let snaps = synthetic_snapshots(4096, 1_000_000);
    let mut monitor = MonitorBuilder::fixed(EstimatorKind::Dne).build_monitor().expect("build");
    monitor.register(0, &plan);
    for (seq, s) in snaps.iter().enumerate() {
        monitor.ingest(TraceEvent::Snapshot {
            query: 0,
            seq: seq as u64,
            wall: s.time,
            snapshot: s.clone(),
            windows: vec![(0.5, s.time)].into_boxed_slice(),
        });
    }
    c.bench_function("serve_query_progress", |b| b.iter(|| monitor.query_progress(0)));
}

/// A scan + filter chain cut by 15 sorts: each sort starts a fresh 4-node
/// segment (the sort plus three streaming filters; the leaf segment is
/// scan plus two filters), so the plan decomposes into exactly 16
/// pipelines of realistic node width — the shape the SoA acceptance bar
/// is stated at.
fn chain16_plan(rows: f64) -> PhysicalPlan {
    let filter = |child: usize| PlanNode {
        op: OperatorKind::Filter { pred: Predicate::ColCmp { col: 1, op: CmpOp::Lt, val: 5 } },
        children: vec![child],
        est_rows: rows,
        est_row_bytes: 16.0,
        out_cols: 2,
    };
    let mut nodes = vec![PlanNode {
        op: OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] },
        children: vec![],
        est_rows: rows,
        est_row_bytes: 16.0,
        out_cols: 2,
    }];
    nodes.push(filter(0));
    nodes.push(filter(1));
    for _ in 0..15 {
        nodes.push(PlanNode {
            op: OperatorKind::Sort { key_cols: vec![0] },
            children: vec![nodes.len() - 1],
            est_rows: rows,
            est_row_bytes: 16.0,
            out_cols: 2,
        });
        for _ in 0..3 {
            nodes.push(filter(nodes.len() - 1));
        }
    }
    let root = nodes.len() - 1;
    PhysicalPlan { nodes, root }
}

/// A phased synthetic stream over the 16-pipeline chain: snapshots split
/// into 16 phases, and in phase `p` only pipeline `p`'s node counters
/// advance while its activity window extends — the sparsity profile of a
/// real chain of blocking sorts (one active pipeline at a time), which is
/// what makes delta compression representative.
/// One full-snapshot tap emission: counters plus per-pipeline windows.
type SnapEvent = (Snapshot, Box<[(f64, f64)]>);

fn phased_stream(n: usize, rows: u64, pipelines: &[Pipeline], width: usize) -> Vec<SnapEvent> {
    let phases = pipelines.len();
    let mut k = vec![0u64; width];
    let mut br = vec![0u64; width];
    let mut bw = vec![0u64; width];
    let mut win = vec![(f64::INFINITY, f64::NEG_INFINITY); phases];
    let mut out = Vec::with_capacity(n);
    let per_phase = n / phases;
    for i in 0..n {
        let time = (i + 1) as f64;
        let phase = (i / per_phase).min(phases - 1);
        let step = rows / per_phase as u64;
        let active = &pipelines[phase].nodes;
        for &node in active {
            k[node] += step;
        }
        let source = active[0];
        if phase == 0 {
            br[source] += step * 16;
        } else {
            bw[source] += step * 16;
        }
        if !win[phase].0.is_finite() {
            win[phase] = (time, time);
        } else {
            win[phase].1 = time;
        }
        out.push((
            Snapshot {
                time,
                k: k.clone().into_boxed_slice(),
                bytes_read: br.clone().into_boxed_slice(),
                bytes_written: bw.clone().into_boxed_slice(),
                materialized: vec![0; width].into_boxed_slice(),
            },
            win.clone().into_boxed_slice(),
        ));
    }
    out
}

/// One pre-encoded wire event of the delta-compressed tap, as it arrives
/// at the monitor: the full baseline first, sparse diffs after. Emission
/// happens engine-side on both paths, so the A/B times only what the
/// monitor pays per *delivered* event.
enum WireEvent {
    Full(Snapshot, Box<[(f64, f64)]>),
    Delta { time: f64, changes: Box<[CounterUpdate]>, window_updates: Box<[(u32, (f64, f64))]> },
}

/// Per-snapshot monitor ingest cost at 16 pipelines, new stack vs. the
/// pinned pre-PR reference — the PR's A/B. Each side pays what its shard
/// consumption actually costs per delivered event:
///
/// * **soa** — the per-query scratch decoder patches its reusable
///   counter vectors with the sparse delta, the compiled [`BoundsKernel`]
///   refreshes the shared bounds in place from the first dirty
///   topological position, and every pipeline runs the columnar walk over
///   the reconstructed view (`offer_view`). No owned [`Snapshot`] is ever
///   materialized and nothing is allocated per event.
/// * **scalar_reference** — the pre-PR path: the delivered event carries
///   a full owned snapshot, `SnapshotCtx::new` allocates fresh bound
///   vectors (and the topological order) for it, and every pipeline runs
///   the per-node scalar walk (`offer_shared_scalar`).
///
/// Curves are bit-identical between the two sides (the equivalence
/// property nets pin this), so the ratio is pure overhead. Also appends
/// two metric samples in the criterion-shim JSONL format for
/// `bench_report`:
///
/// * `snapshot_ns_16p` — mean SoA-path nanoseconds per snapshot;
/// * `tap_bytes_per_snapshot` — mean wire bytes per snapshot-bearing
///   event with delta compression on (full baseline + sparse diffs).
fn bench_snapshot_cost_16p(c: &mut Criterion) {
    use std::time::Instant;

    let plan = Arc::new(chain16_plan(100_000.0));
    let pipelines: Vec<Pipeline> = decompose(&plan);
    assert_eq!(pipelines.len(), 16, "chain16_plan must decompose into 16 pipelines");
    let n = 2048usize;
    let stream = phased_stream(n, 100_000, &pipelines, plan.len());
    // Pre-encode the delta wire stream (the engine tap's emission work).
    let wire: Vec<WireEvent> = {
        let mut enc = DeltaEncoder::new();
        stream
            .iter()
            .map(|(snap, windows)| match enc.encode(snap, windows) {
                None => WireEvent::Full(snap.clone(), windows.clone()),
                Some((changes, window_updates)) => {
                    WireEvent::Delta { time: snap.time, changes, window_updates }
                }
            })
            .collect()
    };

    let run_soa = |wire: &[WireEvent]| {
        use prosel_engine::trace::DeltaDecoder;
        let mut dec = DeltaDecoder::new();
        let kernel = BoundsKernel::new(&plan);
        let mut ctx = SnapshotCtx::empty();
        let mut obs: Vec<IncrementalObs> =
            pipelines.iter().map(|p| IncrementalObs::new(Arc::clone(&plan), p)).collect();
        for (i, ev) in wire.iter().enumerate() {
            // Patch the per-query scratch, tracking the first dirty
            // topological position exactly as the shard's delta path does.
            let dirty_from = match ev {
                WireEvent::Full(snap, windows) => {
                    dec.apply_full(snap, windows);
                    0
                }
                WireEvent::Delta { time, changes, window_updates } => {
                    assert!(dec.apply_delta(*time, changes, window_updates));
                    changes
                        .iter()
                        .filter(|u| matches!(u.counter, CounterKind::GetNext))
                        .map(|u| kernel.position_of(u.node as usize))
                        .min()
                        .unwrap_or(usize::MAX)
                }
            };
            ctx.refresh_from(&kernel, dec.view().k, dirty_from);
            let view = dec.view();
            let windows = dec.windows();
            for o in &mut obs {
                let pid = o.pipeline_id();
                o.offer_view(i as u64, view, windows[pid], &ctx);
            }
        }
        obs.last().and_then(|o| o.value(EstimatorKind::Dne))
    };
    let run_scalar = |stream: &[SnapEvent]| {
        let mut obs: Vec<IncrementalObs> =
            pipelines.iter().map(|p| IncrementalObs::new(Arc::clone(&plan), p)).collect();
        for (i, (snap, windows)) in stream.iter().enumerate() {
            // Fresh bound vectors per event + scalar walks.
            let ctx = SnapshotCtx::new(&plan, snap);
            for o in &mut obs {
                let pid = o.pipeline_id();
                o.offer_shared_scalar(i as u64, snap, windows[pid], &ctx);
            }
        }
        obs.last().and_then(|o| o.value(EstimatorKind::Dne))
    };
    assert_eq!(
        run_soa(&wire).map(f64::to_bits),
        run_scalar(&stream).map(f64::to_bits),
        "A/B sides must produce bit-identical curves"
    );

    let mut group = c.benchmark_group("snapshot_cost_16p");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("soa", |b| b.iter(|| run_soa(&wire)));
    group.bench_function("scalar_reference", |b| b.iter(|| run_scalar(&stream)));
    group.finish();

    // Direct measurement of the two headline metrics, in the same JSONL
    // shape the criterion shim appends so bench_report folds them in.
    // The two paths are timed in interleaved pairs so clock-frequency and
    // thermal drift over the run hits both sides equally; best-of keeps
    // the ratio a property of the code, not the machine's mood.
    let reps: usize = if std::env::var("PROSEL_BENCH_QUICK").is_ok() { 3 } else { 12 };
    let (mut soa_best, mut scalar_best) = (u64::MAX, u64::MAX);
    for rep in 0..=reps {
        let t = Instant::now();
        std::hint::black_box(run_soa(&wire));
        let soa = t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        std::hint::black_box(run_scalar(&stream));
        let scalar = t.elapsed().as_nanos() as u64;
        if rep > 0 {
            // rep 0 is warmup
            soa_best = soa_best.min(soa);
            scalar_best = scalar_best.min(scalar);
        }
    }
    let soa_ns = soa_best / n as u64;
    let scalar_ns = scalar_best / n as u64;
    println!(
        "snapshot_cost_16p: soa {soa_ns} ns/snapshot, scalar reference {scalar_ns} ns/snapshot \
         ({:.2}x)",
        scalar_ns as f64 / soa_ns.max(1) as f64
    );

    // Wire cost with delta compression on: full baseline + sparse diffs.
    let mut enc = DeltaEncoder::new();
    let mut bytes = 0usize;
    for (snap, windows) in &stream {
        bytes += match enc.encode(snap, windows) {
            None => TraceEvent::Snapshot {
                query: 0,
                seq: 0,
                wall: snap.time,
                snapshot: snap.clone(),
                windows: windows.clone(),
            }
            .payload_bytes(),
            Some((changes, window_updates)) => TraceEvent::Delta {
                query: 0,
                seq: 0,
                wall: snap.time,
                time: snap.time,
                changes,
                window_updates,
            }
            .payload_bytes(),
        };
    }
    let delta_bytes = bytes / n;
    let full_bytes = TraceEvent::Snapshot {
        query: 0,
        seq: 0,
        wall: 0.0,
        snapshot: stream[0].0.clone(),
        windows: stream[0].1.clone(),
    }
    .payload_bytes();
    println!(
        "tap_bytes_per_snapshot: {delta_bytes} B with deltas vs {full_bytes} B full ({:.2}x)",
        full_bytes as f64 / delta_bytes.max(1) as f64
    );

    if let Ok(path) = std::env::var("PROSEL_BENCH_JSON") {
        use std::io::Write;
        let lines = format!(
            "{{\"name\":\"snapshot_ns_16p\",\"mean_ns\":{soa_ns},\"iters\":{}}}\n\
             {{\"name\":\"tap_bytes_per_snapshot\",\"mean_ns\":{delta_bytes},\"iters\":{n}}}\n",
            n * reps
        );
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(lines.as_bytes()));
        if let Err(e) = write {
            eprintln!("monitor_overhead: cannot append to {path}: {e}");
        }
    }
}

criterion_group!(
    benches,
    bench_incremental_append,
    bench_monitor_ingest,
    bench_serving,
    bench_snapshot_cost_16p
);
criterion_main!(benches);
