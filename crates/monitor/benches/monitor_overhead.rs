//! Per-snapshot overhead of the online monitor.
//!
//! The claim under test: `IncrementalObs::append` (and the full
//! `ProgressMonitor::ingest` path around it) costs O(1) amortized per
//! snapshot — the time to ingest N snapshots grows linearly in N, i.e.
//! the *per-element* cost stays flat as the trace gets longer. The batch
//! path, by contrast, recomputes every curve from scratch, so polling it
//! per tick would be quadratic. Each group below is parameterized by the
//! trace length with element throughput reported, so a flat per-element
//! time across the sizes is the pass criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prosel_engine::plan::{CmpOp, OperatorKind, PhysicalPlan, PlanNode, Predicate};
use prosel_engine::trace::{Snapshot, TraceEvent};
use prosel_engine::{decompose, Pipeline};
use prosel_estimators::{EstimatorKind, IncrementalObs};
use prosel_monitor::ProgressMonitor;
use std::sync::Arc;

fn scan_filter_plan(rows: f64) -> PhysicalPlan {
    PhysicalPlan {
        nodes: vec![
            PlanNode {
                op: OperatorKind::TableScan { table: "t".into(), cols: vec![0, 1] },
                children: vec![],
                est_rows: rows,
                est_row_bytes: 16.0,
                out_cols: 2,
            },
            PlanNode {
                op: OperatorKind::Filter {
                    pred: Predicate::ColCmp { col: 1, op: CmpOp::Lt, val: 5 },
                },
                children: vec![0],
                est_rows: rows / 2.0,
                est_row_bytes: 16.0,
                out_cols: 2,
            },
        ],
        root: 1,
    }
}

/// A synthetic live trace of `n` evenly spaced snapshots over a scan +
/// filter pipeline that consumes `rows` driver rows in total.
fn synthetic_snapshots(n: usize, rows: u64) -> Vec<Snapshot> {
    (0..n)
        .map(|i| {
            let k0 = rows * (i as u64 + 1) / n as u64;
            let k1 = k0 / 2;
            Snapshot {
                time: (i + 1) as f64,
                k: vec![k0, k1].into_boxed_slice(),
                bytes_read: vec![k0 * 16, 0].into_boxed_slice(),
                bytes_written: vec![0, k1 * 16].into_boxed_slice(),
                materialized: vec![0, 0].into_boxed_slice(),
            }
        })
        .collect()
}

fn bench_incremental_append(c: &mut Criterion) {
    let plan = Arc::new(scan_filter_plan(1_000_000.0));
    let pipelines: Vec<Pipeline> = decompose(&plan);
    let mut group = c.benchmark_group("incremental_append");
    group.sample_size(10);
    for n in [512usize, 2048, 8192] {
        let snaps = synthetic_snapshots(n, 1_000_000);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &snaps, |b, snaps| {
            b.iter(|| {
                let mut obs = IncrementalObs::new(Arc::clone(&plan), &pipelines[0]);
                for (i, s) in snaps.iter().enumerate() {
                    obs.offer(i as u64, s, (0.5, s.time));
                }
                obs.value(EstimatorKind::Dne)
            })
        });
    }
    group.finish();
}

fn bench_monitor_ingest(c: &mut Criterion) {
    let plan = scan_filter_plan(1_000_000.0);
    let mut group = c.benchmark_group("monitor_ingest");
    group.sample_size(10);
    for n in [512usize, 2048, 8192] {
        let snaps = synthetic_snapshots(n, 1_000_000);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &snaps, |b, snaps| {
            b.iter(|| {
                let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne);
                monitor.register(0, &plan);
                for (seq, s) in snaps.iter().enumerate() {
                    monitor.ingest(TraceEvent::Snapshot {
                        query: 0,
                        seq: seq as u64,
                        wall: s.time,
                        snapshot: s.clone(),
                        windows: vec![(0.5, s.time)].into_boxed_slice(),
                    });
                }
                monitor.query_progress(0)
            })
        });
    }
    group.finish();
}

fn bench_serving(c: &mut Criterion) {
    let plan = scan_filter_plan(1_000_000.0);
    let snaps = synthetic_snapshots(4096, 1_000_000);
    let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne);
    monitor.register(0, &plan);
    for (seq, s) in snaps.iter().enumerate() {
        monitor.ingest(TraceEvent::Snapshot {
            query: 0,
            seq: seq as u64,
            wall: s.time,
            snapshot: s.clone(),
            windows: vec![(0.5, s.time)].into_boxed_slice(),
        });
    }
    c.bench_function("serve_query_progress", |b| b.iter(|| monitor.query_progress(0)));
}

criterion_group!(benches, bench_incremental_append, bench_monitor_ingest, bench_serving);
criterion_main!(benches);
