//! Checkpointable shard state: the [`HarvestState`] snapshot and its
//! strict text codec.
//!
//! A monitor process that feeds an online-learning loop carries two
//! pieces of state worth surviving a restart: the **selector epoch** (so
//! post-restart swaps keep the epoch monotone and the learner's
//! stale-publication guard keeps working) and the **monotone operation
//! counters** (so fleet dashboards and the conservation-law checks do not
//! reset to zero mid-run). [`HarvestState`] captures exactly those, one
//! per shard; [`crate::MonitorBuilder::restore`] re-seats them into a
//! freshly built monitor or service.
//!
//! The codec follows the workspace's strict text-artifact discipline
//! (`prosel_mart::model_io`, `prosel_learn::checkpoint`): a versioned
//! header, a byte count and an FNV-1a 64 checksum over the body, named
//! positional fields, and an explicit terminator. Truncation, bit rot,
//! trailing garbage and field drift are all rejected with a typed error
//! — a restore either resumes the exact checkpointed state or refuses.

use crate::shard::ShardStats;
use prosel_core::textio::{fnv64, LineReader};
use std::fmt;

/// One shard's checkpointable harvest state: the selector epoch plus the
/// monotone [`ShardStats`] counters. Produced by
/// [`ProgressMonitor::harvest_state`](crate::ProgressMonitor::harvest_state)
/// and [`MonitorService::harvest_states`](crate::MonitorService::harvest_states);
/// consumed by [`crate::MonitorBuilder::restore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HarvestState {
    /// Selector epoch at checkpoint time (0 until the first swap).
    pub epoch: u64,
    /// Monotone operation counters. `registered` reflects the live query
    /// map at checkpoint time and is informational only — restore carries
    /// the monotone counters, never phantom registrations.
    pub stats: ShardStats,
}

/// Rejection from [`HarvestState::from_text`]: the artifact was
/// truncated, corrupted, version-drifted, or carried trailing garbage.
#[derive(Debug)]
pub struct StateError(pub String);

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "harvest state rejected: {}", self.0)
    }
}

impl std::error::Error for StateError {}

impl From<String> for StateError {
    fn from(msg: String) -> Self {
        StateError(msg)
    }
}

const HEADER: &str = "prosel-harvest-state v1";
const FOOTER: &str = "endharveststate";

impl HarvestState {
    /// Serialize as a versioned, checksummed text artifact (the exact
    /// inverse of [`Self::from_text`]).
    pub fn to_text(&self) -> String {
        let s = &self.stats;
        let body = format!(
            "epoch {}\nregistered {} admitted {} refused {} events_ingested {} \
             events_unroutable {} queries_dropped {} queries_finished {} harvests {} \
             events_rejected {}\n",
            self.epoch,
            s.registered,
            s.admitted,
            s.refused,
            s.events_ingested,
            s.events_unroutable,
            s.queries_dropped,
            s.queries_finished,
            s.harvests,
            s.events_rejected,
        );
        format!(
            "{HEADER}\nbytes {} checksum {:016x}\n{body}{FOOTER}\n",
            body.len(),
            fnv64(body.as_bytes()),
        )
    }

    /// Parse [`Self::to_text`] output. Strict: the byte count and
    /// checksum must match, every field must be present under its
    /// declared name and position, and nothing may follow the terminator.
    pub fn from_text(text: &str) -> Result<HarvestState, StateError> {
        let rest = text
            .strip_prefix(HEADER)
            .and_then(|r| r.strip_prefix('\n'))
            .ok_or_else(|| StateError(format!("missing `{HEADER}` header")))?;
        let (meta, after_meta) = rest
            .split_once('\n')
            .ok_or_else(|| StateError("truncated before the bytes/checksum line".into()))?;
        let parts: Vec<&str> = meta.split_whitespace().collect();
        let [k_bytes, v_bytes, k_sum, v_sum] = parts.as_slice() else {
            return Err(StateError(format!("malformed meta line `{meta}`")));
        };
        if *k_bytes != "bytes" || *k_sum != "checksum" {
            return Err(StateError(format!("malformed meta line `{meta}`")));
        }
        let n_bytes: usize =
            v_bytes.parse().map_err(|e| StateError(format!("bytes `{v_bytes}`: {e}")))?;
        let declared = u64::from_str_radix(v_sum, 16)
            .map_err(|e| StateError(format!("checksum `{v_sum}`: {e}")))?;
        if after_meta.len() < n_bytes {
            return Err(StateError(format!(
                "truncated body: {} bytes present, {n_bytes} declared",
                after_meta.len()
            )));
        }
        let body = &after_meta[..n_bytes];
        let computed = fnv64(body.as_bytes());
        if computed != declared {
            return Err(StateError(format!(
                "checksum mismatch: declared {declared:016x}, computed {computed:016x}"
            )));
        }
        let tail = &after_meta[n_bytes..];
        let after_footer = tail
            .strip_prefix(FOOTER)
            .and_then(|r| r.strip_prefix('\n'))
            .ok_or_else(|| StateError(format!("missing `{FOOTER}` terminator")))?;
        if !after_footer.trim().is_empty() {
            return Err(StateError(format!("trailing garbage after `{FOOTER}`: {after_footer:?}")));
        }

        let mut r = LineReader::new(body);
        let epoch_raw = r.fields(&["epoch"])?[0];
        let epoch = parse(&r, "epoch", epoch_raw)?;
        let f = r.fields(&[
            "registered",
            "admitted",
            "refused",
            "events_ingested",
            "events_unroutable",
            "queries_dropped",
            "queries_finished",
            "harvests",
            "events_rejected",
        ])?;
        let stats = ShardStats {
            registered: parse(&r, "registered", f[0])?,
            admitted: parse(&r, "admitted", f[1])?,
            refused: parse(&r, "refused", f[2])?,
            events_ingested: parse(&r, "events_ingested", f[3])?,
            events_unroutable: parse(&r, "events_unroutable", f[4])?,
            queries_dropped: parse(&r, "queries_dropped", f[5])?,
            queries_finished: parse(&r, "queries_finished", f[6])?,
            harvests: parse(&r, "harvests", f[7])?,
            events_rejected: parse(&r, "events_rejected", f[8])?,
        };
        r.finish()?;
        Ok(HarvestState { epoch, stats })
    }
}

fn parse<T: std::str::FromStr>(r: &LineReader<'_>, field: &str, raw: &str) -> Result<T, StateError>
where
    T::Err: fmt::Display,
{
    raw.parse().map_err(|e| StateError(format!("line {}: {field} `{raw}`: {e}", r.line_no())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HarvestState {
        HarvestState {
            epoch: 7,
            stats: ShardStats {
                registered: 3,
                admitted: 41,
                refused: 2,
                events_ingested: 1234,
                events_unroutable: 5,
                queries_dropped: 1,
                queries_finished: 38,
                harvests: 36,
                events_rejected: 9,
            },
        }
    }

    #[test]
    fn round_trips_bit_identically() {
        let s = sample();
        let text = s.to_text();
        let back = HarvestState::from_text(&text).expect("round trip");
        assert_eq!(back, s);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn default_round_trips() {
        let s = HarvestState::default();
        assert_eq!(HarvestState::from_text(&s.to_text()).unwrap(), s);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let text = sample().to_text();
        for cut in 0..text.len() {
            assert!(
                HarvestState::from_text(&text[..cut]).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn bit_flips_in_the_body_are_rejected() {
        let text = sample().to_text();
        // Corrupt a digit in the body (after the checksum line).
        let idx = text.find("events_ingested 1234").unwrap() + "events_ingested ".len();
        let mut corrupt = text.clone();
        corrupt.replace_range(idx..idx + 1, "9");
        let err = HarvestState::from_text(&corrupt).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn trailing_garbage_and_version_drift_are_rejected() {
        let s = sample();
        let mut text = s.to_text();
        text.push_str("extra\n");
        assert!(HarvestState::from_text(&text).is_err());
        let drifted = s.to_text().replace("v1", "v2");
        assert!(HarvestState::from_text(&drifted).is_err());
    }
}
