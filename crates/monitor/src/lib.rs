//! # prosel-monitor
//!
//! The **online** progress monitor: the paper's §4.3 architecture as a
//! long-lived service over *running* queries, closing the loop that the
//! rest of the workspace treats post-hoc.
//!
//! König et al. frame progress estimation as an online quantity — counters
//! stream in, estimates are revised as dynamic features become observable —
//! and Shepperd & MacDonell's critique of estimation studies applies
//! directly: an estimator is only validated under the information regime
//! it will face in production, i.e. prefix-only observations. This crate
//! provides exactly that regime:
//!
//! * [`ProgressMonitor`] registers queries *before* they run (static
//!   features, eq. (5) pipeline weights and the initial estimator choice
//!   all come from the plan alone), ingests
//!   [`prosel_engine::trace::TraceEvent`]s one at a time, and serves
//!   per-query / per-pipeline progress on demand in O(1);
//! * per pipeline it maintains a
//!   [`prosel_estimators::incremental::IncrementalObs`], whose committed
//!   curves are bit-identical to the batch
//!   [`prosel_estimators::PipelineObs`] over the same run — and the
//!   refinement-bound pass is computed **once per query per snapshot**
//!   ([`prosel_estimators::SnapshotCtx`]) and shared across pipelines;
//! * with a trained selector attached, the choice made from static
//!   features at registration (paper §4.3's "static selection") is
//!   re-scored at a configurable observation cadence as dynamic features
//!   accumulate (§4.4), and every estimator switch is logged.
//!
//! Two deployment shapes:
//!
//! * [`ProgressMonitor`] ([`shard`]) — the single-threaded core. Embed it
//!   when one ingest thread suffices (one receiver draining a channel).
//! * [`MonitorService`] ([`service`]) — N shards as cooperatively
//!   scheduled tasks on a small work-stealing worker pool ([`runtime`];
//!   sized and pinned via [`RuntimeConfig`]). Ingest routes each event to
//!   the shard owning `query % n_shards` and drains in batches; every
//!   read API (`query_progress`, `remaining_time`, `status`, `stats`, …)
//!   is a **wait-free** load from a seqlocked per-query snapshot the
//!   owning shard publishes after each event — reads never enqueue behind
//!   ingest, so read tail latency is flat under saturated ingest. Its
//!   [`MonitorService::tap`] routes each engine event to exactly one
//!   shard (no broadcast).
//!
//! Feed either from [`prosel_engine::run_plan_tapped`] or
//! [`prosel_engine::run_concurrent_tapped`]:
//!
//! Both shapes are constructed through one surface, [`MonitorBuilder`]
//! ([`builder`]) — policy, config knobs, shard count, harvest sink and
//! checkpoint restore in a single chain:
//!
//! ```no_run
//! use prosel_engine::{run_plan_tapped, Catalog, ExecConfig};
//! use prosel_monitor::MonitorBuilder;
//! use prosel_estimators::EstimatorKind;
//! # fn demo(catalog: &Catalog<'_>, plan: &prosel_engine::PhysicalPlan) {
//! let (tap, rx) = std::sync::mpsc::channel();
//! let mut monitor = MonitorBuilder::fixed(EstimatorKind::Dne).build_monitor().unwrap();
//! monitor.register(0, plan);
//! let run = run_plan_tapped(catalog, plan, &ExecConfig::default(), 0, tap);
//! monitor.drain(&rx);
//! assert_eq!(monitor.query_progress(0), Some(1.0));
//! # let _ = run;
//! # }
//! ```
//!
//! The sharded service is the same chain with a shard count:
//!
//! ```no_run
//! use prosel_engine::{run_plan_tapped, Catalog, ExecConfig};
//! use prosel_monitor::MonitorBuilder;
//! use prosel_estimators::EstimatorKind;
//! # fn demo(catalog: &Catalog<'_>, plan: &prosel_engine::PhysicalPlan) {
//! let service = MonitorBuilder::fixed(EstimatorKind::Dne).shards(4).build_service().unwrap();
//! service.register(0, plan);
//! let run = run_plan_tapped(catalog, plan, &ExecConfig::default(), 0, service.tap());
//! assert_eq!(service.query_progress(0), Ok(1.0));
//! # let _ = run;
//! # }
//! ```
//!
//! Both shapes additionally answer the DBA's actual question — *"how much
//! longer?"* — via [`ProgressMonitor::remaining_time`] /
//! [`MonitorService::remaining_time`]: tap events carry wall-clock stamps
//! (from the injectable [`prosel_engine::clock::Clock`]), a per-query
//! [`SpeedTracker`] measures progress-per-second over a trailing window,
//! and the served [`Eta`] carries a point estimate plus an
//! optimistic/conservative interval; [`ProgressMonitor::progress_at_deadline`]
//! answers the dual bounded-staleness question, and
//! [`ProgressMonitor::remaining_time_with_age`] pairs the answer with its
//! staleness against the serving clock ([`MonitorConfig::clock`]). See
//! [`eta`] for semantics.
//!
//! Finally, both shapes plug into the **online-learning loop** (the
//! `prosel-learn` crate): a [`HarvestSink`] attached via
//! [`ProgressMonitor::with_harvester`] receives every finished query as a
//! [`HarvestedQuery`] — labelled training records mined from the
//! finalized incremental state (bit-identical to batch extraction over
//! the same trace) plus the §4.4 switch history — and retrained selectors
//! hot-swap back in via [`ProgressMonitor::swap_selector`] /
//! [`MonitorService::swap_selector`]: new registrations score with the
//! new model (epoch bumped), in-flight queries keep the selector captured
//! at their registration.
//!
//! For fleet deployments, [`HarvestState`] ([`state`]) checkpoints the
//! restart-worthy shard state (selector epoch + monotone counters)
//! through a strict checksummed text codec, and
//! [`MonitorBuilder::restore`] re-seats it; [`MonitorError`] ([`error`])
//! is the `?`-friendly umbrella over every typed failure the crate
//! produces.
//!
//! Every layer is instrumented through [`prosel_obs`]: the shard cores
//! keep their operation counters and sampled ingest/eval latency
//! histograms as registry metrics ([`ShardStats`] is a view over the
//! same atomics), the service adds read/registration/swap latency, tap
//! volume and a control-plane [`prosel_obs::TraceRing`], and the
//! work-stealing runtime counts steals, parks and queue depth. Pass a
//! registry via [`MonitorConfig::metrics`] /
//! [`MonitorBuilder::metrics`], scrape with
//! [`MonitorService::metrics`] or render the strict text exposition with
//! [`MonitorService::render_text`].

pub mod builder;
pub mod error;
pub mod eta;
pub mod runtime;
pub mod service;
pub mod shard;
pub mod state;

pub use builder::MonitorBuilder;
pub use error::MonitorError;
pub use eta::{Eta, SpeedTracker, StaleEta};
pub use runtime::RuntimeConfig;
pub use service::{MonitorService, QueryError, SwapError};
pub use shard::{
    HarvestConfig, HarvestSink, HarvestedQuery, MonitorConfig, PipelineStatus, ProgressMonitor,
    QueryStatus, RegisterError, ShardStats, SwitchEvent,
};
pub use state::{HarvestState, StateError};

// Observability surface, re-exported so embedders need no direct
// `prosel-obs` dependency for the common wiring.
pub use prosel_obs::{MetricsRegistry, MetricsSnapshot, ObsEvent, ObsOptions, TraceRing};
