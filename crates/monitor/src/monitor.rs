//! The long-lived [`ProgressMonitor`].
//!
//! Lifecycle per query: [`ProgressMonitor::register`] (plan only, before
//! execution) → [`ProgressMonitor::ingest`] for every
//! [`TraceEvent`] → progress served on demand → the `Finished` event pins
//! the query to exactly 1.0 and finalizes every pipeline's observation
//! state (unlocking oracle curves and exact batch equivalence).

use prosel_core::features::{dynamic_features, static_features};
use prosel_core::selection::EstimatorSelector;
use prosel_engine::plan::PhysicalPlan;
use prosel_engine::trace::{Snapshot, TraceEvent};
use prosel_engine::{decompose, pipeline_weight, Pipeline};
use prosel_estimators::{EstimatorKind, IncrementalObs};
use std::collections::BTreeMap;
use std::sync::mpsc::Receiver;
use std::sync::Arc;

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// With a selector attached: re-score the estimator choice of a
    /// pipeline every this many *committed* observations (paper §4.4's
    /// dynamic revision, generalized from the single 20%-marker revisit to
    /// a recurring cadence). 0 disables re-selection after registration.
    pub reselect_every: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig { reselect_every: 4 }
    }
}

/// One estimator switch, logged when online re-selection changes its mind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchEvent {
    pub pipeline: usize,
    /// Virtual time of the observation that triggered the switch.
    pub time: f64,
    pub from: EstimatorKind,
    pub to: EstimatorKind,
}

/// Progress of one pipeline, as served live.
#[derive(Debug, Clone, Copy)]
pub struct PipelineStatus {
    pub pipeline: usize,
    /// Estimator currently in charge of this pipeline.
    pub estimator: EstimatorKind,
    /// Latest progress estimate in [0, 1]; 0 before the first observation.
    pub progress: f64,
    /// Number of committed observations so far.
    pub observations: usize,
}

/// Progress of one registered query, as served live.
#[derive(Debug, Clone)]
pub struct QueryStatus {
    pub query: usize,
    /// Estimated query progress in [0, 1] (eq. (5) weighting); exactly 1.0
    /// once the engine reported termination.
    pub progress: f64,
    /// Virtual time of the latest event seen for this query.
    pub time: f64,
    pub finished: bool,
    pub pipelines: Vec<PipelineStatus>,
}

enum Policy {
    Fixed(EstimatorKind),
    Selector(Box<EstimatorSelector>),
}

struct PipeState {
    obs: IncrementalObs,
    choice: EstimatorKind,
    initial: EstimatorKind,
    /// Static feature prefix, cached at registration (selector mode only).
    static_feats: Vec<f32>,
    since_select: usize,
}

struct QueryState {
    /// Plan size, for validating that incoming events match the
    /// registered plan.
    n_nodes: usize,
    weights: Vec<f64>,
    total_weight: f64,
    pipes: Vec<PipeState>,
    /// Serials of the engine's currently retained snapshots (mirrors the
    /// bounded trace buffer across thinning events).
    live: Vec<u64>,
    serial_next: u64,
    last_time: f64,
    finished: bool,
    switches: Vec<SwitchEvent>,
}

/// Long-lived online progress monitor. See the crate docs for the model.
pub struct ProgressMonitor {
    policy: Policy,
    config: MonitorConfig,
    queries: BTreeMap<usize, QueryState>,
}

impl ProgressMonitor {
    /// Monitor every pipeline with one fixed estimator (no selection).
    ///
    /// # Panics
    /// Panics for the oracle kinds (`GetNextOracle`, `BytesOracle`): they
    /// need post-hoc totals and cannot serve live progress.
    pub fn fixed(kind: EstimatorKind) -> ProgressMonitor {
        assert!(
            prosel_estimators::ONLINE_KINDS.contains(&kind),
            "{kind} needs post-hoc totals and cannot serve progress online"
        );
        ProgressMonitor {
            policy: Policy::Fixed(kind),
            config: MonitorConfig::default(),
            queries: BTreeMap::new(),
        }
    }

    /// Monitor with a trained selector: static selection at registration,
    /// dynamic re-selection at the configured observation cadence.
    pub fn with_selector(selector: EstimatorSelector, config: MonitorConfig) -> ProgressMonitor {
        ProgressMonitor {
            policy: Policy::Selector(Box::new(selector)),
            config,
            queries: BTreeMap::new(),
        }
    }

    /// Register a query **before it runs**. Everything derivable without
    /// execution happens here: pipeline decomposition, eq. (5) weights,
    /// static features and the initial estimator choice.
    ///
    /// Registration must precede the query's first snapshot: once the
    /// engine has emitted (and possibly thinned) snapshots this monitor
    /// never saw, its bounded-buffer mirror is unreconstructable, so a
    /// query whose stream is joined mid-way is dropped again on its first
    /// ingested snapshot (progress queries then return `None`) rather
    /// than served from silently corrupted state.
    ///
    /// # Panics
    /// Panics if `query` is already registered.
    pub fn register(&mut self, query: usize, plan: &PhysicalPlan) {
        assert!(!self.queries.contains_key(&query), "query {query} already registered");
        let plan = Arc::new(plan.clone());
        let pipelines: Vec<Pipeline> = decompose(&plan);
        let weights: Vec<f64> = pipelines.iter().map(|p| pipeline_weight(&plan, p)).collect();
        let total_weight: f64 = weights.iter().filter(|&&w| w > 0.0).sum();
        let pipes = pipelines
            .iter()
            .map(|p| {
                let (static_feats, choice) = match &self.policy {
                    Policy::Fixed(kind) => (Vec::new(), *kind),
                    Policy::Selector(sel) => {
                        let feats = static_features::extract_parts(&plan, &pipelines, p.id);
                        let choice = sel.select_static(&feats);
                        (feats, choice)
                    }
                };
                PipeState {
                    obs: IncrementalObs::new(Arc::clone(&plan), p),
                    choice,
                    initial: choice,
                    static_feats,
                    since_select: 0,
                }
            })
            .collect();
        self.queries.insert(
            query,
            QueryState {
                n_nodes: plan.len(),
                weights,
                total_weight,
                pipes,
                live: Vec::new(),
                serial_next: 0,
                last_time: 0.0,
                finished: false,
                switches: Vec::new(),
            },
        );
    }

    /// Ingest one trace event. Events for unregistered queries are
    /// silently dropped (the tap may carry queries this monitor does not
    /// track).
    pub fn ingest(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Snapshot { query, seq, snapshot, windows } => {
                self.on_snapshot(query, seq, &snapshot, &windows);
            }
            TraceEvent::Thinned { query } => {
                if let Some(qs) = self.queries.get_mut(&query) {
                    // Mirror the engine: odd positions survive, interval
                    // doubles (the interval is the engine's business).
                    let mut i = 0usize;
                    qs.live.retain(|_| {
                        let keep = i % 2 == 1;
                        i += 1;
                        keep
                    });
                    for pipe in &mut qs.pipes {
                        pipe.obs.thin(&qs.live);
                    }
                }
            }
            TraceEvent::Finished { query, windows, total_time } => {
                if let Some(qs) = self.queries.get_mut(&query) {
                    qs.finished = true;
                    qs.last_time = total_time;
                    for pipe in &mut qs.pipes {
                        let pid = pipe.obs.pipeline_id();
                        pipe.obs.finalize(windows[pid]);
                    }
                }
            }
        }
    }

    fn on_snapshot(&mut self, query: usize, seq: u64, snapshot: &Snapshot, windows: &[(f64, f64)]) {
        let Some(qs) = self.queries.get_mut(&query) else { return };
        if seq != qs.serial_next
            || snapshot.k.len() != qs.n_nodes
            || windows.len() != qs.pipes.len()
        {
            // The stream was joined mid-way, events were lost, or the
            // engine is executing a different plan under this query id:
            // state can no longer be trusted, so refuse to serve
            // corrupted estimates rather than panic or misalign.
            self.queries.remove(&query);
            return;
        }
        let serial = qs.serial_next;
        qs.serial_next += 1;
        qs.live.push(serial);
        qs.last_time = snapshot.time;
        let reselect_every = self.config.reselect_every;
        for pipe in &mut qs.pipes {
            let pid = pipe.obs.pipeline_id();
            let committed = pipe.obs.offer(serial, snapshot, windows[pid]);
            if committed == 0 {
                continue;
            }
            if let Policy::Selector(sel) = &self.policy {
                pipe.since_select += committed;
                if reselect_every > 0 && pipe.since_select >= reselect_every && !pipe.obs.is_empty()
                {
                    pipe.since_select = 0;
                    let mut feats = pipe.static_feats.clone();
                    feats.extend(dynamic_features::extract(&pipe.obs));
                    let next = sel.select(&feats);
                    if next != pipe.choice {
                        qs.switches.push(SwitchEvent {
                            pipeline: pid,
                            time: snapshot.time,
                            from: pipe.choice,
                            to: next,
                        });
                        pipe.choice = next;
                    }
                }
            }
        }
    }

    /// Drain every event currently queued on `rx` (non-blocking). Returns
    /// the number of events ingested.
    pub fn drain(&mut self, rx: &Receiver<TraceEvent>) -> usize {
        let mut n = 0;
        while let Ok(ev) = rx.try_recv() {
            self.ingest(ev);
            n += 1;
        }
        n
    }

    /// Estimated progress of `query` in [0, 1]: the eq. (5)-weighted sum
    /// of the per-pipeline estimates under each pipeline's current
    /// estimator, pinned to exactly 1.0 once the engine reported
    /// termination. `None` for unregistered queries.
    pub fn query_progress(&self, query: usize) -> Option<f64> {
        let qs = self.queries.get(&query)?;
        Some(Self::progress_of(qs))
    }

    fn progress_of(qs: &QueryState) -> f64 {
        if qs.finished {
            return 1.0;
        }
        if qs.total_weight <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0f64;
        for (pipe, &w) in qs.pipes.iter().zip(&qs.weights) {
            if w <= 0.0 {
                continue;
            }
            if let Some(v) = pipe.obs.value(pipe.choice) {
                acc += w * v;
            }
        }
        (acc / qs.total_weight).clamp(0.0, 1.0)
    }

    /// Latest progress estimate of one pipeline (1.0 once the query
    /// finished, 0.0 before the pipeline's first observation).
    pub fn pipeline_progress(&self, query: usize, pipeline: usize) -> Option<f64> {
        let qs = self.queries.get(&query)?;
        let pipe = qs.pipes.get(pipeline)?;
        if qs.finished {
            return Some(1.0);
        }
        Some(pipe.obs.value(pipe.choice).unwrap_or(0.0))
    }

    /// Full live status of one query.
    pub fn status(&self, query: usize) -> Option<QueryStatus> {
        let qs = self.queries.get(&query)?;
        let pipelines = qs
            .pipes
            .iter()
            .map(|pipe| PipelineStatus {
                pipeline: pipe.obs.pipeline_id(),
                estimator: pipe.choice,
                progress: if qs.finished {
                    1.0
                } else {
                    pipe.obs.value(pipe.choice).unwrap_or(0.0)
                },
                observations: pipe.obs.len(),
            })
            .collect();
        Some(QueryStatus {
            query,
            progress: Self::progress_of(qs),
            time: qs.last_time,
            finished: qs.finished,
            pipelines,
        })
    }

    /// The estimator-switch history of a query (empty under a fixed
    /// policy or when re-selection never changed its mind).
    pub fn switch_history(&self, query: usize) -> Option<&[SwitchEvent]> {
        self.queries.get(&query).map(|qs| qs.switches.as_slice())
    }

    /// The estimator chosen from static features at registration.
    pub fn initial_choice(&self, query: usize, pipeline: usize) -> Option<EstimatorKind> {
        self.queries.get(&query)?.pipes.get(pipeline).map(|p| p.initial)
    }

    /// The estimator currently in charge of a pipeline.
    pub fn current_choice(&self, query: usize, pipeline: usize) -> Option<EstimatorKind> {
        self.queries.get(&query)?.pipes.get(pipeline).map(|p| p.choice)
    }

    /// The incremental observation state of one pipeline — curves,
    /// windows, driver fractions (read access for analysis and tests).
    pub fn observation(&self, query: usize, pipeline: usize) -> Option<&IncrementalObs> {
        self.queries.get(&query)?.pipes.get(pipeline).map(|p| &p.obs)
    }

    /// Has the engine reported this query's termination?
    pub fn is_finished(&self, query: usize) -> Option<bool> {
        self.queries.get(&query).map(|qs| qs.finished)
    }

    /// Queries currently registered, ascending.
    pub fn registered_queries(&self) -> Vec<usize> {
        self.queries.keys().copied().collect()
    }

    /// Drop a query's state (e.g. after its result was consumed).
    pub fn unregister(&mut self, query: usize) {
        self.queries.remove(&query);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_engine::plan::{OperatorKind, PlanNode};

    fn scan_plan() -> PhysicalPlan {
        PhysicalPlan {
            nodes: vec![PlanNode {
                op: OperatorKind::TableScan { table: "t".into(), cols: vec![0] },
                children: vec![],
                est_rows: 100.0,
                est_row_bytes: 8.0,
                out_cols: 1,
            }],
            root: 0,
        }
    }

    fn snapshot_event(query: usize, seq: u64, time: f64, k: u64) -> TraceEvent {
        TraceEvent::Snapshot {
            query,
            seq,
            snapshot: Snapshot {
                time,
                k: vec![k].into_boxed_slice(),
                bytes_read: vec![k * 8].into_boxed_slice(),
                bytes_written: vec![0].into_boxed_slice(),
                materialized: vec![0].into_boxed_slice(),
            },
            windows: vec![(1.0, time)].into_boxed_slice(),
        }
    }

    #[test]
    fn late_registration_is_refused_not_corrupted() {
        let plan = scan_plan();
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne);
        // Registered only after the engine already emitted snapshot 0:
        // the buffer mirror is unreconstructable, so the first ingested
        // snapshot (seq 1 != expected 0) must drop the query.
        monitor.register(7, &plan);
        monitor.ingest(snapshot_event(7, 1, 20.0, 40));
        assert_eq!(monitor.query_progress(7), None, "late-joined query must be dropped");
        assert!(monitor.registered_queries().is_empty());
    }

    #[test]
    fn timely_registration_serves_progress() {
        let plan = scan_plan();
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne);
        monitor.register(7, &plan);
        monitor.ingest(snapshot_event(7, 0, 10.0, 25));
        assert!((monitor.query_progress(7).unwrap() - 0.25).abs() < 1e-12);
        monitor.ingest(TraceEvent::Finished {
            query: 7,
            windows: vec![(1.0, 40.0)].into_boxed_slice(),
            total_time: 40.0,
        });
        assert_eq!(monitor.query_progress(7), Some(1.0));
    }
}
