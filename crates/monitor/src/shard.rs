//! The single-threaded monitor core: one shard's worth of state.
//!
//! [`ProgressMonitor`] is both the standalone single-threaded monitor
//! (embed it directly when one ingest thread suffices) and the per-shard
//! core of the multi-threaded [`crate::service::MonitorService`], which
//! owns N of them behind worker threads and routes queries by id.
//!
//! Lifecycle per query: [`ProgressMonitor::register`] (plan only, before
//! execution) → [`ProgressMonitor::ingest`] for every
//! [`TraceEvent`] → progress served on demand → the `Finished` event pins
//! the query to exactly 1.0 and finalizes every pipeline's observation
//! state (unlocking oracle curves and exact batch equivalence).
//!
//! Per snapshot, the refinement-bound pass is computed **once per query**
//! as a [`SnapshotCtx`] and shared across all of the query's pipelines
//! ([`IncrementalObs::offer_shared`]) — O(plan) per snapshot instead of
//! O(pipelines × plan).

use crate::eta::{Eta, SpeedTracker, StaleEta};
use crate::runtime::RuntimeConfig;
use crate::state::HarvestState;
use prosel_core::features::{dynamic_features, static_features};
use prosel_core::pipeline_runs::{record_from_online, PipelineRecord};
use prosel_core::selection::EstimatorSelector;
use prosel_engine::clock::{Clock, SystemClock};
use prosel_engine::plan::PhysicalPlan;
use prosel_engine::trace::{
    thin_half, CounterKind, CounterUpdate, DeltaDecoder, Snapshot, TraceEvent,
};
use prosel_engine::{decompose, pipeline_weight, Pipeline};
use prosel_estimators::soa::BoundsKernel;
use prosel_estimators::{EstimatorKind, IncrementalObs, SnapshotCtx};
use prosel_obs::{Counter, Histogram, MetricsRegistry, ObsOptions};
use std::collections::BTreeMap;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Instant;

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// With a selector attached: re-score the estimator choice of a
    /// pipeline every this many *committed* observations (paper §4.4's
    /// dynamic revision, generalized from the single 20%-marker revisit to
    /// a recurring cadence). 0 disables re-selection after registration.
    pub reselect_every: usize,
    /// Trailing-window size (samples) of the per-query
    /// [`SpeedTracker`] behind [`ProgressMonitor::remaining_time`] /
    /// [`ProgressMonitor::progress_at_deadline`]. Clamped to ≥ 2.
    pub eta_window: usize,
    /// Clock consulted by [`ProgressMonitor::remaining_time_with_age`] to
    /// convert the event-stream-pure [`Eta::as_of`] into a staleness age.
    /// Must share the epoch of the clock stamping the ingested trace
    /// events ([`prosel_engine::context::ExecConfig::wall_clock`]) for the
    /// age to be meaningful — inject the same `Arc` in both places. A
    /// [`prosel_engine::clock::ManualClock`] makes the readouts fully
    /// deterministic; the default is a fresh [`SystemClock`].
    pub clock: Arc<dyn Clock>,
    /// Admission cap: the maximum number of concurrently registered
    /// queries this monitor (each shard, in service mode) will accept; 0
    /// (the default) leaves admission unbounded. Registration beyond the
    /// cap is refused with [`RegisterError::Saturated`] — a typed value,
    /// never a panic — so an open-loop traffic spike degrades into
    /// rejected admissions instead of unbounded shard state.
    pub max_queries: usize,
    /// Shard-runtime knobs (worker pool size, core affinity, ingest batch)
    /// — service mode only; a plain [`ProgressMonitor`] ignores them.
    pub runtime: RuntimeConfig,
    /// Metrics registry the monitor publishes its counters and latency
    /// histograms into (`monitor_*` names standalone, `monitor_shard<i>_*`
    /// per service shard — see the README's metric inventory). `None`
    /// (the default) keeps the same counters on detached atomics: every
    /// readout still works, nothing is scrapeable. Give each
    /// monitor/service its **own** registry — two services sharing one
    /// would silently share (and double-count on) the same handles.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Timing-instrumentation knobs (latency histograms, sampling
    /// stride). Counters are unaffected — they are the stats bookkeeping
    /// itself.
    pub obs: ObsOptions,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            reselect_every: 4,
            eta_window: 32,
            clock: Arc::new(SystemClock::new()),
            max_queries: 0,
            runtime: RuntimeConfig::default(),
            metrics: None,
            obs: ObsOptions::default(),
        }
    }
}

/// Why a registration (or monitor construction) was refused.
///
/// A service fronting thousands of queries must not abort on a duplicate
/// id or a misconfigured estimator — these are recoverable caller errors,
/// surfaced as values via [`ProgressMonitor::try_register`] /
/// [`ProgressMonitor::try_fixed`] (the panicking entry points route
/// through the same checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterError {
    /// The query id is already registered on this monitor/shard.
    DuplicateQuery(usize),
    /// The estimator kind needs post-hoc totals and cannot serve live
    /// progress (the oracle kinds).
    OracleKind(EstimatorKind),
    /// The monitor (or the owning shard) is at its configured admission
    /// cap ([`MonitorConfig::max_queries`] concurrently registered
    /// queries): the registration was refused to keep shard state bounded
    /// under open-loop admission pressure. Retry after earlier queries
    /// finish or are unregistered.
    Saturated {
        /// The cap that was hit.
        limit: usize,
    },
    /// The shard worker that owns this query is no longer running
    /// (service mode only).
    ShardDown,
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::DuplicateQuery(q) => write!(f, "query {q} already registered"),
            RegisterError::OracleKind(k) => {
                write!(f, "{k} needs post-hoc totals and cannot serve progress online")
            }
            RegisterError::Saturated { limit } => {
                write!(f, "monitor saturated: admission cap of {limit} registered queries reached")
            }
            RegisterError::ShardDown => write!(f, "owning shard worker is gone"),
        }
    }
}

impl std::error::Error for RegisterError {}

/// Harvesting configuration: how finished queries are mined into
/// training records (the online-learning feedback path).
#[derive(Debug, Clone)]
pub struct HarvestConfig {
    /// Label stamped into the harvested records' `workload` field
    /// (batch collection uses the workload spec's label; a service uses
    /// whatever partitions its traffic — tenant, priority class, …).
    pub label: String,
    /// Pipelines with fewer committed observations are skipped — the
    /// same rule as batch collection's
    /// [`prosel_core::pipeline_runs::CollectConfig::min_observations`].
    pub min_observations: usize,
}

impl Default for HarvestConfig {
    fn default() -> Self {
        HarvestConfig { label: "online".into(), min_observations: 5 }
    }
}

/// Everything one finished query yields for the learning loop: its
/// labelled records (bit-identical to batch extraction over the same
/// trace), the estimator-switch history (§4.4's revision points) and the
/// selector epoch the query was registered under.
#[derive(Debug, Clone)]
pub struct HarvestedQuery {
    pub query: usize,
    /// Selector epoch captured at this query's registration.
    pub selector_epoch: u64,
    /// Total virtual execution time reported by the engine.
    pub total_time: f64,
    /// One record per pipeline that met the observation floor.
    pub records: Vec<PipelineRecord>,
    /// Estimator switches logged while the query ran.
    pub switches: Vec<SwitchEvent>,
}

/// Consumer of harvested queries. Implementations must be cheap and
/// non-blocking: the monitor calls [`HarvestSink::deliver`] inline while
/// processing the `Finished` event (a channel sender is the typical
/// impl — the heavy lifting happens on the trainer's thread).
pub trait HarvestSink: Send + Sync {
    fn deliver(&self, harvest: HarvestedQuery);
}

/// A plain mpsc sender is a harvest sink; a hung-up receiver silently
/// drops the harvest (monitoring must outlive any one learner).
impl HarvestSink for std::sync::mpsc::Sender<HarvestedQuery> {
    fn deliver(&self, harvest: HarvestedQuery) {
        let _ = self.send(harvest);
    }
}

/// Monotone operation counters of one monitor (one shard, in service
/// mode) — the observability hook behind the traffic harness's
/// no-drop invariants and harvest/retrain interference measurements
/// (read via [`ProgressMonitor::shard_stats`] /
/// [`crate::service::MonitorService::shard_stats`]).
///
/// Conservation law: every call to [`ProgressMonitor::ingest`] increments
/// exactly one of `events_ingested` (the query was registered when the
/// event arrived — including events that triggered a defensive state
/// drop) or `events_unroutable` (it was not). In service mode a third
/// bucket exists: `events_rejected` counts events a **dead** shard could
/// not ingest (refused at the router, or drained from the shard queue
/// after the shard panicked). A driver that sent `N` events to a drained
/// shard set must observe
/// `Σ events_ingested + Σ events_unroutable + Σ events_rejected == N` —
/// a dead shard degrades the service but never breaks the count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Queries registered right now.
    pub registered: usize,
    /// Registrations accepted since construction.
    pub admitted: u64,
    /// Registrations refused (duplicate id or [`RegisterError::Saturated`]).
    pub refused: u64,
    /// Events ingested into a registered query's state.
    pub events_ingested: u64,
    /// Events that arrived for queries this monitor does not track
    /// (silently dropped, per the [`ProgressMonitor::ingest`] contract).
    pub events_unroutable: u64,
    /// Queries whose state was dropped defensively (corrupt, late-joined
    /// or id-reusing streams) instead of being served.
    pub queries_dropped: u64,
    /// `Finished` events accepted: queries that reached the terminal
    /// pinned-to-1.0 state.
    pub queries_finished: u64,
    /// Harvest envelopes delivered to the attached sink.
    pub harvests: u64,
    /// Events dropped because the owning shard was dead (service mode
    /// only; always 0 on a plain [`ProgressMonitor`]). Counted at the
    /// router when a send is refused, and when a panicking shard's queue
    /// is drained — the third leg of the conservation law above.
    pub events_rejected: u64,
}

impl ShardStats {
    /// Element-wise sum (`registered` included) — fold the per-shard
    /// readouts of a service into one service-wide view.
    pub fn merged(&self, other: &ShardStats) -> ShardStats {
        ShardStats {
            registered: self.registered + other.registered,
            admitted: self.admitted + other.admitted,
            refused: self.refused + other.refused,
            events_ingested: self.events_ingested + other.events_ingested,
            events_unroutable: self.events_unroutable + other.events_unroutable,
            queries_dropped: self.queries_dropped + other.queries_dropped,
            queries_finished: self.queries_finished + other.queries_finished,
            harvests: self.harvests + other.harvests,
            events_rejected: self.events_rejected + other.events_rejected,
        }
    }
}

/// The live atomics behind [`ShardStats`]: one monitor's (one shard's,
/// in service mode) operation counters plus its latency histograms, held
/// as shared [`prosel_obs`] handles. There is exactly **one increment
/// site per event**, here in the shard core — [`ShardStats`] readouts
/// are point-in-time loads of these same atomics (single source of
/// truth), which is what lets the service's read path fold per-shard
/// stats wait-free without touching the shard core's lock, and lets a
/// scrape of the registry see the identical numbers.
#[derive(Debug, Clone)]
pub(crate) struct ShardCounters {
    /// Gauge-like: kept in sync with the live query-map size at every
    /// mutation site (reset, not incremented).
    pub(crate) registered: Arc<Counter>,
    pub(crate) admitted: Arc<Counter>,
    pub(crate) refused: Arc<Counter>,
    pub(crate) events_ingested: Arc<Counter>,
    pub(crate) events_unroutable: Arc<Counter>,
    pub(crate) queries_dropped: Arc<Counter>,
    pub(crate) queries_finished: Arc<Counter>,
    pub(crate) harvests: Arc<Counter>,
    pub(crate) events_rejected: Arc<Counter>,
    /// `TraceEvent::Delta` events whose sparse patch applied cleanly.
    pub(crate) delta_decodes: Arc<Counter>,
    /// Sampled per-event ingest latency (see [`ObsOptions`]).
    pub(crate) ingest_ns: Arc<Histogram>,
    /// Sampled full-snapshot / delta evaluation time (the
    /// `advance_query` tail: bound refresh + per-pipeline offers).
    pub(crate) snapshot_eval_ns: Arc<Histogram>,
    pub(crate) timing: bool,
    pub(crate) stride: u32,
}

impl ShardCounters {
    /// Handles for one monitor. With a registry in the config the
    /// counters register under `monitor_*` (standalone) or
    /// `monitor_shard<i>_*` (service shard `i`); without one they live on
    /// detached atomics — same behavior, nothing scrapeable.
    pub(crate) fn from_config(config: &MonitorConfig, shard: Option<usize>) -> ShardCounters {
        let (timing, stride) = (config.obs.timing, config.obs.stride());
        match &config.metrics {
            Some(registry) => {
                let prefix = match shard {
                    Some(i) => format!("monitor_shard{i}_"),
                    None => "monitor_".to_string(),
                };
                let c = |name: &str| registry.counter(&format!("{prefix}{name}"));
                ShardCounters {
                    registered: c("registered"),
                    admitted: c("admitted_total"),
                    refused: c("refused_total"),
                    events_ingested: c("events_ingested_total"),
                    events_unroutable: c("events_unroutable_total"),
                    queries_dropped: c("queries_dropped_total"),
                    queries_finished: c("queries_finished_total"),
                    harvests: c("harvests_total"),
                    events_rejected: c("events_rejected_total"),
                    delta_decodes: c("delta_decodes_total"),
                    ingest_ns: registry.histogram(&format!("{prefix}ingest_ns")),
                    snapshot_eval_ns: registry.histogram(&format!("{prefix}snapshot_eval_ns")),
                    timing,
                    stride,
                }
            }
            None => ShardCounters {
                registered: Arc::new(Counter::new()),
                admitted: Arc::new(Counter::new()),
                refused: Arc::new(Counter::new()),
                events_ingested: Arc::new(Counter::new()),
                events_unroutable: Arc::new(Counter::new()),
                queries_dropped: Arc::new(Counter::new()),
                queries_finished: Arc::new(Counter::new()),
                harvests: Arc::new(Counter::new()),
                events_rejected: Arc::new(Counter::new()),
                delta_decodes: Arc::new(Counter::new()),
                ingest_ns: Arc::new(Histogram::new()),
                snapshot_eval_ns: Arc::new(Histogram::new()),
                timing,
                stride,
            },
        }
    }

    /// Point-in-time [`ShardStats`] view over the atomics (`registered`
    /// included — the service reads it without locking the shard core).
    pub(crate) fn load(&self) -> ShardStats {
        ShardStats {
            registered: self.registered.get() as usize,
            admitted: self.admitted.get(),
            refused: self.refused.get(),
            events_ingested: self.events_ingested.get(),
            events_unroutable: self.events_unroutable.get(),
            queries_dropped: self.queries_dropped.get(),
            queries_finished: self.queries_finished.get(),
            harvests: self.harvests.get(),
            events_rejected: self.events_rejected.get(),
        }
    }

    /// Re-seat checkpointed monotone counters (restore path).
    /// `registered` is live state, not a checkpointed value — it stays
    /// synced to the query map.
    pub(crate) fn reset_to(&self, stats: &ShardStats) {
        self.admitted.reset(stats.admitted);
        self.refused.reset(stats.refused);
        self.events_ingested.reset(stats.events_ingested);
        self.events_unroutable.reset(stats.events_unroutable);
        self.queries_dropped.reset(stats.queries_dropped);
        self.queries_finished.reset(stats.queries_finished);
        self.harvests.reset(stats.harvests);
        self.events_rejected.reset(stats.events_rejected);
    }
}

/// One estimator switch, logged when online re-selection changes its mind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchEvent {
    pub pipeline: usize,
    /// Virtual time of the observation that triggered the switch.
    pub time: f64,
    pub from: EstimatorKind,
    pub to: EstimatorKind,
}

/// Progress of one pipeline, as served live.
#[derive(Debug, Clone, Copy)]
pub struct PipelineStatus {
    pub pipeline: usize,
    /// Estimator currently in charge of this pipeline.
    pub estimator: EstimatorKind,
    /// Latest progress estimate in [0, 1]; 0 before the first observation.
    pub progress: f64,
    /// Number of committed observations so far.
    pub observations: usize,
}

/// Progress of one registered query, as served live.
#[derive(Debug, Clone)]
pub struct QueryStatus {
    pub query: usize,
    /// Estimated query progress in [0, 1] (eq. (5) weighting); exactly 1.0
    /// once the engine reported termination.
    pub progress: f64,
    /// Virtual time of the latest event seen for this query.
    pub time: f64,
    pub finished: bool,
    pub pipelines: Vec<PipelineStatus>,
}

#[derive(Clone)]
enum Policy {
    Fixed(EstimatorKind),
    Selector(Arc<EstimatorSelector>),
}

pub(crate) struct PipeState {
    pub(crate) obs: IncrementalObs,
    pub(crate) choice: EstimatorKind,
    initial: EstimatorKind,
    /// Static feature prefix, cached at registration (selector mode only).
    static_feats: Vec<f32>,
    since_select: usize,
}

/// Per-query reusable ingest scratch. One allocation set per query for
/// its whole lifetime: the [`DeltaDecoder`] holds the current counter
/// vectors and windows (full snapshots are copied into it in place,
/// [`TraceEvent::Delta`] events patch it sparsely), the [`SnapshotCtx`]
/// is the refinement-bound scratch refreshed per event, and the
/// [`BoundsKernel`] is the bound pass compiled once at registration.
/// Before this existed, every ingested snapshot allocated a fresh
/// `SnapshotCtx` (two `Vec<f64>` plus the topological order) — visible
/// under the 24k-query saturated-ingest bench.
struct IngestScratch {
    decoder: DeltaDecoder,
    ctx: SnapshotCtx,
    kernel: BoundsKernel,
}

impl IngestScratch {
    fn new(plan: &PhysicalPlan) -> IngestScratch {
        IngestScratch {
            decoder: DeltaDecoder::new(),
            ctx: SnapshotCtx::empty(),
            kernel: BoundsKernel::new(plan),
        }
    }

    /// Refresh the shared bound context from the current scratch counters,
    /// re-evaluating only from topological position `dirty_from` onward —
    /// the delta-driven incremental path (bit-identical to a full pass,
    /// see [`SnapshotCtx::refresh_from`]). Full snapshots pass 0.
    fn refresh_ctx(&mut self, dirty_from: usize) {
        let IngestScratch { decoder, ctx, kernel } = self;
        ctx.refresh_from(kernel, decoder.view().k, dirty_from);
    }
}

struct QueryState {
    /// The registered plan (shared with every pipeline's observation
    /// state); the per-snapshot [`SnapshotCtx`] is computed against it.
    plan: Arc<PhysicalPlan>,
    /// Reusable counter/bound scratch (see [`IngestScratch`]).
    scratch: IngestScratch,
    weights: Vec<f64>,
    total_weight: f64,
    /// The selector captured at registration — in-flight queries keep
    /// scoring with their registration-time model even when
    /// [`ProgressMonitor::swap_selector`] installs a newer one (`None`
    /// under a fixed policy).
    selector: Option<Arc<EstimatorSelector>>,
    /// Selector epoch at registration (see
    /// [`ProgressMonitor::selector_epoch`]).
    epoch: u64,
    pipes: Vec<PipeState>,
    /// Serials of the engine's currently retained snapshots (mirrors the
    /// bounded trace buffer across thinning events).
    live: Vec<u64>,
    serial_next: u64,
    last_time: f64,
    finished: bool,
    switches: Vec<SwitchEvent>,
    /// Wall-clock speed over the trailing window (ETA serving).
    eta: SpeedTracker,
    /// Wall stamp of the latest stamped event seen for this query.
    last_wall: f64,
}

/// One query's state, projected for the service's read-snapshot publish
/// (see [`ProgressMonitor::query_view`]).
pub(crate) struct QueryView<'a> {
    pub(crate) progress: f64,
    pub(crate) time: f64,
    pub(crate) finished: bool,
    /// Raw at-last-event ETA ([`ProgressMonitor::remaining_time_at_last_event`]).
    pub(crate) eta: Eta,
    pub(crate) epoch: u64,
    pub(crate) pipes: &'a [PipeState],
    pub(crate) switches: &'a [SwitchEvent],
}

/// Long-lived online progress monitor (single-threaded core / one shard of
/// the [`crate::service::MonitorService`]). See the crate docs for the
/// model.
pub struct ProgressMonitor {
    policy: Policy,
    config: MonitorConfig,
    queries: BTreeMap<usize, QueryState>,
    /// Bumped by every [`Self::swap_selector`]; queries remember the epoch
    /// they registered under.
    epoch: u64,
    harvester: Option<(Arc<dyn HarvestSink>, HarvestConfig)>,
    /// Monotone operation counters and latency histograms — shared
    /// wait-free atomics; [`Self::shard_stats`] is a view over them.
    counters: ShardCounters,
    /// Rolling event tick for 1-in-N latency sampling.
    obs_tick: u32,
    /// Is the event currently being ingested a sampled (timed) one? Set
    /// by [`Self::ingest`], read by the snapshot/delta eval timing.
    obs_timed: bool,
}

impl ProgressMonitor {
    /// Monitor every pipeline with one fixed estimator (no selection).
    ///
    /// Documented legacy: prefer
    /// [`MonitorBuilder::fixed`](crate::MonitorBuilder::fixed)`.build_monitor()`,
    /// which also carries config, harvester and checkpoint-restore in one
    /// construction surface. Kept as a thin delegate for existing embeds.
    ///
    /// # Panics
    /// Panics for the oracle kinds (`GetNextOracle`, `BytesOracle`): they
    /// need post-hoc totals and cannot serve live progress. Use
    /// [`Self::try_fixed`] to handle the error as a value.
    pub fn fixed(kind: EstimatorKind) -> ProgressMonitor {
        Self::try_fixed(kind).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`Self::fixed`]: refuses the oracle kinds with
    /// [`RegisterError::OracleKind`]. Documented legacy — prefer
    /// [`crate::MonitorBuilder`].
    pub fn try_fixed(kind: EstimatorKind) -> Result<ProgressMonitor, RegisterError> {
        if !prosel_estimators::ONLINE_KINDS.contains(&kind) {
            return Err(RegisterError::OracleKind(kind));
        }
        let config = MonitorConfig::default();
        let counters = ShardCounters::from_config(&config, None);
        Ok(ProgressMonitor {
            policy: Policy::Fixed(kind),
            config,
            queries: BTreeMap::new(),
            epoch: 0,
            harvester: None,
            counters,
            obs_tick: 0,
            obs_timed: false,
        })
    }

    /// Monitor with a trained selector: static selection at registration,
    /// dynamic re-selection at the configured observation cadence.
    ///
    /// Accepts an owned [`EstimatorSelector`] or an
    /// `Arc<EstimatorSelector>` — the `Arc` form is how the sharded
    /// service has N shards score with one model instance instead of N
    /// copies. Documented legacy: prefer
    /// [`MonitorBuilder::with_selector`](crate::MonitorBuilder::with_selector).
    pub fn with_selector(
        selector: impl Into<Arc<EstimatorSelector>>,
        config: MonitorConfig,
    ) -> ProgressMonitor {
        let counters = ShardCounters::from_config(&config, None);
        ProgressMonitor {
            policy: Policy::Selector(selector.into()),
            config,
            queries: BTreeMap::new(),
            epoch: 0,
            harvester: None,
            counters,
            obs_tick: 0,
            obs_timed: false,
        }
    }

    /// Replace the monitor's configuration, builder-style — the way to
    /// give a fixed-policy monitor (whose constructors start from
    /// defaults) a deterministic clock or a different ETA window. Applies
    /// to future registrations; already-registered queries keep the ETA
    /// window they were created with. Rebuilds the metric handles from
    /// the new config's registry, so tallies restart from zero — call
    /// this builder-style at construction, before any traffic.
    pub fn with_config(mut self, config: MonitorConfig) -> ProgressMonitor {
        self.counters = ShardCounters::from_config(&config, None);
        self.config = config;
        self
    }

    /// Attach a harvest sink: from now on, every `Finished` event
    /// additionally mines the query's finalized observation state into
    /// labelled [`PipelineRecord`]s (bit-identical to batch extraction
    /// over the same trace) and delivers them, together with the switch
    /// history, as one [`HarvestedQuery`]. Builder-style.
    pub fn with_harvester(
        mut self,
        sink: Arc<dyn HarvestSink>,
        config: HarvestConfig,
    ) -> ProgressMonitor {
        self.set_harvester(sink, config);
        self
    }

    /// Attach (or replace) the harvest sink. See [`Self::with_harvester`].
    pub fn set_harvester(&mut self, sink: Arc<dyn HarvestSink>, config: HarvestConfig) {
        self.harvester = Some((sink, config));
    }

    /// Install `selector` for **future registrations** and bump the
    /// selector epoch (returned). In-flight queries keep the selector
    /// captured at their registration — a swap mid-query never changes
    /// answers already being served (bit-equality pinned by
    /// `tests/online_learning.rs`) — while every later
    /// [`Self::register`] scores with the new model. Swapping onto a
    /// fixed-policy monitor upgrades it to selector mode (existing
    /// fixed-policy queries keep their fixed estimator).
    pub fn swap_selector(&mut self, selector: Arc<EstimatorSelector>) -> u64 {
        self.policy = Policy::Selector(selector);
        self.epoch += 1;
        self.epoch
    }

    /// The current selector epoch: 0 until the first
    /// [`Self::swap_selector`], incremented by each swap.
    pub fn selector_epoch(&self) -> u64 {
        self.epoch
    }

    /// The selector epoch `query` was registered under (`None` for
    /// unregistered queries).
    pub fn query_selector_epoch(&self, query: usize) -> Option<u64> {
        self.queries.get(&query).map(|qs| qs.epoch)
    }

    /// Register a query **before it runs**. Everything derivable without
    /// execution happens here: pipeline decomposition, eq. (5) weights,
    /// static features and the initial estimator choice.
    ///
    /// Registration must precede the query's first snapshot: once the
    /// engine has emitted (and possibly thinned) snapshots this monitor
    /// never saw, its bounded-buffer mirror is unreconstructable, so a
    /// query whose stream is joined mid-way is dropped again on its first
    /// ingested snapshot (progress queries then return `None`) rather
    /// than served from silently corrupted state.
    ///
    /// # Panics
    /// Panics if `query` is already registered. Use [`Self::try_register`]
    /// to handle the duplicate as a value.
    pub fn register(&mut self, query: usize, plan: impl Into<Arc<PhysicalPlan>>) {
        self.try_register(query, plan).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Non-panicking [`Self::register`]: refuses duplicate query ids with
    /// [`RegisterError::DuplicateQuery`] and a full shard with
    /// [`RegisterError::Saturated`] instead of aborting.
    ///
    /// Accepts `&PhysicalPlan`, an owned plan, or `Arc<PhysicalPlan>` —
    /// the `Arc` form avoids a deep clone when the caller (e.g. the
    /// sharded service) already holds a shared plan.
    pub fn try_register(
        &mut self,
        query: usize,
        plan: impl Into<Arc<PhysicalPlan>>,
    ) -> Result<(), RegisterError> {
        let plan: Arc<PhysicalPlan> = plan.into();
        if self.queries.contains_key(&query) {
            self.counters.refused.inc();
            return Err(RegisterError::DuplicateQuery(query));
        }
        let cap = self.config.max_queries;
        if cap > 0 && self.queries.len() >= cap {
            self.counters.refused.inc();
            return Err(RegisterError::Saturated { limit: cap });
        }
        let pipelines: Vec<Pipeline> = decompose(&plan);
        let weights: Vec<f64> = pipelines.iter().map(|p| pipeline_weight(&plan, p)).collect();
        let total_weight: f64 = weights.iter().filter(|&&w| w > 0.0).sum();
        let pipes = pipelines
            .iter()
            .map(|p| {
                let (static_feats, choice) = match &self.policy {
                    Policy::Fixed(kind) => (Vec::new(), *kind),
                    Policy::Selector(sel) => {
                        let feats = static_features::extract_parts(&plan, &pipelines, p.id);
                        let choice = sel.select_static(&feats);
                        (feats, choice)
                    }
                };
                PipeState {
                    obs: IncrementalObs::new(Arc::clone(&plan), p),
                    choice,
                    initial: choice,
                    static_feats,
                    since_select: 0,
                }
            })
            .collect();
        // Capture the selector behind this registration: re-selection for
        // this query stays on it even across later swaps.
        let selector = match &self.policy {
            Policy::Fixed(_) => None,
            Policy::Selector(sel) => Some(Arc::clone(sel)),
        };
        let scratch = IngestScratch::new(&plan);
        self.queries.insert(
            query,
            QueryState {
                plan,
                scratch,
                weights,
                total_weight,
                selector,
                epoch: self.epoch,
                pipes,
                live: Vec::new(),
                serial_next: 0,
                last_time: 0.0,
                finished: false,
                switches: Vec::new(),
                eta: SpeedTracker::new(self.config.eta_window),
                last_wall: 0.0,
            },
        );
        self.counters.admitted.inc();
        self.counters.registered.reset(self.queries.len() as u64);
        Ok(())
    }

    /// Ingest one trace event. Events for unregistered queries are
    /// silently dropped (the tap may carry queries this monitor does not
    /// track).
    pub fn ingest(&mut self, ev: TraceEvent) {
        self.obs_timed = self.counters.timing && {
            self.obs_tick = self.obs_tick.wrapping_add(1);
            self.obs_tick.is_multiple_of(self.counters.stride)
        };
        if self.obs_timed {
            let start = Instant::now();
            self.ingest_inner(ev);
            self.counters.ingest_ns.record(start.elapsed().as_nanos() as u64);
        } else {
            self.ingest_inner(ev);
        }
    }

    fn ingest_inner(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Snapshot { query, seq, wall, snapshot, windows } => {
                self.on_snapshot(query, seq, wall, &snapshot, &windows);
            }
            TraceEvent::Delta { query, seq, wall, time, changes, window_updates } => {
                self.on_delta(query, seq, wall, time, &changes, &window_updates);
            }
            TraceEvent::Thinned { query } => {
                if let Some(qs) = self.queries.get_mut(&query) {
                    self.counters.events_ingested.inc();
                    if qs.finished {
                        // A new stream reusing the id (see on_snapshot).
                        self.drop_query_state(query);
                        return;
                    }
                    // Mirror the engine: odd positions survive, interval
                    // doubles (the interval is the engine's business).
                    thin_half(&mut qs.live);
                    for pipe in &mut qs.pipes {
                        pipe.obs.thin(&qs.live);
                    }
                } else {
                    self.counters.events_unroutable.inc();
                }
            }
            TraceEvent::Finished { query, wall, windows, total_time } => {
                if let Some(qs) = self.queries.get_mut(&query) {
                    self.counters.events_ingested.inc();
                    if qs.finished || windows.len() != qs.pipes.len() {
                        // Same contract as the snapshot path: a second
                        // termination means a new stream is reusing this
                        // id against finalized state, and a window-arity
                        // mismatch means the engine ran a different plan
                        // under it — drop the state rather than panic the
                        // shard (or serve stale answers).
                        self.drop_query_state(query);
                        return;
                    }
                    qs.finished = true;
                    qs.last_time = total_time;
                    qs.last_wall = qs.last_wall.max(wall);
                    self.counters.queries_finished.inc();
                    for pipe in &mut qs.pipes {
                        let pid = pipe.obs.pipeline_id();
                        pipe.obs.finalize(windows[pid]);
                    }
                    // Harvest hook: the pipes are finalized, so their
                    // committed curves, truth and totals now match what
                    // batch extraction would compute over this trace.
                    if let Some((sink, hcfg)) = &self.harvester {
                        let records = qs
                            .pipes
                            .iter()
                            .filter_map(|pipe| {
                                record_from_online(
                                    &qs.plan,
                                    &pipe.obs,
                                    &hcfg.label,
                                    query,
                                    qs.weights[pipe.obs.pipeline_id()],
                                    hcfg.min_observations,
                                )
                            })
                            .collect();
                        sink.deliver(HarvestedQuery {
                            query,
                            selector_epoch: qs.epoch,
                            total_time,
                            records,
                            switches: qs.switches.clone(),
                        });
                        self.counters.harvests.inc();
                    }
                } else {
                    self.counters.events_unroutable.inc();
                }
            }
        }
    }

    /// Defensive drop of one query's state (corrupt, late-joined or
    /// id-reusing stream): one call site funnel so the drop counter and
    /// the `registered` gauge can never drift from the map.
    fn drop_query_state(&mut self, query: usize) {
        self.queries.remove(&query);
        self.counters.queries_dropped.inc();
        self.counters.registered.reset(self.queries.len() as u64);
    }

    fn on_snapshot(
        &mut self,
        query: usize,
        seq: u64,
        wall: f64,
        snapshot: &Snapshot,
        windows: &[(f64, f64)],
    ) {
        let Some(qs) = self.queries.get_mut(&query) else {
            self.counters.events_unroutable.inc();
            return;
        };
        self.counters.events_ingested.inc();
        if qs.finished
            || seq != qs.serial_next
            || snapshot.k.len() != qs.plan.len()
            || windows.len() != qs.pipes.len()
        {
            // `finished` first: a snapshot after termination means a new
            // stream is reusing this query id against finalized state (a
            // seq-0 stream would otherwise pass the header check when the
            // finished run emitted no snapshots, and panic the pipes).
            // The stream was joined mid-way, events were lost, or the
            // engine is executing a different plan under this query id:
            // state can no longer be trusted, so refuse to serve
            // corrupted estimates rather than panic or misalign.
            self.drop_query_state(query);
            return;
        }
        // Copy the full counter vectors into the per-query scratch (no
        // allocation once the scratch is warm) and run the shared tail.
        qs.scratch.decoder.apply_full(snapshot, windows);
        let eval_start = self.obs_timed.then(Instant::now);
        Self::advance_query(qs, self.config.reselect_every, wall, 0);
        if let Some(start) = eval_start {
            self.counters.snapshot_eval_ns.record(start.elapsed().as_nanos() as u64);
        }
    }

    /// Ingest a [`TraceEvent::Delta`]: patch the per-query counter
    /// scratch with the changed `(node, counter)` pairs and advance the
    /// pipelines exactly as a full snapshot would.
    fn on_delta(
        &mut self,
        query: usize,
        seq: u64,
        wall: f64,
        time: f64,
        changes: &[CounterUpdate],
        window_updates: &[(u32, (f64, f64))],
    ) {
        let Some(qs) = self.queries.get_mut(&query) else {
            self.counters.events_unroutable.inc();
            return;
        };
        self.counters.events_ingested.inc();
        // Same contract as the snapshot path, plus: a delta is only
        // meaningful against a primed baseline (the engine always emits a
        // full snapshot first), and its node/pipeline indices must land
        // inside that baseline. `apply_delta` refuses (leaving the scratch
        // untouched) on either violation — treat that exactly like a
        // seq gap: the stream can no longer be trusted.
        let ok = !qs.finished
            && seq == qs.serial_next
            && qs.scratch.decoder.apply_delta(time, changes, window_updates);
        if !ok {
            self.drop_query_state(query);
            return;
        }
        self.counters.delta_decodes.inc();
        // The delta names exactly which counters moved, and the bound pass
        // only reads `GetNext` counters — refresh the bound context from
        // the first dirty topological position instead of re-evaluating
        // the whole plan.
        let dirty_from = changes
            .iter()
            .filter(|u| matches!(u.counter, CounterKind::GetNext))
            .map(|u| qs.scratch.kernel.position_of(u.node as usize))
            .min()
            .unwrap_or(usize::MAX);
        let eval_start = self.obs_timed.then(Instant::now);
        Self::advance_query(qs, self.config.reselect_every, wall, dirty_from);
        if let Some(start) = eval_start {
            self.counters.snapshot_eval_ns.record(start.elapsed().as_nanos() as u64);
        }
    }

    /// The shared per-event tail of [`Self::on_snapshot`] /
    /// [`Self::on_delta`]: the query's counter scratch holds the current
    /// snapshot; do the serial bookkeeping, refresh the shared bound
    /// context (the O(pipelines × plan) → O(plan) hoist, now also
    /// allocation-free), and offer the snapshot view to every pipeline.
    fn advance_query(qs: &mut QueryState, reselect_every: usize, wall: f64, dirty_from: usize) {
        let serial = qs.serial_next;
        qs.serial_next += 1;
        qs.live.push(serial);
        qs.scratch.refresh_ctx(dirty_from);
        // Destructure so the pipe loop can borrow the scratch (view +
        // ctx) and the pipes mutably at the same time.
        let QueryState { scratch, pipes, selector, switches, last_time, .. } = qs;
        let view = scratch.decoder.view();
        let windows = scratch.decoder.windows();
        *last_time = view.time;
        for pipe in pipes.iter_mut() {
            let pid = pipe.obs.pipeline_id();
            let committed = pipe.obs.offer_view(serial, view, windows[pid], &scratch.ctx);
            if committed == 0 {
                continue;
            }
            // Re-selection scores with the selector captured at this
            // query's registration, not the monitor's current policy: a
            // hot swap must never change an in-flight query's behavior.
            if let Some(sel) = selector {
                pipe.since_select += committed;
                if reselect_every > 0 && pipe.since_select >= reselect_every && !pipe.obs.is_empty()
                {
                    pipe.since_select = 0;
                    let mut feats = pipe.static_feats.clone();
                    feats.extend(dynamic_features::extract(&pipe.obs));
                    let next = sel.select(&feats);
                    if next != pipe.choice {
                        switches.push(SwitchEvent {
                            pipeline: pid,
                            time: view.time,
                            from: pipe.choice,
                            to: next,
                        });
                        pipe.choice = next;
                    }
                }
            }
        }
        // One speed sample per snapshot: the wall stamp against the served
        // query-level progress. Regressions and frozen clocks are rejected
        // inside the tracker, so the sample can be offered unconditionally.
        qs.last_wall = qs.last_wall.max(wall);
        let progress = Self::progress_of(qs);
        qs.eta.offer(wall, progress);
    }

    /// Drain every event currently queued on `rx` (non-blocking). Returns
    /// the number of events ingested.
    pub fn drain(&mut self, rx: &Receiver<TraceEvent>) -> usize {
        let mut n = 0;
        while let Ok(ev) = rx.try_recv() {
            self.ingest(ev);
            n += 1;
        }
        n
    }

    /// Estimated progress of `query` in [0, 1]: the eq. (5)-weighted sum
    /// of the per-pipeline estimates under each pipeline's current
    /// estimator, pinned to exactly 1.0 once the engine reported
    /// termination. `None` for unregistered queries.
    pub fn query_progress(&self, query: usize) -> Option<f64> {
        let qs = self.queries.get(&query)?;
        Some(Self::progress_of(qs))
    }

    fn progress_of(qs: &QueryState) -> f64 {
        if qs.finished {
            return 1.0;
        }
        if qs.total_weight <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0f64;
        for (pipe, &w) in qs.pipes.iter().zip(&qs.weights) {
            if w <= 0.0 {
                continue;
            }
            if let Some(v) = pipe.obs.value(pipe.choice) {
                acc += w * v;
            }
        }
        (acc / qs.total_weight).clamp(0.0, 1.0)
    }

    /// Wall-clock remaining-time answer for `query` — point + interval ETA
    /// from the trailing speed window (see [`crate::eta`] for semantics),
    /// **with staleness folded in**: the countdowns are aged by the
    /// configured [`MonitorConfig::clock`]'s reading past [`Eta::as_of`]
    /// and floored at 0 ([`Eta::aged`]). Without aging, a stalled query's
    /// point ETA would freeze at the last accepted speed sample forever —
    /// [`SpeedTracker::offer`] correctly rejects non-advancing samples —
    /// which is exactly the wrong answer to "how much longer?". The
    /// event-stream-pure raw answer stays available as
    /// [`Self::remaining_time_at_last_event`].
    ///
    /// `None` for unregistered queries; an [`Eta`] with
    /// [`Eta::is_known`]` == false` while fewer than two speed samples
    /// exist; the all-zero [`Eta`] once the engine reported termination.
    /// The aging is exactly meaningful when the monitor's clock shares the
    /// epoch of the clock stamping the trace events (the
    /// [`MonitorConfig::clock`] contract); the clamp at 0 keeps a
    /// mismatched clock from ever serving a negative countdown.
    pub fn remaining_time(&self, query: usize) -> Option<Eta> {
        Some(self.remaining_time_at_last_event(query)?.aged(self.config.clock.now()))
    }

    /// [`Self::remaining_time`] without the staleness fold: the answer as
    /// of the latest accepted event, a pure function of the ingested
    /// stream (bit-deterministic under a manual clock — the equivalence
    /// suites pin on this variant).
    pub fn remaining_time_at_last_event(&self, query: usize) -> Option<Eta> {
        let qs = self.queries.get(&query)?;
        if qs.finished {
            return Some(Eta::finished(qs.last_wall));
        }
        Some(qs.eta.estimate())
    }

    /// [`Self::remaining_time_at_last_event`] plus its staleness: how many
    /// wall seconds the configured [`MonitorConfig::clock`] has advanced
    /// past the answer's [`Eta::as_of`]. The [`Eta`] inside is the **raw**
    /// variant — a pure function of the ingested event stream
    /// (bit-deterministic under a manual clock); only the `age` reads the
    /// serving clock. [`StaleEta::remaining_now`] folds the two, which is
    /// what [`Self::remaining_time`] serves directly.
    pub fn remaining_time_with_age(&self, query: usize) -> Option<StaleEta> {
        let eta = self.remaining_time_at_last_event(query)?;
        Some(StaleEta::at(eta, self.config.clock.now()))
    }

    /// Bounded-staleness progress: the progress fraction this query is
    /// predicted to have reached at wall instant `deadline` (same clock
    /// epoch as the trace events), extrapolating the latest sample forward
    /// at the trailing-window speed, clamped to [0, 1]. `None` for
    /// unregistered queries; exactly 1.0 once finished.
    pub fn progress_at_deadline(&self, query: usize, deadline: f64) -> Option<f64> {
        let qs = self.queries.get(&query)?;
        if qs.finished {
            return Some(1.0);
        }
        Some(qs.eta.progress_at(deadline))
    }

    /// Latest progress estimate of one pipeline (1.0 once the query
    /// finished, 0.0 before the pipeline's first observation).
    pub fn pipeline_progress(&self, query: usize, pipeline: usize) -> Option<f64> {
        let qs = self.queries.get(&query)?;
        let pipe = qs.pipes.get(pipeline)?;
        if qs.finished {
            return Some(1.0);
        }
        Some(pipe.obs.value(pipe.choice).unwrap_or(0.0))
    }

    /// Full live status of one query.
    pub fn status(&self, query: usize) -> Option<QueryStatus> {
        let qs = self.queries.get(&query)?;
        let pipelines = qs
            .pipes
            .iter()
            .map(|pipe| PipelineStatus {
                pipeline: pipe.obs.pipeline_id(),
                estimator: pipe.choice,
                progress: if qs.finished {
                    1.0
                } else {
                    pipe.obs.value(pipe.choice).unwrap_or(0.0)
                },
                observations: pipe.obs.len(),
            })
            .collect();
        Some(QueryStatus {
            query,
            progress: Self::progress_of(qs),
            time: qs.last_time,
            finished: qs.finished,
            pipelines,
        })
    }

    /// The estimator-switch history of a query (empty under a fixed
    /// policy or when re-selection never changed its mind).
    pub fn switch_history(&self, query: usize) -> Option<&[SwitchEvent]> {
        self.queries.get(&query).map(|qs| qs.switches.as_slice())
    }

    /// The estimator chosen from static features at registration.
    pub fn initial_choice(&self, query: usize, pipeline: usize) -> Option<EstimatorKind> {
        self.queries.get(&query)?.pipes.get(pipeline).map(|p| p.initial)
    }

    /// The estimator currently in charge of a pipeline.
    pub fn current_choice(&self, query: usize, pipeline: usize) -> Option<EstimatorKind> {
        self.queries.get(&query)?.pipes.get(pipeline).map(|p| p.choice)
    }

    /// The incremental observation state of one pipeline — curves,
    /// windows, driver fractions (read access for analysis and tests).
    pub fn observation(&self, query: usize, pipeline: usize) -> Option<&IncrementalObs> {
        self.queries.get(&query)?.pipes.get(pipeline).map(|p| &p.obs)
    }

    /// Has the engine reported this query's termination?
    pub fn is_finished(&self, query: usize) -> Option<bool> {
        self.queries.get(&query).map(|qs| qs.finished)
    }

    /// Queries currently registered, ascending.
    pub fn registered_queries(&self) -> Vec<usize> {
        self.queries.keys().copied().collect()
    }

    /// This monitor's monotone operation counters (plus the current
    /// registration count). Deterministic: a pure function of the
    /// register/ingest/unregister call sequence, so a deterministic driver
    /// observes byte-identical readouts across runs.
    pub fn shard_stats(&self) -> ShardStats {
        ShardStats { registered: self.queries.len(), ..self.counters.load() }
    }

    /// Drop a query's state (e.g. after its result was consumed).
    /// Refuses ids that are not registered with
    /// [`QueryError::QueryUnknown`](crate::QueryError::QueryUnknown), so a
    /// caller tearing down by id learns about double-frees instead of
    /// silently absorbing them.
    pub fn unregister(&mut self, query: usize) -> Result<(), crate::service::QueryError> {
        match self.queries.remove(&query) {
            Some(_) => {
                self.counters.registered.reset(self.queries.len() as u64);
                Ok(())
            }
            None => Err(crate::service::QueryError::QueryUnknown(query)),
        }
    }

    /// Export the harvest-relevant shard state — the selector epoch and
    /// the monotone counters — for checkpointing. See [`HarvestState`].
    pub fn harvest_state(&self) -> HarvestState {
        HarvestState { epoch: self.epoch, stats: self.shard_stats() }
    }

    /// Re-seat a checkpointed [`HarvestState`]: the selector epoch resumes
    /// (future swaps keep increasing monotonically across the restart) and
    /// the monotone counters continue from their checkpointed values. Used
    /// by [`crate::MonitorBuilder::restore`]; only meaningful on a monitor
    /// with no registered queries.
    pub(crate) fn restore_harvest_state(&mut self, state: &HarvestState) {
        self.epoch = state.epoch;
        // `registered` is derived from the live query map on read; only
        // the monotone counters are carried across the restart.
        self.counters.reset_to(&state.stats);
    }

    /// The monitor's configuration (the service consults the shared clock
    /// and runtime knobs).
    pub(crate) fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Service construction: make sure the config carries a metrics
    /// registry (creating a fresh one when the caller supplied none), so
    /// shard forks, the service instrumentation and the runtime counters
    /// all land somewhere scrapeable. Returns the registry handle.
    pub(crate) fn ensure_metrics(&mut self) -> Arc<MetricsRegistry> {
        if self.config.metrics.is_none() {
            self.config.metrics = Some(Arc::new(MetricsRegistry::new()));
        }
        Arc::clone(self.config.metrics.as_ref().expect("just ensured"))
    }

    /// Service construction: put `registry` in the config **without**
    /// rebuilding this monitor's own counter handles. A service
    /// prototype never serves traffic itself — only its forks do — so
    /// registering its `monitor_*` series would leave a dead, all-zero
    /// copy of every shard series in each scrape. The forks read the
    /// registry out of the config and register `monitor_shard<i>_*`.
    pub(crate) fn attach_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.config.metrics = Some(registry);
    }

    /// Everything the service's snapshot-publish path needs about one
    /// query, borrowed in a single lookup: the served progress, the raw
    /// at-last-event [`Eta`], and the per-pipeline observation state. The
    /// service copies these into its seqlocked read snapshot after every
    /// ingested event; keeping the projection here (instead of N public
    /// getters × N BTreeMap lookups) keeps the publish cost one map probe.
    pub(crate) fn query_view(&self, query: usize) -> Option<QueryView<'_>> {
        let qs = self.queries.get(&query)?;
        Some(QueryView {
            progress: Self::progress_of(qs),
            time: qs.last_time,
            finished: qs.finished,
            eta: if qs.finished { Eta::finished(qs.last_wall) } else { qs.eta.estimate() },
            epoch: qs.epoch,
            pipes: &qs.pipes,
            switches: &qs.switches,
        })
    }

    /// The per-shard policy, cloned — how the service stamps out N shards
    /// sharing one selector instance. The fork's metric handles register
    /// under the shard-indexed `monitor_shard<i>_*` names.
    pub(crate) fn fork(&self, shard: usize) -> ProgressMonitor {
        ProgressMonitor {
            policy: self.policy.clone(),
            config: self.config.clone(),
            queries: BTreeMap::new(),
            epoch: self.epoch,
            harvester: self.harvester.clone(),
            // Counters are per-instance: forks start their own tallies.
            counters: ShardCounters::from_config(&self.config, Some(shard)),
            obs_tick: 0,
            obs_timed: false,
        }
    }

    /// The fork's counter handles, cloned — the service's slot keeps a
    /// set so its read path can load stats without the core's lock.
    pub(crate) fn counters(&self) -> ShardCounters {
        self.counters.clone()
    }
}

/// Fixtures shared by the shard and service test modules.
#[cfg(test)]
pub(crate) mod test_support {
    use prosel_core::features::FeatureSchema;
    use prosel_core::pipeline_runs::PipelineRecord;
    use prosel_core::selection::{EstimatorSelector, SelectorConfig};
    use prosel_core::training::TrainingSet;
    use prosel_estimators::EstimatorKind;
    use prosel_mart::BoostParams;

    /// A selector whose constant error models make it always pick `kind`
    /// (features are irrelevant — every record reports `kind` as the
    /// cheapest estimator).
    pub(crate) fn selector_favoring(kind: EstimatorKind) -> EstimatorSelector {
        let dims = FeatureSchema::get().len();
        let idx = kind.candidate_index().expect("candidate");
        let records: Vec<PipelineRecord> = (0..24)
            .map(|i| {
                let mut errors = vec![0.9f32; 8];
                errors[idx] = 0.05;
                PipelineRecord {
                    workload: "syn".into(),
                    query_idx: i,
                    pipeline_id: 0,
                    features: vec![0.0; dims],
                    errors_l1: errors.clone(),
                    errors_l2: errors,
                    total_getnext: 10,
                    weight: 1.0,
                    n_obs: 10,
                    fingerprint: "syn".into(),
                    oracle_l1: [0.0; 2],
                    oracle_l2: [0.0; 2],
                }
            })
            .collect();
        let cfg = SelectorConfig {
            candidates: vec![EstimatorKind::Dne, EstimatorKind::Tgn],
            boost: BoostParams { iterations: 4, ..BoostParams::fast() },
            ..SelectorConfig::default()
        };
        EstimatorSelector::train(&TrainingSet::from_records(&records), &cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::selector_favoring;
    use super::*;
    use prosel_core::features::FeatureSchema;
    use prosel_engine::clock::ManualClock;
    use prosel_engine::plan::{OperatorKind, PlanNode};

    fn scan_plan() -> PhysicalPlan {
        PhysicalPlan {
            nodes: vec![PlanNode {
                op: OperatorKind::TableScan { table: "t".into(), cols: vec![0] },
                children: vec![],
                est_rows: 100.0,
                est_row_bytes: 8.0,
                out_cols: 1,
            }],
            root: 0,
        }
    }

    fn snapshot_event(query: usize, seq: u64, time: f64, k: u64) -> TraceEvent {
        TraceEvent::Snapshot {
            query,
            seq,
            // Tests stamp wall == virtual time (one tick per second).
            wall: time,
            snapshot: Snapshot {
                time,
                k: vec![k].into_boxed_slice(),
                bytes_read: vec![k * 8].into_boxed_slice(),
                bytes_written: vec![0].into_boxed_slice(),
                materialized: vec![0].into_boxed_slice(),
            },
            windows: vec![(1.0, time)].into_boxed_slice(),
        }
    }

    fn raw_snapshot(time: f64, k: u64) -> Snapshot {
        Snapshot {
            time,
            k: vec![k].into_boxed_slice(),
            bytes_read: vec![k * 8].into_boxed_slice(),
            bytes_written: vec![0].into_boxed_slice(),
            materialized: vec![0].into_boxed_slice(),
        }
    }

    #[test]
    fn delta_stream_matches_full_snapshot_stream_bitwise() {
        use prosel_engine::trace::DeltaEncoder;
        let plan = scan_plan();
        let mut full = ProgressMonitor::fixed(EstimatorKind::Dne);
        let mut delta = ProgressMonitor::fixed(EstimatorKind::Dne);
        full.register(7, &plan);
        delta.register(7, &plan);
        let mut enc = DeltaEncoder::new();
        for (seq, (time, k)) in [(10.0, 10u64), (20.0, 25), (30.0, 60)].into_iter().enumerate() {
            let snapshot = raw_snapshot(time, k);
            let windows: Box<[(f64, f64)]> = vec![(1.0, time)].into_boxed_slice();
            full.ingest(TraceEvent::Snapshot {
                query: 7,
                seq: seq as u64,
                wall: time,
                snapshot: snapshot.clone(),
                windows: windows.clone(),
            });
            // Mirror the engine tap: first emission is the full baseline,
            // every later one a sparse delta.
            let ev = match enc.encode(&snapshot, &windows) {
                None => TraceEvent::Snapshot {
                    query: 7,
                    seq: seq as u64,
                    wall: time,
                    snapshot,
                    windows,
                },
                Some((changes, window_updates)) => TraceEvent::Delta {
                    query: 7,
                    seq: seq as u64,
                    wall: time,
                    time,
                    changes,
                    window_updates,
                },
            };
            delta.ingest(ev);
            let (pf, pd) = (full.query_progress(7).unwrap(), delta.query_progress(7).unwrap());
            assert_eq!(pf.to_bits(), pd.to_bits(), "divergence at seq {seq}");
            assert_eq!(
                full.remaining_time_at_last_event(7).map(|e| e.remaining.to_bits()),
                delta.remaining_time_at_last_event(7).map(|e| e.remaining.to_bits()),
            );
        }
    }

    #[test]
    fn delta_without_baseline_drops_the_query() {
        // The engine always emits a full snapshot first; a delta arriving
        // at seq 0 means the baseline was lost — state is untrustworthy.
        let plan = scan_plan();
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne);
        monitor.register(3, &plan);
        monitor.ingest(TraceEvent::Delta {
            query: 3,
            seq: 0,
            wall: 10.0,
            time: 10.0,
            changes: Box::new([CounterUpdate {
                node: 0,
                counter: prosel_engine::trace::CounterKind::GetNext,
                value: 5,
            }]),
            window_updates: Box::new([(0, (1.0, 10.0))]),
        });
        assert_eq!(monitor.query_progress(3), None, "unprimed delta must drop the query");
        assert_eq!(monitor.shard_stats().queries_dropped, 1);
    }

    #[test]
    fn malformed_delta_drops_the_query() {
        let plan = scan_plan();
        // Out-of-range node index: the engine is running a different plan
        // under this id. The scratch must stay untouched and the query
        // dropped, not a panic or a silent partial patch.
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne);
        monitor.register(5, &plan);
        monitor.ingest(snapshot_event(5, 0, 10.0, 25));
        monitor.ingest(TraceEvent::Delta {
            query: 5,
            seq: 1,
            wall: 20.0,
            time: 20.0,
            changes: Box::new([CounterUpdate {
                node: 9,
                counter: prosel_engine::trace::CounterKind::GetNext,
                value: 50,
            }]),
            window_updates: Box::new([]),
        });
        assert_eq!(monitor.query_progress(5), None, "out-of-range node must drop the query");
        // A seq gap on the delta path is refused like on the snapshot path.
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne);
        monitor.register(6, &plan);
        monitor.ingest(snapshot_event(6, 0, 10.0, 25));
        monitor.ingest(TraceEvent::Delta {
            query: 6,
            seq: 2,
            wall: 20.0,
            time: 20.0,
            changes: Box::new([]),
            window_updates: Box::new([]),
        });
        assert_eq!(monitor.query_progress(6), None, "seq gap on delta must drop the query");
    }

    #[test]
    fn late_registration_is_refused_not_corrupted() {
        let plan = scan_plan();
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne);
        // Registered only after the engine already emitted snapshot 0:
        // the buffer mirror is unreconstructable, so the first ingested
        // snapshot (seq 1 != expected 0) must drop the query.
        monitor.register(7, &plan);
        monitor.ingest(snapshot_event(7, 1, 20.0, 40));
        assert_eq!(monitor.query_progress(7), None, "late-joined query must be dropped");
        assert!(monitor.registered_queries().is_empty());
    }

    #[test]
    fn timely_registration_serves_progress() {
        let plan = scan_plan();
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne);
        monitor.register(7, &plan);
        monitor.ingest(snapshot_event(7, 0, 10.0, 25));
        assert!((monitor.query_progress(7).unwrap() - 0.25).abs() < 1e-12);
        monitor.ingest(TraceEvent::Finished {
            query: 7,
            wall: 40.0,
            windows: vec![(1.0, 40.0)].into_boxed_slice(),
            total_time: 40.0,
        });
        assert_eq!(monitor.query_progress(7), Some(1.0));
    }

    #[test]
    fn snapshot_after_finished_drops_the_query_instead_of_panicking() {
        // A query can terminate before its first snapshot interval, so its
        // Finished event arrives with serial_next still 0. If a new stream
        // then reuses the id, its seq-0 snapshot would pass the header
        // check against finalized pipes — it must drop the stale state,
        // not panic (a panic would kill a whole service shard).
        let plan = scan_plan();
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne);
        monitor.register(9, &plan);
        monitor.ingest(TraceEvent::Finished {
            query: 9,
            wall: 5.0,
            windows: vec![(1.0, 5.0)].into_boxed_slice(),
            total_time: 5.0,
        });
        assert_eq!(monitor.query_progress(9), Some(1.0));
        monitor.ingest(snapshot_event(9, 0, 10.0, 25));
        assert_eq!(monitor.query_progress(9), None, "stale finished state must be dropped");
        // Same for a thinning event reaching a finished query.
        monitor.register(9, &plan);
        monitor.ingest(TraceEvent::Finished {
            query: 9,
            wall: 5.0,
            windows: vec![(1.0, 5.0)].into_boxed_slice(),
            total_time: 5.0,
        });
        monitor.ingest(TraceEvent::Thinned { query: 9 });
        assert_eq!(monitor.query_progress(9), None);
    }

    #[test]
    fn corrupt_or_repeated_finished_drops_the_query_instead_of_panicking() {
        let plan = scan_plan();
        // A Finished event whose window arity does not match the
        // registered plan means a different plan ran under this id — it
        // must drop the state, not index out of bounds (which would kill
        // a whole service shard).
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne);
        monitor.register(4, &plan);
        monitor.ingest(TraceEvent::Finished {
            query: 4,
            wall: 5.0,
            windows: Box::new([]),
            total_time: 5.0,
        });
        assert_eq!(monitor.query_progress(4), None, "mismatched plan must be dropped");
        // A second Finished for an already-finished query is a new stream
        // reusing the id against finalized state: drop, like the
        // snapshot/thinning paths.
        monitor.register(4, &plan);
        let finished = TraceEvent::Finished {
            query: 4,
            wall: 5.0,
            windows: vec![(1.0, 5.0)].into_boxed_slice(),
            total_time: 5.0,
        };
        monitor.ingest(finished.clone());
        assert_eq!(monitor.query_progress(4), Some(1.0));
        monitor.ingest(finished);
        assert_eq!(monitor.query_progress(4), None, "stale finished state must be dropped");
    }

    #[test]
    fn remaining_time_converges_and_pins_to_zero() {
        let plan = scan_plan();
        // A manual clock held at 0.0 keeps the default staleness fold a
        // no-op (age clamps at 0), so the raw convergence is what's served.
        let config = MonitorConfig {
            clock: Arc::new(ManualClock::new(0.0)) as Arc<dyn Clock>,
            ..Default::default()
        };
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne).with_config(config);
        assert_eq!(monitor.remaining_time(0), None, "unregistered");
        monitor.register(0, &plan);
        let eta = monitor.remaining_time(0).expect("registered");
        assert!(!eta.is_known(), "no samples yet");
        assert_eq!(monitor.progress_at_deadline(0, 50.0), Some(0.0));
        // 10 rows of the 100-row scan per time unit, wall == virtual time.
        monitor.ingest(snapshot_event(0, 0, 1.0, 10));
        monitor.ingest(snapshot_event(0, 1, 2.0, 20));
        let eta = monitor.remaining_time(0).expect("registered");
        assert!(eta.is_known());
        // Speed 0.1/s, 0.8 left => 8 s from as_of == 2.0.
        assert!((eta.remaining - 8.0).abs() < 1e-9, "got {}", eta.remaining);
        assert!(eta.remaining_lo <= eta.remaining && eta.remaining <= eta.remaining_hi);
        assert!((monitor.progress_at_deadline(0, 7.0).unwrap() - 0.7).abs() < 1e-9);
        assert_eq!(monitor.progress_at_deadline(0, 1000.0), Some(1.0));
        monitor.ingest(TraceEvent::Finished {
            query: 0,
            wall: 10.0,
            windows: vec![(1.0, 10.0)].into_boxed_slice(),
            total_time: 10.0,
        });
        let eta = monitor.remaining_time(0).expect("registered");
        assert_eq!((eta.remaining, eta.progress, eta.as_of), (0.0, 1.0, 10.0));
        assert_eq!(monitor.progress_at_deadline(0, 0.0), Some(1.0));
    }

    #[test]
    fn try_register_reports_duplicates_as_values() {
        let plan = scan_plan();
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne);
        assert_eq!(monitor.try_register(3, &plan), Ok(()));
        assert_eq!(monitor.try_register(3, &plan), Err(RegisterError::DuplicateQuery(3)));
        // The original registration survives the refused duplicate.
        monitor.ingest(snapshot_event(3, 0, 10.0, 50));
        assert!((monitor.query_progress(3).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(monitor.registered_queries(), vec![3]);
    }

    #[test]
    fn try_fixed_refuses_oracle_kinds() {
        for kind in [EstimatorKind::GetNextOracle, EstimatorKind::BytesOracle] {
            assert_eq!(
                ProgressMonitor::try_fixed(kind).err(),
                Some(RegisterError::OracleKind(kind))
            );
        }
        assert!(ProgressMonitor::try_fixed(EstimatorKind::Dne).is_ok());
    }

    #[test]
    fn staleness_age_is_served_under_a_manual_clock() {
        let plan = scan_plan();
        let clock = Arc::new(ManualClock::new(0.0));
        let config =
            MonitorConfig { clock: Arc::clone(&clock) as Arc<dyn Clock>, ..Default::default() };
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne).with_config(config);
        monitor.register(2, &plan);
        monitor.ingest(snapshot_event(2, 0, 1.0, 10));
        monitor.ingest(snapshot_event(2, 1, 2.0, 20));
        // The latest accepted sample is as_of == 2.0; the serving clock
        // has moved on to 5.5 => age 3.5, countdown 8 − 3.5.
        clock.set(5.5);
        let stale = monitor.remaining_time_with_age(2).expect("registered");
        assert_eq!(
            stale.eta,
            monitor.remaining_time_at_last_event(2).unwrap(),
            "the StaleEta carries the raw at-last-event answer"
        );
        assert!((stale.age - 3.5).abs() < 1e-12, "age {}", stale.age);
        assert!((stale.remaining_now() - (8.0 - 3.5)).abs() < 1e-9);
        // The default read path folds the same staleness in directly.
        let folded = monitor.remaining_time(2).unwrap();
        assert!((folded.remaining - stale.remaining_now()).abs() < 1e-12);
        assert_eq!(folded.as_of, stale.eta.as_of, "aging keeps the sample provenance");
        // A clock that has burned past the estimate floors at zero — on
        // both the StaleEta fold and the default read path.
        clock.set(100.0);
        assert_eq!(monitor.remaining_time_with_age(2).unwrap().remaining_now(), 0.0);
        assert_eq!(monitor.remaining_time(2).unwrap().remaining, 0.0);
        assert!(
            monitor.remaining_time_at_last_event(2).unwrap().remaining > 0.0,
            "the raw variant stays frozen at the last event by design"
        );
        assert_eq!(monitor.remaining_time_with_age(99), None, "unregistered");
    }

    #[test]
    fn swap_selector_affects_future_registrations_only() {
        let plan = scan_plan();
        let favor_dne = Arc::new(selector_favoring(EstimatorKind::Dne));
        let favor_tgn = Arc::new(selector_favoring(EstimatorKind::Tgn));
        let mut monitor =
            ProgressMonitor::with_selector(Arc::clone(&favor_dne), MonitorConfig::default());
        assert_eq!(monitor.selector_epoch(), 0);
        monitor.register(0, &plan);
        assert_eq!(monitor.initial_choice(0, 0), Some(EstimatorKind::Dne));
        // Feed the in-flight query half its stream, then swap.
        monitor.ingest(snapshot_event(0, 0, 1.0, 10));
        assert_eq!(monitor.swap_selector(Arc::clone(&favor_tgn)), 1);
        monitor.register(1, &plan);
        // New registration scores with the new model; the in-flight query
        // keeps its registration-time choice and epoch.
        assert_eq!(monitor.initial_choice(1, 0), Some(EstimatorKind::Tgn));
        assert_eq!(monitor.query_selector_epoch(0), Some(0));
        assert_eq!(monitor.query_selector_epoch(1), Some(1));
        // Re-selection on query 0 keeps using the DNE-favoring selector
        // even after many post-swap observations.
        for seq in 1..9 {
            monitor.ingest(snapshot_event(0, seq, 1.0 + seq as f64, 10 * (seq + 1)));
        }
        assert_eq!(monitor.current_choice(0, 0), Some(EstimatorKind::Dne));
        assert_eq!(monitor.switch_history(0), Some(&[][..]), "no switch forced by the swap");
    }

    #[test]
    fn finished_queries_are_harvested_with_batch_equivalent_shape() {
        let plan = scan_plan();
        let (sink, harvested) = std::sync::mpsc::channel();
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne).with_harvester(
            Arc::new(sink),
            HarvestConfig { label: "live".into(), min_observations: 3 },
        );
        monitor.register(7, &plan);
        for seq in 0..5u64 {
            monitor.ingest(snapshot_event(7, seq, (seq + 1) as f64 * 8.0, 20 * (seq + 1)));
        }
        monitor.ingest(TraceEvent::Finished {
            query: 7,
            wall: 40.0,
            windows: vec![(1.0, 40.0)].into_boxed_slice(),
            total_time: 40.0,
        });
        let h = harvested.try_recv().expect("one harvest per finished query");
        assert_eq!((h.query, h.selector_epoch), (7, 0));
        assert_eq!(h.total_time, 40.0);
        assert!(h.switches.is_empty());
        assert_eq!(h.records.len(), 1);
        let r = &h.records[0];
        assert_eq!((r.workload.as_str(), r.query_idx, r.pipeline_id), ("live", 7, 0));
        assert_eq!(r.n_obs, 5);
        assert_eq!(r.total_getnext, 100);
        assert_eq!(r.features.len(), FeatureSchema::get().len());
        assert!(r.errors_l1.iter().all(|e| e.is_finite() && *e >= 0.0));
        assert!(harvested.try_recv().is_err(), "exactly one harvest");

        // A query below the observation floor harvests an empty record
        // set (the envelope still announces the finish).
        monitor.register(8, &plan);
        monitor.ingest(snapshot_event(8, 0, 10.0, 50));
        monitor.ingest(TraceEvent::Finished {
            query: 8,
            wall: 20.0,
            windows: vec![(1.0, 20.0)].into_boxed_slice(),
            total_time: 20.0,
        });
        let h = harvested.try_recv().expect("envelope for the short query");
        assert_eq!(h.query, 8);
        assert!(h.records.is_empty(), "1 observation < min_observations 3");
    }

    #[test]
    fn admission_cap_refuses_with_typed_saturation_and_recovers() {
        let plan = scan_plan();
        let config = MonitorConfig { max_queries: 2, ..Default::default() };
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne).with_config(config);
        assert_eq!(monitor.try_register(0, &plan), Ok(()));
        assert_eq!(monitor.try_register(1, &plan), Ok(()));
        // At the cap: a typed refusal, never a panic, and the duplicate
        // check still wins for ids that are already in (no double count).
        assert_eq!(monitor.try_register(2, &plan), Err(RegisterError::Saturated { limit: 2 }));
        assert_eq!(monitor.try_register(0, &plan), Err(RegisterError::DuplicateQuery(0)));
        // Admitted queries are still served while saturated.
        monitor.ingest(snapshot_event(0, 0, 10.0, 50));
        assert!((monitor.query_progress(0).unwrap() - 0.5).abs() < 1e-12);
        // Draining a query frees a slot; admission resumes.
        monitor.unregister(1).unwrap();
        assert_eq!(monitor.try_register(2, &plan), Ok(()));
        let stats = monitor.shard_stats();
        assert_eq!((stats.admitted, stats.refused, stats.registered), (3, 2, 2));
    }

    #[test]
    fn shard_stats_obey_the_event_conservation_law() {
        let plan = scan_plan();
        let (sink, harvested) = std::sync::mpsc::channel();
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne).with_harvester(
            Arc::new(sink),
            HarvestConfig { label: "cnt".into(), min_observations: 1 },
        );
        monitor.register(0, &plan);
        monitor.ingest(snapshot_event(0, 0, 10.0, 25));
        monitor.ingest(snapshot_event(99, 0, 10.0, 25)); // untracked query
        monitor.ingest(TraceEvent::Finished {
            query: 0,
            wall: 40.0,
            windows: vec![(1.0, 40.0)].into_boxed_slice(),
            total_time: 40.0,
        });
        // A post-termination snapshot drops the stale state defensively;
        // the event still counts as ingested (it reached known state).
        monitor.ingest(snapshot_event(0, 1, 50.0, 99));
        let stats = monitor.shard_stats();
        assert_eq!(stats.events_ingested + stats.events_unroutable, 4, "every event counted once");
        assert_eq!(stats.events_unroutable, 1);
        assert_eq!(stats.queries_finished, 1);
        assert_eq!(stats.queries_dropped, 1);
        assert_eq!(stats.harvests, 1);
        assert_eq!(stats.registered, 0);
        assert_eq!(harvested.try_iter().count(), 1);
        // Forks start fresh tallies (service shards own their counters).
        assert_eq!(monitor.fork(0).shard_stats(), ShardStats::default());
        // merged() folds per-shard readouts element-wise.
        let sum = stats.merged(&stats);
        assert_eq!(sum.events_ingested, 2 * stats.events_ingested);
        assert_eq!(sum.queries_finished, 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn register_still_panics_on_duplicates() {
        let plan = scan_plan();
        let mut monitor = ProgressMonitor::fixed(EstimatorKind::Dne);
        monitor.register(1, &plan);
        monitor.register(1, &plan);
    }
}
