//! The sharded monitor service: N single-threaded shards behind worker
//! threads.
//!
//! [`MonitorService`] scales the [`ProgressMonitor`] core past one ingest
//! thread: it owns `n_shards` shards, each a plain single-threaded
//! [`ProgressMonitor`] running on its own worker, and routes every
//! operation to the shard owning the query (`query % n_shards`) over a
//! per-shard channel. Because a query's registration, events and reads
//! all travel the same FIFO channel, per-query ordering is preserved
//! without locks, and shards never contend with each other — ingest
//! throughput scales with the shard count.
//!
//! The engine side stays single-tap: [`MonitorService::tap`] returns a
//! routed [`TraceTap`] whose sink delivers each event **only** to the
//! owning shard (no per-shard cloning, no broadcast). Reads
//! ([`MonitorService::query_progress`], [`MonitorService::status`], …) are
//! synchronous round-trips served from shard-owned state via a reply
//! channel; they are safe to issue from any number of threads while
//! ingest is running.

use crate::eta::{Eta, StaleEta};
use crate::shard::{ProgressMonitor, QueryStatus, RegisterError, ShardStats, SwitchEvent};
use prosel_core::selection::EstimatorSelector;
use prosel_engine::plan::PhysicalPlan;
use prosel_engine::trace::{TapSink, TraceEvent, TraceTap};
use prosel_estimators::EstimatorKind;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Why a [`MonitorService`] read could not be served.
///
/// The two failure modes are operationally different — an unknown query is
/// the caller's bug (or a completed/unregistered query), a dead shard is a
/// service-health incident — so the read APIs surface them as distinct
/// typed values instead of flattening both into `None` (the read-side
/// mirror of [`RegisterError`]'s non-panicking admission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The query (or the requested pipeline of it) is not registered on
    /// its owning shard: never registered, already unregistered, or
    /// dropped after a corrupt/late-joined stream.
    QueryUnknown(usize),
    /// The worker thread owning this query's shard is gone (it panicked or
    /// the service is shutting down).
    ShardDown,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::QueryUnknown(q) => write!(f, "query {q} is not registered"),
            QueryError::ShardDown => write!(f, "owning shard worker is gone"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One request to a shard worker. Events and control messages share the
/// channel, so a query's registration always precedes its events and a
/// read observes every event sent before it (per-shard FIFO).
enum ShardMsg {
    Event(TraceEvent),
    Register {
        query: usize,
        plan: Arc<PhysicalPlan>,
        reply: Sender<Result<(), RegisterError>>,
    },
    RegisterBatch {
        queries: Vec<usize>,
        plan: Arc<PhysicalPlan>,
        reply: Sender<Vec<(usize, Result<(), RegisterError>)>>,
    },
    Unregister {
        query: usize,
    },
    Progress {
        query: usize,
        reply: Sender<Option<f64>>,
    },
    PipelineProgress {
        query: usize,
        pipeline: usize,
        reply: Sender<Option<f64>>,
    },
    Status {
        query: usize,
        reply: Sender<Option<QueryStatus>>,
    },
    Finished {
        query: usize,
        reply: Sender<Option<bool>>,
    },
    Switches {
        query: usize,
        reply: Sender<Option<Vec<SwitchEvent>>>,
    },
    RemainingTime {
        query: usize,
        reply: Sender<Option<Eta>>,
    },
    RemainingTimeWithAge {
        query: usize,
        reply: Sender<Option<StaleEta>>,
    },
    QueryEpoch {
        query: usize,
        reply: Sender<Option<u64>>,
    },
    SwapSelector {
        selector: Arc<EstimatorSelector>,
        reply: Sender<u64>,
    },
    ProgressAtDeadline {
        query: usize,
        deadline: f64,
        reply: Sender<Option<f64>>,
    },
    Registered {
        reply: Sender<Vec<usize>>,
    },
    Stats {
        reply: Sender<ShardStats>,
    },
    Shutdown,
}

fn run_shard(mut monitor: ProgressMonitor, rx: Receiver<ShardMsg>) {
    // Reply sends ignore hangups: a caller that timed out or dropped its
    // reply receiver must not take the shard down with it.
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Event(ev) => monitor.ingest(ev),
            ShardMsg::Register { query, plan, reply } => {
                let _ = reply.send(monitor.try_register_arc(query, plan));
            }
            ShardMsg::RegisterBatch { queries, plan, reply } => {
                let results = queries
                    .into_iter()
                    .map(|q| (q, monitor.try_register_arc(q, Arc::clone(&plan))))
                    .collect();
                let _ = reply.send(results);
            }
            ShardMsg::Unregister { query } => monitor.unregister(query),
            ShardMsg::Progress { query, reply } => {
                let _ = reply.send(monitor.query_progress(query));
            }
            ShardMsg::PipelineProgress { query, pipeline, reply } => {
                let _ = reply.send(monitor.pipeline_progress(query, pipeline));
            }
            ShardMsg::Status { query, reply } => {
                let _ = reply.send(monitor.status(query));
            }
            ShardMsg::Finished { query, reply } => {
                let _ = reply.send(monitor.is_finished(query));
            }
            ShardMsg::Switches { query, reply } => {
                let _ = reply.send(monitor.switch_history(query).map(<[SwitchEvent]>::to_vec));
            }
            ShardMsg::RemainingTime { query, reply } => {
                let _ = reply.send(monitor.remaining_time(query));
            }
            ShardMsg::RemainingTimeWithAge { query, reply } => {
                let _ = reply.send(monitor.remaining_time_with_age(query));
            }
            ShardMsg::QueryEpoch { query, reply } => {
                let _ = reply.send(monitor.query_selector_epoch(query));
            }
            ShardMsg::SwapSelector { selector, reply } => {
                let _ = reply.send(monitor.swap_selector(selector));
            }
            ShardMsg::ProgressAtDeadline { query, deadline, reply } => {
                let _ = reply.send(monitor.progress_at_deadline(query, deadline));
            }
            ShardMsg::Registered { reply } => {
                let _ = reply.send(monitor.registered_queries());
            }
            ShardMsg::Stats { reply } => {
                let _ = reply.send(monitor.shard_stats());
            }
            ShardMsg::Shutdown => break,
        }
    }
}

/// Routes each [`TraceEvent`] to the shard owning its query — the sink
/// behind [`MonitorService::tap`]. One send per event, no broadcast.
struct ShardRouter {
    shards: Vec<Sender<ShardMsg>>,
}

impl TapSink for ShardRouter {
    fn send(&self, ev: TraceEvent) -> Result<(), TraceEvent> {
        let shard = &self.shards[ev.query() % self.shards.len()];
        shard.send(ShardMsg::Event(ev)).map_err(|e| match e.0 {
            ShardMsg::Event(ev) => ev,
            _ => unreachable!("only events are sent through the router"),
        })
    }
}

/// Sharded, concurrent-safe progress monitor service. See the module docs
/// for the architecture and the crate docs for when to prefer the plain
/// [`ProgressMonitor`].
pub struct MonitorService {
    shards: Vec<Sender<ShardMsg>>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes [`Self::swap_selector`] broadcasts: two concurrent
    /// swaps must enqueue in the same order on every shard, or the shards
    /// would end up serving different models under the same epoch.
    swap_lock: std::sync::Mutex<()>,
}

impl MonitorService {
    /// Service with one fixed estimator on every pipeline, `n_shards`
    /// worker shards (clamped to ≥ 1).
    ///
    /// # Panics
    /// Panics for the oracle kinds, like [`ProgressMonitor::fixed`]; use
    /// [`Self::try_fixed`] to handle the error as a value.
    pub fn fixed(kind: EstimatorKind, n_shards: usize) -> MonitorService {
        Self::try_fixed(kind, n_shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`Self::fixed`].
    pub fn try_fixed(
        kind: EstimatorKind,
        n_shards: usize,
    ) -> Result<MonitorService, RegisterError> {
        Ok(Self::spawn(ProgressMonitor::try_fixed(kind)?, n_shards))
    }

    /// Service with a trained selector (shared by every shard): static
    /// selection at registration, dynamic re-selection at the configured
    /// cadence — exactly the [`ProgressMonitor::with_selector`] behavior,
    /// scaled across `n_shards` workers.
    pub fn with_selector(
        selector: EstimatorSelector,
        config: crate::shard::MonitorConfig,
        n_shards: usize,
    ) -> MonitorService {
        Self::spawn(ProgressMonitor::with_shared_selector(Arc::new(selector), config), n_shards)
    }

    /// Scale an arbitrarily configured [`ProgressMonitor`] across
    /// `n_shards` workers: every shard is a fork of `prototype` (same
    /// policy, config, selector epoch and — notably — harvest sink, so a
    /// service built from a harvesting prototype feeds one learning loop
    /// from all shards). The prototype's own registered queries are *not*
    /// carried over; forks start empty.
    pub fn from_prototype(prototype: ProgressMonitor, n_shards: usize) -> MonitorService {
        Self::spawn(prototype, n_shards)
    }

    fn spawn(prototype: ProgressMonitor, n_shards: usize) -> MonitorService {
        let n = n_shards.max(1);
        let mut shards = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            let monitor = prototype.fork();
            shards.push(tx);
            workers.push(std::thread::spawn(move || run_shard(monitor, rx)));
        }
        MonitorService { shards, workers, swap_lock: std::sync::Mutex::new(()) }
    }

    /// Number of shards (and worker threads).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, query: usize) -> &Sender<ShardMsg> {
        &self.shards[query % self.shards.len()]
    }

    /// Round-trip one request to the owning shard. `None` when the shard
    /// worker is gone (it panicked or the service is shutting down).
    fn ask<T>(&self, query: usize, msg: impl FnOnce(Sender<T>) -> ShardMsg) -> Option<T> {
        let (reply, rx) = channel();
        self.shard(query).send(msg(reply)).ok()?;
        rx.recv().ok()
    }

    /// [`Self::ask`] for the read APIs: a dead worker becomes
    /// [`QueryError::ShardDown`], a shard-side `None` (the query is not in
    /// its owning shard's state) becomes [`QueryError::QueryUnknown`].
    fn read<T>(
        &self,
        query: usize,
        msg: impl FnOnce(Sender<Option<T>>) -> ShardMsg,
    ) -> Result<T, QueryError> {
        self.ask(query, msg).ok_or(QueryError::ShardDown)?.ok_or(QueryError::QueryUnknown(query))
    }

    /// Register a query with its owning shard **before it runs** (the
    /// [`ProgressMonitor::register`] contract, routed). Blocks until the
    /// shard confirms, so a subsequent tapped run cannot race its own
    /// registration.
    ///
    /// # Panics
    /// Panics if `query` is already registered; use [`Self::try_register`]
    /// to handle the error as a value.
    pub fn register(&self, query: usize, plan: &PhysicalPlan) {
        self.try_register(query, plan).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Non-panicking [`Self::register`]: duplicate ids come back as
    /// [`RegisterError::DuplicateQuery`], a dead worker as
    /// [`RegisterError::ShardDown`].
    pub fn try_register(&self, query: usize, plan: &PhysicalPlan) -> Result<(), RegisterError> {
        let plan = Arc::new(plan.clone());
        self.ask(query, |reply| ShardMsg::Register { query, plan, reply })
            .ok_or(RegisterError::ShardDown)?
    }

    /// Register many queries against one plan with **one round-trip per
    /// shard** instead of one per query — the admission path for bulk
    /// workloads (a blocking per-query round-trip is latency-bound, not
    /// throughput-bound). Returns one `(query, result)` pair per input
    /// query; queries owned by a dead shard report
    /// [`RegisterError::ShardDown`].
    pub fn try_register_batch(
        &self,
        queries: &[usize],
        plan: &PhysicalPlan,
    ) -> Vec<(usize, Result<(), RegisterError>)> {
        let plan = Arc::new(plan.clone());
        let n = self.shards.len();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &q in queries {
            by_shard[q % n].push(q);
        }
        let mut pending = Vec::with_capacity(n);
        for (shard, queries) in self.shards.iter().zip(by_shard) {
            if queries.is_empty() {
                continue;
            }
            let (reply, rx) = channel();
            let sent = shard
                .send(ShardMsg::RegisterBatch {
                    queries: queries.clone(),
                    plan: Arc::clone(&plan),
                    reply,
                })
                .is_ok();
            pending.push((queries, sent, rx));
        }
        let mut out = Vec::with_capacity(queries.len());
        for (queries, sent, rx) in pending {
            match if sent { rx.recv().ok() } else { None } {
                Some(results) => out.extend(results),
                None => out.extend(queries.into_iter().map(|q| (q, Err(RegisterError::ShardDown)))),
            }
        }
        out
    }

    /// Drop a query's state on its owning shard.
    pub fn unregister(&self, query: usize) {
        let _ = self.shard(query).send(ShardMsg::Unregister { query });
    }

    /// A [`TraceTap`] that fans the engine's event stream out to the
    /// owning shards — pass it to [`prosel_engine::run_plan_tapped`] /
    /// [`prosel_engine::run_concurrent_tapped`]. Each event is routed to
    /// exactly one shard; cloning the tap shares the same service.
    pub fn tap(&self) -> TraceTap {
        TraceTap::from_sink(Arc::new(ShardRouter { shards: self.shards.clone() }))
    }

    /// Ingest one event directly (the channel-free path; useful when the
    /// caller already holds the events).
    pub fn ingest(&self, ev: TraceEvent) {
        let _ = self.shard(ev.query()).send(ShardMsg::Event(ev));
    }

    /// Estimated progress of `query` in [0, 1] — the
    /// [`ProgressMonitor::query_progress`] contract, served from the
    /// owning shard. Unregistered queries and dead shards come back as
    /// distinct [`QueryError`] values.
    pub fn query_progress(&self, query: usize) -> Result<f64, QueryError> {
        self.read(query, |reply| ShardMsg::Progress { query, reply })
    }

    /// Latest progress estimate of one pipeline.
    pub fn pipeline_progress(&self, query: usize, pipeline: usize) -> Result<f64, QueryError> {
        self.read(query, |reply| ShardMsg::PipelineProgress { query, pipeline, reply })
    }

    /// Full live status of one query.
    pub fn status(&self, query: usize) -> Result<QueryStatus, QueryError> {
        self.read(query, |reply| ShardMsg::Status { query, reply })
    }

    /// Has the engine reported this query's termination?
    pub fn is_finished(&self, query: usize) -> Result<bool, QueryError> {
        self.read(query, |reply| ShardMsg::Finished { query, reply })
    }

    /// The estimator-switch history of a query (owned copy).
    pub fn switch_history(&self, query: usize) -> Result<Vec<SwitchEvent>, QueryError> {
        self.read(query, |reply| ShardMsg::Switches { query, reply })
    }

    /// Wall-clock remaining-time answer for `query` — the
    /// [`ProgressMonitor::remaining_time`] contract (point + interval ETA
    /// from the trailing speed window, [`Eta::is_known`]` == false` before
    /// two speed samples, all-zero once finished), served from the owning
    /// shard.
    pub fn remaining_time(&self, query: usize) -> Result<Eta, QueryError> {
        self.read(query, |reply| ShardMsg::RemainingTime { query, reply })
    }

    /// [`Self::remaining_time`] plus staleness — the
    /// [`ProgressMonitor::remaining_time_with_age`] contract, served from
    /// the owning shard (the age is stamped by the shard's configured
    /// clock at reply time, so it includes any queueing delay the request
    /// itself suffered — which is exactly what a staleness readout is
    /// for).
    pub fn remaining_time_with_age(&self, query: usize) -> Result<StaleEta, QueryError> {
        self.read(query, |reply| ShardMsg::RemainingTimeWithAge { query, reply })
    }

    /// The selector epoch `query` was registered under.
    pub fn query_selector_epoch(&self, query: usize) -> Result<u64, QueryError> {
        self.read(query, |reply| ShardMsg::QueryEpoch { query, reply })
    }

    /// Hot-swap `selector` into **every shard** and return the new
    /// selector epoch (identical across shards: swaps only enter through
    /// this broadcast, broadcasts are serialized against each other, and
    /// each waits for all shards to confirm — so an epoch names one
    /// specific model on every shard even under concurrent swappers). New
    /// registrations anywhere in the service pick up the new model;
    /// queries already registered keep the selector captured at their
    /// registration — an in-flight query's answers are bit-unchanged by a
    /// swap. `Err(ShardDown)` if any worker is gone (the service is
    /// degraded; retry after replacing it).
    pub fn swap_selector(&self, selector: Arc<EstimatorSelector>) -> Result<u64, QueryError> {
        // Hold the broadcast lock across the whole fan-out: concurrent
        // swaps otherwise interleave their per-shard sends and leave
        // shards serving different models under the same epoch.
        let _guard = self.swap_lock.lock().expect("swap lock poisoned");
        let pending: Vec<_> = self
            .shards
            .iter()
            .map(|shard| {
                let (reply, rx) = channel();
                shard
                    .send(ShardMsg::SwapSelector { selector: Arc::clone(&selector), reply })
                    .ok()
                    .map(|()| rx)
            })
            .collect();
        let mut epoch = None;
        for rx in pending {
            let e = rx.and_then(|rx| rx.recv().ok()).ok_or(QueryError::ShardDown)?;
            epoch = Some(epoch.map_or(e, |prev: u64| prev.max(e)));
        }
        epoch.ok_or(QueryError::ShardDown)
    }

    /// Bounded-staleness progress prediction at wall instant `deadline` —
    /// the [`ProgressMonitor::progress_at_deadline`] contract, served from
    /// the owning shard.
    pub fn progress_at_deadline(&self, query: usize, deadline: f64) -> Result<f64, QueryError> {
        self.read(query, |reply| ShardMsg::ProgressAtDeadline { query, deadline, reply })
    }

    /// Queries currently registered across all shards, ascending. All
    /// shards are asked in parallel (send everything, then collect), so
    /// the wait is the slowest shard's queue drain, not the sum of all.
    pub fn registered_queries(&self) -> Vec<usize> {
        let pending: Vec<_> = self
            .shards
            .iter()
            .filter_map(|shard| {
                let (reply, rx) = channel();
                shard.send(ShardMsg::Registered { reply }).ok().map(|()| rx)
            })
            .collect();
        let mut all = Vec::new();
        for rx in pending {
            if let Ok(mut qs) = rx.recv() {
                all.append(&mut qs);
            }
        }
        all.sort_unstable();
        all
    }

    /// Per-shard operation counters, in shard order — the traffic
    /// harness's invariant and interference hook. Each readout is a
    /// round-trip behind that shard's queue (all requests are sent first,
    /// then collected), so a readout taken after the last event was sent
    /// reflects every one of this caller's events ([`ShardStats`]'s
    /// conservation law holds service-wide). `Err(ShardDown)` if any
    /// worker is gone — partial counters would silently break that law.
    pub fn shard_stats(&self) -> Result<Vec<ShardStats>, QueryError> {
        let pending: Vec<_> = self
            .shards
            .iter()
            .map(|shard| {
                let (reply, rx) = channel();
                shard.send(ShardMsg::Stats { reply }).ok().map(|()| rx)
            })
            .collect();
        pending
            .into_iter()
            .map(|rx| rx.and_then(|rx| rx.recv().ok()).ok_or(QueryError::ShardDown))
            .collect()
    }

    /// [`Self::shard_stats`] folded into one service-wide readout.
    pub fn stats(&self) -> Result<ShardStats, QueryError> {
        Ok(self.shard_stats()?.iter().fold(ShardStats::default(), |acc, s| acc.merged(s)))
    }

    /// Drain and stop every shard worker. Messages already queued
    /// (including tapped events still in flight) are processed first;
    /// taps handed out earlier go dead afterwards. Dropping the service
    /// shuts it down the same way.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        for shard in &self.shards {
            let _ = shard.send(ShardMsg::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for MonitorService {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_engine::plan::{OperatorKind, PlanNode};
    use prosel_engine::trace::Snapshot;

    fn scan_plan() -> PhysicalPlan {
        PhysicalPlan {
            nodes: vec![PlanNode {
                op: OperatorKind::TableScan { table: "t".into(), cols: vec![0] },
                children: vec![],
                est_rows: 100.0,
                est_row_bytes: 8.0,
                out_cols: 1,
            }],
            root: 0,
        }
    }

    fn snapshot_event(query: usize, seq: u64, time: f64, k: u64) -> TraceEvent {
        TraceEvent::Snapshot {
            query,
            seq,
            // Tests stamp wall == virtual time (one tick per second).
            wall: time,
            snapshot: Snapshot {
                time,
                k: vec![k].into_boxed_slice(),
                bytes_read: vec![k * 8].into_boxed_slice(),
                bytes_written: vec![0].into_boxed_slice(),
                materialized: vec![0].into_boxed_slice(),
            },
            windows: vec![(1.0, time)].into_boxed_slice(),
        }
    }

    #[test]
    fn routes_registration_ingest_and_reads_by_query_id() {
        let plan = scan_plan();
        let service = MonitorService::fixed(EstimatorKind::Dne, 4);
        assert_eq!(service.n_shards(), 4);
        // Query ids chosen to land on distinct shards (mod 4).
        for q in [0usize, 1, 2, 3, 7] {
            service.register(q, &plan);
        }
        let tap = service.tap();
        for q in [0usize, 1, 2, 3, 7] {
            tap.send(snapshot_event(q, 0, 10.0, 25 * (q as u64 % 4 + 1))).unwrap();
        }
        assert!((service.query_progress(0).unwrap() - 0.25).abs() < 1e-12);
        assert!((service.query_progress(3).unwrap() - 1.0).abs() < 1e-12);
        // Shard of query 7 (7 % 4 == 3) holds both 3 and 7.
        assert_eq!(service.registered_queries(), vec![0, 1, 2, 3, 7]);
        let st = service.status(7).expect("registered");
        assert!(!st.finished);
        assert_eq!(st.pipelines.len(), 1);
        service.ingest(TraceEvent::Finished {
            query: 7,
            wall: 40.0,
            windows: vec![(1.0, 40.0)].into_boxed_slice(),
            total_time: 40.0,
        });
        assert_eq!(service.query_progress(7), Ok(1.0));
        assert_eq!(service.is_finished(7), Ok(true));
        assert_eq!(service.remaining_time(7), Ok(Eta::finished(40.0)));
        service.unregister(7);
        assert_eq!(service.query_progress(7), Err(QueryError::QueryUnknown(7)));
        assert_eq!(service.remaining_time(7), Err(QueryError::QueryUnknown(7)));
        service.shutdown();
    }

    #[test]
    fn duplicate_registration_is_an_error_not_an_abort() {
        let plan = scan_plan();
        let service = MonitorService::fixed(EstimatorKind::Dne, 2);
        assert_eq!(service.try_register(5, &plan), Ok(()));
        assert_eq!(service.try_register(5, &plan), Err(RegisterError::DuplicateQuery(5)));
        // The shard survives and still serves the original registration.
        service.ingest(snapshot_event(5, 0, 10.0, 50));
        assert!((service.query_progress(5).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batch_registration_covers_all_shards_and_reports_duplicates() {
        let plan = scan_plan();
        let service = MonitorService::fixed(EstimatorKind::Dne, 3);
        service.register(4, &plan);
        let queries: Vec<usize> = (0..10).collect();
        let mut results = service.try_register_batch(&queries, &plan);
        results.sort_by_key(|&(q, _)| q);
        for (q, r) in &results {
            match q {
                4 => assert_eq!(*r, Err(RegisterError::DuplicateQuery(4))),
                _ => assert_eq!(*r, Ok(()), "q{q}"),
            }
        }
        assert_eq!(service.registered_queries(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn eta_reads_are_routed_and_typed() {
        let plan = scan_plan();
        let service = MonitorService::fixed(EstimatorKind::Dne, 2);
        service.register(6, &plan);
        assert!(!service.remaining_time(6).expect("registered").is_known());
        service.ingest(snapshot_event(6, 0, 10.0, 25));
        service.ingest(snapshot_event(6, 1, 20.0, 50));
        let eta = service.remaining_time(6).expect("registered");
        assert!(eta.is_known());
        // 0.25 progress per 10 s => 0.025/s; 0.5 left => 20 s, and one
        // speed sample => interval degenerates onto the point.
        assert!((eta.remaining - 20.0).abs() < 1e-9);
        assert_eq!(eta.remaining_lo.to_bits(), eta.remaining.to_bits());
        assert_eq!(eta.remaining_hi.to_bits(), eta.remaining.to_bits());
        let p = service.progress_at_deadline(6, 30.0).expect("registered");
        assert!((p - 0.75).abs() < 1e-9);
        assert_eq!(service.progress_at_deadline(99, 1.0), Err(QueryError::QueryUnknown(99)));
        assert_eq!(service.remaining_time(99), Err(QueryError::QueryUnknown(99)));
        service.shutdown();
    }

    #[test]
    fn swap_selector_broadcasts_and_epochs_stay_aligned() {
        let favoring = crate::shard::test_support::selector_favoring;
        let plan = scan_plan();
        let service = MonitorService::with_selector(
            favoring(EstimatorKind::Dne),
            crate::shard::MonitorConfig::default(),
            3,
        );
        // One query per shard registered under epoch 0.
        for q in 0..3usize {
            service.register(q, &plan);
        }
        let epoch = service.swap_selector(Arc::new(favoring(EstimatorKind::Tgn))).expect("up");
        assert_eq!(epoch, 1);
        // Registrations after the swap land on epoch 1 on every shard;
        // pre-swap queries keep epoch 0.
        for q in 3..6usize {
            service.register(q, &plan);
        }
        for q in 0..3usize {
            assert_eq!(service.query_selector_epoch(q), Ok(0), "q{q}");
            assert_eq!(service.query_selector_epoch(q + 3), Ok(1), "q{}", q + 3);
            let st = service.status(q + 3).expect("registered");
            assert_eq!(st.pipelines[0].estimator, EstimatorKind::Tgn);
        }
        assert_eq!(service.query_selector_epoch(99), Err(QueryError::QueryUnknown(99)));
        // A second swap bumps every shard again.
        assert_eq!(service.swap_selector(Arc::new(favoring(EstimatorKind::Dne))), Ok(2));
        service.shutdown();
    }

    #[test]
    fn staleness_reads_are_routed() {
        use prosel_engine::clock::{Clock, ManualClock};
        let plan = scan_plan();
        let clock = Arc::new(ManualClock::new(0.0));
        let config = crate::shard::MonitorConfig {
            clock: Arc::clone(&clock) as Arc<dyn Clock>,
            ..Default::default()
        };
        let prototype = ProgressMonitor::fixed(EstimatorKind::Dne).with_config(config);
        let service = MonitorService::from_prototype(prototype, 2);
        service.register(4, &plan);
        service.ingest(snapshot_event(4, 0, 10.0, 25));
        service.ingest(snapshot_event(4, 1, 20.0, 50));
        clock.set(26.0);
        let stale = service.remaining_time_with_age(4).expect("registered");
        // 0.025 progress/s, 0.5 left => 20 s from as_of 20.0; age 6.
        assert!((stale.eta.remaining - 20.0).abs() < 1e-9);
        assert!((stale.age - 6.0).abs() < 1e-9);
        assert!((stale.remaining_now() - 14.0).abs() < 1e-9);
        assert_eq!(service.remaining_time_with_age(99), Err(QueryError::QueryUnknown(99)));
        service.shutdown();
    }

    #[test]
    fn harvests_flow_from_all_shards_to_one_sink() {
        use crate::shard::{HarvestConfig, HarvestedQuery};
        let plan = scan_plan();
        let (sink, harvested) = std::sync::mpsc::channel::<HarvestedQuery>();
        let prototype = ProgressMonitor::fixed(EstimatorKind::Dne).with_harvester(
            Arc::new(sink),
            HarvestConfig { label: "svc".into(), min_observations: 2 },
        );
        let service = MonitorService::from_prototype(prototype, 3);
        for q in 0..6usize {
            service.register(q, &plan);
            for seq in 0..3u64 {
                service.ingest(snapshot_event(q, seq, (seq + 1) as f64 * 10.0, 25 * (seq + 1)));
            }
            service.ingest(TraceEvent::Finished {
                query: q,
                wall: 40.0,
                windows: vec![(1.0, 40.0)].into_boxed_slice(),
                total_time: 40.0,
            });
        }
        service.shutdown(); // drains queues, so every harvest is delivered
        let mut got: Vec<usize> = harvested.try_iter().map(|h| h.query).collect();
        got.sort_unstable();
        assert_eq!(got, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn saturated_shards_refuse_admission_with_typed_errors_not_panics() {
        use crate::shard::MonitorConfig;
        let plan = scan_plan();
        // 2 shards × cap 2 = 4 admission slots service-wide.
        let config = MonitorConfig { max_queries: 2, ..Default::default() };
        let prototype = ProgressMonitor::fixed(EstimatorKind::Dne).with_config(config);
        let service = MonitorService::from_prototype(prototype, 2);
        // Flood well past the cap through both admission paths: every
        // over-cap registration must come back as a typed Saturated value
        // and no shard worker may die.
        let queries: Vec<usize> = (0..16).collect();
        let results = service.try_register_batch(&queries, &plan);
        let admitted: Vec<usize> =
            results.iter().filter(|(_, r)| r.is_ok()).map(|&(q, _)| q).collect();
        let saturated = results
            .iter()
            .filter(|(_, r)| matches!(r, Err(RegisterError::Saturated { limit: 2 })))
            .count();
        assert_eq!(admitted.len(), 4);
        assert_eq!(saturated, 12);
        assert_eq!(service.try_register(17, &plan), Err(RegisterError::Saturated { limit: 2 }));
        // The shards survived the flood and still serve admitted queries.
        for &q in &admitted {
            service.ingest(snapshot_event(q, 0, 10.0, 50));
            assert!((service.query_progress(q).unwrap() - 0.5).abs() < 1e-12, "q{q}");
        }
        // Draining a query frees its slot on the owning shard only.
        let freed = admitted[0];
        service.unregister(freed);
        assert_eq!(service.try_register(freed + 2 * service.n_shards(), &plan), Ok(()));
        let stats = service.stats().expect("all shards up");
        assert_eq!(stats.registered, 4);
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.refused, 13);
        service.shutdown();
    }

    #[test]
    fn stats_fold_per_shard_counters_after_the_queues_drain() {
        let plan = scan_plan();
        let service = MonitorService::fixed(EstimatorKind::Dne, 3);
        for q in 0..6usize {
            service.register(q, &plan);
        }
        let tap = service.tap();
        for q in 0..6usize {
            tap.send(snapshot_event(q, 0, 10.0, 25)).unwrap();
        }
        // An event for a query nobody registered: dropped and counted.
        tap.send(snapshot_event(42, 0, 10.0, 25)).unwrap();
        let per_shard = service.shard_stats().expect("all shards up");
        assert_eq!(per_shard.len(), 3);
        let total = service.stats().expect("all shards up");
        // The stats round-trip queues behind the tapped events, so the
        // conservation law is exact at readout time.
        assert_eq!(total.events_ingested + total.events_unroutable, 7);
        assert_eq!(total.events_unroutable, 1);
        assert_eq!((total.registered, total.admitted), (6, 6));
        assert_eq!(total.queries_dropped, 0);
        service.shutdown();
    }

    #[test]
    fn oracle_kinds_are_refused() {
        assert_eq!(
            MonitorService::try_fixed(EstimatorKind::BytesOracle, 2).err(),
            Some(RegisterError::OracleKind(EstimatorKind::BytesOracle))
        );
    }

    #[test]
    fn reads_are_concurrent_with_ingest() {
        // Hammer one service from parallel reader threads while a writer
        // streams events: every read must return a sane value and the
        // final state must be exact.
        let plan = scan_plan();
        let service = std::sync::Arc::new(MonitorService::fixed(EstimatorKind::Dne, 4));
        let n_queries = 32usize;
        for q in 0..n_queries {
            service.register(q, &plan);
        }
        std::thread::scope(|scope| {
            let writer = {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let tap = service.tap();
                    for seq in 0..100u64 {
                        for q in 0..n_queries {
                            let k = seq + 1; // 1% of the 100-row scan per event
                            tap.send(snapshot_event(q, seq, (seq + 1) as f64, k)).unwrap();
                        }
                    }
                })
            };
            for reader in 0..3usize {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    for i in 0..200usize {
                        // Stride across all queries (and thus all shards).
                        let q = (i * 7 + reader) % n_queries;
                        if let Ok(p) = service.query_progress(q) {
                            assert!((0.0..=1.0).contains(&p));
                        }
                    }
                });
            }
            writer.join().unwrap();
        });
        for q in 0..n_queries {
            let p = service.query_progress(q).expect("registered");
            assert!((p - 1.0).abs() < 1e-12, "q{q} final progress {p}");
        }
    }
}
