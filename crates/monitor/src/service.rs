//! The sharded monitor service: N shards as cooperative tasks on a
//! work-stealing runtime, with a wait-free read path.
//!
//! [`MonitorService`] scales the [`ProgressMonitor`] core past one ingest
//! thread. Each shard owns the queries with `query % n_shards == shard`:
//! a plain single-threaded [`ProgressMonitor`] guarded by a mutex, an
//! event queue the tap pushes into, and a **published read snapshot** per
//! registered query. Shards are not threads — they are tasks on a small
//! hand-rolled work-stealing pool ([`crate::runtime`], sized and pinned
//! via [`crate::RuntimeConfig`] inside
//! [`MonitorConfig`](crate::MonitorConfig)); a shard task drains its event
//! queue in batches (amortizing wakeups under saturated ingest) and
//! republishes the affected query's snapshot after every event.
//!
//! **Reads never touch the ingest path.** `query_progress`,
//! `remaining_time`, `progress_at_deadline`, `status`, `stats` and friends
//! are wait-free loads from seqlocked snapshot cells — no channel send, no
//! queueing behind events, no lock shared with ingest. Under a saturated
//! tap the read tail stays flat (the `monitor_scale` bench pins this as
//! `read_p99_under_saturated_ingest`). Writes (registration, unregister,
//! selector swaps) lock the owning shard's core directly; registration
//! quiesces the shard's queue first so the registered-before-first-event
//! contract of [`ProgressMonitor::register`] survives re-ordering-free.
//!
//! Default `remaining_time` folds staleness in ([`Eta::aged`]): a stalled
//! query's countdown keeps shrinking (and pins to 0) instead of freezing
//! at the last accepted speed sample. The event-stream-pure raw answer —
//! what the bit-identity equivalence suites pin — stays available as
//! [`MonitorService::remaining_time_at_last_event`].
//!
//! Dead shards degrade, never lie: a panicking shard task is caught, the
//! shard is marked dead, its queued events are counted as
//! `events_rejected` (the conservation law `ingested + unroutable +
//! rejected == sent` survives the crash), reads for its queries return
//! [`QueryError::ShardDown`], selector swaps report the affected shard ids
//! via [`SwapError`], and the frozen stats snapshot keeps serving.

use crate::eta::{Eta, StaleEta};
use crate::runtime::{Runtime, RuntimeObs, Shared as RuntimeShared};
use crate::shard::{
    PipelineStatus, ProgressMonitor, QueryStatus, QueryView, RegisterError, ShardCounters,
    ShardStats, SwitchEvent,
};
use prosel_core::selection::EstimatorSelector;
use prosel_engine::clock::Clock;
use prosel_engine::plan::PhysicalPlan;
use prosel_engine::trace::{TapSink, TraceEvent, TraceTap};
use prosel_estimators::{EstimatorKind, ONLINE_KINDS};
use prosel_obs::{
    Counter, Histogram, MetricsRegistry, MetricsSnapshot, ObsEvent, ObsOptions, TraceRing,
};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Why a [`MonitorService`] read could not be served.
///
/// The two failure modes are operationally different — an unknown query is
/// the caller's bug (or a completed/unregistered query), a dead shard is a
/// service-health incident — so the read APIs surface them as distinct
/// typed values instead of flattening both into `None` (the read-side
/// mirror of [`RegisterError`]'s non-panicking admission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The query (or the requested pipeline of it) is not registered on
    /// its owning shard: never registered, already unregistered, or
    /// dropped after a corrupt/late-joined stream.
    QueryUnknown(usize),
    /// The shard owning this query is dead (its task panicked) or the
    /// service is shutting down.
    ShardDown,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::QueryUnknown(q) => write!(f, "query {q} is not registered"),
            QueryError::ShardDown => write!(f, "owning shard is dead"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A selector swap reached only part of the service: one or more shards
/// were dead, so the surviving shards now serve the new model while the
/// dead ones are frozen on the old one.
///
/// The swap **is applied** to every surviving shard (new registrations
/// there score with the new model under the bumped epoch); the error makes
/// the partial broadcast visible instead of silently reporting success —
/// the channel design's silent-partial-swap hole. A caller that cannot
/// tolerate mixed models should treat this as a service-health incident
/// (the dead shards need replacing anyway; they also fail every read).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapError {
    /// Shard ids the broadcast could not reach (dead tasks), ascending.
    pub shards: Vec<usize>,
    /// The epoch the surviving shards now serve, if any survived.
    pub epoch: Option<u64>,
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "selector swap missed {} dead shard(s) {:?}", self.shards.len(), self.shards)?;
        match self.epoch {
            Some(e) => write!(f, "; surviving shards serve epoch {e}"),
            None => write!(f, "; no shard survived"),
        }
    }
}

impl std::error::Error for SwapError {}

// ---------------------------------------------------------------------------
// Seqlock: versioned wait-free snapshot cells.
// ---------------------------------------------------------------------------

/// A sequence lock over all-atomic payload fields. Writers (always under
/// the owning shard's core mutex, so mutually exclusive) bump the version
/// to odd, store the payload, and bump to even; readers retry while the
/// version is odd or changed across their payload loads. Readers never
/// block and never write shared state — the read path stays wait-free for
/// any number of concurrent readers, and an ingest burst can at worst make
/// a reader retry a few loads.
struct SeqLock {
    version: AtomicU64,
}

impl SeqLock {
    fn new() -> SeqLock {
        SeqLock { version: AtomicU64::new(0) }
    }

    fn write<R>(&self, f: impl FnOnce() -> R) -> R {
        let v = self.version.load(Ordering::Relaxed);
        self.version.store(v.wrapping_add(1), Ordering::Relaxed);
        // Order the odd-version store before the payload stores.
        fence(Ordering::Release);
        let out = f();
        self.version.store(v.wrapping_add(2), Ordering::Release);
        out
    }

    fn read<R>(&self, f: impl Fn() -> R) -> R {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let out = f();
            // Order the payload loads before the version re-check.
            fence(Ordering::Acquire);
            if self.version.load(Ordering::Relaxed) == v1 {
                return out;
            }
        }
    }
}

fn store_f64(cell: &AtomicU64, value: f64) {
    cell.store(value.to_bits(), Ordering::Relaxed);
}

fn load_f64(cell: &AtomicU64) -> f64 {
    f64::from_bits(cell.load(Ordering::Relaxed))
}

/// `EstimatorKind` has no stable numeric contract, so the snapshot cells
/// store an index into [`ONLINE_KINDS`] (only online kinds can ever be a
/// pipeline's choice — the oracle kinds are refused at construction and
/// selectors only score online candidates).
fn kind_to_code(kind: EstimatorKind) -> usize {
    ONLINE_KINDS.iter().position(|&k| k == kind).expect("pipeline choices are online kinds")
}

fn kind_from_code(code: usize) -> EstimatorKind {
    ONLINE_KINDS[code.min(ONLINE_KINDS.len() - 1)]
}

// ---------------------------------------------------------------------------
// Published snapshots.
// ---------------------------------------------------------------------------

/// Snapshot of one pipeline, inside a [`QuerySlot`]'s seqlock.
struct PipeCell {
    /// Pipeline id (immutable; plans don't change under a registration).
    pipeline: usize,
    /// Index into [`ONLINE_KINDS`] of the estimator currently in charge.
    estimator: AtomicUsize,
    progress: AtomicU64,
    observations: AtomicUsize,
}

/// The published read snapshot of one registered query. Written by the
/// owning shard (under its core mutex) after every ingested event; read
/// wait-free by any thread.
struct QuerySlot {
    /// Selector epoch at registration (immutable for the slot's lifetime).
    epoch: u64,
    seq: SeqLock,
    progress: AtomicU64,
    time: AtomicU64,
    finished: AtomicBool,
    // Raw at-last-event Eta, field by field (f64s as bit patterns).
    eta_as_of: AtomicU64,
    eta_progress: AtomicU64,
    eta_samples: AtomicUsize,
    eta_speed: AtomicU64,
    eta_remaining: AtomicU64,
    eta_lo: AtomicU64,
    eta_hi: AtomicU64,
    pipes: Box<[PipeCell]>,
    /// Switch history (append-only). A mutex, not the seqlock: it is
    /// unbounded, read rarely, and still never touches the ingest path —
    /// the publisher appends only new tail entries while holding the core
    /// mutex, so a reader blocks at most for a short memcpy.
    switches: Mutex<Vec<SwitchEvent>>,
}

impl QuerySlot {
    fn new(view: &QueryView<'_>) -> QuerySlot {
        let slot = QuerySlot {
            epoch: view.epoch,
            seq: SeqLock::new(),
            progress: AtomicU64::new(0),
            time: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            eta_as_of: AtomicU64::new(0),
            eta_progress: AtomicU64::new(0),
            eta_samples: AtomicUsize::new(0),
            eta_speed: AtomicU64::new(0),
            eta_remaining: AtomicU64::new(0),
            eta_lo: AtomicU64::new(0),
            eta_hi: AtomicU64::new(0),
            pipes: view
                .pipes
                .iter()
                .map(|p| PipeCell {
                    pipeline: p.obs.pipeline_id(),
                    estimator: AtomicUsize::new(kind_to_code(p.choice)),
                    progress: AtomicU64::new(0),
                    observations: AtomicUsize::new(0),
                })
                .collect(),
            switches: Mutex::new(Vec::new()),
        };
        slot.publish(view);
        slot
    }

    /// Re-publish from the shard core's current state. Caller holds the
    /// owning shard's core mutex (writer exclusivity).
    fn publish(&self, view: &QueryView<'_>) {
        self.seq.write(|| {
            store_f64(&self.progress, view.progress);
            store_f64(&self.time, view.time);
            self.finished.store(view.finished, Ordering::Relaxed);
            store_f64(&self.eta_as_of, view.eta.as_of);
            store_f64(&self.eta_progress, view.eta.progress);
            self.eta_samples.store(view.eta.samples, Ordering::Relaxed);
            store_f64(&self.eta_speed, view.eta.speed);
            store_f64(&self.eta_remaining, view.eta.remaining);
            store_f64(&self.eta_lo, view.eta.remaining_lo);
            store_f64(&self.eta_hi, view.eta.remaining_hi);
            for (cell, pipe) in self.pipes.iter().zip(view.pipes) {
                cell.estimator.store(kind_to_code(pipe.choice), Ordering::Relaxed);
                let progress =
                    if view.finished { 1.0 } else { pipe.obs.value(pipe.choice).unwrap_or(0.0) };
                store_f64(&cell.progress, progress);
                cell.observations.store(pipe.obs.len(), Ordering::Relaxed);
            }
        });
        let mut switches = self.switches.lock().unwrap_or_else(|e| e.into_inner());
        let seen = switches.len();
        if seen < view.switches.len() {
            switches.extend_from_slice(&view.switches[seen..]);
        }
    }

    fn read_eta(&self) -> Eta {
        self.seq.read(|| Eta {
            as_of: load_f64(&self.eta_as_of),
            progress: load_f64(&self.eta_progress),
            samples: self.eta_samples.load(Ordering::Relaxed),
            speed: load_f64(&self.eta_speed),
            remaining: load_f64(&self.eta_remaining),
            remaining_lo: load_f64(&self.eta_lo),
            remaining_hi: load_f64(&self.eta_hi),
        })
    }

    fn read_status(&self, query: usize) -> QueryStatus {
        self.seq.read(|| QueryStatus {
            query,
            progress: load_f64(&self.progress),
            time: load_f64(&self.time),
            finished: self.finished.load(Ordering::Relaxed),
            pipelines: self
                .pipes
                .iter()
                .map(|cell| PipelineStatus {
                    pipeline: cell.pipeline,
                    estimator: kind_from_code(cell.estimator.load(Ordering::Relaxed)),
                    progress: load_f64(&cell.progress),
                    observations: cell.observations.load(Ordering::Relaxed),
                })
                .collect(),
        })
    }
}

/// Service-level instrumentation: read/registration/swap latency
/// histograms, tap volume, ingest batch sizes. All handles live in the
/// service registry (`service_*` / `tap_*` names); the hot read path
/// touches one counter unconditionally and a clock only on sampled
/// reads.
struct ServiceObs {
    reads_total: Arc<Counter>,
    read_ns: Arc<Histogram>,
    register_ns: Arc<Histogram>,
    swap_ns: Arc<Histogram>,
    /// Events the engine tap handed to the router (counted there — the
    /// engine cannot depend on the obs crate).
    tap_events_total: Arc<Counter>,
    /// Estimated wire bytes of those events ([`TraceEvent::payload_bytes`]).
    tap_bytes_total: Arc<Counter>,
    ingest_batch_len: Arc<Histogram>,
    timing: bool,
    stride: u64,
}

impl ServiceObs {
    fn new(registry: &MetricsRegistry, options: ObsOptions) -> ServiceObs {
        ServiceObs {
            reads_total: registry.counter("service_reads_total"),
            read_ns: registry.histogram("service_read_ns"),
            register_ns: registry.histogram("service_register_ns"),
            swap_ns: registry.histogram("service_swap_ns"),
            tap_events_total: registry.counter("tap_events_total"),
            tap_bytes_total: registry.counter("tap_bytes_total"),
            ingest_batch_len: registry.histogram("service_ingest_batch_len"),
            timing: options.timing,
            stride: options.stride() as u64,
        }
    }

    /// Count one read; start a timer on 1-in-N sampled reads. The
    /// sampling tick is the read counter itself — one `fetch_add` total,
    /// identical to the untimed path, so timing adds no shared-cacheline
    /// traffic to unsampled reads.
    fn read_timer(&self) -> Option<Instant> {
        let tick = self.reads_total.tick();
        if !self.timing {
            return None;
        }
        tick.is_multiple_of(self.stride).then(Instant::now)
    }

    fn read_done(&self, timer: Option<Instant>) {
        if let Some(start) = timer {
            self.read_ns.record(start.elapsed().as_nanos() as u64);
        }
    }

    /// Cold paths (registration, swaps) are timed whenever timing is on.
    fn cold_timer(&self) -> Option<Instant> {
        self.timing.then(Instant::now)
    }
}

// ---------------------------------------------------------------------------
// Shards.
// ---------------------------------------------------------------------------

/// One shard: the single-threaded monitor core, its event queue, and the
/// published snapshots reads are served from.
struct ShardSlot {
    /// Events the tap routed here, awaiting the shard task.
    queue: Mutex<VecDeque<TraceEvent>>,
    /// Events ever accepted into `queue` (monotone).
    enqueued: AtomicU64,
    /// Events removed from `queue` and fully accounted — ingested by the
    /// core, or counted as rejected on a dead shard. `processed ==
    /// enqueued` means the queue is drained (the quiesce condition).
    processed: AtomicU64,
    alive: AtomicBool,
    /// Test hook: make the next drain pass panic mid-ingest (exercising
    /// the real crash path, poisoned core mutex included).
    poison_pill: AtomicBool,
    /// The shard's monitor core. Writers only: the shard task (ingest),
    /// registration, unregister, swaps. Never touched by reads.
    core: Mutex<ProgressMonitor>,
    /// Published per-query read snapshots.
    registry: RwLock<HashMap<usize, Arc<QuerySlot>>>,
    /// The shard core's own counter handles, cloned: the same atomics the
    /// core increments, readable here without its mutex. Single source of
    /// truth — a dead (poisoned-mutex) shard's stats stay readable, and
    /// [`ShardStats`] readouts equal a registry scrape by construction.
    /// The slot (not the core) owns the `events_rejected` increments: the
    /// router and dead-queue sweeps count refusals here.
    counters: ShardCounters,
    /// Quiesce waiters park here; the shard task notifies after each batch.
    drain_sync: Mutex<()>,
    drained: Condvar,
}

impl ShardSlot {
    fn new(core: ProgressMonitor) -> ShardSlot {
        let counters = core.counters();
        ShardSlot {
            queue: Mutex::new(VecDeque::new()),
            enqueued: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            poison_pill: AtomicBool::new(false),
            core: Mutex::new(core),
            registry: RwLock::new(HashMap::new()),
            counters,
            drain_sync: Mutex::new(()),
            drained: Condvar::new(),
        }
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<TraceEvent>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn notify_drained(&self) {
        drop(self.drain_sync.lock().unwrap_or_else(|e| e.into_inner()));
        self.drained.notify_all();
    }

    /// Block until `processed >= target`. Terminates on dead shards too:
    /// every enqueued event is eventually accounted (ingested or
    /// rejected), and the 1ms re-check bounds any missed notify.
    fn wait_processed(&self, target: u64) {
        if self.processed.load(Ordering::Acquire) >= target {
            return;
        }
        let mut guard = self.drain_sync.lock().unwrap_or_else(|e| e.into_inner());
        while self.processed.load(Ordering::Acquire) < target {
            let (g, _) = self
                .drained
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }

    fn read_stats(&self) -> ShardStats {
        self.counters.load()
    }
}

/// State shared by the service handle, the worker pool and the taps.
struct ServiceInner {
    shards: Vec<ShardSlot>,
    /// The serving clock (shared with the prototype's config) — stamps the
    /// staleness fold of [`MonitorService::remaining_time`].
    clock: Arc<dyn Clock>,
    /// [`crate::RuntimeConfig::ingest_batch`], clamped to ≥ 1.
    ingest_batch: usize,
    /// Set by shutdown before the final quiesce: taps refuse new events
    /// (returned to the sender, uncounted) while queued ones still drain.
    stopping: AtomicBool,
    /// Serializes [`MonitorService::swap_selector`] broadcasts: two
    /// concurrent swaps must apply in the same order on every shard, or
    /// shards would serve different models under the same epoch.
    swap_lock: Mutex<()>,
    /// Handle into the worker pool (set once at construction; the runtime
    /// body needs `ServiceInner` and the tap needs the runtime, so the
    /// cycle is tied here).
    runtime: OnceLock<Arc<RuntimeShared>>,
    /// The service's metrics registry: the shards' counters, the
    /// service-level instrumentation and the runtime's counters all
    /// register here — [`MonitorService::metrics`] scrapes it. Taken from
    /// [`crate::MonitorConfig::metrics`] when set, created fresh
    /// otherwise.
    metrics: Arc<MetricsRegistry>,
    /// Control-plane event ring (swap installed/refused, shard panics),
    /// stamped by the service clock.
    ring: TraceRing,
    /// Service-level latency/volume instrumentation.
    obs: ServiceObs,
}

impl ServiceInner {
    fn shard_of(&self, query: usize) -> usize {
        query % self.shards.len()
    }

    /// Push one event onto its owning shard's queue and wake the shard
    /// task. `Err(ev)` returns the event to the caller: the service is
    /// stopping (uncounted, matching the old post-shutdown tap contract)
    /// or the shard is dead (counted in `events_rejected` — the router
    /// must not break the conservation law, satellite of ISSUE 7).
    fn enqueue(&self, ev: TraceEvent) -> Result<u64, TraceEvent> {
        let si = self.shard_of(ev.query());
        let slot = &self.shards[si];
        if !slot.is_alive() {
            slot.counters.events_rejected.inc();
            return Err(ev);
        }
        let target = {
            let mut queue = slot.lock_queue();
            // The stopping check lives *inside* the queue lock: shutdown
            // sets the flag and then cycles every queue lock before its
            // final quiesce, so any push that slips past here is either
            // visible to that quiesce (and drained) or refused.
            if self.stopping.load(Ordering::Acquire) {
                return Err(ev);
            }
            queue.push_back(ev);
            slot.enqueued.fetch_add(1, Ordering::AcqRel) + 1
        };
        if let Some(rt) = self.runtime.get() {
            rt.schedule(si);
        }
        // The shard may have died between the liveness check and the push;
        // its final drain may already have run, so sweep the queue here
        // (idempotent — drains count whatever they pop, exactly once).
        if !slot.is_alive() {
            self.drain_dead(si);
        }
        Ok(target)
    }

    /// Batched [`Self::enqueue`]: group by shard, one queue lock and one
    /// wakeup per shard. Returns the events that could not be accepted.
    fn enqueue_batch(&self, events: Vec<TraceEvent>) -> Vec<TraceEvent> {
        let n = self.shards.len();
        let mut by_shard: Vec<Vec<TraceEvent>> = Vec::new();
        by_shard.resize_with(n, Vec::new);
        let mut returned = Vec::new();
        for ev in events {
            by_shard[self.shard_of(ev.query())].push(ev);
        }
        for (si, batch) in by_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let slot = &self.shards[si];
            if !slot.is_alive() {
                slot.counters.events_rejected.add(batch.len() as u64);
                returned.extend(batch);
                continue;
            }
            let count = batch.len() as u64;
            {
                let mut queue = slot.lock_queue();
                // Same stopping-inside-the-lock protocol as `enqueue`.
                if self.stopping.load(Ordering::Acquire) {
                    returned.extend(batch);
                    continue;
                }
                queue.extend(batch);
                slot.enqueued.fetch_add(count, Ordering::AcqRel);
            }
            if let Some(rt) = self.runtime.get() {
                rt.schedule(si);
            }
            if !slot.is_alive() {
                self.drain_dead(si);
            }
        }
        returned
    }

    /// The shard task body: drain (up to) one batch of events into the
    /// core and republish the touched snapshots. Returns whether more
    /// events are already waiting. Runs on the worker pool; panics are
    /// caught here so the crash is accounted (shard marked dead, events
    /// counted rejected) before the runtime's own catch sees anything.
    fn drain_batch(&self, si: usize) -> bool {
        let slot = &self.shards[si];
        if !slot.is_alive() {
            self.drain_dead(si);
            return false;
        }
        let batch: Vec<TraceEvent> = {
            let mut queue = slot.lock_queue();
            let n = self.ingest_batch.min(queue.len());
            queue.drain(..n).collect()
        };
        if batch.is_empty() && !slot.poison_pill.load(Ordering::Acquire) {
            return false;
        }
        let total = batch.len() as u64;
        if total > 0 {
            self.obs.ingest_batch_len.record(total);
        }
        let done = AtomicU64::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // A poisoned core mutex means an earlier panic escaped without
            // marking the shard dead; treat it as a fresh crash.
            let mut core = slot.core.lock().expect("shard core poisoned");
            if slot.poison_pill.load(Ordering::Acquire) {
                panic!("injected shard panic (test hook)");
            }
            for ev in batch {
                let query = ev.query();
                core.ingest(ev);
                match core.query_view(query) {
                    Some(view) => {
                        let registry = slot.registry.read().unwrap_or_else(|e| e.into_inner());
                        if let Some(qslot) = registry.get(&query) {
                            qslot.publish(&view);
                        }
                    }
                    None => {
                        // Unroutable, or the event triggered a defensive
                        // state drop — retire the published snapshot (if
                        // one exists; probe with the read lock first so a
                        // saturated unroutable stream never takes the
                        // write lock the read path contends on).
                        let published = slot
                            .registry
                            .read()
                            .unwrap_or_else(|e| e.into_inner())
                            .contains_key(&query);
                        if published {
                            slot.registry.write().unwrap_or_else(|e| e.into_inner()).remove(&query);
                        }
                    }
                }
                // Per-event accounting (not per batch): if a later event
                // in this batch panics the core, events already ingested
                // stay counted as ingested — the crash bookkeeping below
                // only rejects the genuinely unprocessed tail. (No stats
                // publish step: the core increments the same shared
                // atomics the read path loads.)
                done.fetch_add(1, Ordering::Relaxed);
                slot.processed.fetch_add(1, Ordering::AcqRel);
            }
        }));
        if outcome.is_err() {
            self.kill_shard(si, total - done.load(Ordering::Relaxed));
        }
        slot.notify_drained();
        slot.is_alive() && !slot.lock_queue().is_empty()
    }

    /// Mark a shard dead and account the events it can no longer ingest:
    /// `unprocessed` from the batch that crashed, plus everything still
    /// queued. Every one lands in `events_rejected` *and* `processed` so
    /// quiesce waiters and the conservation law both stay exact.
    fn kill_shard(&self, si: usize, unprocessed: u64) {
        let slot = &self.shards[si];
        slot.alive.store(false, Ordering::Release);
        self.ring.emit(ObsEvent::ShardPanic { shard: si });
        if unprocessed > 0 {
            slot.counters.events_rejected.add(unprocessed);
            slot.processed.fetch_add(unprocessed, Ordering::AcqRel);
        }
        self.drain_dead(si);
    }

    /// Sweep a dead shard's queue, counting the swept events as rejected.
    fn drain_dead(&self, si: usize) {
        let slot = &self.shards[si];
        let n = {
            let mut queue = slot.lock_queue();
            let n = queue.len() as u64;
            queue.clear();
            n
        };
        if n > 0 {
            slot.counters.events_rejected.add(n);
            slot.processed.fetch_add(n, Ordering::AcqRel);
        }
        slot.notify_drained();
    }

    /// Wait until every event enqueued on `si` so far is accounted.
    fn quiesce_shard(&self, si: usize) {
        let slot = &self.shards[si];
        let target = slot.enqueued.load(Ordering::Acquire);
        slot.wait_processed(target);
    }

    fn quiesce(&self) {
        for si in 0..self.shards.len() {
            self.quiesce_shard(si);
        }
    }
}

/// Routes each [`TraceEvent`] to the shard owning its query — the sink
/// behind [`MonitorService::tap`]. One queue push per event (one per shard
/// per batch via [`TapSink::send_batch`]), no broadcast. A dead shard's
/// events come back as `Err` **and** are counted in
/// [`ShardStats::events_rejected`] — the router refuses cleanly instead of
/// panicking on the dead worker's channel like the old design did.
struct ShardRouter {
    inner: Arc<ServiceInner>,
}

impl TapSink for ShardRouter {
    fn send(&self, ev: TraceEvent) -> Result<(), TraceEvent> {
        // Tap volume is counted here, not in the engine: the engine
        // cannot depend on the obs crate, and the router sees every
        // event the tap emits (accepted or refused).
        self.inner.obs.tap_events_total.inc();
        self.inner.obs.tap_bytes_total.add(ev.payload_bytes() as u64);
        self.inner.enqueue(ev).map(|_| ())
    }

    fn send_batch(&self, events: Vec<TraceEvent>) -> Result<(), Vec<TraceEvent>> {
        self.inner.obs.tap_events_total.add(events.len() as u64);
        let bytes: usize = events.iter().map(TraceEvent::payload_bytes).sum();
        self.inner.obs.tap_bytes_total.add(bytes as u64);
        let returned = self.inner.enqueue_batch(events);
        if returned.is_empty() {
            Ok(())
        } else {
            Err(returned)
        }
    }
}

/// Sharded, concurrent-safe progress monitor service with a wait-free read
/// path. See the module docs for the architecture and the crate docs for
/// when to prefer the plain [`ProgressMonitor`].
pub struct MonitorService {
    inner: Arc<ServiceInner>,
    runtime: Runtime,
}

impl MonitorService {
    /// Service with one fixed estimator on every pipeline, `n_shards`
    /// shard tasks (clamped to ≥ 1).
    ///
    /// Documented legacy: prefer
    /// [`MonitorBuilder::fixed`](crate::MonitorBuilder::fixed)`.shards(n).build_service()`,
    /// which also carries config, harvester and checkpoint-restore. Kept
    /// as a thin delegate for existing embeds.
    ///
    /// # Panics
    /// Panics for the oracle kinds, like [`ProgressMonitor::fixed`]; use
    /// [`Self::try_fixed`] to handle the error as a value.
    pub fn fixed(kind: EstimatorKind, n_shards: usize) -> MonitorService {
        Self::try_fixed(kind, n_shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`Self::fixed`]. Documented legacy — prefer
    /// [`crate::MonitorBuilder`].
    pub fn try_fixed(
        kind: EstimatorKind,
        n_shards: usize,
    ) -> Result<MonitorService, RegisterError> {
        Ok(Self::spawn(ProgressMonitor::try_fixed(kind)?, n_shards))
    }

    /// Service with a trained selector (shared by every shard): static
    /// selection at registration, dynamic re-selection at the configured
    /// cadence — exactly the [`ProgressMonitor::with_selector`] behavior,
    /// scaled across `n_shards` shard tasks. Accepts an owned selector or
    /// an `Arc` (shared with a learning loop). Documented legacy — prefer
    /// [`MonitorBuilder::with_selector`](crate::MonitorBuilder::with_selector).
    pub fn with_selector(
        selector: impl Into<Arc<EstimatorSelector>>,
        config: crate::shard::MonitorConfig,
        n_shards: usize,
    ) -> MonitorService {
        Self::spawn(ProgressMonitor::with_selector(selector, config), n_shards)
    }

    /// Scale an arbitrarily configured [`ProgressMonitor`] across
    /// `n_shards` shard tasks: every shard is a fork of `prototype` (same
    /// policy, config, selector epoch and — notably — harvest sink, so a
    /// service built from a harvesting prototype feeds one learning loop
    /// from all shards). The prototype's own registered queries are *not*
    /// carried over; forks start empty. The prototype's
    /// [`crate::RuntimeConfig`] (inside its [`crate::MonitorConfig`])
    /// sizes and pins the worker pool. Documented legacy — prefer
    /// [`crate::MonitorBuilder`], which builds the prototype for you.
    pub fn from_prototype(prototype: ProgressMonitor, n_shards: usize) -> MonitorService {
        Self::spawn(prototype, n_shards)
    }

    pub(crate) fn spawn(mut prototype: ProgressMonitor, n_shards: usize) -> MonitorService {
        let n = n_shards.max(1);
        // Every service has a scrapeable registry: the configured one, or
        // a private one when the caller supplied none. Shard forks pick it
        // up through the prototype's config.
        let metrics = prototype.ensure_metrics();
        let obs_options = prototype.config().obs;
        let runtime_config = prototype.config().runtime.clone();
        let clock = Arc::clone(&prototype.config().clock);
        let shards = (0..n).map(|si| ShardSlot::new(prototype.fork(si))).collect();
        let obs = ServiceObs::new(&metrics, obs_options);
        let ring = TraceRing::new(256, Arc::clone(&clock));
        let runtime_obs = Arc::new(RuntimeObs::from_registry(&metrics));
        let inner = Arc::new(ServiceInner {
            shards,
            clock,
            ingest_batch: runtime_config.ingest_batch.max(1),
            stopping: AtomicBool::new(false),
            swap_lock: Mutex::new(()),
            runtime: OnceLock::new(),
            metrics,
            ring,
            obs,
        });
        let body: Arc<dyn Fn(usize) -> bool + Send + Sync> = {
            let inner = Arc::clone(&inner);
            Arc::new(move |task| inner.drain_batch(task))
        };
        let runtime = Runtime::spawn_observed(n, &runtime_config, body, Some(runtime_obs));
        let _ = inner.runtime.set(runtime.shared());
        MonitorService { inner, runtime }
    }

    /// Number of shards (tasks, not threads — see [`Self::n_workers`]).
    pub fn n_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Number of pool workers executing the shard tasks.
    pub fn n_workers(&self) -> usize {
        self.runtime.worker_count()
    }

    /// Block until every event enqueued so far (tap or
    /// [`Self::ingest`]) has been drained into shard state — the explicit
    /// read-your-writes barrier. Reads are wait-free snapshots and do
    /// **not** queue behind ingest, so a caller that just finished a
    /// tapped run quiesces once before asserting on final state.
    /// Terminates even with dead shards (their events are accounted as
    /// rejected).
    pub fn quiesce(&self) {
        self.inner.quiesce();
    }

    /// Register a query with its owning shard **before it runs** (the
    /// [`ProgressMonitor::register`] contract, routed). Quiesces the
    /// owning shard's queue first, so earlier tapped events for this id
    /// (unroutable by contract) cannot land after the registration and
    /// corrupt it.
    ///
    /// # Panics
    /// Panics if `query` is already registered; use [`Self::try_register`]
    /// to handle the error as a value.
    pub fn register(&self, query: usize, plan: impl Into<Arc<PhysicalPlan>>) {
        self.try_register(query, plan).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Non-panicking [`Self::register`]: duplicate ids come back as
    /// [`RegisterError::DuplicateQuery`], a dead shard as
    /// [`RegisterError::ShardDown`]. Accepts `&PhysicalPlan`, an owned
    /// plan, or `Arc<PhysicalPlan>` (no deep clone for shared plans).
    pub fn try_register(
        &self,
        query: usize,
        plan: impl Into<Arc<PhysicalPlan>>,
    ) -> Result<(), RegisterError> {
        let timer = self.inner.obs.cold_timer();
        let plan: Arc<PhysicalPlan> = plan.into();
        let si = self.inner.shard_of(query);
        let slot = &self.inner.shards[si];
        if !slot.is_alive() {
            return Err(RegisterError::ShardDown);
        }
        self.inner.quiesce_shard(si);
        let mut core = slot.core.lock().map_err(|_| RegisterError::ShardDown)?;
        let result = core.try_register(query, plan);
        if result.is_ok() {
            let view = core.query_view(query).expect("query registered above");
            slot.registry
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .insert(query, Arc::new(QuerySlot::new(&view)));
        }
        if let Some(start) = timer {
            self.inner.obs.register_ns.record(start.elapsed().as_nanos() as u64);
        }
        result
    }

    /// Register many queries against one plan with **one quiesce + core
    /// lock per shard** instead of one per query — the admission path for
    /// bulk workloads. Returns one `(query, result)` pair per input query;
    /// queries owned by a dead shard report [`RegisterError::ShardDown`].
    pub fn try_register_batch(
        &self,
        queries: &[usize],
        plan: &PhysicalPlan,
    ) -> Vec<(usize, Result<(), RegisterError>)> {
        let plan = Arc::new(plan.clone());
        let n = self.inner.shards.len();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &q in queries {
            by_shard[q % n].push(q);
        }
        let mut out = Vec::with_capacity(queries.len());
        for (si, queries) in by_shard.into_iter().enumerate() {
            if queries.is_empty() {
                continue;
            }
            let slot = &self.inner.shards[si];
            if !slot.is_alive() {
                out.extend(queries.into_iter().map(|q| (q, Err(RegisterError::ShardDown))));
                continue;
            }
            self.inner.quiesce_shard(si);
            let Ok(mut core) = slot.core.lock() else {
                out.extend(queries.into_iter().map(|q| (q, Err(RegisterError::ShardDown))));
                continue;
            };
            for q in queries {
                let result = core.try_register(q, Arc::clone(&plan));
                if result.is_ok() {
                    let view = core.query_view(q).expect("query registered above");
                    slot.registry
                        .write()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(q, Arc::new(QuerySlot::new(&view)));
                }
                out.push((q, result));
            }
        }
        out
    }

    /// Drop a query's state on its owning shard. Unknown ids come back as
    /// [`QueryError::QueryUnknown`]; a dead owning shard as
    /// [`QueryError::ShardDown`] (its state is frozen and unreachable).
    pub fn unregister(&self, query: usize) -> Result<(), QueryError> {
        let si = self.inner.shard_of(query);
        let slot = &self.inner.shards[si];
        if !slot.is_alive() {
            return Err(QueryError::ShardDown);
        }
        // Quiesce first: events for this id already in the queue belong to
        // the registration being dropped and must drain into it, not into
        // the unroutable bucket of a later re-registration.
        self.inner.quiesce_shard(si);
        let mut core = slot.core.lock().map_err(|_| QueryError::ShardDown)?;
        let result = core.unregister(query);
        slot.registry.write().unwrap_or_else(|e| e.into_inner()).remove(&query);
        result
    }

    /// A [`TraceTap`] that fans the engine's event stream out to the
    /// owning shards — pass it to [`prosel_engine::run_plan_tapped`] /
    /// [`prosel_engine::run_concurrent_tapped`]. Each event is routed to
    /// exactly one shard; cloning the tap shares the same service. The
    /// sink supports [`TapSink::send_batch`] (one queue lock + one wakeup
    /// per shard per batch) for writers that buffer.
    pub fn tap(&self) -> TraceTap {
        TraceTap::from_sink(Arc::new(ShardRouter { inner: Arc::clone(&self.inner) }))
    }

    /// Ingest one event and wait until the owning shard has drained it —
    /// read-your-writes for single-threaded callers (a subsequent read
    /// observes this event). Events for dead shards are counted as
    /// rejected and dropped, matching the old fire-and-forget contract of
    /// ignoring send failures. For fire-and-forget streaming use
    /// [`Self::tap`].
    pub fn ingest(&self, ev: TraceEvent) {
        let si = self.inner.shard_of(ev.query());
        if let Ok(target) = self.inner.enqueue(ev) {
            self.inner.shards[si].wait_processed(target);
        }
    }

    /// Look up the published snapshot of `query`. Wait-free apart from the
    /// registry read lock (held for a hash probe; writers touch it only at
    /// register/unregister/drop, never per event).
    fn slot(&self, query: usize) -> Result<Arc<QuerySlot>, QueryError> {
        let shard = &self.inner.shards[self.inner.shard_of(query)];
        if !shard.is_alive() {
            return Err(QueryError::ShardDown);
        }
        let registry = shard.registry.read().unwrap_or_else(|e| e.into_inner());
        registry.get(&query).cloned().ok_or(QueryError::QueryUnknown(query))
    }

    /// Estimated progress of `query` in [0, 1] — the
    /// [`ProgressMonitor::query_progress`] contract, served from the
    /// published snapshot (wait-free; never queues behind ingest).
    /// Unregistered queries and dead shards come back as distinct
    /// [`QueryError`] values.
    pub fn query_progress(&self, query: usize) -> Result<f64, QueryError> {
        let timer = self.inner.obs.read_timer();
        let out = self.slot(query).map(|slot| slot.seq.read(|| load_f64(&slot.progress)));
        self.inner.obs.read_done(timer);
        out
    }

    /// Latest progress estimate of one pipeline.
    pub fn pipeline_progress(&self, query: usize, pipeline: usize) -> Result<f64, QueryError> {
        let slot = self.slot(query)?;
        let cell = slot.pipes.get(pipeline).ok_or(QueryError::QueryUnknown(query))?;
        Ok(slot.seq.read(|| load_f64(&cell.progress)))
    }

    /// Full live status of one query.
    pub fn status(&self, query: usize) -> Result<QueryStatus, QueryError> {
        let timer = self.inner.obs.read_timer();
        let out = self.slot(query).map(|slot| slot.read_status(query));
        self.inner.obs.read_done(timer);
        out
    }

    /// Has the engine reported this query's termination?
    pub fn is_finished(&self, query: usize) -> Result<bool, QueryError> {
        let slot = self.slot(query)?;
        Ok(slot.seq.read(|| slot.finished.load(Ordering::Relaxed)))
    }

    /// The estimator-switch history of a query (owned copy).
    pub fn switch_history(&self, query: usize) -> Result<Vec<SwitchEvent>, QueryError> {
        let slot = self.slot(query)?;
        let switches = slot.switches.lock().unwrap_or_else(|e| e.into_inner());
        Ok(switches.clone())
    }

    /// Wall-clock remaining-time answer for `query` — the
    /// [`ProgressMonitor::remaining_time`] contract: the at-last-event ETA
    /// **with staleness folded in** ([`Eta::aged`] against the service's
    /// configured clock), so a stalled query's countdown keeps shrinking
    /// and pins to 0 instead of freezing at the last accepted speed
    /// sample. Served wait-free from the published snapshot. The raw
    /// event-stream-pure variant is
    /// [`Self::remaining_time_at_last_event`].
    pub fn remaining_time(&self, query: usize) -> Result<Eta, QueryError> {
        Ok(self.remaining_time_at_last_event(query)?.aged(self.inner.clock.now()))
    }

    /// [`Self::remaining_time`] without the staleness fold: point +
    /// interval ETA exactly as of the latest accepted event, a pure
    /// function of the ingested stream (bit-deterministic under a manual
    /// clock — the equivalence suites pin service-vs-monitor bit-identity
    /// on this variant).
    pub fn remaining_time_at_last_event(&self, query: usize) -> Result<Eta, QueryError> {
        let timer = self.inner.obs.read_timer();
        let out = self.slot(query).map(|slot| slot.read_eta());
        self.inner.obs.read_done(timer);
        out
    }

    /// [`Self::remaining_time_at_last_event`] plus its staleness: the raw
    /// [`Eta`] paired with how far the serving clock has advanced past
    /// [`Eta::as_of`] — the [`ProgressMonitor::remaining_time_with_age`]
    /// contract, wait-free.
    pub fn remaining_time_with_age(&self, query: usize) -> Result<StaleEta, QueryError> {
        let eta = self.remaining_time_at_last_event(query)?;
        Ok(StaleEta::at(eta, self.inner.clock.now()))
    }

    /// The selector epoch `query` was registered under.
    pub fn query_selector_epoch(&self, query: usize) -> Result<u64, QueryError> {
        Ok(self.slot(query)?.epoch)
    }

    /// Bounded-staleness progress prediction at wall instant `deadline` —
    /// the [`ProgressMonitor::progress_at_deadline`] contract, recomputed
    /// bit-identically from the published ETA snapshot (the snapshot
    /// carries the tracker's latest sample and end-to-end speed, which is
    /// everything [`crate::SpeedTracker::progress_at`] consults).
    pub fn progress_at_deadline(&self, query: usize, deadline: f64) -> Result<f64, QueryError> {
        let timer = self.inner.obs.read_timer();
        let out = self.progress_at_deadline_inner(query, deadline);
        self.inner.obs.read_done(timer);
        out
    }

    fn progress_at_deadline_inner(&self, query: usize, deadline: f64) -> Result<f64, QueryError> {
        let slot = self.slot(query)?;
        Ok(slot.seq.read(|| {
            if slot.finished.load(Ordering::Relaxed) {
                return 1.0;
            }
            let samples = slot.eta_samples.load(Ordering::Relaxed);
            if samples == 0 {
                return 0.0;
            }
            let as_of = load_f64(&slot.eta_as_of);
            let progress = load_f64(&slot.eta_progress);
            if !deadline.is_finite() || deadline <= as_of {
                return progress;
            }
            if samples < 2 {
                return progress;
            }
            let speed = load_f64(&slot.eta_speed);
            (progress + speed * (deadline - as_of)).clamp(0.0, 1.0)
        }))
    }

    /// Hot-swap `selector` into **every live shard** and return the new
    /// selector epoch (identical across shards: swaps are serialized
    /// against each other and applied under each shard's core lock). New
    /// registrations anywhere in the service pick up the new model;
    /// queries already registered keep the selector captured at their
    /// registration — an in-flight query's answers are bit-unchanged by a
    /// swap.
    ///
    /// With dead shards the swap still applies to every survivor, but
    /// comes back as [`SwapError`] naming the shards it missed — a partial
    /// broadcast must be visible (the survivors serve the new model, the
    /// dead shards are frozen on the old one), never a silent `Ok`.
    pub fn swap_selector(&self, selector: Arc<EstimatorSelector>) -> Result<u64, SwapError> {
        let timer = self.inner.obs.cold_timer();
        let _guard = self.inner.swap_lock.lock().unwrap_or_else(|e| e.into_inner());
        let mut dead = Vec::new();
        let mut epoch: Option<u64> = None;
        for (si, slot) in self.inner.shards.iter().enumerate() {
            if !slot.is_alive() {
                dead.push(si);
                continue;
            }
            match slot.core.lock() {
                Ok(mut core) => {
                    let e = core.swap_selector(Arc::clone(&selector));
                    epoch = Some(epoch.map_or(e, |prev| prev.max(e)));
                }
                Err(_) => dead.push(si),
            }
        }
        if let Some(start) = timer {
            self.inner.obs.swap_ns.record(start.elapsed().as_nanos() as u64);
        }
        if dead.is_empty() {
            let epoch = epoch.expect("a service always has ≥ 1 shard");
            self.inner.ring.emit(ObsEvent::SwapInstalled { epoch });
            Ok(epoch)
        } else {
            self.inner.ring.emit(ObsEvent::SwapRefused { dead_shards: dead.len() });
            Err(SwapError { shards: dead, epoch })
        }
    }

    /// Queries currently registered across all shards, ascending.
    /// Quiesces first so defensive drops from already-enqueued events are
    /// reflected (the admin-API mirror of the old FIFO round-trip).
    pub fn registered_queries(&self) -> Vec<usize> {
        self.inner.quiesce();
        let mut all = Vec::new();
        for slot in &self.inner.shards {
            let registry = slot.registry.read().unwrap_or_else(|e| e.into_inner());
            all.extend(registry.keys().copied());
        }
        all.sort_unstable();
        all
    }

    /// Per-shard operation counters, in shard order — the traffic
    /// harness's invariant and interference hook. Wait-free: served from
    /// each shard's published stats snapshot (republished after every
    /// event), so it never queues behind ingest; call [`Self::quiesce`]
    /// first when the readout must reflect every event already sent. Dead
    /// shards serve their counters frozen at the crash plus a live
    /// `events_rejected`, so the conservation law `ingested + unroutable +
    /// rejected == sent` stays exact service-wide — which is why this
    /// cannot fail: the `Result` is kept for API stability and is always
    /// `Ok`.
    pub fn shard_stats(&self) -> Result<Vec<ShardStats>, QueryError> {
        Ok(self.inner.shards.iter().map(ShardSlot::read_stats).collect())
    }

    /// [`Self::shard_stats`] folded into one service-wide readout.
    pub fn stats(&self) -> Result<ShardStats, QueryError> {
        Ok(self.shard_stats()?.iter().fold(ShardStats::default(), |acc, s| acc.merged(s)))
    }

    /// The service's metrics registry: every shard's counters
    /// (`monitor_shard<i>_*`), the service instrumentation (`service_*`,
    /// `tap_*`) and the runtime's scheduler counters (`runtime_*`) all
    /// live here. The same registry the caller passed via
    /// [`crate::MonitorConfig::metrics`], or a service-private one.
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.inner.metrics
    }

    /// A point-in-time scrape of [`Self::metrics_registry`] — diffable
    /// ([`MetricsSnapshot::diff`]) for per-interval rates, and consistent
    /// with [`Self::shard_stats`] by construction (same atomics).
    /// Wait-free for the hot paths; the scrape itself takes the registry
    /// mutex briefly.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// [`Self::metrics`] rendered in the strict checksummed text
    /// exposition format ([`MetricsSnapshot::render_text`]).
    pub fn render_text(&self) -> String {
        self.metrics().render_text()
    }

    /// The service's control-plane trace ring: swap installs/refusals and
    /// shard panics, stamped by the service clock. Cloning shares the
    /// buffer — a caller can hand the clone to a
    /// [`prosel_obs::TraceRing`]-aware consumer.
    pub fn trace_ring(&self) -> &TraceRing {
        &self.inner.ring
    }

    /// Per-shard checkpointable state, in shard order: the selector epoch
    /// and the monotone counters, for persisting via
    /// [`HarvestState::to_text`](crate::HarvestState::to_text) and
    /// re-seating through
    /// [`MonitorBuilder::restore`](crate::MonitorBuilder::restore).
    /// Quiesces first so the snapshot reflects every event already sent.
    /// Dead shards report their state frozen at the crash.
    pub fn harvest_states(&self) -> Vec<crate::HarvestState> {
        self.inner.quiesce();
        self.inner
            .shards
            .iter()
            .map(|slot| {
                let core = slot.core.lock().unwrap_or_else(|e| e.into_inner());
                core.harvest_state()
            })
            .collect()
    }

    /// Re-seat checkpointed per-shard state (builder restore path). Must
    /// run before any registration; one state per shard, in shard order.
    pub(crate) fn restore_harvest_states(
        &self,
        states: &[crate::HarvestState],
    ) -> Result<(), crate::MonitorError> {
        if states.len() != self.inner.shards.len() {
            return Err(crate::MonitorError::Restore(format!(
                "{} checkpointed shard state(s) for a {}-shard service",
                states.len(),
                self.inner.shards.len()
            )));
        }
        for (slot, state) in self.inner.shards.iter().zip(states) {
            let mut core = slot.core.lock().map_err(|_| {
                crate::MonitorError::Restore("shard died during restore".to_string())
            })?;
            core.restore_harvest_state(state);
        }
        Ok(())
    }

    /// Deliberately crash one shard task — test hook for the crash-path
    /// suites (dead-shard reads, partial swaps, conservation under
    /// failure). Sets a poison pill, schedules the shard, and waits until
    /// the task has panicked through the real ingest path (poisoning the
    /// core mutex exactly like an organic crash). No-op on an
    /// already-dead shard.
    #[doc(hidden)]
    pub fn inject_shard_panic(&self, shard: usize) {
        let slot = &self.inner.shards[shard % self.inner.shards.len()];
        if !slot.is_alive() {
            return;
        }
        slot.poison_pill.store(true, Ordering::Release);
        if let Some(rt) = self.inner.runtime.get() {
            rt.schedule(shard % self.inner.shards.len());
        }
        while slot.is_alive() {
            std::thread::yield_now();
        }
    }

    /// Drain and stop the service. Events already enqueued (including
    /// tapped events still in flight) are processed first; taps handed out
    /// earlier refuse new events afterwards. Dropping the service shuts it
    /// down the same way.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Refuse new tap events, then drain what's already queued, then
        // stop the pool (its own shutdown also runs queued tasks dry).
        self.inner.stopping.store(true, Ordering::Release);
        // Cycle every queue lock: a racing enqueue either completed its
        // push before this barrier (so the quiesce below sees and drains
        // it while the workers are still up) or takes the lock after it
        // and observes `stopping` — no event can slip in unprocessed
        // between the quiesce and the pool teardown.
        for slot in &self.inner.shards {
            drop(slot.lock_queue());
        }
        self.inner.quiesce();
        self.runtime.stop();
    }
}

impl Drop for MonitorService {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosel_engine::plan::{OperatorKind, PlanNode};
    use prosel_engine::trace::Snapshot;

    fn scan_plan() -> PhysicalPlan {
        PhysicalPlan {
            nodes: vec![PlanNode {
                op: OperatorKind::TableScan { table: "t".into(), cols: vec![0] },
                children: vec![],
                est_rows: 100.0,
                est_row_bytes: 8.0,
                out_cols: 1,
            }],
            root: 0,
        }
    }

    fn snapshot_event(query: usize, seq: u64, time: f64, k: u64) -> TraceEvent {
        TraceEvent::Snapshot {
            query,
            seq,
            // Tests stamp wall == virtual time (one tick per second).
            wall: time,
            snapshot: Snapshot {
                time,
                k: vec![k].into_boxed_slice(),
                bytes_read: vec![k * 8].into_boxed_slice(),
                bytes_written: vec![0].into_boxed_slice(),
                materialized: vec![0].into_boxed_slice(),
            },
            windows: vec![(1.0, time)].into_boxed_slice(),
        }
    }

    #[test]
    fn routes_registration_ingest_and_reads_by_query_id() {
        let plan = scan_plan();
        let service = MonitorService::fixed(EstimatorKind::Dne, 4);
        assert_eq!(service.n_shards(), 4);
        assert!(service.n_workers() >= 1);
        // Query ids chosen to land on distinct shards (mod 4).
        for q in [0usize, 1, 2, 3, 7] {
            service.register(q, &plan);
        }
        let tap = service.tap();
        for q in [0usize, 1, 2, 3, 7] {
            tap.send(snapshot_event(q, 0, 10.0, 25 * (q as u64 % 4 + 1))).unwrap();
        }
        // Reads are wait-free snapshots: quiesce is the read-your-writes
        // barrier after tap sends (ingest() below needs none).
        service.quiesce();
        assert!((service.query_progress(0).unwrap() - 0.25).abs() < 1e-12);
        assert!((service.query_progress(3).unwrap() - 1.0).abs() < 1e-12);
        // Shard of query 7 (7 % 4 == 3) holds both 3 and 7.
        assert_eq!(service.registered_queries(), vec![0, 1, 2, 3, 7]);
        let st = service.status(7).expect("registered");
        assert!(!st.finished);
        assert_eq!(st.pipelines.len(), 1);
        service.ingest(TraceEvent::Finished {
            query: 7,
            wall: 40.0,
            windows: vec![(1.0, 40.0)].into_boxed_slice(),
            total_time: 40.0,
        });
        assert_eq!(service.query_progress(7), Ok(1.0));
        assert_eq!(service.is_finished(7), Ok(true));
        // Staleness folding keeps a finished query's ETA all-zero, so the
        // exact comparison survives the default read path.
        assert_eq!(service.remaining_time(7), Ok(Eta::finished(40.0)));
        service.unregister(7).unwrap();
        assert_eq!(service.query_progress(7), Err(QueryError::QueryUnknown(7)));
        assert_eq!(service.remaining_time(7), Err(QueryError::QueryUnknown(7)));
        service.shutdown();
    }

    #[test]
    fn delta_events_route_and_advance_progress_like_snapshots() {
        use prosel_engine::trace::{CounterKind, CounterUpdate};
        let plan = scan_plan();
        let service = MonitorService::fixed(EstimatorKind::Dne, 2);
        service.register(6, &plan);
        // Full baseline, then a sparse delta standing for snapshot seq 1.
        service.ingest(snapshot_event(6, 0, 10.0, 25));
        service.ingest(TraceEvent::Delta {
            query: 6,
            seq: 1,
            wall: 20.0,
            time: 20.0,
            changes: Box::new([
                CounterUpdate { node: 0, counter: CounterKind::GetNext, value: 50 },
                CounterUpdate { node: 0, counter: CounterKind::BytesRead, value: 400 },
            ]),
            window_updates: Box::new([(0, (1.0, 20.0))]),
        });
        assert!((service.query_progress(6).unwrap() - 0.5).abs() < 1e-12);
        service.shutdown();
    }

    #[test]
    fn duplicate_registration_is_an_error_not_an_abort() {
        let plan = scan_plan();
        let service = MonitorService::fixed(EstimatorKind::Dne, 2);
        assert_eq!(service.try_register(5, &plan), Ok(()));
        assert_eq!(service.try_register(5, &plan), Err(RegisterError::DuplicateQuery(5)));
        // The shard survives and still serves the original registration.
        service.ingest(snapshot_event(5, 0, 10.0, 50));
        assert!((service.query_progress(5).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batch_registration_covers_all_shards_and_reports_duplicates() {
        let plan = scan_plan();
        let service = MonitorService::fixed(EstimatorKind::Dne, 3);
        service.register(4, &plan);
        let queries: Vec<usize> = (0..10).collect();
        let mut results = service.try_register_batch(&queries, &plan);
        results.sort_by_key(|&(q, _)| q);
        for (q, r) in &results {
            match q {
                4 => assert_eq!(*r, Err(RegisterError::DuplicateQuery(4))),
                _ => assert_eq!(*r, Ok(()), "q{q}"),
            }
        }
        assert_eq!(service.registered_queries(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn eta_reads_are_routed_and_typed() {
        let plan = scan_plan();
        let service = MonitorService::fixed(EstimatorKind::Dne, 2);
        service.register(6, &plan);
        assert!(!service.remaining_time(6).expect("registered").is_known());
        service.ingest(snapshot_event(6, 0, 10.0, 25));
        service.ingest(snapshot_event(6, 1, 20.0, 50));
        // The raw at-last-event variant is the bit-exact one.
        let eta = service.remaining_time_at_last_event(6).expect("registered");
        assert!(eta.is_known());
        // 0.25 progress per 10 s => 0.025/s; 0.5 left => 20 s, and one
        // speed sample => interval degenerates onto the point.
        assert!((eta.remaining - 20.0).abs() < 1e-9);
        assert_eq!(eta.remaining_lo.to_bits(), eta.remaining.to_bits());
        assert_eq!(eta.remaining_hi.to_bits(), eta.remaining.to_bits());
        // The default path folds staleness: never larger than raw, same
        // provenance.
        let folded = service.remaining_time(6).expect("registered");
        assert!(folded.remaining <= eta.remaining);
        assert_eq!(folded.as_of, eta.as_of);
        let p = service.progress_at_deadline(6, 30.0).expect("registered");
        assert!((p - 0.75).abs() < 1e-9);
        assert_eq!(service.progress_at_deadline(99, 1.0), Err(QueryError::QueryUnknown(99)));
        assert_eq!(service.remaining_time(99), Err(QueryError::QueryUnknown(99)));
        service.shutdown();
    }

    #[test]
    fn swap_selector_broadcasts_and_epochs_stay_aligned() {
        let favoring = crate::shard::test_support::selector_favoring;
        let plan = scan_plan();
        let service = MonitorService::with_selector(
            favoring(EstimatorKind::Dne),
            crate::shard::MonitorConfig::default(),
            3,
        );
        // One query per shard registered under epoch 0.
        for q in 0..3usize {
            service.register(q, &plan);
        }
        let epoch = service.swap_selector(Arc::new(favoring(EstimatorKind::Tgn))).expect("up");
        assert_eq!(epoch, 1);
        // Registrations after the swap land on epoch 1 on every shard;
        // pre-swap queries keep epoch 0.
        for q in 3..6usize {
            service.register(q, &plan);
        }
        for q in 0..3usize {
            assert_eq!(service.query_selector_epoch(q), Ok(0), "q{q}");
            assert_eq!(service.query_selector_epoch(q + 3), Ok(1), "q{}", q + 3);
            let st = service.status(q + 3).expect("registered");
            assert_eq!(st.pipelines[0].estimator, EstimatorKind::Tgn);
        }
        assert_eq!(service.query_selector_epoch(99), Err(QueryError::QueryUnknown(99)));
        // A second swap bumps every shard again.
        assert_eq!(service.swap_selector(Arc::new(favoring(EstimatorKind::Dne))), Ok(2));
        service.shutdown();
    }

    #[test]
    fn staleness_reads_are_routed() {
        use prosel_engine::clock::{Clock, ManualClock};
        let plan = scan_plan();
        let clock = Arc::new(ManualClock::new(0.0));
        let config = crate::shard::MonitorConfig {
            clock: Arc::clone(&clock) as Arc<dyn Clock>,
            ..Default::default()
        };
        let prototype = ProgressMonitor::fixed(EstimatorKind::Dne).with_config(config);
        let service = MonitorService::from_prototype(prototype, 2);
        service.register(4, &plan);
        service.ingest(snapshot_event(4, 0, 10.0, 25));
        service.ingest(snapshot_event(4, 1, 20.0, 50));
        clock.set(26.0);
        let stale = service.remaining_time_with_age(4).expect("registered");
        // 0.025 progress/s, 0.5 left => 20 s from as_of 20.0; age 6.
        assert!((stale.eta.remaining - 20.0).abs() < 1e-9);
        assert!((stale.age - 6.0).abs() < 1e-9);
        assert!((stale.remaining_now() - 14.0).abs() < 1e-9);
        // The default remaining_time folds the same staleness in — the
        // stalled-query countdown keeps shrinking instead of freezing.
        let folded = service.remaining_time(4).expect("registered");
        assert!((folded.remaining - 14.0).abs() < 1e-9);
        assert!((folded.remaining_lo - (stale.eta.remaining_lo - 6.0).max(0.0)).abs() < 1e-9);
        clock.set(1000.0);
        assert_eq!(service.remaining_time(4).unwrap().remaining, 0.0, "pins to zero");
        assert!(
            service.remaining_time_at_last_event(4).unwrap().remaining > 0.0,
            "raw variant stays frozen at the last event by design"
        );
        assert_eq!(service.remaining_time_with_age(99), Err(QueryError::QueryUnknown(99)));
        service.shutdown();
    }

    #[test]
    fn harvests_flow_from_all_shards_to_one_sink() {
        use crate::shard::{HarvestConfig, HarvestedQuery};
        let plan = scan_plan();
        let (sink, harvested) = std::sync::mpsc::channel::<HarvestedQuery>();
        let prototype = ProgressMonitor::fixed(EstimatorKind::Dne).with_harvester(
            Arc::new(sink),
            HarvestConfig { label: "svc".into(), min_observations: 2 },
        );
        let service = MonitorService::from_prototype(prototype, 3);
        for q in 0..6usize {
            service.register(q, &plan);
            for seq in 0..3u64 {
                service.ingest(snapshot_event(q, seq, (seq + 1) as f64 * 10.0, 25 * (seq + 1)));
            }
            service.ingest(TraceEvent::Finished {
                query: q,
                wall: 40.0,
                windows: vec![(1.0, 40.0)].into_boxed_slice(),
                total_time: 40.0,
            });
        }
        service.shutdown(); // drains queues, so every harvest is delivered
        let mut got: Vec<usize> = harvested.try_iter().map(|h| h.query).collect();
        got.sort_unstable();
        assert_eq!(got, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn saturated_shards_refuse_admission_with_typed_errors_not_panics() {
        use crate::shard::MonitorConfig;
        let plan = scan_plan();
        // 2 shards × cap 2 = 4 admission slots service-wide.
        let config = MonitorConfig { max_queries: 2, ..Default::default() };
        let prototype = ProgressMonitor::fixed(EstimatorKind::Dne).with_config(config);
        let service = MonitorService::from_prototype(prototype, 2);
        // Flood well past the cap through both admission paths: every
        // over-cap registration must come back as a typed Saturated value
        // and no shard task may die.
        let queries: Vec<usize> = (0..16).collect();
        let results = service.try_register_batch(&queries, &plan);
        let admitted: Vec<usize> =
            results.iter().filter(|(_, r)| r.is_ok()).map(|&(q, _)| q).collect();
        let saturated = results
            .iter()
            .filter(|(_, r)| matches!(r, Err(RegisterError::Saturated { limit: 2 })))
            .count();
        assert_eq!(admitted.len(), 4);
        assert_eq!(saturated, 12);
        assert_eq!(service.try_register(17, &plan), Err(RegisterError::Saturated { limit: 2 }));
        // The shards survived the flood and still serve admitted queries.
        for &q in &admitted {
            service.ingest(snapshot_event(q, 0, 10.0, 50));
            assert!((service.query_progress(q).unwrap() - 0.5).abs() < 1e-12, "q{q}");
        }
        // Draining a query frees its slot on the owning shard only.
        let freed = admitted[0];
        service.unregister(freed).unwrap();
        assert_eq!(service.try_register(freed + 2 * service.n_shards(), &plan), Ok(()));
        let stats = service.stats().expect("stats are always served");
        assert_eq!(stats.registered, 4);
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.refused, 13);
        service.shutdown();
    }

    #[test]
    fn stats_fold_per_shard_counters_after_the_queues_drain() {
        let plan = scan_plan();
        let service = MonitorService::fixed(EstimatorKind::Dne, 3);
        for q in 0..6usize {
            service.register(q, &plan);
        }
        let tap = service.tap();
        for q in 0..6usize {
            tap.send(snapshot_event(q, 0, 10.0, 25)).unwrap();
        }
        // An event for a query nobody registered: dropped and counted.
        tap.send(snapshot_event(42, 0, 10.0, 25)).unwrap();
        // Stats are wait-free snapshots; quiesce is the explicit barrier
        // that makes the conservation law exact at readout time.
        service.quiesce();
        let per_shard = service.shard_stats().expect("stats are always served");
        assert_eq!(per_shard.len(), 3);
        let total = service.stats().expect("stats are always served");
        assert_eq!(total.events_ingested + total.events_unroutable, 7);
        assert_eq!(total.events_unroutable, 1);
        assert_eq!(total.events_rejected, 0, "no dead shards, nothing rejected");
        assert_eq!((total.registered, total.admitted), (6, 6));
        assert_eq!(total.queries_dropped, 0);
        service.shutdown();
    }

    #[test]
    fn oracle_kinds_are_refused() {
        assert_eq!(
            MonitorService::try_fixed(EstimatorKind::BytesOracle, 2).err(),
            Some(RegisterError::OracleKind(EstimatorKind::BytesOracle))
        );
    }

    #[test]
    fn online_kind_codes_roundtrip() {
        for &kind in ONLINE_KINDS.iter() {
            assert_eq!(kind_from_code(kind_to_code(kind)), kind);
        }
    }

    #[test]
    fn batched_tap_sends_are_equivalent_to_singles() {
        let plan = scan_plan();
        let service = MonitorService::fixed(EstimatorKind::Dne, 3);
        for q in 0..6usize {
            service.register(q, &plan);
        }
        let tap = service.tap();
        let batch: Vec<TraceEvent> = (0..6usize).map(|q| snapshot_event(q, 0, 10.0, 25)).collect();
        tap.send_batch(batch).unwrap();
        service.quiesce();
        for q in 0..6usize {
            assert!((service.query_progress(q).unwrap() - 0.25).abs() < 1e-12, "q{q}");
        }
        let total = service.stats().expect("stats are always served");
        assert_eq!(total.events_ingested, 6);
        service.shutdown();
    }

    #[test]
    fn reads_are_concurrent_with_ingest() {
        // Hammer one service from parallel reader threads while a writer
        // streams events: every read must return a sane value and the
        // final state must be exact.
        let plan = scan_plan();
        let service = std::sync::Arc::new(MonitorService::fixed(EstimatorKind::Dne, 4));
        let n_queries = 32usize;
        for q in 0..n_queries {
            service.register(q, &plan);
        }
        std::thread::scope(|scope| {
            let writer = {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let tap = service.tap();
                    for seq in 0..100u64 {
                        for q in 0..n_queries {
                            let k = seq + 1; // 1% of the 100-row scan per event
                            tap.send(snapshot_event(q, seq, (seq + 1) as f64, k)).unwrap();
                        }
                    }
                })
            };
            for reader in 0..3usize {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    for i in 0..200usize {
                        // Stride across all queries (and thus all shards).
                        let q = (i * 7 + reader) % n_queries;
                        if let Ok(p) = service.query_progress(q) {
                            assert!((0.0..=1.0).contains(&p));
                        }
                    }
                });
            }
            writer.join().unwrap();
        });
        service.quiesce();
        for q in 0..n_queries {
            let p = service.query_progress(q).expect("registered");
            assert!((p - 1.0).abs() < 1e-12, "q{q} final progress {p}");
        }
    }

    #[test]
    fn dead_shard_reads_swaps_and_router_degrade_cleanly() {
        let favoring = crate::shard::test_support::selector_favoring;
        let plan = scan_plan();
        let service = MonitorService::with_selector(
            favoring(EstimatorKind::Dne),
            crate::shard::MonitorConfig::default(),
            3,
        );
        for q in 0..6usize {
            service.register(q, &plan);
        }
        let tap = service.tap();
        tap.send(snapshot_event(1, 0, 1.0, 10)).unwrap();
        service.quiesce();
        // Kill shard 1 (owns queries 1 and 4) through the real panic path.
        service.inject_shard_panic(1);
        // Reads on the dead shard: typed error, never a hang or panic.
        assert_eq!(service.query_progress(1), Err(QueryError::ShardDown));
        assert_eq!(service.remaining_time(4), Err(QueryError::ShardDown));
        assert_eq!(service.status(4).err(), Some(QueryError::ShardDown));
        // Live shards keep serving.
        assert_eq!(service.query_progress(0), Ok(0.0));
        // The router refuses the dead shard's events cleanly — Err returns
        // the event, and the drop is counted (conservation law).
        let ev = snapshot_event(4, 0, 1.0, 10);
        let back = tap.send(ev.clone());
        assert_eq!(back, Err(ev));
        assert!(tap.send(snapshot_event(0, 1, 2.0, 20)).is_ok(), "live shards accept");
        service.quiesce();
        let stats = service.stats().expect("stats are always served");
        assert_eq!(stats.events_rejected, 1);
        // A swap reports the dead shard by id and still applies to the
        // survivors (visible via the epoch on a fresh registration).
        let err = service.swap_selector(Arc::new(favoring(EstimatorKind::Tgn))).unwrap_err();
        assert_eq!(err.shards, vec![1]);
        assert_eq!(err.epoch, Some(1));
        service.register(6, &plan); // 6 % 3 == 0: a surviving shard
        assert_eq!(service.query_selector_epoch(6), Ok(1));
        // Registration on the dead shard is refused as a value.
        assert_eq!(service.try_register(7, &plan), Err(RegisterError::ShardDown));
        service.shutdown();
    }
}
