//! Wall-clock remaining-time (ETA) estimation from progress samples.
//!
//! The monitor serves *fractional* progress; the question a DBA actually
//! asks (König et al. §1) is "how much longer?". Converting one into the
//! other needs the rate at which wall-clock time buys progress. A
//! [`SpeedTracker`] maintains exactly that: a bounded trailing window of
//! `(wall, progress)` samples per query, from which it serves
//!
//! * a **point** estimate — remaining fraction divided by the window's
//!   end-to-end speed, and
//! * an **interval** — the same fraction divided by the *maximum* and
//!   *minimum* consecutive-sample speeds observed inside the window
//!   (optimistic and conservative bounds, the interval-estimate framing of
//!   trailing-window makespan estimation; see PAPERS.md, arXiv:1707.01880).
//!
//! Because the point speed is the mediant of the consecutive speeds, the
//! interval always brackets the point estimate.
//!
//! Robustness properties, by construction:
//!
//! * Samples are accepted only when **both** wall time and progress
//!   strictly advanced, so every retained speed is positive and finite and
//!   ETAs are non-negative — estimator curves that momentarily regress, or
//!   repeated stamps from a frozen [`prosel_engine::clock::ManualClock`],
//!   cannot poison the window (a stall simply widens the wall gap to the
//!   next accepted sample, lowering the measured speed, which is the
//!   honest answer).
//! * The tracker keeps its own history, independent of the monitor's
//!   snapshot-buffer mirror: the engine's thinning protocol
//!   ([`prosel_engine::trace::TraceEvent::Thinned`]) rewrites which
//!   *snapshots* are retained, but never retroactively edits the speed
//!   window — thinning only slows the future sample cadence, which the
//!   trailing window absorbs.
//! * Cost is O(1) per offered sample (amortized): a ring buffer for the
//!   samples and the classic monotone-deque sliding-window minimum /
//!   maximum over consecutive speeds.

use std::collections::VecDeque;

/// A remaining-time answer, all wall quantities in the seconds of the
/// clock that stamped the underlying trace events (see
/// [`prosel_engine::clock::Clock`]).
///
/// Point and interval are measured **from [`Eta::as_of`]** — the wall
/// instant of the latest accepted sample — not from the caller's "now": the
/// estimate is a pure function of the ingested event stream, which is what
/// makes ETA serving bit-deterministic under a manual clock. A caller
/// holding the same clock subtracts `clock.now() - eta.as_of` if it wants
/// staleness-adjusted countdowns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eta {
    /// Wall instant of the latest accepted sample (0.0 before the first).
    pub as_of: f64,
    /// Progress fraction at `as_of` (1.0 once finished).
    pub progress: f64,
    /// Accepted samples currently in the trailing window.
    pub samples: usize,
    /// Progress per wall second over the window (end-to-end slope); 0.0
    /// until the window holds ≥ 2 samples.
    pub speed: f64,
    /// Point ETA in seconds from `as_of`; `f64::INFINITY` until the window
    /// holds ≥ 2 samples, exactly 0.0 once finished.
    pub remaining: f64,
    /// Optimistic bound: remaining fraction at the fastest consecutive
    /// speed seen in the window. `remaining_lo ≤ remaining ≤ remaining_hi`.
    pub remaining_lo: f64,
    /// Conservative bound: remaining fraction at the slowest consecutive
    /// speed seen in the window.
    pub remaining_hi: f64,
}

impl Eta {
    /// Does this answer carry an actual estimate (finished, or ≥ 2 samples
    /// in the window)?
    pub fn is_known(&self) -> bool {
        self.remaining.is_finite()
    }

    /// The all-infinite answer served before two samples exist.
    fn unknown(as_of: f64, progress: f64, samples: usize) -> Eta {
        Eta {
            as_of,
            progress,
            samples,
            speed: 0.0,
            remaining: f64::INFINITY,
            remaining_lo: f64::INFINITY,
            remaining_hi: f64::INFINITY,
        }
    }

    /// The terminal answer: the query finished at wall instant `as_of`.
    pub(crate) fn finished(as_of: f64) -> Eta {
        Eta {
            as_of,
            progress: 1.0,
            samples: 0,
            speed: 0.0,
            remaining: 0.0,
            remaining_lo: 0.0,
            remaining_hi: 0.0,
        }
    }

    /// Fold staleness into the countdowns: subtract the wall seconds `now`
    /// has advanced past [`Eta::as_of`] from the point and both interval
    /// estimates, flooring each at 0 — [`StaleEta::remaining_now`]
    /// semantics applied to the whole answer. This is what makes a stalled
    /// query's served ETA shrink (and pin to 0) instead of freezing at the
    /// last accepted sample: [`SpeedTracker::offer`] correctly rejects
    /// non-advancing samples, so without aging the raw `remaining` would
    /// stay frozen at `as_of` forever.
    ///
    /// `as_of`, `progress`, `samples` and `speed` are untouched — the
    /// result still records which sample it was computed from. Unknown
    /// answers stay unknown (`∞ − age = ∞`), finished answers stay
    /// all-zero, and `remaining_lo ≤ remaining ≤ remaining_hi` is
    /// preserved (subtracting a constant and flooring is monotone).
    #[must_use]
    pub fn aged(&self, now: f64) -> Eta {
        let age = (now - self.as_of).max(0.0);
        Eta {
            remaining: (self.remaining - age).max(0.0),
            remaining_lo: (self.remaining_lo - age).max(0.0),
            remaining_hi: (self.remaining_hi - age).max(0.0),
            ..*self
        }
    }
}

/// An [`Eta`] together with its staleness — the answer to "how old is
/// this answer?".
///
/// The [`Eta`] is a pure function of the ingested event stream (measured
/// from [`Eta::as_of`], bit-deterministic under a manual clock); the
/// `age` is the one quantity that reads the *serving* clock
/// ([`crate::shard::MonitorConfig::clock`]), so a dashboard can render a
/// live countdown without polluting the deterministic core. Served by
/// [`crate::ProgressMonitor::remaining_time_with_age`] /
/// [`crate::MonitorService::remaining_time_with_age`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaleEta {
    pub eta: Eta,
    /// `clock.now() − eta.as_of`, clamped to ≥ 0. Before the first
    /// stamped event `as_of` is 0.0, so the age is measured from the
    /// clock's epoch — "no answer yet, and this is how long we have been
    /// waiting for one".
    pub age: f64,
}

impl StaleEta {
    /// Pair an [`Eta`] with the serving clock's current reading.
    pub(crate) fn at(eta: Eta, now: f64) -> StaleEta {
        StaleEta { eta, age: (now - eta.as_of).max(0.0) }
    }

    /// The staleness-adjusted countdown: the point estimate minus the time
    /// already burned since `as_of`, floored at 0 (never negative, and
    /// infinite exactly when the [`Eta`] itself is unknown).
    pub fn remaining_now(&self) -> f64 {
        (self.eta.remaining - self.age).max(0.0)
    }
}

/// Trailing-window tracker of wall-clock progress speed for one query.
/// See the module docs for the model.
#[derive(Debug, Clone)]
pub struct SpeedTracker {
    /// Maximum samples retained (≥ 2).
    window: usize,
    /// `(wall, progress)`, strictly increasing in both components.
    samples: VecDeque<(f64, f64)>,
    /// Sliding-window minimum over consecutive-sample speeds: `(id, speed)`
    /// with speeds non-decreasing front to back.
    min_q: VecDeque<(u64, f64)>,
    /// Sliding-window maximum: speeds non-increasing front to back.
    max_q: VecDeque<(u64, f64)>,
    /// Id of the next consecutive-speed entry (speed `i` connects samples
    /// `i` and `i+1` of the *accepted* sequence).
    next_speed_id: u64,
    /// Id of the oldest speed still inside the window.
    front_speed_id: u64,
}

impl SpeedTracker {
    /// A tracker retaining at most `window` samples (clamped to ≥ 2; a
    /// one-sample window could never measure a slope).
    pub fn new(window: usize) -> SpeedTracker {
        SpeedTracker {
            window: window.max(2),
            samples: VecDeque::new(),
            min_q: VecDeque::new(),
            max_q: VecDeque::new(),
            next_speed_id: 0,
            front_speed_id: 0,
        }
    }

    /// Offer one `(wall, progress)` sample. Returns whether it was
    /// accepted: non-finite components are rejected, as is any sample that
    /// does not strictly advance both wall time and progress past the
    /// latest retained sample (see the module docs for why).
    pub fn offer(&mut self, wall: f64, progress: f64) -> bool {
        if !wall.is_finite() || !progress.is_finite() {
            return false;
        }
        let progress = progress.clamp(0.0, 1.0);
        if let Some(&(last_wall, last_progress)) = self.samples.back() {
            if wall <= last_wall || progress <= last_progress {
                return false;
            }
            let speed = (progress - last_progress) / (wall - last_wall);
            let id = self.next_speed_id;
            self.next_speed_id += 1;
            while self.min_q.back().is_some_and(|&(_, s)| s >= speed) {
                self.min_q.pop_back();
            }
            self.min_q.push_back((id, speed));
            while self.max_q.back().is_some_and(|&(_, s)| s <= speed) {
                self.max_q.pop_back();
            }
            self.max_q.push_back((id, speed));
        }
        self.samples.push_back((wall, progress));
        if self.samples.len() > self.window {
            self.samples.pop_front();
            // Dropping the oldest sample retires the speed that connected
            // it to its successor.
            let expired = self.front_speed_id;
            self.front_speed_id += 1;
            if self.min_q.front().is_some_and(|&(id, _)| id == expired) {
                self.min_q.pop_front();
            }
            if self.max_q.front().is_some_and(|&(id, _)| id == expired) {
                self.max_q.pop_front();
            }
        }
        true
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The latest accepted `(wall, progress)` sample.
    pub fn latest(&self) -> Option<(f64, f64)> {
        self.samples.back().copied()
    }

    /// End-to-end speed of the window (progress per wall second); `None`
    /// until ≥ 2 samples.
    pub fn speed(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let (w0, p0) = *self.samples.front().expect("non-empty");
        let (w1, p1) = *self.samples.back().expect("non-empty");
        Some((p1 - p0) / (w1 - w0))
    }

    /// `(slowest, fastest)` consecutive-sample speed inside the window;
    /// `None` until ≥ 2 samples.
    pub fn speed_bounds(&self) -> Option<(f64, f64)> {
        let min = self.min_q.front()?.1;
        let max = self.max_q.front()?.1;
        Some((min, max))
    }

    /// The current remaining-time answer (see [`Eta`]).
    pub fn estimate(&self) -> Eta {
        let Some((as_of, progress)) = self.latest() else {
            return Eta::unknown(0.0, 0.0, 0);
        };
        let (Some(speed), Some((slow, fast))) = (self.speed(), self.speed_bounds()) else {
            return Eta::unknown(as_of, progress, self.samples.len());
        };
        let left = (1.0 - progress).max(0.0);
        Eta {
            as_of,
            progress,
            samples: self.samples.len(),
            speed,
            remaining: left / speed,
            remaining_lo: left / fast,
            remaining_hi: left / slow,
        }
    }

    /// Predicted progress at wall instant `deadline` — the
    /// bounded-staleness answer: the latest known progress, extrapolated
    /// forward at the window speed and clamped to [0, 1]. Deadlines at or
    /// before the latest sample (and deadlines asked before any speed is
    /// measurable) serve the latest known progress unextrapolated.
    pub fn progress_at(&self, deadline: f64) -> f64 {
        let Some((as_of, progress)) = self.latest() else { return 0.0 };
        if !deadline.is_finite() || deadline <= as_of {
            return progress;
        }
        match self.speed() {
            Some(speed) => (progress + speed * (deadline - as_of)).clamp(0.0, 1.0),
            None => progress,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_samples_for_an_estimate() {
        let mut t = SpeedTracker::new(8);
        assert!(!t.estimate().is_known());
        assert!(t.offer(1.0, 0.1));
        let e = t.estimate();
        assert!(!e.is_known());
        assert_eq!(e.samples, 1);
        assert_eq!(e.progress, 0.1);
        assert!(t.offer(2.0, 0.2));
        let e = t.estimate();
        assert!(e.is_known());
        // 0.1 progress per second, 0.8 left => 8 seconds.
        assert!((e.remaining - 8.0).abs() < 1e-12);
        assert!((e.speed - 0.1).abs() < 1e-12);
        assert_eq!(e.as_of, 2.0);
    }

    #[test]
    fn rejects_regressions_stalls_and_non_finite() {
        let mut t = SpeedTracker::new(8);
        assert!(t.offer(1.0, 0.5));
        assert!(!t.offer(1.0, 0.6), "wall must strictly advance");
        assert!(!t.offer(2.0, 0.5), "progress must strictly advance");
        assert!(!t.offer(2.0, 0.4), "regressions are dropped");
        assert!(!t.offer(f64::NAN, 0.6));
        assert!(!t.offer(3.0, f64::NAN));
        assert_eq!(t.len(), 1);
        assert!(t.offer(3.0, 0.6));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn interval_brackets_point_and_tracks_window_extremes() {
        let mut t = SpeedTracker::new(8);
        // Speeds between consecutive samples: 0.1, 0.3, 0.05.
        for (w, p) in [(0.0, 0.0), (1.0, 0.1), (2.0, 0.4), (4.0, 0.5)] {
            assert!(t.offer(w, p));
        }
        let (slow, fast) = t.speed_bounds().expect("bounds");
        assert!((slow - 0.05).abs() < 1e-12);
        assert!((fast - 0.3).abs() < 1e-12);
        let e = t.estimate();
        assert!(e.remaining_lo <= e.remaining && e.remaining <= e.remaining_hi);
        // Point speed is the end-to-end slope 0.5/4.
        assert!((e.speed - 0.125).abs() < 1e-12);
    }

    #[test]
    fn window_eviction_retires_old_speeds() {
        let mut t = SpeedTracker::new(3);
        // A very fast first leg that must leave the 3-sample window.
        assert!(t.offer(0.0, 0.0));
        assert!(t.offer(0.1, 0.5)); // speed 5.0
        assert!(t.offer(1.1, 0.6)); // speed 0.1
        assert!(t.offer(2.1, 0.7)); // speed 0.1; evicts the 5.0 leg
        let (slow, fast) = t.speed_bounds().expect("bounds");
        assert!((slow - 0.1).abs() < 1e-12);
        assert!((fast - 0.1).abs() < 1e-12, "evicted speed must not linger, got {fast}");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn progress_at_deadline_extrapolates_and_clamps() {
        let mut t = SpeedTracker::new(8);
        assert_eq!(t.progress_at(5.0), 0.0, "no samples yet");
        t.offer(1.0, 0.2);
        assert_eq!(t.progress_at(9.0), 0.2, "no speed yet: serve latest");
        t.offer(2.0, 0.3); // 0.1/s
        assert!((t.progress_at(4.0) - 0.5).abs() < 1e-12);
        assert_eq!(t.progress_at(1.5), 0.3, "past deadlines serve latest");
        assert_eq!(t.progress_at(100.0), 1.0, "clamped at completion");
    }

    #[test]
    fn finished_eta_is_zero() {
        let e = Eta::finished(42.0);
        assert!(e.is_known());
        assert_eq!((e.remaining, e.remaining_lo, e.remaining_hi), (0.0, 0.0, 0.0));
        assert_eq!(e.progress, 1.0);
        assert_eq!(e.as_of, 42.0);
    }

    #[test]
    fn aging_shrinks_countdowns_floors_at_zero_and_keeps_the_bracket() {
        let mut t = SpeedTracker::new(8);
        t.offer(0.0, 0.0);
        t.offer(1.0, 0.1);
        t.offer(2.0, 0.4);
        t.offer(4.0, 0.5);
        let raw = t.estimate();
        // No time has passed (or the clock is behind as_of): identity.
        assert_eq!(raw.aged(raw.as_of), raw);
        assert_eq!(raw.aged(raw.as_of - 10.0), raw);
        let aged = raw.aged(raw.as_of + 1.5);
        assert!((aged.remaining - (raw.remaining - 1.5)).abs() < 1e-12);
        assert!((aged.remaining_lo - (raw.remaining_lo - 1.5).max(0.0)).abs() < 1e-12);
        assert!(aged.remaining_lo <= aged.remaining && aged.remaining <= aged.remaining_hi);
        // Sample provenance is untouched by aging.
        assert_eq!((aged.as_of, aged.progress, aged.samples), (raw.as_of, raw.progress, 4));
        // A stall longer than the whole estimate pins every countdown to 0.
        let pinned = raw.aged(raw.as_of + 1e6);
        assert_eq!((pinned.remaining, pinned.remaining_lo, pinned.remaining_hi), (0.0, 0.0, 0.0));
        assert!(pinned.is_known());
        // Unknown stays unknown at any age.
        let mut one = SpeedTracker::new(8);
        one.offer(1.0, 0.1);
        assert!(!one.estimate().aged(100.0).is_known());
        // Finished stays all-zero.
        assert_eq!(Eta::finished(42.0).aged(50.0), Eta::finished(42.0));
    }
}
