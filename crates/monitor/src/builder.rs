//! One construction surface for both monitor shapes.
//!
//! The crate grew a constructor zoo — `fixed` / `try_fixed` /
//! `with_selector` / `from_prototype` on [`MonitorService`], the same
//! again plus config and harvester setters on [`ProgressMonitor`] — and
//! every new capability (checkpoint restore, per-knob config) threatened
//! to double it. [`MonitorBuilder`] consolidates all of it: pick a
//! policy, chain the knobs you care about, and build either shape. The
//! legacy constructors remain as thin delegates for existing embeds, but
//! new code (and every example and test in this workspace) goes through
//! the builder:
//!
//! ```
//! use prosel_estimators::EstimatorKind;
//! use prosel_monitor::MonitorBuilder;
//!
//! let monitor = MonitorBuilder::fixed(EstimatorKind::Dne)
//!     .reselect_every(8)
//!     .build_monitor()
//!     .expect("DNE is an online kind");
//! let service = MonitorBuilder::fixed(EstimatorKind::Dne)
//!     .shards(4)
//!     .max_queries(1024)
//!     .build_service()
//!     .expect("DNE is an online kind");
//! service.shutdown();
//! # drop(monitor);
//! ```

use crate::error::MonitorError;
use crate::service::MonitorService;
use crate::shard::{HarvestConfig, HarvestSink, MonitorConfig, ProgressMonitor};
use crate::state::HarvestState;
use crate::RuntimeConfig;
use prosel_core::selection::EstimatorSelector;
use prosel_engine::clock::Clock;
use prosel_estimators::EstimatorKind;
use std::sync::Arc;

/// Which selection policy the built monitor serves.
enum BuilderPolicy {
    Fixed(EstimatorKind),
    Selector(Arc<EstimatorSelector>),
}

/// Builder over every construction concern of [`ProgressMonitor`] and
/// [`MonitorService`]: policy, config knobs, shard count, harvest sink,
/// and checkpoint restore. See the module docs for the one-glance form.
pub struct MonitorBuilder {
    policy: BuilderPolicy,
    config: MonitorConfig,
    shards: usize,
    harvester: Option<(Arc<dyn HarvestSink>, HarvestConfig)>,
    restore: Vec<HarvestState>,
}

impl MonitorBuilder {
    /// Monitor every pipeline with one fixed estimator (no selection).
    /// Oracle kinds are rejected at build time with
    /// [`MonitorError::Register`].
    pub fn fixed(kind: EstimatorKind) -> MonitorBuilder {
        MonitorBuilder::with_policy(BuilderPolicy::Fixed(kind))
    }

    /// Monitor with a trained selector: static selection at registration,
    /// dynamic re-selection at the configured cadence. Accepts an owned
    /// [`EstimatorSelector`] or an `Arc` shared with a learning loop.
    pub fn with_selector(selector: impl Into<Arc<EstimatorSelector>>) -> MonitorBuilder {
        MonitorBuilder::with_policy(BuilderPolicy::Selector(selector.into()))
    }

    fn with_policy(policy: BuilderPolicy) -> MonitorBuilder {
        MonitorBuilder {
            policy,
            config: MonitorConfig::default(),
            shards: 1,
            harvester: None,
            restore: Vec::new(),
        }
    }

    /// Replace the whole [`MonitorConfig`] at once (the per-knob methods
    /// below then refine it).
    pub fn config(mut self, config: MonitorConfig) -> MonitorBuilder {
        self.config = config;
        self
    }

    /// Dynamic re-selection cadence, in observations per pipeline
    /// (0 disables re-selection).
    pub fn reselect_every(mut self, every: usize) -> MonitorBuilder {
        self.config.reselect_every = every;
        self
    }

    /// Speed-window length for the ETA tracker.
    pub fn eta_window(mut self, window: usize) -> MonitorBuilder {
        self.config.eta_window = window;
        self
    }

    /// Wall-clock source (tests inject a manual clock here).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> MonitorBuilder {
        self.config.clock = clock;
        self
    }

    /// Admission cap per shard (0 = unbounded): registrations past it are
    /// refused with `RegisterError::Saturated`.
    pub fn max_queries(mut self, cap: usize) -> MonitorBuilder {
        self.config.max_queries = cap;
        self
    }

    /// Worker-pool shape for the service form (ignored by
    /// [`Self::build_monitor`]).
    pub fn runtime(mut self, runtime: RuntimeConfig) -> MonitorBuilder {
        self.config.runtime = runtime;
        self
    }

    /// Publish the monitor's counters and latency histograms into
    /// `registry` (scrape it with
    /// [`MonitorService::metrics`](crate::MonitorService::metrics) or
    /// [`prosel_obs::MetricsRegistry::snapshot`]). Give each built
    /// monitor/service its own registry; without this call a service
    /// still creates a private, scrapeable one.
    pub fn metrics(mut self, registry: Arc<prosel_obs::MetricsRegistry>) -> MonitorBuilder {
        self.config.metrics = Some(registry);
        self
    }

    /// Timing-instrumentation knobs (latency histograms on/off, 1-in-N
    /// sampling stride). Counters are unaffected.
    pub fn observability(mut self, obs: prosel_obs::ObsOptions) -> MonitorBuilder {
        self.config.obs = obs;
        self
    }

    /// Shard-task count for the service form, clamped to ≥ 1 (ignored by
    /// [`Self::build_monitor`]).
    pub fn shards(mut self, n: usize) -> MonitorBuilder {
        self.shards = n.max(1);
        self
    }

    /// Attach a harvest sink: every finished query is mined into labelled
    /// training records and delivered to `sink` — the feed of the
    /// online-learning loop.
    pub fn harvester(
        mut self,
        sink: Arc<dyn HarvestSink>,
        config: HarvestConfig,
    ) -> MonitorBuilder {
        self.harvester = Some((sink, config));
        self
    }

    /// Resume from checkpointed [`HarvestState`]s (selector epoch +
    /// monotone counters), one per shard in shard order —
    /// [`Self::build_monitor`] requires exactly one,
    /// [`Self::build_service`] exactly `shards(n)` many, and both reject
    /// a mismatch with [`MonitorError::Restore`].
    pub fn restore(mut self, states: Vec<HarvestState>) -> MonitorBuilder {
        self.restore = states;
        self
    }

    /// Build the prototype monitor both build paths share.
    fn prototype(&self) -> Result<ProgressMonitor, MonitorError> {
        let mut monitor = match &self.policy {
            BuilderPolicy::Fixed(kind) => {
                ProgressMonitor::try_fixed(*kind)?.with_config(self.config.clone())
            }
            BuilderPolicy::Selector(sel) => {
                ProgressMonitor::with_selector(Arc::clone(sel), self.config.clone())
            }
        };
        if let Some((sink, config)) = &self.harvester {
            monitor.set_harvester(Arc::clone(sink), config.clone());
        }
        Ok(monitor)
    }

    /// Build the single-threaded, deterministic [`ProgressMonitor`] form.
    pub fn build_monitor(self) -> Result<ProgressMonitor, MonitorError> {
        let mut monitor = self.prototype()?;
        match self.restore.len() {
            0 => {}
            1 => monitor.restore_harvest_state(&self.restore[0]),
            n => {
                return Err(MonitorError::Restore(format!(
                    "{n} checkpointed shard state(s) for a single-shard monitor"
                )))
            }
        }
        Ok(monitor)
    }

    /// Build the sharded, concurrent [`MonitorService`] form.
    pub fn build_service(mut self) -> Result<MonitorService, MonitorError> {
        // The prototype never serves traffic in a service, so construct
        // it without the registry (its counters stay detached — no dead
        // all-zero `monitor_*` series in scrapes) and re-attach for the
        // shard forks, which register under `monitor_shard<i>_*`.
        let metrics = self.config.metrics.take();
        let mut prototype = self.prototype()?;
        if let Some(registry) = metrics {
            prototype.attach_metrics(registry);
        }
        let service = MonitorService::spawn(prototype, self.shards);
        if !self.restore.is_empty() {
            if let Err(e) = service.restore_harvest_states(&self.restore) {
                service.shutdown();
                return Err(e);
            }
        }
        Ok(service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardStats;

    #[test]
    fn fixed_oracle_kinds_are_rejected_at_build_time() {
        let err =
            MonitorBuilder::fixed(EstimatorKind::GetNextOracle).build_monitor().err().unwrap();
        assert!(matches!(err, MonitorError::Register(_)), "{err}");
        let err = MonitorBuilder::fixed(EstimatorKind::BytesOracle)
            .shards(2)
            .build_service()
            .err()
            .unwrap();
        assert!(matches!(err, MonitorError::Register(_)), "{err}");
    }

    #[test]
    fn restore_reseeds_epoch_and_counters() {
        let state = HarvestState {
            epoch: 5,
            stats: ShardStats { queries_finished: 12, harvests: 11, ..ShardStats::default() },
        };
        let monitor =
            MonitorBuilder::fixed(EstimatorKind::Dne).restore(vec![state]).build_monitor().unwrap();
        assert_eq!(monitor.selector_epoch(), 5);
        assert_eq!(monitor.shard_stats().queries_finished, 12);
        assert_eq!(monitor.shard_stats().registered, 0, "no phantom registrations");
    }

    #[test]
    fn restore_count_must_match_the_shard_count() {
        let err = MonitorBuilder::fixed(EstimatorKind::Dne)
            .restore(vec![HarvestState::default(); 2])
            .build_monitor()
            .err()
            .unwrap();
        assert!(matches!(err, MonitorError::Restore(_)), "{err}");

        let err = MonitorBuilder::fixed(EstimatorKind::Dne)
            .shards(3)
            .restore(vec![HarvestState::default(); 2])
            .build_service()
            .err()
            .unwrap();
        assert!(matches!(err, MonitorError::Restore(_)), "{err}");
    }

    #[test]
    fn service_restore_round_trips_through_harvest_states() {
        let states = vec![
            HarvestState { epoch: 3, stats: ShardStats { admitted: 7, ..ShardStats::default() } },
            HarvestState { epoch: 3, stats: ShardStats { admitted: 9, ..ShardStats::default() } },
        ];
        let service = MonitorBuilder::fixed(EstimatorKind::Dne)
            .shards(2)
            .restore(states.clone())
            .build_service()
            .unwrap();
        assert_eq!(service.harvest_states(), states);
        service.shutdown();
    }
}
