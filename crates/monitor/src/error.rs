//! The crate-wide error umbrella.
//!
//! The monitor's operations fail in three well-typed ways — a read
//! against an unknown/dead query ([`QueryError`]), a refused registration
//! ([`RegisterError`]), a partially applied selector swap
//! ([`SwapError`]) — plus the builder's checkpoint-restore mismatches.
//! Call sites that only care about *one* operation keep the precise
//! type; callers composing several (the builder, service embeds, `?`
//! chains in examples) fold them into [`MonitorError`] via the `From`
//! impls here.

use crate::service::{QueryError, SwapError};
use crate::shard::RegisterError;
use crate::state::StateError;
use std::fmt;

/// Any error the monitor crate can produce, as one `?`-friendly type.
#[derive(Debug)]
pub enum MonitorError {
    /// A read or unregister against an unknown query or dead shard.
    Query(QueryError),
    /// A refused registration (duplicate id, oracle kind, saturation,
    /// dead shard).
    Register(RegisterError),
    /// A selector swap that failed on one or more shards.
    Swap(SwapError),
    /// A checkpoint-restore mismatch at build time: a rejected
    /// [`HarvestState`](crate::HarvestState) artifact, or a state count
    /// that does not match the shard count.
    Restore(String),
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::Query(e) => write!(f, "{e}"),
            MonitorError::Register(e) => write!(f, "{e}"),
            MonitorError::Swap(e) => write!(f, "{e}"),
            MonitorError::Restore(msg) => write!(f, "restore rejected: {msg}"),
        }
    }
}

impl std::error::Error for MonitorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MonitorError::Query(e) => Some(e),
            MonitorError::Register(e) => Some(e),
            MonitorError::Swap(e) => Some(e),
            MonitorError::Restore(_) => None,
        }
    }
}

impl From<QueryError> for MonitorError {
    fn from(e: QueryError) -> Self {
        MonitorError::Query(e)
    }
}

impl From<RegisterError> for MonitorError {
    fn from(e: RegisterError) -> Self {
        MonitorError::Register(e)
    }
}

impl From<SwapError> for MonitorError {
    fn from(e: SwapError) -> Self {
        MonitorError::Swap(e)
    }
}

impl From<StateError> for MonitorError {
    fn from(e: StateError) -> Self {
        MonitorError::Restore(e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn every_variant_displays_and_sources() {
        let q: MonitorError = QueryError::QueryUnknown(7).into();
        assert!(q.to_string().contains('7'));
        assert!(q.source().is_some());

        let r: MonitorError = RegisterError::DuplicateQuery(3).into();
        assert!(r.to_string().contains('3'));
        assert!(r.source().is_some());

        let s: MonitorError = SwapError { shards: vec![1], epoch: None }.into();
        assert!(s.to_string().contains('1'));
        assert!(s.source().is_some());

        let st: MonitorError = StateError("bad".into()).into();
        assert!(st.to_string().contains("bad"));
        assert!(st.source().is_none());
    }
}
