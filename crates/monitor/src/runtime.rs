//! A small hand-rolled work-stealing runtime for shard tasks.
//!
//! The sharded [`MonitorService`](crate::MonitorService) used to pin one OS
//! thread per shard and serialize *every* operation — ingest, reads, swaps —
//! through that thread's FIFO channel. This module replaces the thread-per-
//! shard model with cooperative scheduling: each shard is a *task* (an index
//! `0..n_tasks`), and a fixed pool of workers runs whichever tasks have work.
//! Reads never come anywhere near this runtime — they are wait-free loads
//! from published snapshots — so the pool only ever executes the ingest
//! drain.
//!
//! Design notes:
//!
//! - **No crates.io.** Everything is `std`: mutex-guarded deques per worker,
//!   a condvar for parking, atomics for the per-task state machine.
//! - **At-most-once execution.** A task is never run by two workers at once.
//!   Each task carries an atomic state (`IDLE`/`QUEUED`/`RUNNING`/
//!   `RUNNING_DIRTY`); `Shared::schedule` transitions `IDLE -> QUEUED`
//!   (enqueue) or `RUNNING -> RUNNING_DIRTY` (re-run after the current pass),
//!   and is a no-op when the task is already queued or dirty. This gives the
//!   classic "schedule is idempotent, wakeups are coalesced" property that
//!   lets the ingest path batch events without losing them.
//! - **Work stealing.** Tasks are pushed round-robin across per-worker
//!   queues; an idle worker first drains its own queue, then scans the
//!   others. With shards >> workers this keeps all cores busy without a
//!   global contended queue.
//! - **Core affinity.** [`RuntimeConfig::core_ids`] pins worker `i` to
//!   `core_ids[i % len]` via a raw `sched_setaffinity` call on Linux
//!   (best-effort, no-op elsewhere) so a latency-sensitive deployment can
//!   fence the ingest pool away from serving threads.
//! - **Panic containment.** A task body that panics is caught at the worker
//!   loop; the worker survives and keeps running other tasks. The service
//!   layers its own dead-shard accounting on top.

use prosel_obs::{Counter, Gauge, MetricsRegistry};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Knobs for the shard runtime, embedded in
/// [`MonitorConfig`](crate::MonitorConfig).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of pool workers. `0` (the default) picks
    /// `min(available_parallelism, n_shards)`.
    pub worker_threads: usize,
    /// Optional CPU pinning: worker `i` is pinned to `core_ids[i % len]`.
    /// Empty (the default) leaves placement to the OS scheduler. Pinning is
    /// best-effort and Linux-only; invalid ids are ignored.
    pub core_ids: Vec<usize>,
    /// Maximum number of tap events a shard task ingests per scheduling
    /// pass. Larger batches amortize wakeups and queue locking under
    /// saturated ingest; smaller batches reduce the latency until a
    /// freshly-enqueued event is reflected in the read snapshot.
    pub ingest_batch: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { worker_threads: 0, core_ids: Vec::new(), ingest_batch: 64 }
    }
}

impl RuntimeConfig {
    /// Resolve the worker count for `n_tasks` shard tasks.
    pub(crate) fn resolved_workers(&self, n_tasks: usize) -> usize {
        if self.worker_threads > 0 {
            return self.worker_threads;
        }
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        cores.min(n_tasks.max(1)).max(1)
    }
}

/// Scheduler instrumentation: steal count, park/unpark churn, and the
/// live scheduled-task depth across all worker queues. Registered under
/// `runtime_*` names; all increments are relaxed atomics on the
/// scheduling paths (never inside a task body).
pub(crate) struct RuntimeObs {
    /// Tasks popped from a queue other than the popping worker's own.
    steals: Arc<Counter>,
    /// Times a worker went to sleep on the condvar.
    parks: Arc<Counter>,
    /// Times a parked worker woke up (timeout or notify).
    unparks: Arc<Counter>,
    /// Signed live depth behind the gauge (push/pop races can transiently
    /// observe it negative; the gauge publishes whatever was current).
    depth: AtomicI64,
    depth_gauge: Arc<Gauge>,
}

impl RuntimeObs {
    pub(crate) fn from_registry(registry: &MetricsRegistry) -> RuntimeObs {
        RuntimeObs {
            steals: registry.counter("runtime_steals_total"),
            parks: registry.counter("runtime_parks_total"),
            unparks: registry.counter("runtime_unparks_total"),
            depth: AtomicI64::new(0),
            depth_gauge: registry.gauge("runtime_queue_depth"),
        }
    }

    fn task_pushed(&self) {
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.depth_gauge.set(d as f64);
    }

    fn task_popped(&self) {
        let d = self.depth.fetch_sub(1, Ordering::Relaxed) - 1;
        self.depth_gauge.set(d as f64);
    }
}

// Per-task scheduling states. `RUNNING_DIRTY` means "schedule() was called
// while the task was running": the worker re-queues the task after the pass
// instead of idling it, so no wakeup is ever lost.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_DIRTY: u8 = 3;

/// State shared between workers and external schedulers (the tap/router).
pub(crate) struct Shared {
    /// One deque per worker; tasks are pushed round-robin and stolen freely.
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// One scheduling state per task.
    states: Vec<AtomicU8>,
    /// Round-robin cursor for external pushes.
    next: AtomicUsize,
    /// Parking lot. Workers re-check for work while holding `sleep` before
    /// waiting, and pushers acquire (and immediately release) `sleep` before
    /// notifying, so a push can never slip between a worker's check and its
    /// wait — the classic missed-wakeup guard.
    sleep: Mutex<()>,
    wake: Condvar,
    stop: AtomicBool,
    /// Optional scheduler instrumentation (service mode wires it in).
    obs: Option<Arc<RuntimeObs>>,
}

impl Shared {
    /// Request that `task` run (again). Idempotent; coalesces with a pending
    /// or in-flight run. Wait-free for the caller apart from one short queue
    /// lock when the task transitions to `QUEUED`.
    pub(crate) fn schedule(&self, task: usize) {
        let state = &self.states[task];
        loop {
            match state.load(Ordering::Acquire) {
                IDLE => {
                    if state
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.push(task);
                        return;
                    }
                }
                RUNNING => {
                    if state
                        .compare_exchange(
                            RUNNING,
                            RUNNING_DIRTY,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued or already marked dirty: the pending run
                // will observe everything enqueued before it starts.
                _ => return,
            }
        }
    }

    fn push(&self, task: usize) {
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[w].lock().unwrap_or_else(|e| e.into_inner()).push_back(task);
        if let Some(obs) = &self.obs {
            obs.task_pushed();
        }
        // Take and drop the sleep lock so the notify cannot race a worker
        // that has checked the queues but not yet parked.
        drop(self.sleep.lock().unwrap_or_else(|e| e.into_inner()));
        self.wake.notify_one();
    }

    /// Pop a task: own queue first, then steal from the others.
    fn pop(&self, me: usize) -> Option<usize> {
        let n = self.queues.len();
        for i in 0..n {
            let victim = (me + i) % n;
            let task = self.queues[victim].lock().unwrap_or_else(|e| e.into_inner()).pop_front();
            if task.is_some() {
                if let Some(obs) = &self.obs {
                    obs.task_popped();
                    if victim != me {
                        obs.steals.inc();
                    }
                }
                return task;
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        self.queues.iter().any(|q| !q.lock().unwrap_or_else(|e| e.into_inner()).is_empty())
    }
}

fn worker_loop(shared: &Shared, me: usize, body: &(dyn Fn(usize) -> bool + Send + Sync)) {
    loop {
        if let Some(task) = shared.pop(me) {
            run_task(shared, me, task, body);
            continue;
        }
        let guard = shared.sleep.lock().unwrap_or_else(|e| e.into_inner());
        // Re-check under the sleep lock: a push between our pop scan and
        // this point takes the same lock before notifying, so either we see
        // its task here or its notify lands on our wait below.
        if shared.has_work() {
            continue;
        }
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        // The timeout is belt-and-braces only; correctness never depends on
        // it. 10ms bounds the cost of any wakeup bug to a schedule hiccup.
        if let Some(obs) = &shared.obs {
            obs.parks.inc();
        }
        let _ = shared.wake.wait_timeout(guard, Duration::from_millis(10));
        if let Some(obs) = &shared.obs {
            obs.unparks.inc();
        }
    }
}

fn run_task(shared: &Shared, me: usize, task: usize, body: &(dyn Fn(usize) -> bool + Send + Sync)) {
    let state = &shared.states[task];
    state.store(RUNNING, Ordering::Release);
    // `body` returns true when the task knows it has more work (e.g. events
    // left in the shard queue beyond this batch). A panicking body is
    // contained here; the service marks the shard dead from inside the body,
    // so from the runtime's perspective a panicked pass simply has no more
    // work.
    let more = catch_unwind(AssertUnwindSafe(|| body(task))).unwrap_or(false);
    if more {
        state.store(QUEUED, Ordering::Release);
        self_push(shared, me, task);
        return;
    }
    if state.compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire).is_err() {
        // RUNNING_DIRTY: schedule() fired mid-run; run again.
        state.store(QUEUED, Ordering::Release);
        self_push(shared, me, task);
    }
}

/// Re-queue onto the finishing worker's own deque (stays cache-warm, still
/// stealable), and nudge a sleeper in case this worker is saturated.
fn self_push(shared: &Shared, me: usize, task: usize) {
    shared.queues[me].lock().unwrap_or_else(|e| e.into_inner()).push_back(task);
    if let Some(obs) = &shared.obs {
        obs.task_pushed();
    }
    drop(shared.sleep.lock().unwrap_or_else(|e| e.into_inner()));
    shared.wake.notify_one();
}

/// The worker pool. Owns the threads; dropping (or [`Runtime::stop`])
/// signals shutdown and joins them. Queued tasks still run to completion
/// before workers exit — shutdown drains, it does not abandon.
pub(crate) struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Spawn a pool running `body` for tasks `0..n_tasks`. `body(task)`
    /// returns whether the task should immediately run again.
    /// Uninstrumented [`Self::spawn_observed`] (test harness entry).
    #[cfg(test)]
    pub(crate) fn spawn(
        n_tasks: usize,
        config: &RuntimeConfig,
        body: Arc<dyn Fn(usize) -> bool + Send + Sync>,
    ) -> Runtime {
        Self::spawn_observed(n_tasks, config, body, None)
    }

    /// Spawn with optional scheduler instrumentation — the service
    /// passes a [`RuntimeObs`] registered in its metrics registry.
    pub(crate) fn spawn_observed(
        n_tasks: usize,
        config: &RuntimeConfig,
        body: Arc<dyn Fn(usize) -> bool + Send + Sync>,
        obs: Option<Arc<RuntimeObs>>,
    ) -> Runtime {
        let n_workers = config.resolved_workers(n_tasks);
        let shared = Arc::new(Shared {
            queues: (0..n_workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            states: (0..n_tasks).map(|_| AtomicU8::new(IDLE)).collect(),
            next: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            obs,
        });
        let workers = (0..n_workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let body = Arc::clone(&body);
                let pin = if config.core_ids.is_empty() {
                    None
                } else {
                    Some(config.core_ids[w % config.core_ids.len()])
                };
                std::thread::Builder::new()
                    .name(format!("prosel-shard-worker-{w}"))
                    .spawn(move || {
                        if let Some(core) = pin {
                            pin_to_core(core);
                        }
                        worker_loop(&shared, w, &*body);
                    })
                    .expect("spawn shard runtime worker")
            })
            .collect();
        Runtime { shared, workers }
    }

    pub(crate) fn shared(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    pub(crate) fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Signal shutdown and join the pool. Idempotent.
    pub(crate) fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        drop(self.shared.sleep.lock().unwrap_or_else(|e| e.into_inner()));
        self.shared.wake.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Best-effort thread pinning via a raw `sched_setaffinity(2)` call — the
/// workspace takes no crates.io dependencies, so the one libc symbol we need
/// is declared by hand. Failures (bad core id, restricted cpuset) are
/// ignored: affinity is an optimization, never a correctness requirement.
#[cfg(target_os = "linux")]
fn pin_to_core(core: usize) {
    // Mirrors glibc's cpu_set_t: a 1024-bit mask.
    #[repr(C)]
    struct CpuSet {
        bits: [u64; 16],
    }
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
    }
    if core >= 1024 {
        return;
    }
    let mut set = CpuSet { bits: [0; 16] };
    set.bits[core / 64] |= 1u64 << (core % 64);
    // pid 0 targets the calling thread.
    let _ = unsafe { sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set) };
}

#[cfg(not(target_os = "linux"))]
fn pin_to_core(_core: usize) {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn config(workers: usize) -> RuntimeConfig {
        RuntimeConfig { worker_threads: workers, ..RuntimeConfig::default() }
    }

    fn spin_until(deadline_ms: u64, mut done: impl FnMut() -> bool) -> bool {
        let start = std::time::Instant::now();
        while start.elapsed() < Duration::from_millis(deadline_ms) {
            if done() {
                return true;
            }
            std::thread::yield_now();
        }
        done()
    }

    #[test]
    fn scheduled_tasks_run_and_coalesce() {
        let runs: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
        let body = {
            let runs = Arc::clone(&runs);
            Arc::new(move |task: usize| {
                runs[task].fetch_add(1, Ordering::SeqCst);
                false
            }) as Arc<dyn Fn(usize) -> bool + Send + Sync>
        };
        let mut rt = Runtime::spawn(4, &config(2), body);
        let shared = rt.shared();
        for task in 0..4 {
            shared.schedule(task);
        }
        assert!(spin_until(2_000, || (0..4).all(|t| runs[t].load(Ordering::SeqCst) >= 1)));
        rt.stop();
        // Coalescing never drops a run: every task ran at least once, and an
        // idle task scheduled once runs exactly once.
        for task in 0..4 {
            assert!(runs[task].load(Ordering::SeqCst) >= 1);
        }
    }

    #[test]
    fn dirty_reschedule_runs_the_task_again() {
        // The body parks until released, so we can schedule() while RUNNING
        // and prove the dirty bit forces a second pass.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let runs = Arc::new(AtomicU64::new(0));
        let body = {
            let gate = Arc::clone(&gate);
            let runs = Arc::clone(&runs);
            Arc::new(move |_task: usize| {
                if runs.fetch_add(1, Ordering::SeqCst) == 0 {
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                }
                false
            }) as Arc<dyn Fn(usize) -> bool + Send + Sync>
        };
        let mut rt = Runtime::spawn(1, &config(1), body);
        let shared = rt.shared();
        shared.schedule(0);
        assert!(spin_until(2_000, || runs.load(Ordering::SeqCst) == 1));
        // First pass is parked inside body(): this schedule must coalesce
        // into RUNNING_DIRTY and trigger a second pass once released.
        shared.schedule(0);
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        assert!(spin_until(2_000, || runs.load(Ordering::SeqCst) == 2));
        rt.stop();
        assert_eq!(runs.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn more_work_reruns_until_drained() {
        // body() drains a counter one step per pass and reports "more".
        let left = Arc::new(AtomicU64::new(5));
        let body = {
            let left = Arc::clone(&left);
            Arc::new(move |_task: usize| left.fetch_sub(1, Ordering::SeqCst) > 1)
                as Arc<dyn Fn(usize) -> bool + Send + Sync>
        };
        let mut rt = Runtime::spawn(1, &config(1), body);
        rt.shared().schedule(0);
        assert!(spin_until(2_000, || left.load(Ordering::SeqCst) == 0));
        rt.stop();
    }

    #[test]
    fn panicking_task_does_not_kill_the_pool() {
        let runs = Arc::new(AtomicU64::new(0));
        let body = {
            let runs = Arc::clone(&runs);
            Arc::new(move |task: usize| {
                runs.fetch_add(1, Ordering::SeqCst);
                if task == 0 {
                    panic!("task 0 always panics");
                }
                false
            }) as Arc<dyn Fn(usize) -> bool + Send + Sync>
        };
        let mut rt = Runtime::spawn(2, &config(1), body);
        let shared = rt.shared();
        shared.schedule(0);
        assert!(spin_until(2_000, || runs.load(Ordering::SeqCst) == 1));
        // The single worker survived the panic and still runs task 1.
        shared.schedule(1);
        assert!(spin_until(2_000, || runs.load(Ordering::SeqCst) == 2));
        rt.stop();
    }

    #[test]
    fn work_is_stolen_across_worker_queues() {
        // One worker, many tasks pushed round-robin over... with a single
        // queue stealing is trivially exercised; use 3 workers and 32 tasks
        // so round-robin spreads work and the pop scan must cross queues.
        let runs: Arc<Vec<AtomicU64>> = Arc::new((0..32).map(|_| AtomicU64::new(0)).collect());
        let body = {
            let runs = Arc::clone(&runs);
            Arc::new(move |task: usize| {
                runs[task].fetch_add(1, Ordering::SeqCst);
                false
            }) as Arc<dyn Fn(usize) -> bool + Send + Sync>
        };
        let mut rt = Runtime::spawn(32, &config(3), body);
        assert_eq!(rt.worker_count(), 3);
        let shared = rt.shared();
        for task in 0..32 {
            shared.schedule(task);
        }
        assert!(spin_until(5_000, || (0..32).all(|t| runs[t].load(Ordering::SeqCst) == 1)));
        rt.stop();
    }

    #[test]
    fn stop_is_idempotent_and_drains_queued_tasks() {
        let runs = Arc::new(AtomicU64::new(0));
        let body = {
            let runs = Arc::clone(&runs);
            Arc::new(move |_task: usize| {
                runs.fetch_add(1, Ordering::SeqCst);
                false
            }) as Arc<dyn Fn(usize) -> bool + Send + Sync>
        };
        let mut rt = Runtime::spawn(8, &config(2), body);
        let shared = rt.shared();
        for task in 0..8 {
            shared.schedule(task);
        }
        rt.stop();
        rt.stop();
        // Shutdown drained everything that was queued before the signal.
        assert_eq!(runs.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn default_config_resolves_sane_worker_counts() {
        let cfg = RuntimeConfig::default();
        assert!(cfg.resolved_workers(1) >= 1);
        assert!(cfg.resolved_workers(4) <= 4);
        assert_eq!(config(3).resolved_workers(1), 3);
        assert_eq!(cfg.ingest_batch, 64);
    }
}
