//! Feature-importance analysis: greedy forward selection (the paper's
//! Section 6.5 methodology) plus split-count ranking.

use crate::boost::{BoostParams, Mart};
use crate::dataset::Dataset;

/// Result of one greedy selection round.
#[derive(Debug, Clone)]
pub struct SelectionStep {
    /// Index of the feature added this round.
    pub feature: usize,
    /// Holdout MSE after adding it.
    pub mse: f64,
}

/// Greedy forward feature selection: repeatedly add the feature that,
/// trained together with the already-selected set, minimizes holdout MSE
/// (paper §6.5). `rounds` features are selected; `params` should be a
/// cheap configuration ([`BoostParams::fast`]) since this trains
/// `O(rounds · n_features)` models.
pub fn greedy_forward_selection(
    train: &Dataset,
    holdout: &Dataset,
    rounds: usize,
    params: &BoostParams,
) -> Vec<SelectionStep> {
    assert_eq!(train.n_features(), holdout.n_features());
    let d = train.n_features();
    let mut selected: Vec<usize> = Vec::new();
    let mut steps = Vec::new();
    for _ in 0..rounds.min(d) {
        let mut best: Option<(usize, f64)> = None;
        for f in 0..d {
            if selected.contains(&f) {
                continue;
            }
            let mut cols = selected.clone();
            cols.push(f);
            let sub_train = project(train, &cols);
            let sub_hold = project(holdout, &cols);
            let model = Mart::train(&sub_train, params);
            let mse = model.mse(&sub_hold);
            if best.is_none_or(|(_, m)| mse < m) {
                best = Some((f, mse));
            }
        }
        let Some((f, mse)) = best else { break };
        selected.push(f);
        steps.push(SelectionStep { feature: f, mse });
    }
    steps
}

/// Restrict a dataset to the given feature columns.
pub fn project(data: &Dataset, cols: &[usize]) -> Dataset {
    let mut out = Dataset::new(cols.len());
    let mut row = vec![0.0f32; cols.len()];
    for i in 0..data.len() {
        let src = data.row(i);
        for (j, &c) in cols.iter().enumerate() {
            row[j] = src[c];
        }
        out.push(&row, data.target(i));
    }
    out
}

/// Rank features by gain importance of a trained model (descending).
/// Returns `(feature, total_gain)` pairs.
pub fn rank_by_gain(model: &Mart) -> Vec<(usize, f64)> {
    let mut ranked: Vec<(usize, f64)> = model.feature_gain.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Feature 2 fully determines y; 0/1/3 are noise.
    fn data(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(4);
        for _ in 0..n {
            let mut row = [0.0f32; 4];
            for v in &mut row {
                *v = rng.random_range(-1.0..1.0);
            }
            d.push(&row, row[2] * 2.0);
        }
        d
    }

    #[test]
    fn greedy_selects_signal_feature_first() {
        let train = data(1, 800);
        let holdout = data(2, 300);
        let steps = greedy_forward_selection(&train, &holdout, 2, &BoostParams::fast());
        assert_eq!(steps[0].feature, 2, "signal feature must be chosen first");
        assert!(steps[0].mse < 0.1);
        // Adding a second (noise) feature cannot help much.
        assert!(steps[1].mse <= steps[0].mse + 0.01);
    }

    #[test]
    fn project_keeps_columns() {
        let d = data(3, 10);
        let p = project(&d, &[2, 0]);
        assert_eq!(p.n_features(), 2);
        for i in 0..10 {
            assert_eq!(p.row(i)[0], d.row(i)[2]);
            assert_eq!(p.row(i)[1], d.row(i)[0]);
            assert_eq!(p.target(i), d.target(i));
        }
    }

    #[test]
    fn rank_by_gain_orders_descending() {
        let train = data(4, 800);
        let model = Mart::train(&train, &BoostParams::fast());
        let ranked = rank_by_gain(&model);
        assert_eq!(ranked[0].0, 2);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
