//! Dense training data and feature binning.
//!
//! MART trees split on feature thresholds; for speed, features are
//! quantized once into at most 256 quantile bins ([`BinnedDataset`]) and
//! split search runs over bin histograms — the standard histogram
//! gradient-boosting construction.

/// A dense row-major feature matrix with regression targets.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    n_features: usize,
    x: Vec<f32>,
    y: Vec<f32>,
}

impl Dataset {
    pub fn new(n_features: usize) -> Self {
        Dataset { n_features, x: Vec::new(), y: Vec::new() }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Append one example.
    ///
    /// # Panics
    /// Panics if `row.len() != n_features`.
    pub fn push(&mut self, row: &[f32], target: f32) {
        assert_eq!(row.len(), self.n_features, "feature arity mismatch");
        self.x.extend_from_slice(row);
        self.y.push(target);
    }

    /// Feature row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.x[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Target of example `i`.
    #[inline]
    pub fn target(&self, i: usize) -> f32 {
        self.y[i]
    }

    pub fn targets(&self) -> &[f32] {
        &self.y
    }

    /// Replace all targets (used when fitting residuals).
    pub fn with_targets(&self, y: Vec<f32>) -> Dataset {
        assert_eq!(y.len(), self.len());
        Dataset { n_features: self.n_features, x: self.x.clone(), y }
    }
}

/// Maximum number of bins per feature.
pub const MAX_BINS: usize = 256;

/// Quantile-binned view of a dataset.
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    n_rows: usize,
    n_features: usize,
    /// Row-major bin codes.
    bins: Vec<u8>,
    /// Per feature: ascending cut points; bin `b` holds values in
    /// `(cuts[b-1], cuts[b]]`, bin 0 holds `<= cuts[0]`, the last bin holds
    /// the rest. `cuts.len() <= MAX_BINS - 1`.
    cuts: Vec<Vec<f32>>,
}

impl BinnedDataset {
    /// Quantile-bin `data`.
    pub fn build(data: &Dataset) -> Self {
        let n_rows = data.len();
        let n_features = data.n_features();
        let mut cuts = Vec::with_capacity(n_features);
        for f in 0..n_features {
            let mut vals: Vec<f32> = (0..n_rows).map(|i| data.row(i)[f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            vals.dedup();
            let c = if vals.len() <= MAX_BINS {
                // Midpoints between consecutive distinct values.
                vals.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect::<Vec<f32>>()
            } else {
                let mut c = Vec::with_capacity(MAX_BINS - 1);
                for b in 1..MAX_BINS {
                    let idx = b * (vals.len() - 1) / MAX_BINS;
                    let cut = vals[idx];
                    if c.last().is_none_or(|&l| cut > l) {
                        c.push(cut);
                    }
                }
                c
            };
            cuts.push(c);
        }
        let mut bins = vec![0u8; n_rows * n_features];
        for i in 0..n_rows {
            let row = data.row(i);
            for f in 0..n_features {
                bins[i * n_features + f] = bin_of(&cuts[f], row[f]);
            }
        }
        BinnedDataset { n_rows, n_features, bins, cuts }
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Bin code of (row, feature).
    #[inline]
    pub fn bin(&self, row: usize, feature: usize) -> u8 {
        self.bins[row * self.n_features + feature]
    }

    /// Bin codes of one row.
    #[inline]
    pub fn row(&self, row: usize) -> &[u8] {
        &self.bins[row * self.n_features..(row + 1) * self.n_features]
    }

    /// Number of used bins for a feature.
    pub fn n_bins(&self, feature: usize) -> usize {
        self.cuts[feature].len() + 1
    }

    /// Real-valued threshold equivalent to "bin <= b" for a feature
    /// (used to convert a binned split into a raw-feature split).
    pub fn threshold(&self, feature: usize, bin: usize) -> f32 {
        let c = &self.cuts[feature];
        if c.is_empty() {
            return f32::INFINITY;
        }
        c[bin.min(c.len() - 1)]
    }
}

#[inline]
fn bin_of(cuts: &[f32], v: f32) -> u8 {
    cuts.partition_point(|&c| c < v).min(MAX_BINS - 1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..100 {
            d.push(&[i as f32, (i % 10) as f32], i as f32 * 2.0);
        }
        d
    }

    #[test]
    fn dataset_round_trip() {
        let d = toy();
        assert_eq!(d.len(), 100);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(3), &[3.0, 3.0]);
        assert_eq!(d.target(3), 6.0);
    }

    #[test]
    fn binning_preserves_order() {
        let d = toy();
        let b = BinnedDataset::build(&d);
        // Feature 0 has 100 distinct values -> 100 bins; binning must be
        // monotone in the raw value.
        for i in 1..100 {
            assert!(b.bin(i, 0) >= b.bin(i - 1, 0));
        }
        // Feature 1 has 10 distinct values -> 10 bins.
        assert_eq!(b.n_bins(1), 10);
    }

    #[test]
    fn binning_caps_at_max_bins() {
        let mut d = Dataset::new(1);
        for i in 0..10_000 {
            d.push(&[i as f32], 0.0);
        }
        let b = BinnedDataset::build(&d);
        assert!(b.n_bins(0) <= MAX_BINS);
        assert!(b.n_bins(0) > 200);
    }

    #[test]
    fn thresholds_separate_bins() {
        let d = toy();
        let b = BinnedDataset::build(&d);
        // Splitting feature 1 at bin of value 4 must put 0..=4 left.
        let t = b.threshold(1, b.bin(4, 1) as usize);
        assert!(t > 4.0 && t <= 5.0, "threshold {t}");
    }

    #[test]
    fn constant_feature_single_bin() {
        let mut d = Dataset::new(1);
        for _ in 0..50 {
            d.push(&[7.0], 1.0);
        }
        let b = BinnedDataset::build(&d);
        assert_eq!(b.n_bins(0), 1);
        assert_eq!(b.threshold(0, 0), f32::INFINITY);
    }
}
