//! MART: stochastic gradient boosting of regression trees.
//!
//! Least-squares loss, steepest descent in function space (\[10\]): each
//! iteration fits a regression tree to the current residuals on a random
//! row subsample and adds it with shrinkage. Matches the paper's Section
//! 4.2 description and its training parameters (M = 200 boosting
//! iterations, 30-leaf trees).

use crate::dataset::{BinnedDataset, Dataset};
use crate::tree::{RegressionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Boosting hyper-parameters.
#[derive(Debug, Clone)]
pub struct BoostParams {
    /// Number of boosting iterations M.
    pub iterations: usize,
    /// Shrinkage (learning rate) applied to every tree.
    pub shrinkage: f64,
    /// Row subsample fraction per iteration (stochastic gradient
    /// boosting; 1.0 disables subsampling).
    pub subsample: f64,
    /// Feature (column) subsample fraction per tree; 1.0 disables.
    pub colsample: f64,
    /// Tree growth parameters.
    pub tree: TreeParams,
    pub seed: u64,
}

impl Default for BoostParams {
    fn default() -> Self {
        BoostParams {
            iterations: 200,
            shrinkage: 0.1,
            subsample: 0.7,
            colsample: 1.0,
            tree: TreeParams::default(),
            seed: 0x6001,
        }
    }
}

impl BoostParams {
    /// A cheaper configuration for wrapper-style feature selection and
    /// smoke tests.
    pub fn fast() -> Self {
        BoostParams {
            iterations: 40,
            shrinkage: 0.15,
            subsample: 0.8,
            colsample: 1.0,
            tree: TreeParams { max_leaves: 16, min_samples_leaf: 5 },
            seed: 0x6001,
        }
    }
}

/// A trained MART model.
#[derive(Debug, Clone)]
pub struct Mart {
    pub base: f32,
    pub shrinkage: f32,
    pub trees: Vec<RegressionTree>,
    /// Gain-based feature importance accumulated over all trees.
    pub feature_gain: Vec<f64>,
}

impl Mart {
    /// Train on `data`.
    pub fn train(data: &Dataset, params: &BoostParams) -> Mart {
        let binned = BinnedDataset::build(data);
        Mart::train_binned(data, &binned, params)
    }

    /// Train when the caller already binned the data (avoids re-binning
    /// across repeated trainings on the same matrix).
    pub fn train_binned(data: &Dataset, binned: &BinnedDataset, params: &BoostParams) -> Mart {
        let n = data.len();
        assert!(n > 0, "cannot train on an empty dataset");
        assert_eq!(binned.n_rows(), n);
        let base = data.targets().iter().map(|&t| t as f64).sum::<f64>() as f32 / n as f32;
        let mut model = Mart {
            base,
            shrinkage: params.shrinkage as f32,
            trees: Vec::with_capacity(params.iterations),
            feature_gain: vec![0.0f64; data.n_features()],
        };
        let mut preds = vec![base; n];
        boost_rounds(&mut model, data, binned, params, &mut preds, params.iterations);
        model
    }

    /// Continue boosting an existing model: fit up to `extra` additional
    /// trees to the residuals of `base`'s current predictions on `data`,
    /// instead of refitting the whole ensemble from scratch — the
    /// online-feedback warm start (paper §4.4 frames runtime revision
    /// signals as training input; this is the cheap way to absorb them).
    ///
    /// The returned model keeps every tree of `base` plus the new ones.
    /// New trees reuse `base.shrinkage` (a MART applies one shrinkage to
    /// its whole ensemble), so `params.shrinkage` is ignored here;
    /// subsampling, tree growth and the seed come from `params`.
    /// `extra == 0` returns a clone of `base`. Deterministic given
    /// `params.seed`.
    pub fn warm_start(base: &Mart, data: &Dataset, params: &BoostParams, extra: usize) -> Mart {
        let n = data.len();
        assert!(n > 0, "cannot continue training on an empty dataset");
        assert_eq!(
            data.n_features(),
            base.feature_gain.len(),
            "warm start needs the feature space the base model was trained on"
        );
        let mut model = base.clone();
        if extra == 0 {
            return model;
        }
        let binned = BinnedDataset::build(data);
        let mut preds: Vec<f32> = (0..n).map(|i| base.predict(data.row(i))).collect();
        boost_rounds(&mut model, data, &binned, params, &mut preds, extra);
        model
    }

    /// Predict one example from raw feature values.
    pub fn predict(&self, row: &[f32]) -> f32 {
        let mut acc = self.base;
        for t in &self.trees {
            acc += self.shrinkage * t.predict(row);
        }
        acc
    }

    /// Mean squared error over a dataset.
    pub fn mse(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0f64;
        for i in 0..data.len() {
            let e = (self.predict(data.row(i)) - data.target(i)) as f64;
            acc += e * e;
        }
        acc / data.len() as f64
    }

    /// Number of trees actually fit.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

/// The boosting loop shared by fresh training and [`Mart::warm_start`]:
/// fit up to `iterations` trees to the residuals of `preds` (which must
/// hold `model`'s current prediction for every row of `data`), appending
/// to `model.trees` and accumulating `model.feature_gain`. Prediction
/// updates use `model.shrinkage` — for fresh training that equals
/// `params.shrinkage`; for a warm start it is the base ensemble's.
fn boost_rounds(
    model: &mut Mart,
    data: &Dataset,
    binned: &BinnedDataset,
    params: &BoostParams,
    preds: &mut [f32],
    iterations: usize,
) {
    let n = data.len();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut residuals = vec![0.0f32; n];
    let sample_n = ((n as f64 * params.subsample).round() as usize).clamp(1, n);
    let nf = data.n_features();
    let col_n = ((nf as f64 * params.colsample).round() as usize).clamp(1, nf);

    let mut all_rows: Vec<u32> = (0..n as u32).collect();
    let mut all_cols: Vec<u32> = (0..nf as u32).collect();
    for _ in 0..iterations {
        for i in 0..n {
            residuals[i] = data.target(i) - preds[i];
        }
        // Partial Fisher–Yates for the subsample.
        let rows: &[u32] = if sample_n < n {
            for i in 0..sample_n {
                let j = rng.random_range(i..n);
                all_rows.swap(i, j);
            }
            &all_rows[..sample_n]
        } else {
            &all_rows
        };
        let cols: &[u32] = if col_n < nf {
            for i in 0..col_n {
                let j = rng.random_range(i..nf);
                all_cols.swap(i, j);
            }
            &all_cols[..col_n]
        } else {
            &all_cols
        };
        let (tree, tree_preds) =
            RegressionTree::fit_on_features(binned, &residuals, rows, cols, &params.tree);
        if tree.nodes.len() <= 1 {
            // Residuals are flat: converged.
            break;
        }
        tree.accumulate_gains(&mut model.feature_gain);
        let s = model.shrinkage;
        for i in 0..n {
            preds[i] += s * tree_preds[i];
        }
        model.trees.push(tree);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 3·x0 − 2·x1 + x2² with mild noise.
    fn synthetic(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(3);
        for _ in 0..n {
            let x0: f32 = rng.random_range(-1.0..1.0);
            let x1: f32 = rng.random_range(-1.0..1.0);
            let x2: f32 = rng.random_range(-1.0..1.0);
            let noise: f32 = rng.random_range(-0.05..0.05);
            d.push(&[x0, x1, x2], 3.0 * x0 - 2.0 * x1 + x2 * x2 + noise);
        }
        d
    }

    #[test]
    fn fits_nonlinear_function() {
        let train = synthetic(2000, 1);
        let test = synthetic(500, 2);
        let model = Mart::train(&train, &BoostParams::default());
        let mse = model.mse(&test);
        // Target variance is ~ 3²/3 + 2²/3 + … >> 1; MSE must be tiny.
        assert!(mse < 0.05, "test mse {mse}");
        assert!(model.n_trees() > 50);
    }

    #[test]
    fn boosting_reduces_training_error_monotonically_enough() {
        let train = synthetic(1000, 3);
        let small = Mart::train(&train, &BoostParams { iterations: 5, ..BoostParams::default() });
        let large = Mart::train(&train, &BoostParams { iterations: 100, ..BoostParams::default() });
        assert!(large.mse(&train) < small.mse(&train));
    }

    #[test]
    fn constant_targets_converge_immediately() {
        let mut d = Dataset::new(2);
        for i in 0..100 {
            d.push(&[i as f32, 0.0], 5.0);
        }
        let model = Mart::train(&d, &BoostParams::default());
        assert_eq!(model.n_trees(), 0);
        assert!((model.predict(&[3.0, 0.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = synthetic(500, 4);
        let a = Mart::train(&train, &BoostParams::default());
        let b = Mart::train(&train, &BoostParams::default());
        assert_eq!(a.predict(train.row(17)), b.predict(train.row(17)));
        let c = Mart::train(&train, &BoostParams { seed: 999, ..BoostParams::default() });
        // Different subsampling order — almost surely different model.
        assert_ne!(a.predict(train.row(17)), c.predict(train.row(17)));
    }

    #[test]
    fn feature_importance_finds_signal() {
        // x0 drives the target, x1/x2 are noise.
        let mut rng = StdRng::seed_from_u64(5);
        let mut d = Dataset::new(3);
        for _ in 0..1500 {
            let x0: f32 = rng.random_range(-1.0..1.0);
            let x1: f32 = rng.random_range(-1.0..1.0);
            let x2: f32 = rng.random_range(-1.0..1.0);
            d.push(&[x0, x1, x2], x0.signum());
        }
        let model = Mart::train(&d, &BoostParams::default());
        // Gain importance concentrates on the signal feature even though
        // late trees chase residual noise on the others.
        assert!(model.feature_gain[0] > model.feature_gain[1] * 3.0);
        assert!(model.feature_gain[0] > model.feature_gain[2] * 3.0);
    }

    #[test]
    fn warm_start_reduces_error_and_keeps_the_base_ensemble() {
        let train = synthetic(800, 7);
        let base = Mart::train(&train, &BoostParams { iterations: 20, ..BoostParams::default() });
        let more = Mart::warm_start(
            &base,
            &train,
            &BoostParams { iterations: 0, seed: 11, ..BoostParams::default() },
            60,
        );
        assert!(more.n_trees() > base.n_trees());
        assert_eq!(more.trees.len().min(base.trees.len()), base.trees.len());
        assert!(more.mse(&train) < base.mse(&train), "continued boosting must fit better");
        // The prefix of the ensemble is untouched: warm start only appends.
        for (a, b) in base.trees.iter().zip(&more.trees) {
            assert_eq!(a.nodes.len(), b.nodes.len());
        }
        assert_eq!(more.shrinkage, base.shrinkage);
    }

    #[test]
    fn warm_start_is_deterministic_and_zero_extra_is_identity() {
        let train = synthetic(400, 8);
        let base = Mart::train(&train, &BoostParams { iterations: 15, ..BoostParams::default() });
        let params = BoostParams { seed: 42, ..BoostParams::default() };
        let a = Mart::warm_start(&base, &train, &params, 25);
        let b = Mart::warm_start(&base, &train, &params, 25);
        for i in (0..400).step_by(29) {
            assert_eq!(a.predict(train.row(i)).to_bits(), b.predict(train.row(i)).to_bits());
        }
        let same = Mart::warm_start(&base, &train, &params, 0);
        for i in (0..400).step_by(29) {
            assert_eq!(same.predict(train.row(i)).to_bits(), base.predict(train.row(i)).to_bits());
        }
    }

    #[test]
    fn warm_start_absorbs_a_distribution_shift() {
        // Base learns y = 3x0 − 2x1 + x2²; the feedback data flips the
        // sign of the x0 term. Continued boosting on the new data must
        // track the new regime better than the frozen base.
        let base_data = synthetic(1000, 9);
        let base =
            Mart::train(&base_data, &BoostParams { iterations: 60, ..BoostParams::default() });
        let mut rng = StdRng::seed_from_u64(10);
        let mut shifted = Dataset::new(3);
        for _ in 0..1000 {
            let x0: f32 = rng.random_range(-1.0..1.0);
            let x1: f32 = rng.random_range(-1.0..1.0);
            let x2: f32 = rng.random_range(-1.0..1.0);
            shifted.push(&[x0, x1, x2], -3.0 * x0 - 2.0 * x1 + x2 * x2);
        }
        let adapted = Mart::warm_start(&base, &shifted, &BoostParams::default(), 120);
        assert!(
            adapted.mse(&shifted) < base.mse(&shifted) * 0.5,
            "adapted {} vs base {}",
            adapted.mse(&shifted),
            base.mse(&shifted)
        );
    }

    #[test]
    fn subsample_one_trains_on_everything() {
        let train = synthetic(300, 6);
        let model = Mart::train(&train, &BoostParams { subsample: 1.0, ..BoostParams::default() });
        assert!(model.mse(&train) < 0.05);
    }
}
