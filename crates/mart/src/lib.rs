//! # prosel-mart
//!
//! Multiple Additive Regression Trees (MART): stochastic gradient-boosted
//! regression trees, implemented from scratch per the paper's Section 4.2 —
//! least-squares loss, steepest-descent boosting in function space,
//! binary regression trees as the fitting function, with the paper's
//! training parameters as defaults (M = 200 boosting iterations, 30-leaf
//! trees).
//!
//! Split search is histogram-based: features are quantized once into at
//! most 256 quantile bins, trees grow best-first. Everything is
//! deterministic given the boosting seed.
//!
//! ```
//! use prosel_mart::{BoostParams, Dataset, Mart};
//! let mut data = Dataset::new(1);
//! for i in 0..200 {
//!     let x = i as f32 / 20.0;
//!     data.push(&[x], x.sin());
//! }
//! let model = Mart::train(&data, &BoostParams::fast());
//! assert!((model.predict(&[1.5]) - 1.5f32.sin()).abs() < 0.2);
//! ```

pub mod boost;
pub mod dataset;
pub mod importance;
pub mod model_io;
pub mod tree;

pub use boost::{BoostParams, Mart};
pub use dataset::{BinnedDataset, Dataset, MAX_BINS};
pub use importance::{greedy_forward_selection, project, rank_by_gain, SelectionStep};
pub use tree::{RegressionTree, TreeNode, TreeParams};
