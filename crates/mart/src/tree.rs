//! Regression trees with best-first growth and histogram split search.

use crate::dataset::BinnedDataset;

/// One tree node. Leaves have `feature == u32::MAX`.
#[derive(Debug, Clone, Copy)]
pub struct TreeNode {
    /// Split feature, or `u32::MAX` for a leaf.
    pub feature: u32,
    /// Raw-value threshold: rows with `x[feature] <= threshold` go left.
    pub threshold: f32,
    /// Bin-code threshold used during training traversal.
    pub bin_threshold: u8,
    pub left: u32,
    pub right: u32,
    /// Leaf response (undefined for internal nodes).
    pub value: f32,
}

impl TreeNode {
    fn leaf(value: f32) -> Self {
        TreeNode { feature: u32::MAX, threshold: 0.0, bin_threshold: 0, left: 0, right: 0, value }
    }

    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.feature == u32::MAX
    }
}

/// A trained regression tree.
#[derive(Debug, Clone, Default)]
pub struct RegressionTree {
    pub nodes: Vec<TreeNode>,
    /// `(feature, least-squares gain)` of every split made, in expansion
    /// order (gain-based feature importance).
    pub split_gains: Vec<(u32, f64)>,
}

/// Growth parameters.
#[derive(Debug, Clone)]
pub struct TreeParams {
    /// Maximum number of leaves (the paper trains 30-leaf trees).
    pub max_leaves: usize,
    /// Minimum examples per leaf.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_leaves: 30, min_samples_leaf: 5 }
    }
}

/// A candidate split for one leaf.
#[derive(Debug, Clone, Copy)]
struct Split {
    gain: f64,
    feature: usize,
    bin: u8,
}

impl RegressionTree {
    /// Fit a tree to `targets` over the `rows` subset of `data`,
    /// best-first, least-squares. Returns the tree and, for every row of
    /// the *full* dataset, its predicted value (needed to update boosting
    /// residuals for out-of-sample rows too).
    pub fn fit(
        data: &BinnedDataset,
        targets: &[f32],
        rows: &[u32],
        params: &TreeParams,
    ) -> (RegressionTree, Vec<f32>) {
        let all: Vec<u32> = (0..data.n_features() as u32).collect();
        RegressionTree::fit_on_features(data, targets, rows, &all, params)
    }

    /// [`RegressionTree::fit`] restricted to a feature subset (column
    /// subsampling for stochastic boosting).
    pub fn fit_on_features(
        data: &BinnedDataset,
        targets: &[f32],
        rows: &[u32],
        features: &[u32],
        params: &TreeParams,
    ) -> (RegressionTree, Vec<f32>) {
        assert_eq!(targets.len(), data.n_rows());
        let mut tree = RegressionTree { nodes: Vec::new(), split_gains: Vec::new() };
        // Leaf work-list: (node index, rows, candidate split).
        struct Leaf {
            node: usize,
            rows: Vec<u32>,
            split: Option<Split>,
        }

        let mean = |rs: &[u32]| -> f32 {
            if rs.is_empty() {
                0.0
            } else {
                rs.iter().map(|&r| targets[r as usize] as f64).sum::<f64>() as f32 / rs.len() as f32
            }
        };

        tree.nodes.push(TreeNode::leaf(mean(rows)));
        let mut leaves = vec![Leaf {
            node: 0,
            rows: rows.to_vec(),
            split: best_split(data, targets, rows, features, params),
        }];

        let mut n_leaves = 1;
        while n_leaves < params.max_leaves {
            // Pick the splittable leaf with the largest gain.
            let Some(best_idx) = leaves
                .iter()
                .enumerate()
                .filter(|(_, l)| l.split.is_some())
                .max_by(|a, b| {
                    let ga = a.1.split.unwrap().gain;
                    let gb = b.1.split.unwrap().gain;
                    ga.partial_cmp(&gb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
            else {
                break;
            };
            let leaf = leaves.swap_remove(best_idx);
            let split = leaf.split.unwrap();

            let (left_rows, right_rows): (Vec<u32>, Vec<u32>) =
                leaf.rows.iter().partition(|&&r| data.bin(r as usize, split.feature) <= split.bin);
            debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());

            let left_node = tree.nodes.len();
            tree.nodes.push(TreeNode::leaf(mean(&left_rows)));
            let right_node = tree.nodes.len();
            tree.nodes.push(TreeNode::leaf(mean(&right_rows)));

            tree.split_gains.push((split.feature as u32, split.gain));
            let n = &mut tree.nodes[leaf.node];
            n.feature = split.feature as u32;
            n.bin_threshold = split.bin;
            n.threshold = data.threshold(split.feature, split.bin as usize);
            n.left = left_node as u32;
            n.right = right_node as u32;

            let ls = best_split(data, targets, &left_rows, features, params);
            let rs = best_split(data, targets, &right_rows, features, params);
            leaves.push(Leaf { node: left_node, rows: left_rows, split: ls });
            leaves.push(Leaf { node: right_node, rows: right_rows, split: rs });
            n_leaves += 1;
        }

        // Predictions for every row (binned traversal).
        let mut preds = vec![0.0f32; data.n_rows()];
        for (i, p) in preds.iter_mut().enumerate() {
            *p = tree.predict_binned(data.row(i));
        }
        (tree, preds)
    }

    /// Predict from raw feature values.
    pub fn predict(&self, row: &[f32]) -> f32 {
        let mut n = &self.nodes[0];
        while !n.is_leaf() {
            n = if row[n.feature as usize] <= n.threshold {
                &self.nodes[n.left as usize]
            } else {
                &self.nodes[n.right as usize]
            };
        }
        n.value
    }

    /// Predict from bin codes (training-time traversal).
    pub fn predict_binned(&self, bins: &[u8]) -> f32 {
        let mut n = &self.nodes[0];
        while !n.is_leaf() {
            n = if bins[n.feature as usize] <= n.bin_threshold {
                &self.nodes[n.left as usize]
            } else {
                &self.nodes[n.right as usize]
            };
        }
        n.value
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Accumulate least-squares split gains per feature into `out`
    /// (gain-based feature importance).
    pub fn accumulate_gains(&self, out: &mut [f64]) {
        for &(f, g) in &self.split_gains {
            out[f as usize] += g;
        }
    }
}

/// Find the best least-squares split of `rows` via bin histograms,
/// considering only the listed features.
fn best_split(
    data: &BinnedDataset,
    targets: &[f32],
    rows: &[u32],
    features: &[u32],
    params: &TreeParams,
) -> Option<Split> {
    if rows.len() < 2 * params.min_samples_leaf {
        return None;
    }
    let nf = data.n_features();
    // Histograms: per feature per bin, (count, target sum).
    let max_bins = features.iter().map(|&f| data.n_bins(f as usize)).max().unwrap_or(1);
    let mut hist_cnt = vec![0u32; nf * max_bins];
    let mut hist_sum = vec![0f64; nf * max_bins];
    let mut total_sum = 0f64;
    for &r in rows {
        let row_bins = data.row(r as usize);
        let t = targets[r as usize] as f64;
        total_sum += t;
        for &f in features {
            let b = row_bins[f as usize];
            let idx = f as usize * max_bins + b as usize;
            hist_cnt[idx] += 1;
            hist_sum[idx] += t;
        }
    }
    let n_total = rows.len() as f64;
    let base_score = total_sum * total_sum / n_total;

    let mut best: Option<Split> = None;
    for &f in features {
        let f = f as usize;
        let nb = data.n_bins(f);
        if nb < 2 {
            continue;
        }
        let mut cnt_l = 0u32;
        let mut sum_l = 0f64;
        // Split "bin <= b": scan left-to-right, excluding the last bin.
        for b in 0..nb - 1 {
            cnt_l += hist_cnt[f * max_bins + b];
            sum_l += hist_sum[f * max_bins + b];
            let cnt_r = rows.len() as u32 - cnt_l;
            if (cnt_l as usize) < params.min_samples_leaf
                || (cnt_r as usize) < params.min_samples_leaf
            {
                continue;
            }
            let sum_r = total_sum - sum_l;
            let score = sum_l * sum_l / cnt_l as f64 + sum_r * sum_r / cnt_r as f64 - base_score;
            if score > 1e-12 && best.is_none_or(|s| score > s.gain) {
                best = Some(Split { gain: score, feature: f, bin: b as u8 });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn step_data() -> (Dataset, BinnedDataset) {
        // y = 1 when x0 > 50 else 0; x1 is noise.
        let mut d = Dataset::new(2);
        for i in 0..200 {
            let y = if i > 50 { 1.0 } else { 0.0 };
            d.push(&[i as f32, (i * 7 % 13) as f32], y);
        }
        let b = BinnedDataset::build(&d);
        (d, b)
    }

    #[test]
    fn learns_step_function() {
        let (d, b) = step_data();
        let rows: Vec<u32> = (0..d.len() as u32).collect();
        let (tree, preds) = RegressionTree::fit(&b, d.targets(), &rows, &TreeParams::default());
        assert!(tree.n_leaves() >= 2);
        // Perfectly separable: training MSE should be ~0.
        let mse: f64 =
            (0..d.len()).map(|i| (preds[i] - d.target(i)) as f64).map(|e| e * e).sum::<f64>()
                / d.len() as f64;
        assert!(mse < 1e-6, "mse {mse}");
        // Raw-value prediction agrees with binned prediction.
        for i in [0usize, 10, 51, 199] {
            assert_eq!(tree.predict(d.row(i)), tree.predict_binned(b.row(i)));
        }
    }

    #[test]
    fn respects_max_leaves() {
        let mut d = Dataset::new(1);
        for i in 0..500 {
            d.push(&[i as f32], (i % 17) as f32);
        }
        let b = BinnedDataset::build(&d);
        let rows: Vec<u32> = (0..500).collect();
        let params = TreeParams { max_leaves: 8, min_samples_leaf: 5 };
        let (tree, _) = RegressionTree::fit(&b, d.targets(), &rows, &params);
        assert!(tree.n_leaves() <= 8);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let mut d = Dataset::new(2);
        for i in 0..50 {
            d.push(&[i as f32, -(i as f32)], 3.25);
        }
        let b = BinnedDataset::build(&d);
        let rows: Vec<u32> = (0..50).collect();
        let (tree, preds) = RegressionTree::fit(&b, d.targets(), &rows, &TreeParams::default());
        assert_eq!(tree.n_leaves(), 1);
        assert!(preds.iter().all(|&p| (p - 3.25).abs() < 1e-6));
    }

    #[test]
    fn min_samples_respected() {
        let mut d = Dataset::new(1);
        for i in 0..20 {
            d.push(&[i as f32], if i == 0 { 100.0 } else { 0.0 });
        }
        let b = BinnedDataset::build(&d);
        let rows: Vec<u32> = (0..20).collect();
        let params = TreeParams { max_leaves: 30, min_samples_leaf: 5 };
        let (tree, _) = RegressionTree::fit(&b, d.targets(), &rows, &params);
        // The outlier cannot be isolated: every leaf must hold >= 5 rows.
        // Count rows per leaf by prediction traversal.
        let mut leaf_counts = std::collections::HashMap::new();
        for i in 0..20 {
            let mut n = &tree.nodes[0];
            let mut id = 0usize;
            while !n.is_leaf() {
                id = if b.bin(i, n.feature as usize) <= n.bin_threshold {
                    n.left as usize
                } else {
                    n.right as usize
                };
                n = &tree.nodes[id];
            }
            *leaf_counts.entry(id).or_insert(0usize) += 1;
        }
        for (_, c) in leaf_counts {
            assert!(c >= 5);
        }
    }
}
