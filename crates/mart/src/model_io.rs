//! Plain-text (de)serialization of trained models.
//!
//! A deliberately simple line-oriented format (no serde dependency):
//!
//! ```text
//! mart v1
//! base <f32> shrinkage <f32> trees <n> features <d>
//! tree <n_nodes>
//! node <feature|-1> <threshold> <bin_threshold> <left> <right> <value>
//! ...
//! ```

use crate::boost::Mart;
use crate::tree::{RegressionTree, TreeNode};
use std::fmt::Write as _;

/// Serialize a model to a string.
pub fn to_string(model: &Mart) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "mart v1");
    let _ = writeln!(
        out,
        "base {} shrinkage {} trees {} features {}",
        model.base,
        model.shrinkage,
        model.trees.len(),
        model.feature_gain.len()
    );
    for tree in &model.trees {
        let _ = writeln!(out, "tree {}", tree.nodes.len());
        for n in &tree.nodes {
            let f = if n.is_leaf() { -1i64 } else { n.feature as i64 };
            let _ = writeln!(
                out,
                "node {} {} {} {} {} {}",
                f, n.threshold, n.bin_threshold, n.left, n.right, n.value
            );
        }
    }
    out
}

/// Parse a model from [`to_string`] output.
pub fn from_str(s: &str) -> Result<Mart, String> {
    let mut lines = s.lines();
    let header = lines.next().ok_or("empty input")?;
    if header.trim() != "mart v1" {
        return Err(format!("unsupported header: {header}"));
    }
    let meta = lines.next().ok_or("missing meta line")?;
    let parts: Vec<&str> = meta.split_whitespace().collect();
    if parts.len() != 8
        || parts[0] != "base"
        || parts[2] != "shrinkage"
        || parts[4] != "trees"
        || parts[6] != "features"
    {
        return Err(format!("bad meta line: {meta}"));
    }
    let base: f32 = parts[1].parse().map_err(|e| format!("base: {e}"))?;
    let shrinkage: f32 = parts[3].parse().map_err(|e| format!("shrinkage: {e}"))?;
    let n_trees: usize = parts[5].parse().map_err(|e| format!("trees: {e}"))?;
    let n_features: usize = parts[7].parse().map_err(|e| format!("features: {e}"))?;

    let mut trees = Vec::with_capacity(n_trees);
    for _ in 0..n_trees {
        let tl = lines.next().ok_or("missing tree line")?;
        let tparts: Vec<&str> = tl.split_whitespace().collect();
        if tparts.len() != 2 || tparts[0] != "tree" {
            return Err(format!("bad tree line: {tl}"));
        }
        let n_nodes: usize = tparts[1].parse().map_err(|e| format!("tree size: {e}"))?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            let nl = lines.next().ok_or("missing node line")?;
            let np: Vec<&str> = nl.split_whitespace().collect();
            if np.len() != 7 || np[0] != "node" {
                return Err(format!("bad node line: {nl}"));
            }
            let f: i64 = np[1].parse().map_err(|e| format!("feature: {e}"))?;
            if f >= 0 && f as usize >= n_features {
                return Err(format!("node feature {f} out of range (features {n_features})"));
            }
            let node = TreeNode {
                feature: if f < 0 { u32::MAX } else { f as u32 },
                threshold: np[2].parse().map_err(|e| format!("threshold: {e}"))?,
                bin_threshold: np[3].parse().map_err(|e| format!("bin: {e}"))?,
                left: np[4].parse().map_err(|e| format!("left: {e}"))?,
                right: np[5].parse().map_err(|e| format!("right: {e}"))?,
                value: np[6].parse().map_err(|e| format!("value: {e}"))?,
            };
            // Trees are serialized in construction order, so children
            // always come *after* their parent. Requiring strictly
            // forward references both bounds the indices and makes cycles
            // (a corrupted node pointing at itself or an ancestor, which
            // would hang `predict`'s descent loop forever) unrepresentable.
            if !node.is_leaf()
                && (node.left as usize >= n_nodes
                    || node.right as usize >= n_nodes
                    || node.left as usize <= i
                    || node.right as usize <= i)
            {
                return Err(format!(
                    "node {i} children ({}, {}) must point forward within the {n_nodes}-node tree",
                    node.left, node.right
                ));
            }
            nodes.push(node);
        }
        trees.push(RegressionTree { nodes, split_gains: Vec::new() });
    }
    // Strictness matters once models are persisted and reloaded by the
    // online trainer: silently ignoring content past the declared tree
    // count would let a torn or concatenated file parse as a *different*
    // model. Anything but trailing whitespace is an error.
    for line in lines {
        if !line.trim().is_empty() {
            return Err(format!("trailing garbage after the declared trees: {line}"));
        }
    }
    Ok(Mart { base, shrinkage, trees, feature_gain: vec![0.0; n_features] })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boost::BoostParams;
    use crate::dataset::Dataset;

    #[test]
    fn round_trip_preserves_predictions() {
        let mut d = Dataset::new(2);
        for i in 0..300 {
            let x = i as f32 / 10.0;
            d.push(&[x, -x], (x * 1.7).sin());
        }
        let model = Mart::train(&d, &BoostParams::fast());
        let text = to_string(&model);
        let back = from_str(&text).expect("parse");
        for i in (0..300).step_by(17) {
            assert_eq!(model.predict(d.row(i)), back.predict(d.row(i)), "row {i}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("not a model").is_err());
        assert!(from_str("mart v1\nbase x shrinkage y trees 0 features 0").is_err());
        // Meta keywords must be the expected ones, in order.
        assert!(from_str("mart v1\nbase 0 shrink 0.1 trees 0 features 0").is_err());
        assert!(from_str("mart v1\nbase 0 shrinkage 0.1 leaves 0 features 0").is_err());
    }

    #[test]
    fn rejects_trailing_garbage_and_concatenated_models() {
        let mut d = Dataset::new(2);
        for i in 0..200 {
            let x = i as f32 / 10.0;
            d.push(&[x, -x], x.cos());
        }
        let model = Mart::train(&d, &BoostParams::fast());
        let text = to_string(&model);
        // Trailing whitespace is tolerated; anything else is not.
        assert!(from_str(&format!("{text}\n\n")).is_ok());
        assert!(from_str(&format!("{text}junk\n")).is_err());
        assert!(from_str(&format!("{text}{text}")).is_err(), "two concatenated models");
        // A node line referencing an out-of-range child or feature fails.
        assert!(from_str(
            "mart v1\nbase 0 shrinkage 0.1 trees 1 features 2\ntree 1\nnode 0 0.5 1 7 8 0.0\n"
        )
        .is_err());
        assert!(from_str(
            "mart v1\nbase 0 shrinkage 0.1 trees 1 features 2\ntree 1\nnode 9 0.5 1 0 0 0.0\n"
        )
        .is_err());
        // Backward/self child references would make predict()'s descent
        // loop cycle forever — they must fail at parse time.
        assert!(from_str(
            "mart v1\nbase 0 shrinkage 0.1 trees 1 features 2\ntree 1\nnode 0 0.5 1 0 0 0.0\n"
        )
        .is_err());
        assert!(from_str(
            "mart v1\nbase 0 shrinkage 0.1 trees 3 features 2\ntree 3\nnode 0 0.5 1 1 2 0.0\n\
             node 0 0.5 1 0 2 0.0\nnode -1 0 0 0 0 1.0\n"
        )
        .is_err());
    }
}
