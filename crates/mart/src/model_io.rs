//! Plain-text (de)serialization of trained models.
//!
//! A deliberately simple line-oriented format (no serde dependency):
//!
//! ```text
//! mart v1
//! base <f32> shrinkage <f32> trees <n> features <d>
//! tree <n_nodes>
//! node <feature|-1> <threshold> <bin_threshold> <left> <right> <value>
//! ...
//! ```

use crate::boost::Mart;
use crate::tree::{RegressionTree, TreeNode};
use std::fmt::Write as _;

/// Serialize a model to a string.
pub fn to_string(model: &Mart) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "mart v1");
    let _ = writeln!(
        out,
        "base {} shrinkage {} trees {} features {}",
        model.base,
        model.shrinkage,
        model.trees.len(),
        model.feature_gain.len()
    );
    for tree in &model.trees {
        let _ = writeln!(out, "tree {}", tree.nodes.len());
        for n in &tree.nodes {
            let f = if n.is_leaf() { -1i64 } else { n.feature as i64 };
            let _ = writeln!(
                out,
                "node {} {} {} {} {} {}",
                f, n.threshold, n.bin_threshold, n.left, n.right, n.value
            );
        }
    }
    out
}

/// Parse a model from [`to_string`] output.
pub fn from_str(s: &str) -> Result<Mart, String> {
    let mut lines = s.lines();
    let header = lines.next().ok_or("empty input")?;
    if header.trim() != "mart v1" {
        return Err(format!("unsupported header: {header}"));
    }
    let meta = lines.next().ok_or("missing meta line")?;
    let parts: Vec<&str> = meta.split_whitespace().collect();
    if parts.len() != 8 || parts[0] != "base" || parts[2] != "shrinkage" {
        return Err(format!("bad meta line: {meta}"));
    }
    let base: f32 = parts[1].parse().map_err(|e| format!("base: {e}"))?;
    let shrinkage: f32 = parts[3].parse().map_err(|e| format!("shrinkage: {e}"))?;
    let n_trees: usize = parts[5].parse().map_err(|e| format!("trees: {e}"))?;
    let n_features: usize = parts[7].parse().map_err(|e| format!("features: {e}"))?;

    let mut trees = Vec::with_capacity(n_trees);
    for _ in 0..n_trees {
        let tl = lines.next().ok_or("missing tree line")?;
        let tparts: Vec<&str> = tl.split_whitespace().collect();
        if tparts.len() != 2 || tparts[0] != "tree" {
            return Err(format!("bad tree line: {tl}"));
        }
        let n_nodes: usize = tparts[1].parse().map_err(|e| format!("tree size: {e}"))?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let nl = lines.next().ok_or("missing node line")?;
            let np: Vec<&str> = nl.split_whitespace().collect();
            if np.len() != 7 || np[0] != "node" {
                return Err(format!("bad node line: {nl}"));
            }
            let f: i64 = np[1].parse().map_err(|e| format!("feature: {e}"))?;
            nodes.push(TreeNode {
                feature: if f < 0 { u32::MAX } else { f as u32 },
                threshold: np[2].parse().map_err(|e| format!("threshold: {e}"))?,
                bin_threshold: np[3].parse().map_err(|e| format!("bin: {e}"))?,
                left: np[4].parse().map_err(|e| format!("left: {e}"))?,
                right: np[5].parse().map_err(|e| format!("right: {e}"))?,
                value: np[6].parse().map_err(|e| format!("value: {e}"))?,
            });
        }
        trees.push(RegressionTree { nodes, split_gains: Vec::new() });
    }
    Ok(Mart { base, shrinkage, trees, feature_gain: vec![0.0; n_features] })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boost::BoostParams;
    use crate::dataset::Dataset;

    #[test]
    fn round_trip_preserves_predictions() {
        let mut d = Dataset::new(2);
        for i in 0..300 {
            let x = i as f32 / 10.0;
            d.push(&[x, -x], (x * 1.7).sin());
        }
        let model = Mart::train(&d, &BoostParams::fast());
        let text = to_string(&model);
        let back = from_str(&text).expect("parse");
        for i in (0..300).step_by(17) {
            assert_eq!(model.predict(d.row(i)), back.predict(d.row(i)), "row {i}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("not a model").is_err());
        assert!(from_str("mart v1\nbase x shrinkage y trees 0 features 0").is_err());
    }
}
