//! The wait-free metric primitives and the registry that names them.
//!
//! Hot paths hold `Arc` handles to individual metrics and record through
//! a handful of relaxed atomic adds — no locks, no allocation, no
//! syscalls. The registry's mutex is touched only on the cold paths:
//! metric creation (once per name, at construction time) and
//! [`MetricsRegistry::snapshot`] (the scrape).

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot, Sample, SampleValue};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one zero bucket plus one per power of
/// two of the `u64` range (`2^0 ..= 2^63`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotone counter. `inc`/`add` are single relaxed `fetch_add`s —
/// wait-free and safe to call from any thread through a shared handle.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A detached counter (not registered anywhere) — embed components
    /// can count unconditionally and only pay registry wiring when a
    /// scrape is wanted.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 and return the post-increment value — the same single
    /// `fetch_add` as [`Counter::inc`]. Lets hot paths derive a
    /// 1-in-N sampling tick from a count they already pay for instead
    /// of bouncing a second shared cacheline (the `metrics_overhead`
    /// A/B showed a dedicated tick atomic fattening the read tail).
    pub fn tick(&self) -> u64 {
        self.value.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrite the value — **not** for hot paths. Exists so
    /// checkpoint-restore can re-seed monotone counters to their
    /// checkpointed values, and so derived counters can mirror an
    /// authoritative total.
    pub fn reset(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge holding an `f64` (stored as its bit pattern
/// in an `AtomicU64`). `set`/`get` are single relaxed atomic ops.
///
/// Integer-valued gauges (occupancies, depths) are exact up to 2^53.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A detached gauge holding 0.0.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Store `value`.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed log₂-bucketed histogram over `u64` samples (latencies in
/// nanoseconds, sizes in bytes, …).
///
/// Bucket 0 holds exactly the value 0; bucket `i ≥ 1` holds the range
/// `[2^(i-1), 2^i - 1]`. [`Histogram::record`] is two relaxed
/// `fetch_add`s (the bucket and the running sum) — wait-free, no locks,
/// consistent with the seqlock read-path discipline of the service.
///
/// Quantiles are served as **bucket brackets**: the exact sample
/// quantile provably lies inside the returned `[lo, hi]` range (the
/// property net pins this for p50/p99 on known distributions); the
/// point estimate [`Histogram::quantile`] is the bracket's upper bound,
/// i.e. conservative.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new), sum: AtomicU64::new(0) }
    }
}

/// Bucket index of `value`: 0 for 0, else `64 - leading_zeros` (so 1
/// lands in bucket 1, 2..3 in bucket 2, and so on).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A detached histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample: two relaxed `fetch_add`s.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Samples recorded so far (the sum over all buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample value (0.0 while empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// A point-in-time copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum(),
        }
    }

    /// The `[lo, hi]` range of the bucket holding the `q`-quantile
    /// sample (rank `round((count - 1) · q)`, matching the harness's
    /// exact-quantile convention). `None` while empty.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        self.snapshot().quantile_bounds(q)
    }

    /// Conservative point estimate of the `q`-quantile: the upper bound
    /// of [`Self::quantile_bounds`]. 0 while empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).map(|(_, hi)| hi).unwrap_or(0)
    }
}

/// The three metric shapes a registry can hold under one name.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics, shared across the stack through an
/// `Arc`.
///
/// Lock discipline: the internal mutex guards only the name → handle
/// map. Components call [`MetricsRegistry::counter`] (or `gauge` /
/// `histogram`) **once at construction** and keep the returned `Arc`;
/// every subsequent record is lock-free on the handle. A scrape
/// ([`MetricsRegistry::snapshot`]) takes the map lock briefly to walk
/// the handles — it never blocks a recording thread.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.lock().map(|m| m.len()).unwrap_or(0);
        write!(f, "MetricsRegistry({n} metrics)")
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get-or-create the counter registered under `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric
    /// kind — a programming error, not an operational condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a counter"),
        }
    }

    /// Get-or-create the gauge registered under `name`.
    ///
    /// # Panics
    /// Panics on a kind mismatch, like [`Self::counter`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        match map.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a gauge"),
        }
    }

    /// Get-or-create the histogram registered under `name`.
    ///
    /// # Panics
    /// Panics on a kind mismatch, like [`Self::counter`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a histogram"),
        }
    }

    /// Registered metric names, ascending.
    pub fn names(&self) -> Vec<String> {
        self.metrics.lock().expect("metrics registry poisoned").keys().cloned().collect()
    }

    /// A point-in-time, diffable copy of every registered metric. Values
    /// are read per metric with relaxed loads; the snapshot is
    /// *per-metric* consistent, not globally atomic (fine for
    /// monitoring, by design — a globally consistent cut would require
    /// stopping the world).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().expect("metrics registry poisoned");
        let samples = map
            .iter()
            .map(|(name, metric)| Sample {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_values() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset(2);
        assert_eq!(reg.counter("c").get(), 2, "same name yields the same handle");
        let g = reg.gauge("g");
        g.set(1.5);
        assert_eq!(reg.gauge("g").get(), 1.5);
    }

    #[test]
    fn histogram_buckets_are_a_partition() {
        // Every u64 lands in exactly one bucket whose bounds contain it,
        // and the bounds tile the range without gaps.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "value {v} outside bucket {i}");
        }
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_lower(i), bucket_upper(i - 1).wrapping_add(1), "gap before {i}");
        }
    }

    #[test]
    fn histogram_quantile_brackets_the_exact_value() {
        let h = Histogram::new();
        let values: Vec<u64> = (1..=1000).collect();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), values.iter().sum::<u64>());
        for q in [0.0, 0.5, 0.99, 1.0] {
            let rank = ((values.len() - 1) as f64 * q).round() as usize;
            let exact = values[rank];
            let (lo, hi) = h.quantile_bounds(q).unwrap();
            assert!(lo <= exact && exact <= hi, "q={q}: {exact} outside [{lo}, {hi}]");
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_is_a_panic() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }
}
